#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Offline-friendly — uses only the toolchain components already
# installed; no network access or extra dependencies required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "All checks passed."
