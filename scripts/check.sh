#!/usr/bin/env bash
# Local CI gate: formatting, lints, docs, the full test suite, and a
# telemetry smoke run. Offline-friendly — uses only the toolchain
# components already installed; no network access or extra dependencies
# required.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> blam-analyze (full lint battery)"
# Human output for the terminal; the JSON and SARIF reports land next
# to the telemetry smoke artifacts for tooling (SARIF for code-scanning
# upload) to pick up.
cargo run -q --release -p blam-analyzer --bin blam-analyze
cargo run -q --release -p blam-analyzer --bin blam-analyze -- \
    --format json >"$tmp/analyzer.json"
cargo run -q --release -p blam-analyzer --bin blam-analyze -- \
    --format sarif >"$tmp/analyzer.sarif"
grep -q '"version": "2.1.0"' "$tmp/analyzer.sarif" \
    || { echo "analyzer.sarif is not a SARIF 2.1.0 log"; exit 1; }

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test"
cargo test --workspace -q

echo "==> telemetry trace smoke run"
cargo run -q --release -p blam-cli -- compare \
    --nodes 5 --days 1 --jobs 2 --trace "$tmp/trace.jsonl" >"$tmp/table.txt"
test -s "$tmp/trace.jsonl" || { echo "trace file is empty"; exit 1; }
# Every line must be a JSON object (full schema validation follows).
while IFS= read -r line; do
    case "$line" in
        '{'*'}') ;;
        *) echo "non-JSONL trace line: $line"; exit 1 ;;
    esac
done <"$tmp/trace.jsonl"
cargo run -q --release -p blam-cli -- trace-check "$tmp/trace.jsonl"

echo "==> zoo smoke run (4-policy compare, byte-identical across --jobs)"
# The full policy zoo (LoRaWAN, H-50, LongLived, Batteryless) rides the
# compare roster; the table must not shift a byte with the worker count.
cargo run -q --release -p blam-cli -- compare \
    --nodes 6 --days 1 --seed 3 --jobs 1 >"$tmp/zoo_a.txt"
cargo run -q --release -p blam-cli -- compare \
    --nodes 6 --days 1 --seed 3 --jobs 4 >"$tmp/zoo_b.txt"
cmp "$tmp/zoo_a.txt" "$tmp/zoo_b.txt" \
    || { echo "zoo compare is not deterministic across --jobs"; exit 1; }
for policy in LoRaWAN H-50 LongLived Batteryless; do
    grep -q "$policy" "$tmp/zoo_a.txt" \
        || { echo "zoo compare table is missing $policy"; exit 1; }
done

echo "==> chaos smoke run (fault injection, fixed seed)"
# The drill must be deterministic (two runs agree byte for byte) and
# always print a lifespan projection line for each scenario pair.
cargo run -q --release -p blam-cli -- chaos \
    --nodes 8 --days 3 --seed 7 --jobs 2 >"$tmp/chaos_a.txt"
cargo run -q --release -p blam-cli -- chaos \
    --nodes 8 --days 3 --seed 7 --jobs 4 >"$tmp/chaos_b.txt"
cmp "$tmp/chaos_a.txt" "$tmp/chaos_b.txt" \
    || { echo "chaos drill is not deterministic across --jobs"; exit 1; }
grep -q "min-lifespan delta under faults" "$tmp/chaos_a.txt" \
    || { echo "chaos drill did not report lifespan deltas"; exit 1; }

echo "==> perf gate smoke run (hot paths vs reference oracle)"
# Tiny scenario: asserts byte-identical RunResults between the
# optimized engine and the in-repo reference implementation (the gate
# binary aborts on any divergence) and writes the schema-versioned
# benchmark record next to the other smoke artifacts. The 1.3x speedup
# gate itself only runs on full-size invocations (no --smoke).
cargo run -q --release -p blam-bench --bin perf_gate -- \
    --smoke --jobs 2 --out "$tmp/BENCH_netsim.json"
test -s "$tmp/BENCH_netsim.json" || { echo "BENCH_netsim.json is empty"; exit 1; }
grep -q '"schema_version"' "$tmp/BENCH_netsim.json" \
    || { echo "BENCH_netsim.json missing schema_version"; exit 1; }
grep -q '"parity": "byte-identical"' "$tmp/BENCH_netsim.json" \
    || { echo "BENCH_netsim.json missing parity attestation"; exit 1; }

echo "==> sharded scale smoke run (shard/job invariance + RSS envelope)"
# 10k nodes across 8 cells with one dissemination barrier: the sharded
# engine must produce byte-identical serialized results whatever the
# shard grouping and worker count, and the SoA node store must keep the
# run's peak RSS inside a loose envelope (the 100k/1M recipes in
# EXPERIMENTS.md scale linearly from this point).
cargo run -q --release -p blam-cli -- scale \
    --nodes 10000 --gateways 8 --days 2 --seed 42 --shards 2 --jobs 2 \
    --out "$tmp/scale_sharded.json" 2>"$tmp/scale.log"
cargo run -q --release -p blam-cli -- scale \
    --nodes 10000 --gateways 8 --days 2 --seed 42 --shards 1 --jobs 1 \
    --out "$tmp/scale_mono.json" 2>/dev/null
cmp "$tmp/scale_sharded.json" "$tmp/scale_mono.json" \
    || { echo "scale run diverged between --shards 2 and --shards 1"; exit 1; }
# Platforms without /proc VmHWM report "peak RSS null" instead of a
# number — that is the contract (no garbage, no panic); the envelope
# check only applies where a real high-water mark exists.
rss_line="$(grep -o '\[peak RSS [^]]*\]' "$tmp/scale.log" || true)"
test -n "$rss_line" || { echo "scale run did not report peak RSS"; exit 1; }
case "$rss_line" in
    *'peak RSS null'*)
        echo "    (VmHWM unavailable on this platform; RSS envelope check skipped)" ;;
    *)
        rss_mib="$(sed -n 's/.*\[peak RSS \([0-9]*\)\(\.[0-9]*\)\? MiB.*/\1/p' "$tmp/scale.log")"
        test -n "$rss_mib" || { echo "unparseable peak RSS line: $rss_line"; exit 1; }
        test "$rss_mib" -le 1024 \
            || { echo "scale smoke peak RSS ${rss_mib} MiB exceeds the 1 GiB envelope"; exit 1; } ;;
esac

echo "==> serve smoke run (daemon, campaign over HTTP, live tail)"
# An ephemeral-port daemon serves a tiny 2-job campaign end to end:
# submit over HTTP (the std::net client behind the submit/tail
# subcommands), live-tail one job's NDJSON telemetry, shut down
# cleanly, and leave a spool with one result per job.
cargo run -q --release -p blam-cli -- serve --spool "$tmp/spool" \
    >"$tmp/serve_addr.txt" 2>"$tmp/serve.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 150); do
    [ -s "$tmp/spool/daemon.addr" ] && break
    sleep 0.2
done
addr="$(cat "$tmp/spool/daemon.addr")"
test -n "$addr" || { echo "daemon never wrote daemon.addr"; exit 1; }

base_json="$(cargo run -q --release -p blam-cli -- template --nodes 3 --days 1 --seed 1)"
printf '{"name":"smoke","base":%s,"axes":[],"seeds":[11,12]}' "$base_json" \
    >"$tmp/spec.json"
cargo run -q --release -p blam-cli -- submit --addr "$addr" \
    --spec "$tmp/spec.json" >"$tmp/submit.json"
job_id="$(sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p' "$tmp/submit.json" | head -n 1)"
test -n "$job_id" || { echo "submit reply carried no job id"; exit 1; }

# tail blocks until the job finishes and its buffer closes.
cargo run -q --release -p blam-cli -- tail --addr "$addr" \
    --job "$job_id" >"$tmp/tail.ndjson"
test -s "$tmp/tail.ndjson" || { echo "live tail was empty"; exit 1; }
while IFS= read -r line; do
    case "$line" in
        '{'*'}') ;;
        *) echo "non-JSONL tail line: $line"; exit 1 ;;
    esac
done <"$tmp/tail.ndjson"

cargo run -q --release -p blam-cli -- shutdown --addr "$addr" >/dev/null
wait "$serve_pid" || { echo "daemon exited uncleanly"; exit 1; }
results="$(ls "$tmp/spool/campaigns/smoke/results/"*.json 2>/dev/null | wc -l)"
test "$results" -eq 2 \
    || { echo "expected 2 spooled results, found $results"; exit 1; }

echo "==> crash drill (epoch snapshots, SIGKILL daemon recovery)"
# In-process legs: single-engine kills at epochs 1..3, a sharded kill
# resumed under a different worker layout, torn-snapshot quarantine.
cargo run -q --release -p blam-cli -- crash-drill --nodes 12 --seed 7 \
    || { echo "crash drill legs failed"; exit 1; }

# Daemon leg: SIGKILL a live serve daemon mid-campaign, restart it on
# the same spool, and byte-compare the recovered spool against an
# uninterrupted in-process run of the same spec.
drill_base="$(cargo run -q --release -p blam-cli -- template --nodes 10 --days 2 --seed 5)"
printf '{"name":"drill","base":%s,"axes":[],"seeds":[21,22]}' "$drill_base" \
    >"$tmp/drill_spec.json"
cargo run -q --release -p blam-cli -- campaign --spec "$tmp/drill_spec.json" \
    --spool "$tmp/ref" --jobs 1 >/dev/null

cargo run -q --release -p blam-cli -- serve --spool "$tmp/drill" \
    >/dev/null 2>"$tmp/drill_serve.log" &
drill_pid=$!
trap 'kill "$serve_pid" "$drill_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 150); do
    [ -s "$tmp/drill/daemon.addr" ] && break
    sleep 0.2
done
drill_addr="$(cat "$tmp/drill/daemon.addr")"
test -n "$drill_addr" || { echo "drill daemon never wrote daemon.addr"; exit 1; }
cargo run -q --release -p blam-cli -- submit --addr "$drill_addr" \
    --spec "$tmp/drill_spec.json" >/dev/null

# The kill is a true SIGKILL — no handlers, no cleanup; crash safety
# comes from atomic writes and the epoch snapshots alone.
sleep 0.5
kill -9 "$drill_pid" 2>/dev/null || true
wait "$drill_pid" 2>/dev/null || true
rm -f "$tmp/drill/daemon.addr"

cargo run -q --release -p blam-cli -- serve --spool "$tmp/drill" \
    >/dev/null 2>>"$tmp/drill_serve.log" &
drill_pid=$!
trap 'kill "$serve_pid" "$drill_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 300); do
    drill_done="$(ls "$tmp/drill/campaigns/drill/results/"*.json 2>/dev/null | wc -l)"
    [ "$drill_done" -eq 2 ] && break
    sleep 0.2
done
test "$drill_done" -eq 2 \
    || { echo "resumed campaign never completed ($drill_done/2 results)"; exit 1; }
for _ in $(seq 1 150); do
    [ -s "$tmp/drill/daemon.addr" ] && break
    sleep 0.2
done
cargo run -q --release -p blam-cli -- shutdown \
    --addr "$(cat "$tmp/drill/daemon.addr")" >/dev/null
wait "$drill_pid" || { echo "restarted daemon exited uncleanly"; exit 1; }

cmp -s "$tmp/ref/manifest.json" "$tmp/drill/campaigns/drill/manifest.json" \
    || { echo "recovered manifest diverged from uninterrupted run"; exit 1; }
for f in "$tmp/ref/results/"*.json; do
    cmp -s "$f" "$tmp/drill/campaigns/drill/results/$(basename "$f")" \
        || { echo "recovered result $(basename "$f") diverged"; exit 1; }
done

echo "All checks passed."
