#!/usr/bin/env python3
"""Render the JSON outputs in target/experiments/ as matplotlib figures.

Usage:
    python3 scripts/plot_experiments.py [--dir target/experiments] [--out plots]

Produces one PNG per recognized experiment (fig2, fig4–fig8, wb_sweep,
temperature_sweep). Requires matplotlib; everything else in the repo is
pure Rust — this script is an optional convenience for papers/slides.
"""

import argparse
import json
import pathlib
import sys


def load(dirpath: pathlib.Path, name: str):
    p = dirpath / f"{name}.json"
    if not p.exists():
        return None
    with open(p) as f:
        return json.load(f)


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--dir", default="target/experiments")
    ap.add_argument("--out", default="plots")
    args = ap.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not installed; nothing to do", file=sys.stderr)
        return 1

    src = pathlib.Path(args.dir)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    made = []

    fig2 = load(src, "fig2")
    if fig2:
        plt.figure(figsize=(5, 3.2))
        years = [r["years"] for r in fig2]
        for key, label in [
            ("median_calendar", "calendar aging"),
            ("median_cycle", "cycle aging"),
            ("median_total", "total degradation"),
        ]:
            plt.plot(years, [r[key] for r in fig2], label=label)
        plt.xlabel("years")
        plt.ylabel("degradation")
        plt.legend()
        plt.title("Fig. 2 — degradation decomposition (median node)")
        plt.tight_layout()
        plt.savefig(out / "fig2.png", dpi=150)
        plt.close()
        made.append("fig2")

    fig4 = load(src, "fig4")
    if fig4:
        plt.figure(figsize=(6, 3.2))
        width = 0.8 / len(fig4)
        for i, row in enumerate(fig4):
            hist = row["nodes_per_window"][:8]
            xs = [w + 1 + (i - len(fig4) / 2) * width for w in range(len(hist))]
            plt.bar(xs, hist, width=width, label=row["protocol"])
        plt.xlabel("majority forecast window")
        plt.ylabel("nodes")
        plt.legend()
        plt.title("Fig. 4 — forecast window selection")
        plt.tight_layout()
        plt.savefig(out / "fig4.png", dpi=150)
        plt.close()
        made.append("fig4")

    fig5 = load(src, "fig5")
    if fig5:
        fig, axes = plt.subplots(1, 3, figsize=(10, 3.2))
        labels = [r["protocol"] for r in fig5]
        axes[0].bar(labels, [r["avg_retx"] for r in fig5])
        axes[0].set_title("(a) avg RETX")
        axes[1].bar(labels, [r["total_tx_energy_eq6_joules"] / 1e3 for r in fig5])
        axes[1].set_title("(b) TX energy [kJ]")
        axes[2].boxplot(
            [
                [r["degradation_min"], r["degradation_p25"], r["degradation_median"],
                 r["degradation_p75"], r["degradation_max"]]
                for r in fig5
            ],
            tick_labels=labels,
        )
        axes[2].set_title("(c) degradation")
        fig.suptitle("Fig. 5 — θ sweep")
        fig.tight_layout()
        fig.savefig(out / "fig5.png", dpi=150)
        plt.close(fig)
        made.append("fig5")

    fig6 = load(src, "fig6")
    if fig6:
        fig, axes = plt.subplots(1, 3, figsize=(10, 3.2))
        labels = [r["protocol"] for r in fig6]
        axes[0].bar(labels, [r["avg_utility"] for r in fig6])
        axes[0].set_title("(a) avg utility")
        axes[1].bar(labels, [100 * r["prr"] for r in fig6])
        axes[1].set_title("(b) PRR [%]")
        axes[2].bar(labels, [r["avg_latency_delivered_secs"] for r in fig6])
        axes[2].set_title("(c) latency [s]")
        fig.suptitle("Fig. 6 — θ sweep")
        fig.tight_layout()
        fig.savefig(out / "fig6.png", dpi=150)
        plt.close(fig)
        made.append("fig6")

    fig7 = load(src, "fig7")
    if fig7:
        plt.figure(figsize=(5.5, 3.2))
        for series in fig7:
            xs = [p[0] for p in series["monthly_max"]]
            ys = [p[1] for p in series["monthly_max"]]
            plt.plot(xs, ys, label=series["protocol"])
        plt.axhline(0.2, linestyle="--", linewidth=0.8, color="gray")
        plt.text(0.1, 0.202, "EoL")
        plt.xlabel("years")
        plt.ylabel("max degradation")
        plt.legend()
        plt.title("Fig. 7 — max degradation per month")
        plt.tight_layout()
        plt.savefig(out / "fig7.png", dpi=150)
        plt.close()
        made.append("fig7")

    fig8 = load(src, "fig8")
    if fig8:
        plt.figure(figsize=(4, 3.2))
        plt.bar([r["protocol"] for r in fig8], [r["lifespan_days"] for r in fig8])
        plt.ylabel("network battery lifespan [days]")
        plt.title("Fig. 8 — lifespan")
        plt.tight_layout()
        plt.savefig(out / "fig8.png", dpi=150)
        plt.close()
        made.append("fig8")

    wb = load(src, "wb_sweep")
    if wb:
        plt.figure(figsize=(5, 3.2))
        plt.plot([r["w_b"] for r in wb], [r["avg_latency_delivered_secs"] for r in wb], "o-", label="latency [s]")
        plt.plot([r["w_b"] for r in wb], [100 * r["avg_retx"] for r in wb], "s-", label="RETX × 100")
        plt.xlabel("w_b")
        plt.legend()
        plt.title("w_b sweep")
        plt.tight_layout()
        plt.savefig(out / "wb_sweep.png", dpi=150)
        plt.close()
        made.append("wb_sweep")

    temp = load(src, "temperature_sweep")
    if temp:
        plt.figure(figsize=(5, 3.2))
        xs = [r["celsius"] for r in temp]
        plt.plot(xs, [r["lorawan_degradation"] for r in temp], "o-", label="LoRaWAN")
        plt.plot(xs, [r["h50_degradation"] for r in temp], "s-", label="H-50")
        plt.xlabel("battery temperature [°C]")
        plt.ylabel("mean degradation")
        plt.legend()
        plt.title("temperature sweep")
        plt.tight_layout()
        plt.savefig(out / "temperature_sweep.png", dpi=150)
        plt.close()
        made.append("temperature_sweep")

    print(f"wrote {len(made)} figures to {out}/: {', '.join(made) or 'none'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
