#!/usr/bin/env bash
# Fast pre-push gate: formatting plus a scoped analyzer run over just
# the files this push touches (`--changed-only` keeps the whole-repo
# call-graph model, so interprocedural lints still see every caller).
#
# Install:  ln -s ../../scripts/pre-push.sh .git/hooks/pre-push
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> blam-analyze --changed-only"
# Diff against the upstream branch when one is set, else the parent
# commit (first push of a fresh clone / detached head).
base="$(git rev-parse --verify --quiet '@{upstream}' || true)"
base="${base:-$(git rev-parse --verify --quiet HEAD~1 || true)}"
if [ -z "$base" ]; then
    # Root commit with no upstream: scan everything.
    exec cargo run -q --release -p blam-analyzer --bin blam-analyze
fi
git diff --name-only "$base" HEAD -- '*.rs' \
    | cargo run -q --release -p blam-analyzer --bin blam-analyze -- --changed-only -
