//! Library-level example: size a solar panel + battery for one node and
//! study how the charge threshold θ trades winter robustness against
//! battery degradation — without running the network simulator.
//!
//! ```text
//! cargo run --release --example solar_sizing
//! ```

use lpwan_blam::battery::{Battery, PowerSwitch};
use lpwan_blam::harvest::{HarvestSource, SolarModel};
use lpwan_blam::phy::{Bandwidth, CodingRate, RadioPowerModel, SpreadingFactor, TxConfig};
use lpwan_blam::units::{Celsius, Duration, SimTime, Watts};
use rand::SeedableRng;

fn main() {
    // --- The node -------------------------------------------------------
    let radio = RadioPowerModel::sx1276();
    let tx_cfg = TxConfig::new(SpreadingFactor::Sf10, Bandwidth::Khz125, CodingRate::Cr4_5);
    let payload = 10 + 13; // app payload + LoRaWAN overhead
    let tx_energy = radio.tx_energy(&tx_cfg, payload);
    let period = Duration::from_mins(30);
    let sleep = Watts::from_milliwatts(0.01) + radio.sleep_power_draw();

    let packets_per_day = 86_400.0 / period.as_secs_f64();
    let daily = sleep * Duration::from_days(1) + tx_energy * packets_per_day;
    let capacity = daily * 2.0;
    println!("Per-packet TX energy : {tx_energy}");
    println!("Daily energy budget  : {daily}");
    println!("Battery capacity     : {capacity}  (2 days of operation)");

    // --- The panel: peak power sustains 2 transmissions per minute ------
    let window = Duration::from_mins(1);
    let peak = Watts(2.0 * tx_energy.0 / window.as_secs_f64());
    println!("Panel peak power     : {peak}  (2 transmissions per forecast window)\n");

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let trace = SolarModel {
        peak_power: peak,
        start_day_of_year: 355, // deep winter
        ..SolarModel::default()
    }
    .generate(60, Duration::from_mins(5), &mut rng);

    // --- Sweep θ over a hard winter --------------------------------------
    println!(
        "{:<6} {:>12} {:>14} {:>16}",
        "θ", "brownouts", "min SoC", "degradation"
    );
    for theta in [0.05, 0.25, 0.5, 0.75, 1.0] {
        let mut battery = Battery::new(capacity, theta, Celsius(25.0));
        let switch = PowerSwitch::new(theta);
        let mut brownouts = 0u32;
        let mut min_soc: f64 = 1.0;
        let mut t = SimTime::ZERO;
        let step = Duration::from_mins(30);
        let horizon = SimTime::ZERO + Duration::from_days(60);
        while t < horizon {
            let next = t + step;
            let harvested = trace.energy_between(t, next);
            let demand = sleep * step + tx_energy; // one packet per period
            let out = switch.step(next, &mut battery, harvested, demand);
            if !out.satisfied() {
                brownouts += 1;
            }
            min_soc = min_soc.min(battery.soc());
            t = next;
        }
        let degradation = battery.refresh_degradation(horizon);
        println!("{theta:<6.2} {brownouts:>12} {min_soc:>14.3} {degradation:>16.6}");
    }

    println!(
        "\nLow θ minimizes calendar aging but cannot bridge dark winter days; \
         θ ≈ 0.5 keeps the node alive\nat roughly two-thirds of the degradation \
         of an always-full battery — the paper's H-50 setting."
    );
}
