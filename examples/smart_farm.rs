//! Smart-farm scenario: the workload class the paper's introduction
//! motivates.
//!
//! 150 soil/climate sensors spread over a 5 km farm report every
//! 20–40 minutes. The farm plans a 10+ year deployment and wants to
//! know how long the first battery lasts under each MAC, so we simulate
//! a full year and project time-to-EoL from the observed degradation
//! trend.
//!
//! ```text
//! cargo run --release --example smart_farm
//! ```

use lpwan_blam::battery::project_eol;
use lpwan_blam::netsim::{config::Protocol, Scenario};
use lpwan_blam::units::Duration;

fn main() {
    let nodes = 150;
    let seed = 2024;
    println!("Smart farm: {nodes} sensors, 20-40 min reporting, one year simulated\n");
    println!(
        "{:<8} {:>7} {:>9} {:>10} {:>14} {:>22}",
        "MAC", "PRR", "utility", "RETX", "max deg./yr", "projected lifespan"
    );

    for protocol in [Protocol::Lorawan, Protocol::h(0.5), Protocol::h50c()] {
        let mut scenario = Scenario::large_scale(nodes, protocol, seed)
            .with_duration(Duration::from_days(365))
            .with_sample_interval(Duration::from_days(30));
        scenario.config.period_min = Duration::from_mins(20);
        scenario.config.period_max = Duration::from_mins(40);
        let result = scenario.run();

        // Project when the worst battery reaches End of Life from the
        // monthly maximum-degradation trend.
        let trend: Vec<_> = result
            .samples
            .iter()
            .map(|s| (s.at, s.max_total()))
            .collect();
        let projected = project_eol(&trend).map_or("beyond horizon".to_string(), |t| {
            format!("{:.1} years", t.as_years_f64())
        });

        println!(
            "{:<8} {:>6.1}% {:>9.3} {:>10.2} {:>14.5} {:>22}",
            result.label,
            100.0 * result.network.prr,
            result.network.avg_utility,
            result.network.avg_retx,
            result.network.degradation.max,
            projected,
        );
    }

    println!(
        "\nH-50C (charge cap only) already stretches the lifespan; full H-50 \
         additionally cuts retransmissions\nby steering reports into \
         uncrowded, sun-lit forecast windows."
    );
}
