//! Wildlife-monitoring scenario: extremely delay-tolerant sensing.
//!
//! Camera-trap/track sensors report hourly; data stays useful for tens
//! of minutes, so we give the protocol a *plateau* utility curve (full
//! utility for the first 10 windows) and a strong degradation weight.
//! This shows how the protocol exploits delay tolerance: with a plateau
//! utility, deferring into sunny windows is free, so battery impact
//! drops further at zero utility cost.
//!
//! ```text
//! cargo run --release --example wildlife_monitor
//! ```

use lpwan_blam::netsim::{config::Protocol, Scenario};
use lpwan_blam::protocol::utility::Utility;
use lpwan_blam::protocol::BlamConfig;
use lpwan_blam::units::Duration;

fn main() {
    let nodes = 80;
    let seed = 7;
    println!("Wildlife monitor: {nodes} sensors, hourly reports, 120 days\n");
    println!(
        "{:<22} {:>7} {:>9} {:>11} {:>12}",
        "configuration", "PRR", "utility", "latency", "mean deg."
    );

    let linear = BlamConfig::h(0.5);
    let plateau = BlamConfig::h(0.5).with_utility(Utility::Plateau {
        plateau_windows: 10,
    });

    for (name, protocol) in [
        ("LoRaWAN".to_string(), Protocol::Lorawan),
        ("H-50 (linear utility)".to_string(), Protocol::Blam(linear)),
        (
            "H-50 (plateau utility)".to_string(),
            Protocol::Blam(plateau),
        ),
    ] {
        let mut scenario = Scenario::large_scale(nodes, protocol, seed)
            .with_duration(Duration::from_days(120))
            .with_sample_interval(Duration::from_days(15));
        scenario.config.period_min = Duration::from_mins(60);
        scenario.config.period_max = Duration::from_mins(60);
        let result = scenario.run();
        println!(
            "{:<22} {:>6.1}% {:>9.3} {:>10.1}s {:>12.5}",
            name,
            100.0 * result.network.prr,
            result.network.avg_utility,
            result.network.avg_latency_delivered_secs,
            result.network.degradation.mean,
        );
    }

    println!(
        "\nWith a plateau utility the first ten minutes of delay cost nothing, \
         so nodes chase green energy\nmore freely — lower degradation at \
         unchanged application-level utility."
    );
}
