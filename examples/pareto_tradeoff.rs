//! Explore the battery-lifespan / data-utility Pareto front of the
//! paper's clairvoyant formulation (§III-A) on a small instance.
//!
//! The bi-objective program trades maximum degradation against minimum
//! utility; the weighted-sum solver picks single points, while
//! `pareto_front` exposes the whole frontier — including where the
//! on-sensor heuristic lands relative to it.
//!
//! ```text
//! cargo run --release --example pareto_tradeoff
//! ```

use lpwan_blam::protocol::clairvoyant::{ClairvoyantNode, ClairvoyantProblem};
use lpwan_blam::units::{Celsius, Duration, Joules};

fn main() {
    // Three nodes, two 6-slot periods; sun arrives mid-period.
    let slots = 12;
    let mut green = vec![Joules(0.0); slots];
    for sunny in [2, 3, 8, 9] {
        green[sunny] = Joules(0.09);
    }
    let problem = ClairvoyantProblem {
        slots,
        slot_length: Duration::from_mins(1),
        omega: 1,
        nodes: (0..3)
            .map(|i| ClairvoyantNode {
                period_slots: 6,
                tx_energy: Joules(0.05),
                sleep_energy: Joules(0.0005),
                green: green.clone(),
                battery_capacity: Joules(1.0),
                initial_soc: 0.3 + 0.15 * i as f64,
                theta: 0.5,
            })
            .collect(),
        temperature: Celsius(25.0),
    };

    println!(
        "clairvoyant instance: {} schedules, ω = {}\n",
        problem.search_space(),
        problem.omega
    );

    let front = problem.pareto_front(1 << 24);
    println!("Pareto front ({} points):", front.len());
    println!("{:>14} {:>13}   schedule", "max deg.", "min utility");
    for (assignment, eval) in &front {
        println!(
            "{:>14.6e} {:>13.3}   {:?}",
            eval.max_degradation, eval.min_utility, assignment.0
        );
    }

    // Where do the weighted-sum optima land?
    println!("\nweighted-sum optima:");
    for lambda in [0.0, 0.5, 1.0] {
        let (_, eval) = problem
            .solve_exhaustive(lambda, 1 << 24)
            .expect("feasible instance");
        println!(
            "  λ = {lambda:3}: max deg. {:.6e}, min utility {:.3}",
            eval.max_degradation, eval.min_utility
        );
    }

    println!(
        "\nEvery λ lands on the front; sliding λ from 0 to 1 walks it from the \
         utility extreme to the\nlifespan extreme — the dial the paper's w_b \
         exposes in the online protocol."
    );
}
