//! Quickstart: battery lifespan-aware MAC vs. plain LoRaWAN.
//!
//! Runs a 60-node solar-powered LoRa network for a simulated month
//! under both protocols and prints the headline metrics side by side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lpwan_blam::netsim::{config::Protocol, Scenario};
use lpwan_blam::units::Duration;

fn main() {
    let nodes = 60;
    let days = 30;
    let seed = 42;

    println!("Simulating {nodes} solar-powered LoRa nodes for {days} days (seed {seed})\n");
    println!(
        "{:<8} {:>7} {:>9} {:>9} {:>8} {:>12} {:>12}",
        "MAC", "PRR", "utility", "latency", "RETX", "mean deg.", "max deg."
    );

    for protocol in [Protocol::Lorawan, Protocol::h(1.0), Protocol::h(0.5)] {
        let result = Scenario::large_scale(nodes, protocol, seed)
            .with_duration(Duration::from_days(days))
            .with_sample_interval(Duration::from_days(7))
            .run();
        println!(
            "{:<8} {:>6.1}% {:>9.3} {:>8.1}s {:>8.2} {:>12.5} {:>12.5}",
            result.label,
            100.0 * result.network.prr,
            result.network.avg_utility,
            result.network.avg_latency_delivered_secs,
            result.network.avg_retx,
            result.network.degradation.mean,
            result.network.degradation.max,
        );
    }

    println!(
        "\nH-50 caps every battery at 50% charge and shifts uplinks into \
         green-energy-rich forecast windows;\nthe lower mean degradation \
         compounds into years of extra battery lifespan (see the fig7/fig8 \
         experiments)."
    );
}
