//! Rainflow cycle counting over a state-of-charge trace.
//!
//! The degradation model attributes cycle aging to closed
//! charge-discharge cycles, identified with the rainflow algorithm the
//! paper cites from Xu et al. The four-point method implemented here is
//! equivalent to ASTM E1049: inner cycles are extracted as *full*
//! cycles, and whatever remains at the end of the trace (the residue) is
//! counted as *half* cycles.
//!
//! Two interfaces are provided:
//!
//! * [`rainflow_count`] — batch counting over a complete trace;
//! * [`StreamingRainflow`] — incremental counting with O(1) amortized
//!   cost per sample, which is what makes 15-year × 500-node
//!   simulations tractable. The paper's gateway performs the same
//!   computation from the compressed SoC traces nodes piggyback onto
//!   uplinks.

use serde::{Deserialize, Serialize};

/// One counted charge-discharge cycle.
///
/// # Examples
///
/// ```
/// use blam_battery::Cycle;
///
/// let c = Cycle::full(0.9, 0.5);
/// assert!((c.depth - 0.4).abs() < 1e-12);
/// assert!((c.mean_soc - 0.7).abs() < 1e-12);
/// assert_eq!(c.weight, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cycle {
    /// Cycle depth δ: difference between the extreme SoCs of the cycle.
    pub depth: f64,
    /// Mean SoC φ of the cycle: average of its two extremes.
    pub mean_soc: f64,
    /// Cycle weight η: 1.0 for a full (closed) cycle, 0.5 for a residue
    /// half cycle.
    pub weight: f64,
}

impl Cycle {
    /// A full cycle between two SoC extremes (order irrelevant).
    #[must_use]
    pub fn full(from: f64, to: f64) -> Self {
        Cycle {
            depth: (from - to).abs(),
            mean_soc: f64::midpoint(from, to),
            weight: 1.0,
        }
    }

    /// A residue half cycle between two SoC extremes.
    #[must_use]
    pub fn half(from: f64, to: f64) -> Self {
        Cycle {
            weight: 0.5,
            ..Cycle::full(from, to)
        }
    }
}

/// Incremental rainflow counter.
///
/// Feed SoC samples with [`push`](StreamingRainflow::push); closed
/// cycles are returned as soon as they can be extracted. The residue —
/// turning points not yet part of a closed cycle — is available at any
/// time as half cycles via
/// [`residue_half_cycles`](StreamingRainflow::residue_half_cycles).
///
/// # Examples
///
/// ```
/// use blam_battery::StreamingRainflow;
///
/// let mut rf = StreamingRainflow::new();
/// let mut closed = Vec::new();
/// for soc in [0.5, 1.0, 0.2, 0.9, 0.6, 0.8, 0.1] {
///     closed.extend(rf.push(soc));
/// }
/// // The inner 0.6↔0.8 excursion closes, which in turn closes the
/// // enclosing 0.2↔0.9 cycle.
/// assert_eq!(closed.len(), 2);
/// assert!((closed[0].depth - 0.2).abs() < 1e-12);
/// assert!((closed[1].depth - 0.7).abs() < 1e-12);
/// assert!(!rf.residue_half_cycles().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingRainflow {
    /// Turning points not yet consumed by a closed cycle.
    stack: Vec<f64>,
    /// The most recent raw sample (may extend the last turning point).
    last: Option<f64>,
    /// Number of full cycles extracted so far.
    closed_count: u64,
}

impl StreamingRainflow {
    /// Creates an empty counter.
    #[must_use]
    pub fn new() -> Self {
        StreamingRainflow::default()
    }

    /// Feeds one SoC sample and returns any cycles that closed.
    ///
    /// Consecutive samples moving in the same direction are merged into
    /// a single excursion, so callers may push every sample they have —
    /// only turning points enter the counting stack.
    pub fn push(&mut self, soc: f64) -> Vec<Cycle> {
        debug_assert!(soc.is_finite(), "SoC sample must be finite");
        let Some(last) = self.last else {
            self.last = Some(soc);
            self.stack.push(soc);
            return Vec::new();
        };
        if soc == last {
            return Vec::new();
        }
        self.last = Some(soc);

        // Direction of travel from the previous committed turning point.
        let n = self.stack.len();
        if n >= 2 {
            let prev_dir = self.stack[n - 1] > self.stack[n - 2];
            let new_dir = soc > self.stack[n - 1];
            if prev_dir == new_dir {
                // Same direction: the previous sample was not a turning
                // point after all; extend the current excursion.
                self.stack[n - 1] = soc;
                return self.extract();
            }
        }
        self.stack.push(soc);
        self.extract()
    }

    /// Runs the four-point extraction on the tail of the stack.
    fn extract(&mut self) -> Vec<Cycle> {
        let mut out = Vec::new();
        while self.stack.len() >= 4 {
            let n = self.stack.len();
            let (a, b, c, d) = (
                self.stack[n - 4],
                self.stack[n - 3],
                self.stack[n - 2],
                self.stack[n - 1],
            );
            let inner = (c - b).abs();
            if inner <= (b - a).abs() && inner <= (d - c).abs() {
                out.push(Cycle::full(b, c));
                self.closed_count += 1;
                self.stack.remove(n - 3);
                self.stack.remove(n - 3);
            } else {
                break;
            }
        }
        out
    }

    /// The residue as half cycles: one per adjacent pair of unconsumed
    /// turning points.
    #[must_use]
    pub fn residue_half_cycles(&self) -> Vec<Cycle> {
        let mut out = Vec::with_capacity(self.stack.len().saturating_sub(1));
        self.for_each_residue(|c| out.push(c));
        out
    }

    /// Visits the residue half cycles in stack order without
    /// allocating. This is the fold behind
    /// [`residue_half_cycles`](Self::residue_half_cycles); callers that
    /// only need an aggregate (e.g. the degradation tracker summing
    /// per-cycle damage every query) use it to keep the hot path off
    /// the allocator. Visit order is identical to the Vec order, so
    /// any left-fold over the two is bit-identical.
    pub fn for_each_residue<F: FnMut(Cycle)>(&self, mut f: F) {
        for w in self.stack.windows(2) {
            f(Cycle::half(w[0], w[1]));
        }
    }

    /// Number of full cycles extracted so far.
    #[must_use]
    pub fn closed_count(&self) -> u64 {
        self.closed_count
    }

    /// Current size of the residue stack (diagnostic; stays small in
    /// practice).
    #[must_use]
    pub fn residue_len(&self) -> usize {
        self.stack.len()
    }
}

/// Batch rainflow count over a complete SoC trace.
///
/// Returns all full cycles followed by the residue half cycles.
///
/// # Examples
///
/// ```
/// use blam_battery::rainflow_count;
///
/// // Three identical daily cycles: 2 close fully, the edges remain as
/// // half cycles.
/// let cycles = rainflow_count(&[0.5, 1.0, 0.5, 1.0, 0.5, 1.0, 0.5]);
/// let total: f64 = cycles.iter().map(|c| c.weight).sum();
/// assert!((total - 3.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn rainflow_count(trace: &[f64]) -> Vec<Cycle> {
    let mut rf = StreamingRainflow::new();
    let mut cycles = Vec::new();
    for &s in trace {
        cycles.extend(rf.push(s));
    }
    cycles.extend(rf.residue_half_cycles());
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_count(cycles: &[Cycle]) -> f64 {
        cycles.iter().map(|c| c.weight).sum()
    }

    #[test]
    fn empty_and_singleton_traces() {
        assert!(rainflow_count(&[]).is_empty());
        assert!(rainflow_count(&[0.5]).is_empty());
    }

    #[test]
    fn monotone_trace_is_one_half_cycle() {
        let cycles = rainflow_count(&[0.1, 0.2, 0.5, 0.9]);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].weight, 0.5);
        assert!((cycles[0].depth - 0.8).abs() < 1e-12);
        assert!((cycles[0].mean_soc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_excursion_is_two_half_cycles() {
        let cycles = rainflow_count(&[0.2, 0.8, 0.2]);
        assert_eq!(cycles.len(), 2);
        assert!(cycles.iter().all(|c| c.weight == 0.5));
        assert!(cycles.iter().all(|c| (c.depth - 0.6).abs() < 1e-12));
        assert!((weighted_count(&cycles) - 1.0).abs() < 1e-12);
    }

    /// The classic ASTM E1049 worked example. Expected counts by range:
    /// 3: one half; 4: one full + one half; 6: one half; 8: two halves;
    /// 9: one half.
    #[test]
    fn astm_e1049_example() {
        let trace = [-2.0, 1.0, -3.0, 5.0, -1.0, 3.0, -4.0, 4.0, -2.0];
        let cycles = rainflow_count(&trace);
        let full: Vec<_> = cycles.iter().filter(|c| c.weight == 1.0).collect();
        let half: Vec<_> = cycles.iter().filter(|c| c.weight == 0.5).collect();
        assert_eq!(full.len(), 1);
        assert!((full[0].depth - 4.0).abs() < 1e-12);
        assert!((full[0].mean_soc - 1.0).abs() < 1e-12);
        let mut half_ranges: Vec<f64> = half.iter().map(|c| c.depth).collect();
        half_ranges.sort_by(f64::total_cmp);
        assert_eq!(half_ranges, vec![3.0, 4.0, 6.0, 8.0, 8.0, 9.0]);
        assert!((weighted_count(&cycles) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sawtooth_counts_one_cycle_per_tooth() {
        // n identical teeth = n cycle-equivalents (full + residue halves).
        for n in 1..8u32 {
            let mut trace = vec![0.0];
            for _ in 0..n {
                trace.push(1.0);
                trace.push(0.0);
            }
            let cycles = rainflow_count(&trace);
            assert!(
                (weighted_count(&cycles) - f64::from(n)).abs() < 1e-12,
                "sawtooth with {n} teeth"
            );
            assert!(cycles.iter().all(|c| (c.depth - 1.0).abs() < 1e-12));
        }
    }

    #[test]
    fn repeated_samples_are_ignored() {
        let a = rainflow_count(&[0.5, 0.5, 1.0, 1.0, 0.2, 0.2]);
        let b = rainflow_count(&[0.5, 1.0, 0.2]);
        assert_eq!(a, b);
    }

    #[test]
    fn monotone_runs_merge() {
        let a = rainflow_count(&[0.1, 0.3, 0.5, 0.9, 0.6, 0.4, 0.2]);
        let b = rainflow_count(&[0.1, 0.9, 0.2]);
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_matches_batch() {
        // Deterministic pseudo-random walk.
        let mut x = 0.5f64;
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut trace = vec![x];
        for _ in 0..500 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let step = ((seed % 2001) as f64 / 1000.0) - 1.0;
            x = (x + step * 0.2).clamp(0.0, 1.0);
            trace.push(x);
        }
        let batch = rainflow_count(&trace);

        let mut rf = StreamingRainflow::new();
        let mut streamed = Vec::new();
        for &s in &trace {
            streamed.extend(rf.push(s));
        }
        streamed.extend(rf.residue_half_cycles());
        assert_eq!(batch, streamed);
    }

    #[test]
    fn residue_stack_stays_bounded_on_periodic_input() {
        // A 15-year daily cycle must not accumulate turning points.
        let mut rf = StreamingRainflow::new();
        for day in 0..5_000u32 {
            let hi = 0.9 + f64::from(day % 7) * 0.01;
            rf.push(hi);
            rf.push(0.4);
        }
        assert!(
            rf.residue_len() < 32,
            "residue grew to {}",
            rf.residue_len()
        );
        assert!(rf.closed_count() > 4_000);
    }

    #[test]
    fn closed_cycles_are_inner_excursions() {
        let mut rf = StreamingRainflow::new();
        let mut closed = Vec::new();
        for s in [0.5, 1.0, 0.2, 0.9, 0.6, 0.8, 0.1] {
            closed.extend(rf.push(s));
        }
        // 0.6↔0.8 closes first; removing it closes 0.2↔0.9 too.
        assert_eq!(closed.len(), 2);
        assert!((closed[0].depth - 0.2).abs() < 1e-12);
        assert!((closed[0].mean_soc - 0.7).abs() < 1e-12);
        assert!((closed[1].depth - 0.7).abs() < 1e-12);
        assert!((closed[1].mean_soc - 0.55).abs() < 1e-12);
        // Residue: 0.5, 1.0, 0.1.
        assert_eq!(rf.residue_len(), 3);
    }

    #[test]
    fn residue_fold_matches_allocating_view() {
        // Differential: the non-allocating fold must visit exactly the
        // half cycles residue_half_cycles() materializes, in order,
        // at every point of a nontrivial trace.
        let mut rf = StreamingRainflow::new();
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut soc = 0.5f64;
        for _ in 0..300 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            soc = (soc + ((seed % 2001) as f64 / 1000.0 - 1.0) * 0.25).clamp(0.0, 1.0);
            let _ = rf.push(soc);
            let mut folded = Vec::new();
            rf.for_each_residue(|c| folded.push(c));
            assert_eq!(folded, rf.residue_half_cycles());
        }
        assert!(rf.residue_len() >= 2, "trace too tame to test the fold");
    }

    #[test]
    fn weighted_count_matches_discharge_events() {
        // Property: for any alternating trace the cycle-equivalents equal
        // the number of discharge excursions.
        let trace = [0.3, 0.7, 0.2, 0.8, 0.1, 0.9, 0.0];
        let cycles = rainflow_count(&trace);
        assert!((weighted_count(&cycles) - 3.0).abs() < 1e-12);
    }
}
