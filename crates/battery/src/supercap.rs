//! Supercapacitor buffering — the paper's stated future work.
//!
//! The paper's related work discusses hybrid power sources (its ref.
//! \[39\]) that put a supercapacitor in front of the battery to absorb
//! the frequent shallow charge–discharge activity, and leaves their
//! study as future work. This module provides that substrate: a
//! [`Supercap`] is an ideal small buffer with self-discharge (real
//! supercapacitors leak on the order of percent per day), cycled freely
//! — supercapacitors tolerate millions of cycles, so its own wear is
//! not modeled. Routed in front of the battery (`netsim` does this when
//! configured), it eliminates most transmission micro-cycles from the
//! battery's rainflow record.

use blam_units::{Duration, Joules, Watts};
use serde::{Deserialize, Serialize};

/// A small self-discharging energy buffer.
///
/// # Examples
///
/// ```
/// use blam_battery::Supercap;
/// use blam_units::{Duration, Joules, Watts};
///
/// let mut cap = Supercap::new(Joules(0.5), Watts::from_milliwatts(0.001));
/// assert_eq!(cap.charge(Joules(1.0)), Joules(0.5)); // clamps at capacity
/// let got = cap.discharge(Joules(0.2));
/// assert_eq!(got, Joules(0.2));
/// cap.leak(Duration::from_hours(10));
/// assert!(cap.stored() < Joules(0.3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Supercap {
    capacity: Joules,
    stored: Joules,
    leakage: Watts,
}

impl Supercap {
    /// Creates an empty supercapacitor.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive or `leakage` is negative.
    #[must_use]
    pub fn new(capacity: Joules, leakage: Watts) -> Self {
        assert!(capacity.0 > 0.0, "supercap capacity must be positive");
        assert!(leakage.0 >= 0.0, "leakage must be non-negative");
        Supercap {
            capacity,
            stored: Joules::ZERO,
            leakage,
        }
    }

    /// Usable capacity.
    #[must_use]
    pub fn capacity(&self) -> Joules {
        self.capacity
    }

    /// Energy currently buffered.
    #[must_use]
    pub fn stored(&self) -> Joules {
        self.stored
    }

    /// Fill level in `[0, 1]`.
    #[must_use]
    pub fn soc(&self) -> f64 {
        self.stored / self.capacity
    }

    /// Self-discharge over `elapsed`; returns the energy lost.
    pub fn leak(&mut self, elapsed: Duration) -> Joules {
        let loss = (self.leakage * elapsed).min(self.stored);
        self.stored -= loss;
        loss
    }

    /// Accepts up to `offered`, returning the amount stored.
    pub fn charge(&mut self, offered: Joules) -> Joules {
        debug_assert!(offered.0 >= 0.0);
        let accepted = (self.capacity - self.stored).max(Joules::ZERO).min(offered);
        self.stored += accepted;
        accepted
    }

    /// Draws up to `requested`, returning the amount delivered.
    pub fn discharge(&mut self, requested: Joules) -> Joules {
        debug_assert!(requested.0 >= 0.0);
        let delivered = self.stored.min(requested).max(Joules::ZERO);
        self.stored -= delivered;
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap() -> Supercap {
        Supercap::new(Joules(1.0), Watts::from_milliwatts(0.01))
    }

    #[test]
    fn starts_empty_and_clamps_at_capacity() {
        let mut c = cap();
        assert_eq!(c.stored(), Joules::ZERO);
        assert_eq!(c.charge(Joules(0.4)), Joules(0.4));
        assert_eq!(c.charge(Joules(0.8)), Joules(0.6));
        assert_eq!(c.stored(), Joules(1.0));
        assert!((c.soc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn discharge_clamps_at_empty() {
        let mut c = cap();
        c.charge(Joules(0.3));
        assert_eq!(c.discharge(Joules(0.5)), Joules(0.3));
        assert_eq!(c.discharge(Joules(0.1)), Joules::ZERO);
    }

    #[test]
    fn leakage_drains_over_time() {
        let mut c = cap();
        c.charge(Joules(0.5));
        // 0.01 mW × 10 h = 0.36 J.
        let lost = c.leak(Duration::from_hours(10));
        assert!((lost.0 - 0.36).abs() < 1e-9);
        assert!((c.stored().0 - 0.14).abs() < 1e-9);
        // Leak never goes negative.
        let lost = c.leak(Duration::from_days(10));
        assert!((lost.0 - 0.14).abs() < 1e-9);
        assert_eq!(c.stored(), Joules::ZERO);
    }

    #[test]
    fn energy_conserved_through_operations() {
        let mut c = cap();
        let put = c.charge(Joules(0.7));
        let leak = c.leak(Duration::from_hours(1));
        let got = c.discharge(Joules(1.0));
        assert!(((put - leak - got) - c.stored()).0.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Supercap::new(Joules(0.0), Watts::ZERO);
    }
}
