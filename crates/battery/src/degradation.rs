//! The paper's degradation equations (1)–(4) and an incremental tracker.
//!
//! * Calendar aging, Eq. (1): time × SoC stress × temperature stress.
//! * Cycle aging, Eq. (2): `Σ η·δ·φ·k6 × temperature stress` over
//!   rainflow-counted cycles.
//! * Linear degradation, Eq. (3): the sum of the two.
//! * Nonlinear degradation, Eq. (4): the SEI-film composite
//!   `1 − α·e^{−k·D_L} − (1−α)·e^{−D_L}`.

use blam_units::{Celsius, SimTime};
use serde::{Deserialize, Serialize};

use crate::chemistry::DegradationConstants;
use crate::rainflow::{Cycle, StreamingRainflow};

/// Calendar aging per Eq. (1):
/// `k1 · ζ · e^{k2(φ̄ − k3)} · e^{k4(T̄−k5)(273+k5)/(273+T̄)}`,
/// with `ζ` in seconds.
///
/// # Examples
///
/// ```
/// use blam_battery::degradation::calendar_aging;
/// use blam_battery::DegradationConstants;
/// use blam_units::Celsius;
///
/// let k = DegradationConstants::lmo();
/// let year = 365.25 * 86_400.0;
/// let at_half = calendar_aging(year, 0.5, Celsius(25.0), &k);
/// let at_full = calendar_aging(year, 1.0, Celsius(25.0), &k);
/// assert!(at_full > at_half); // storing full ages faster
/// ```
#[must_use]
pub fn calendar_aging(
    elapsed_secs: f64,
    avg_soc: f64,
    temp: Celsius,
    k: &DegradationConstants,
) -> f64 {
    k.time_stress_per_sec * elapsed_secs * k.soc_stress_factor(avg_soc) * k.temperature_stress(temp)
}

/// Cycle aging per Eq. (2): `Σ_i η_i · δ_i · φ_i · k6 · temp_stress`.
#[must_use]
pub fn cycle_aging<'a, I>(cycles: I, temp: Celsius, k: &DegradationConstants) -> f64
where
    I: IntoIterator<Item = &'a Cycle>,
{
    let stress = k.temperature_stress(temp);
    cycles.into_iter().map(|c| k.cycle_damage(c) * stress).sum()
}

/// The SEI-nonlinear composite of Eq. (4):
/// `D = 1 − α_sei·e^{−k·D_L} − (1 − α_sei)·e^{−D_L}`.
///
/// Maps linear degradation `D_L ∈ [0, ∞)` to the observable capacity
/// loss fraction `D ∈ [0, 1)`: fast early SEI formation, then a gentle
/// exponential.
#[must_use]
pub fn nonlinear_degradation(d_linear: f64, k: &DegradationConstants) -> f64 {
    1.0 - k.alpha_sei * (-k.k_sei * d_linear).exp() - (1.0 - k.alpha_sei) * (-d_linear).exp()
}

/// Inverts Eq. (4) by bisection: the linear degradation at which the
/// observable degradation reaches `target`.
///
/// # Panics
///
/// Panics if `target` is outside `[0, 1)`.
#[must_use]
pub fn linear_for_nonlinear(target: f64, k: &DegradationConstants) -> f64 {
    assert!(
        (0.0..1.0).contains(&target),
        "nonlinear degradation target must be in [0,1), got {target}"
    );
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while nonlinear_degradation(hi, k) < target {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = f64::midpoint(lo, hi);
        if nonlinear_degradation(mid, k) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    f64::midpoint(lo, hi)
}

/// A per-component view of a battery's degradation at some instant.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DegradationBreakdown {
    /// Calendar-aging contribution to the linear degradation, Eq. (1).
    pub calendar: f64,
    /// Cycle-aging contribution to the linear degradation, Eq. (2).
    pub cycle: f64,
    /// Linear degradation, Eq. (3) (= calendar + cycle).
    pub linear: f64,
    /// Observable (SEI-nonlinear) degradation, Eq. (4).
    pub total: f64,
}

/// Incrementally tracks a battery's degradation from SoC samples.
///
/// Feed `(time, SoC)` samples with [`record`](DegradationTracker::record)
/// whenever the battery charges or discharges; query the degradation at
/// any instant. Internally the tracker maintains
///
/// * a [`StreamingRainflow`] counter and the accumulated cycle-aging
///   damage of all *closed* cycles (O(1) amortized per sample), and
/// * a time-weighted SoC integral for the calendar term — the natural
///   continuous-time generalization of the paper's "average SoC across
///   all charge-discharge cycles" (the two coincide for symmetric
///   cycles; see DESIGN.md).
///
/// # Examples
///
/// ```
/// use blam_battery::DegradationTracker;
/// use blam_units::{Celsius, Duration, SimTime};
///
/// let mut t = DegradationTracker::new(Celsius(25.0));
/// t.record(SimTime::ZERO, 1.0);
/// let after = SimTime::ZERO + Duration::from_days(365);
/// let idle_full = t.degradation(after);
/// assert!(idle_full > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationTracker {
    constants: DegradationConstants,
    temperature: Celsius,
    rainflow: StreamingRainflow,
    /// Accumulated per-cycle damage of closed cycles (before the
    /// temperature multiplier), under the configured cycle-stress law.
    closed_damage: f64,
    /// ∫ soc dt in SoC·seconds.
    soc_integral: f64,
    first_sample: Option<SimTime>,
    last_sample: Option<(SimTime, f64)>,
    /// Service time accumulated before the simulation started (pre-aged
    /// batteries), in seconds.
    prior_secs: f64,
    /// ∫ soc dt accumulated before the simulation started.
    prior_soc_integral: f64,
}

impl DegradationTracker {
    /// Creates a tracker for a battery held at `temperature` (the paper
    /// assumes an insulated battery at a fixed 25 °C).
    #[must_use]
    pub fn new(temperature: Celsius) -> Self {
        DegradationTracker::with_constants(temperature, DegradationConstants::lmo())
    }

    /// Creates a tracker with custom degradation constants.
    #[must_use]
    pub fn with_constants(temperature: Celsius, constants: DegradationConstants) -> Self {
        DegradationTracker {
            constants,
            temperature,
            rainflow: StreamingRainflow::new(),
            closed_damage: 0.0,
            soc_integral: 0.0,
            first_sample: None,
            last_sample: None,
            prior_secs: 0.0,
            prior_soc_integral: 0.0,
        }
    }

    /// Creates a tracker for a battery that already served `age` at an
    /// average SoC of `avg_soc`, with `cycle_damage` accumulated
    /// cycle-aging damage (before temperature stress) — used to model
    /// mixed-age deployments, e.g. a replacement node joining a network
    /// of worn batteries.
    ///
    /// # Panics
    ///
    /// Panics if `avg_soc` is outside `[0, 1]` or `cycle_damage` is
    /// negative.
    #[must_use]
    pub fn with_prior_age(
        temperature: Celsius,
        constants: DegradationConstants,
        age: blam_units::Duration,
        avg_soc: f64,
        cycle_damage: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&avg_soc), "prior avg SoC in [0,1]");
        assert!(cycle_damage >= 0.0, "prior cycle damage must be ≥ 0");
        let mut t = DegradationTracker::with_constants(temperature, constants);
        t.prior_secs = age.as_secs_f64();
        t.prior_soc_integral = avg_soc * t.prior_secs;
        t.closed_damage = cycle_damage;
        t
    }

    /// The degradation constants in use.
    #[must_use]
    pub fn constants(&self) -> &DegradationConstants {
        &self.constants
    }

    /// The assumed battery temperature.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Records an SoC sample.
    ///
    /// Samples must be fed in non-decreasing time order; out-of-order
    /// samples are clamped to the last recorded instant.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `soc` is not within `[0, 1]` with a
    /// small tolerance.
    pub fn record(&mut self, at: SimTime, soc: f64) {
        debug_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&soc),
            "SoC out of range: {soc}"
        );
        let soc = soc.clamp(0.0, 1.0);
        if self.first_sample.is_none() {
            self.first_sample = Some(at);
        }
        if let Some((t0, s0)) = self.last_sample {
            let at = at.max(t0);
            let dt = (at - t0).as_secs_f64();
            self.soc_integral += f64::midpoint(s0, soc) * dt;
            self.last_sample = Some((at, soc));
        } else {
            self.last_sample = Some((at, soc));
        }
        for c in self.rainflow.push(soc) {
            self.closed_damage += self.constants.cycle_damage(&c);
        }
    }

    /// Time-weighted average SoC from the first sample to `at`
    /// (holding the last sample constant to `at`).
    ///
    /// Returns 0 before any sample has been recorded.
    #[must_use]
    pub fn average_soc(&self, at: SimTime) -> f64 {
        let (Some(first), Some((t_last, s_last))) = (self.first_sample, self.last_sample) else {
            return if self.prior_secs > 0.0 {
                self.prior_soc_integral / self.prior_secs
            } else {
                0.0
            };
        };
        let tail = at.saturating_since(t_last).as_secs_f64();
        let total = self.prior_secs + at.saturating_since(first).as_secs_f64();
        if total <= 0.0 {
            return s_last;
        }
        (self.prior_soc_integral + self.soc_integral + s_last * tail) / total
    }

    /// Calendar-aging component at `at`, Eq. (1). Time is measured from
    /// the first recorded sample (battery deployment).
    #[must_use]
    pub fn calendar_component(&self, at: SimTime) -> f64 {
        let elapsed = match self.first_sample {
            Some(first) => self.prior_secs + at.saturating_since(first).as_secs_f64(),
            None => self.prior_secs,
        };
        if elapsed <= 0.0 {
            return 0.0;
        }
        calendar_aging(
            elapsed,
            self.average_soc(at),
            self.temperature,
            &self.constants,
        )
    }

    /// Cycle-aging component, Eq. (2): closed cycles plus the current
    /// residue counted as half cycles.
    ///
    /// The residue damage is folded without materializing the half
    /// cycles; the fold order matches `residue_half_cycles()`, so the
    /// result is bit-identical to summing over that Vec.
    #[must_use]
    pub fn cycle_component(&self) -> f64 {
        let stress = self.constants.temperature_stress(self.temperature);
        let mut residue = 0.0;
        self.rainflow
            .for_each_residue(|c| residue += self.constants.cycle_damage(&c));
        (self.closed_damage + residue) * stress
    }

    /// Linear degradation at `at`, Eq. (3).
    #[must_use]
    pub fn linear(&self, at: SimTime) -> f64 {
        self.calendar_component(at) + self.cycle_component()
    }

    /// Observable degradation at `at`, Eq. (4).
    #[must_use]
    pub fn degradation(&self, at: SimTime) -> f64 {
        nonlinear_degradation(self.linear(at), &self.constants)
    }

    /// All degradation components at `at`.
    #[must_use]
    pub fn breakdown(&self, at: SimTime) -> DegradationBreakdown {
        let calendar = self.calendar_component(at);
        let cycle = self.cycle_component();
        let linear = calendar + cycle;
        DegradationBreakdown {
            calendar,
            cycle,
            linear,
            total: nonlinear_degradation(linear, &self.constants),
        }
    }

    /// Number of full charge-discharge cycles counted so far.
    #[must_use]
    pub fn closed_cycle_count(&self) -> u64 {
        self.rainflow.closed_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blam_units::Duration;

    const YEAR_SECS: f64 = 365.25 * 86_400.0;

    fn k() -> DegradationConstants {
        DegradationConstants::lmo()
    }

    #[test]
    fn calendar_scales_linearly_with_time() {
        let one = calendar_aging(YEAR_SECS, 0.5, Celsius(25.0), &k());
        let two = calendar_aging(2.0 * YEAR_SECS, 0.5, Celsius(25.0), &k());
        assert!((two / one - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nonlinear_is_monotone_and_bounded() {
        let kk = k();
        let mut last = -1.0;
        for i in 0..100 {
            let dl = f64::from(i) * 0.01;
            let d = nonlinear_degradation(dl, &kk);
            assert!(d > last);
            assert!((0.0..1.0).contains(&d));
            last = d;
        }
        assert_eq!(nonlinear_degradation(0.0, &kk), 0.0);
    }

    #[test]
    fn sei_formation_makes_early_degradation_fast() {
        // The first 1% of linear damage produces disproportionate
        // observable degradation (SEI film).
        let kk = k();
        let early = nonlinear_degradation(0.01, &kk);
        let mid = nonlinear_degradation(0.11, &kk) - nonlinear_degradation(0.10, &kk);
        assert!(early > 3.0 * mid, "early {early}, mid step {mid}");
    }

    #[test]
    fn linear_for_nonlinear_inverts() {
        let kk = k();
        for target in [0.05, 0.1, 0.2, 0.5] {
            let dl = linear_for_nonlinear(target, &kk);
            assert!((nonlinear_degradation(dl, &kk) - target).abs() < 1e-9);
        }
    }

    #[test]
    fn eol_linear_threshold_magnitude() {
        // With the LMO constants, 20% observable degradation needs
        // ~0.16 linear damage — the number the lifespans hinge on.
        let dl = linear_for_nonlinear(0.2, &k());
        assert!((dl - 0.164).abs() < 0.01, "got {dl}");
    }

    #[test]
    fn cycle_aging_sums_damage() {
        let cycles = [Cycle::full(1.0, 0.0), Cycle::half(0.8, 0.4)];
        let d = cycle_aging(cycles.iter(), Celsius(25.0), &k());
        // full: 1·1·0.5; half: 0.5·0.4·0.6 = 0.12 ⇒ ×k6.
        let expected = (0.5 + 0.12) * k().cycle_stress;
        assert!((d - expected).abs() < 1e-15);
    }

    #[test]
    fn tracker_average_soc_time_weighted() {
        let mut t = DegradationTracker::new(Celsius(25.0));
        t.record(SimTime::ZERO, 1.0);
        t.record(SimTime::from_secs(100), 1.0);
        t.record(SimTime::from_secs(100), 0.0);
        // Hold at 0 for another 100 s.
        let avg = t.average_soc(SimTime::from_secs(200));
        assert!((avg - 0.5).abs() < 1e-9, "got {avg}");
    }

    #[test]
    fn tracker_empty_is_zero() {
        let t = DegradationTracker::new(Celsius(25.0));
        assert_eq!(t.degradation(SimTime::from_secs(1_000)), 0.0);
        assert_eq!(t.average_soc(SimTime::from_secs(1_000)), 0.0);
    }

    #[test]
    fn high_soc_storage_ages_faster_than_half() {
        let day = Duration::from_days(1);
        let horizon = SimTime::ZERO + day * 3_650;
        let mut full = DegradationTracker::new(Celsius(25.0));
        full.record(SimTime::ZERO, 1.0);
        let mut half = DegradationTracker::new(Celsius(25.0));
        half.record(SimTime::ZERO, 0.5);
        let (df, dh) = (full.degradation(horizon), half.degradation(horizon));
        assert!(df > dh, "full {df} vs half {dh}");
        // The ratio of the *linear* components follows the SoC stress
        // factor e^{1.04·0.5} ≈ 1.68.
        let ratio = full.linear(horizon) / half.linear(horizon);
        assert!((ratio - 1.68).abs() < 0.02, "got {ratio}");
    }

    #[test]
    fn cycling_adds_damage_on_top_of_calendar() {
        let day = Duration::from_days(1);
        let mut idle = DegradationTracker::new(Celsius(25.0));
        idle.record(SimTime::ZERO, 0.7);
        let mut cycled = DegradationTracker::new(Celsius(25.0));
        for d in 0..365u64 {
            let midnight = SimTime::ZERO + day * d;
            cycled.record(midnight, 0.9);
            cycled.record(midnight + day / 2, 0.5);
        }
        let at = SimTime::ZERO + day * 365;
        assert!(cycled.cycle_component() > 0.0);
        assert!(cycled.closed_cycle_count() > 300);
        // Same average SoC (0.7): the cycled battery strictly worse.
        assert!((cycled.average_soc(at) - 0.7).abs() < 0.01);
        assert!(cycled.degradation(at) > idle.degradation(at));
    }

    #[test]
    fn calendar_dominates_cycling_for_lora_like_loads() {
        // Fig. 2 of the paper: for a LoRa node's shallow daily cycles,
        // calendar aging dominates cycle aging.
        let day = Duration::from_days(1);
        let mut t = DegradationTracker::new(Celsius(25.0));
        for d in 0..(5 * 365u64) {
            let midnight = SimTime::ZERO + day * d;
            t.record(midnight, 0.95);
            t.record(midnight + day / 2, 0.55);
        }
        let at = SimTime::ZERO + day * (5 * 365);
        let b = t.breakdown(at);
        assert!(
            b.calendar > b.cycle,
            "calendar {} should dominate cycle {}",
            b.calendar,
            b.cycle
        );
        assert!(b.cycle > 0.0);
        assert!((b.linear - (b.calendar + b.cycle)).abs() < 1e-15);
        assert!(b.total > b.linear * 0.9); // SEI inflates early damage
    }

    #[test]
    fn breakdown_consistent_with_parts() {
        let mut t = DegradationTracker::new(Celsius(25.0));
        t.record(SimTime::ZERO, 0.8);
        t.record(SimTime::from_secs(3_600), 0.3);
        let at = SimTime::from_secs(7_200);
        let b = t.breakdown(at);
        assert!((b.calendar - t.calendar_component(at)).abs() < 1e-15);
        assert!((b.cycle - t.cycle_component()).abs() < 1e-15);
        assert!((b.total - t.degradation(at)).abs() < 1e-15);
    }

    #[test]
    fn cycle_component_matches_allocating_oracle() {
        // The folded residue sum must be bit-identical to the original
        // formulation (sum over the materialized half-cycle Vec).
        let mut t = DegradationTracker::new(Celsius(25.0));
        let mut seed = 0x2545_F491_4F6C_DD1Du64;
        let mut soc = 0.6f64;
        for i in 0..400u64 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            soc = (soc + ((seed % 2001) as f64 / 1000.0 - 1.0) * 0.3).clamp(0.0, 1.0);
            t.record(SimTime::from_secs(i * 600), soc);
            let oracle: f64 = t
                .rainflow
                .residue_half_cycles()
                .iter()
                .map(|c| t.constants.cycle_damage(c))
                .sum();
            let stress = t.constants.temperature_stress(t.temperature);
            let expected = (t.closed_damage + oracle) * stress;
            assert_eq!(
                t.cycle_component().to_bits(),
                expected.to_bits(),
                "divergence at sample {i}"
            );
        }
        assert!(t.cycle_component() > 0.0);
    }

    #[test]
    fn out_of_order_sample_clamps() {
        let mut t = DegradationTracker::new(Celsius(25.0));
        t.record(SimTime::from_secs(100), 0.5);
        // Earlier than the last sample: treated as simultaneous.
        t.record(SimTime::from_secs(50), 0.9);
        let avg = t.average_soc(SimTime::from_secs(100));
        assert!((0.5..=0.9).contains(&avg));
    }

    #[test]
    fn prior_age_adds_calendar_history() {
        let k = DegradationConstants::lmo();
        let aged = DegradationTracker::with_prior_age(
            Celsius(25.0),
            k,
            Duration::from_days(4 * 365),
            0.8,
            0.002,
        );
        let fresh = DegradationTracker::with_constants(Celsius(25.0), k);
        // Before any samples, the aged tracker already carries damage.
        assert!(aged.degradation(SimTime::ZERO) > 0.05);
        assert_eq!(fresh.degradation(SimTime::ZERO), 0.0);
        assert!((aged.average_soc(SimTime::ZERO) - 0.8).abs() < 1e-12);
        assert!((aged.cycle_component() - 0.002).abs() < 1e-15);
    }

    #[test]
    fn prior_age_blends_with_new_samples() {
        let k = DegradationConstants::lmo();
        let year = Duration::from_days(365);
        let mut aged = DegradationTracker::with_prior_age(Celsius(25.0), k, year, 1.0, 0.0);
        // A year of service at SoC 0 after a prior year at SoC 1:
        aged.record(SimTime::ZERO, 0.0);
        let avg = aged.average_soc(SimTime::ZERO + year);
        assert!((avg - 0.5).abs() < 1e-9, "blended avg SoC {avg}");
        // Calendar elapsed covers both years.
        let two_years_half = calendar_aging(2.0 * 365.0 * 86_400.0, 0.5, Celsius(25.0), &k);
        assert!((aged.calendar_component(SimTime::ZERO + year) - two_years_half).abs() < 1e-12);
    }

    #[test]
    fn hotter_battery_ages_faster() {
        let mut cool = DegradationTracker::new(Celsius(25.0));
        cool.record(SimTime::ZERO, 0.6);
        let mut hot = DegradationTracker::new(Celsius(40.0));
        hot.record(SimTime::ZERO, 0.6);
        let at = SimTime::ZERO + Duration::from_days(365);
        assert!(hot.degradation(at) > cool.degradation(at));
    }
}
