//! The software-defined battery switch of the paper's system model.
//!
//! Fig. 1 of the paper: each node is powered by a green energy source
//! and a rechargeable battery behind a software-controlled switch. When
//! the green source covers the instantaneous demand, the node runs on
//! green energy and the surplus may charge the battery; otherwise the
//! battery makes up the difference. The paper's protocol additionally
//! caps the charge level at a threshold θ to curb calendar aging — the
//! `y_u[t]` decision collapsed to a threshold rule (Eq. 21).

use blam_units::{Joules, SimTime};
use serde::{Deserialize, Serialize};

use crate::soc::Battery;

/// Energy-flow accounting for one switch step.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SwitchOutcome {
    /// Demand served directly from the green source.
    pub from_green: Joules,
    /// Demand served from the battery.
    pub from_battery: Joules,
    /// Surplus green energy stored into the battery.
    pub charged: Joules,
    /// Surplus green energy discarded (battery full or above θ).
    pub spilled: Joules,
    /// Demand that could not be served (brownout).
    pub deficit: Joules,
}

impl SwitchOutcome {
    /// True if the whole demand was met.
    #[must_use]
    pub fn satisfied(&self) -> bool {
        self.deficit.0 <= 1e-12
    }
}

/// The software-defined battery switch.
///
/// # Examples
///
/// ```
/// use blam_battery::{Battery, PowerSwitch};
/// use blam_units::{Celsius, Joules, SimTime};
///
/// let mut battery = Battery::new(Joules(10.0), 0.3, Celsius(25.0));
/// let switch = PowerSwitch::new(0.5); // the paper's H-50
/// // Sunny interval: 2 J harvested, 0.5 J demand.
/// let out = switch.step(SimTime::from_secs(60), &mut battery, Joules(2.0), Joules(0.5));
/// assert!(out.satisfied());
/// assert_eq!(out.from_green, Joules(0.5));
/// assert_eq!(out.charged, Joules(1.5)); // still below θ·capacity
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSwitch {
    /// Maximum SoC the battery may be charged to (the paper's θ).
    pub charge_threshold: f64,
}

impl PowerSwitch {
    /// Creates a switch with charge threshold θ.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is outside `[0, 1]`.
    #[must_use]
    pub fn new(theta: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&theta),
            "charge threshold θ must be in [0,1], got {theta}"
        );
        PowerSwitch {
            charge_threshold: theta,
        }
    }

    /// The LoRaWAN baseline switch: charge whenever surplus exists
    /// (θ = 1).
    #[must_use]
    pub fn uncapped() -> Self {
        PowerSwitch::new(1.0)
    }

    /// Routes one interval's energy: `harvested` green energy against
    /// `demand`, with the battery behind the θ cap.
    ///
    /// Green energy serves the demand first; any surplus charges the
    /// battery up to `θ × original capacity` (and never beyond the
    /// degraded maximum capacity); any shortfall is drawn from the
    /// battery. The returned [`SwitchOutcome`] accounts for every joule.
    pub fn step(
        &self,
        at: SimTime,
        battery: &mut Battery,
        harvested: Joules,
        demand: Joules,
    ) -> SwitchOutcome {
        debug_assert!(harvested.0 >= 0.0 && demand.0 >= 0.0);
        let from_green = harvested.min(demand);
        let surplus = harvested - from_green;
        let shortfall = demand - from_green;

        let from_battery = if shortfall.0 > 0.0 {
            battery.discharge(at, shortfall)
        } else {
            Joules::ZERO
        };
        let charged = if surplus.0 > 0.0 {
            battery.charge(at, surplus, self.charge_threshold)
        } else {
            Joules::ZERO
        };

        SwitchOutcome {
            from_green,
            from_battery,
            charged,
            spilled: surplus - charged,
            deficit: shortfall - from_battery,
        }
    }

    /// Whether the battery (plus incoming green energy) can sustain an
    /// additional `demand` without a brownout — the feasibility check of
    /// the paper's Eq. (20).
    #[must_use]
    pub fn can_sustain(&self, battery: &Battery, harvested: Joules, demand: Joules) -> bool {
        (battery.stored() + harvested).0 + 1e-12 >= demand.0
    }
}

impl Default for PowerSwitch {
    /// θ = 1 (the LoRaWAN baseline behaviour).
    fn default() -> Self {
        PowerSwitch::uncapped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blam_units::Celsius;

    fn battery(soc: f64) -> Battery {
        Battery::new(Joules(10.0), soc, Celsius(25.0))
    }

    #[test]
    fn green_covers_demand_surplus_charges() {
        let mut b = battery(0.2);
        let out =
            PowerSwitch::new(1.0).step(SimTime::from_secs(1), &mut b, Joules(3.0), Joules(1.0));
        assert_eq!(out.from_green, Joules(1.0));
        assert_eq!(out.charged, Joules(2.0));
        assert_eq!(out.from_battery, Joules::ZERO);
        assert_eq!(out.spilled, Joules::ZERO);
        assert!(out.satisfied());
        assert!((b.soc() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn theta_caps_charging_and_spills_rest() {
        let mut b = battery(0.4);
        let out =
            PowerSwitch::new(0.5).step(SimTime::from_secs(1), &mut b, Joules(5.0), Joules(0.0));
        assert_eq!(out.charged, Joules(1.0)); // 0.4 → 0.5 only
        assert_eq!(out.spilled, Joules(4.0));
        assert!((b.soc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn battery_covers_shortfall() {
        let mut b = battery(0.5);
        let out =
            PowerSwitch::new(0.5).step(SimTime::from_secs(1), &mut b, Joules(0.5), Joules(2.0));
        assert_eq!(out.from_green, Joules(0.5));
        assert_eq!(out.from_battery, Joules(1.5));
        assert!(out.satisfied());
        assert!((b.soc() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn brownout_reports_deficit() {
        let mut b = battery(0.1);
        let out =
            PowerSwitch::new(0.5).step(SimTime::from_secs(1), &mut b, Joules(0.0), Joules(5.0));
        assert_eq!(out.from_battery, Joules(1.0));
        assert_eq!(out.deficit, Joules(4.0));
        assert!(!out.satisfied());
        assert!(b.is_empty());
    }

    #[test]
    fn energy_is_conserved() {
        let mut b = battery(0.3);
        let before = b.stored();
        let harvested = Joules(1.7);
        let demand = Joules(0.9);
        let out = PowerSwitch::new(0.6).step(SimTime::from_secs(1), &mut b, harvested, demand);
        // harvest = serve + charge + spill
        let h = out.from_green + out.charged + out.spilled;
        assert!((h - harvested).0.abs() < 1e-12);
        // demand = green + battery + deficit
        let d = out.from_green + out.from_battery + out.deficit;
        assert!((d - demand).0.abs() < 1e-12);
        // battery delta = charged − discharged
        let delta = b.stored() - before;
        assert!((delta - (out.charged - out.from_battery)).0.abs() < 1e-12);
    }

    #[test]
    fn zero_theta_never_charges() {
        let mut b = battery(0.0);
        let out =
            PowerSwitch::new(0.0).step(SimTime::from_secs(1), &mut b, Joules(5.0), Joules(1.0));
        assert_eq!(out.charged, Joules::ZERO);
        assert_eq!(out.spilled, Joules(4.0));
        assert!(out.satisfied()); // green alone covered the demand
    }

    #[test]
    fn can_sustain_check() {
        let b = battery(0.1); // 1 J stored
        let sw = PowerSwitch::new(0.5);
        assert!(sw.can_sustain(&b, Joules(0.5), Joules(1.4)));
        assert!(!sw.can_sustain(&b, Joules(0.1), Joules(1.4)));
    }

    #[test]
    #[should_panic(expected = "θ must be in")]
    fn invalid_theta_rejected() {
        let _ = PowerSwitch::new(1.2);
    }
}
