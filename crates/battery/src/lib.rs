//! Rechargeable-battery substrate for battery-lifespan studies.
//!
//! Implements the battery model the paper builds on:
//!
//! * [`chemistry`] — the degradation constants of the Xu et al. (2016)
//!   lithium-ion model the paper cites as \[13\].
//! * [`rainflow`] — cycle counting over a state-of-charge trace, both as
//!   a batch algorithm and as an O(1)-amortized streaming counter
//!   suitable for 15-year simulations.
//! * [`degradation`] — calendar aging (Eq. 1), cycle aging (Eq. 2),
//!   their linear combination (Eq. 3) and the SEI-nonlinear composite
//!   (Eq. 4), plus a [`DegradationTracker`] that maintains all of them
//!   incrementally from SoC samples.
//! * [`soc`] — a [`Battery`] with charge/discharge accounting whose
//!   usable capacity shrinks as it degrades.
//! * [`switch`] — the software-defined battery switch of the paper's
//!   system model (Fig. 1): green energy powers the node first, surplus
//!   charges the battery up to a configurable threshold θ, deficits
//!   drain the battery.
//! * [`lifespan`] — End-of-Life bookkeeping (20% degradation) and
//!   lifespan projection helpers.
//! * [`supercap`] — a supercapacitor buffer for hybrid storage setups,
//!   the paper's stated future work.
//!
//! # Examples
//!
//! Track the degradation of a battery cycled daily for a year:
//!
//! ```
//! use blam_battery::DegradationTracker;
//! use blam_units::{Celsius, Duration, SimTime};
//!
//! let mut tracker = DegradationTracker::new(Celsius(25.0));
//! let day = Duration::from_days(1);
//! for d in 0..365 {
//!     let midnight = SimTime::ZERO + day * d;
//!     tracker.record(midnight, 0.9);                      // full each evening
//!     tracker.record(midnight + day / 2, 0.5);            // drained overnight
//! }
//! let d = tracker.degradation(SimTime::ZERO + day * 365);
//! assert!(d > 0.0 && d < 0.2, "one year must not reach EoL: {d}");
//! ```

// `forbid(unsafe_code)` comes from `[workspace.lints]` in the root
// manifest; only the doc requirement stays crate-local.
#![warn(missing_docs)]

pub mod chemistry;
pub mod degradation;
pub mod lifespan;
pub mod rainflow;
pub mod soc;
pub mod supercap;
pub mod switch;

pub use chemistry::{CycleStressModel, DegradationConstants};
pub use degradation::{DegradationBreakdown, DegradationTracker};
pub use lifespan::{is_end_of_life, project_eol, EOL_DEGRADATION};
pub use rainflow::{rainflow_count, Cycle, StreamingRainflow};
pub use soc::Battery;
pub use supercap::Supercap;
pub use switch::{PowerSwitch, SwitchOutcome};
