//! A rechargeable battery with degradation-aware capacity accounting.

use blam_units::{Celsius, Joules, SimTime};
use serde::{Deserialize, Serialize};

use crate::chemistry::DegradationConstants;
use crate::degradation::DegradationTracker;
use crate::lifespan::EOL_DEGRADATION;

/// A rechargeable battery.
///
/// State of charge is expressed relative to the *original* maximum
/// capacity, exactly as in the paper: a degraded battery can hold at
/// most `1 − degradation` of its original energy, so its SoC can no
/// longer reach 1.0.
///
/// Every charge and discharge is recorded into an embedded
/// [`DegradationTracker`], so the battery's usable capacity genuinely
/// shrinks as it is used. Because evaluating the degradation involves a
/// few exponentials, the capacity limit is cached and refreshed by
/// [`refresh_degradation`](Battery::refresh_degradation) — call it at a
/// coarse cadence (the experiments use monthly) rather than per
/// transaction.
///
/// # Examples
///
/// ```
/// use blam_battery::Battery;
/// use blam_units::{Celsius, Joules, SimTime};
///
/// let mut b = Battery::new(Joules(12.0), 0.5, Celsius(25.0));
/// let accepted = b.charge(SimTime::from_secs(60), Joules(3.0), 1.0);
/// assert_eq!(accepted, Joules(3.0));
/// assert!((b.soc() - 0.75).abs() < 1e-12);
/// let drawn = b.discharge(SimTime::from_secs(120), Joules(100.0));
/// assert!(drawn < Joules(10.0)); // can't draw more than stored
/// assert_eq!(b.soc(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    original_capacity: Joules,
    stored: Joules,
    tracker: DegradationTracker,
    cached_degradation: f64,
}

impl Battery {
    /// Creates a battery with the given original capacity and initial
    /// SoC, held at `temperature`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive or `initial_soc` is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn new(capacity: Joules, initial_soc: f64, temperature: Celsius) -> Self {
        Battery::with_constants(
            capacity,
            initial_soc,
            temperature,
            DegradationConstants::lmo(),
        )
    }

    /// Creates a battery with custom degradation constants.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive or `initial_soc` is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn with_constants(
        capacity: Joules,
        initial_soc: f64,
        temperature: Celsius,
        constants: DegradationConstants,
    ) -> Self {
        assert!(
            capacity.0 > 0.0 && capacity.is_finite(),
            "battery capacity must be positive, got {capacity}"
        );
        assert!(
            (0.0..=1.0).contains(&initial_soc),
            "initial SoC must be in [0,1], got {initial_soc}"
        );
        let mut tracker = DegradationTracker::with_constants(temperature, constants);
        tracker.record(SimTime::ZERO, initial_soc);
        Battery {
            original_capacity: capacity,
            stored: capacity * initial_soc,
            tracker,
            cached_degradation: 0.0,
        }
    }

    /// Creates a factory-fresh battery whose service life starts at
    /// `at` rather than `SimTime::ZERO` — a replacement unit swapped
    /// into a deployment mid-run. Calendar aging is measured from the
    /// first recorded sample, so anchoring it at the commissioning
    /// instant keeps the new unit from inheriting the simulated past.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`with_constants`](Battery::with_constants).
    #[must_use]
    pub fn commissioned_at(
        capacity: Joules,
        initial_soc: f64,
        temperature: Celsius,
        constants: DegradationConstants,
        at: SimTime,
    ) -> Self {
        assert!(
            capacity.0 > 0.0 && capacity.is_finite(),
            "battery capacity must be positive, got {capacity}"
        );
        assert!(
            (0.0..=1.0).contains(&initial_soc),
            "initial SoC must be in [0,1], got {initial_soc}"
        );
        let mut tracker = DegradationTracker::with_constants(temperature, constants);
        tracker.record(at, initial_soc);
        Battery {
            original_capacity: capacity,
            stored: capacity * initial_soc,
            tracker,
            cached_degradation: 0.0,
        }
    }

    /// Creates a battery that already served `age` at `prior_avg_soc`
    /// with `prior_cycle_damage` accumulated — a worn battery entering
    /// the simulation. The cached degradation is refreshed immediately.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`with_constants`](Battery::with_constants) plus those of
    /// [`DegradationTracker::with_prior_age`].
    #[must_use]
    pub fn pre_aged(
        capacity: Joules,
        initial_soc: f64,
        temperature: Celsius,
        constants: crate::chemistry::DegradationConstants,
        age: blam_units::Duration,
        prior_avg_soc: f64,
        prior_cycle_damage: f64,
    ) -> Self {
        assert!(
            capacity.0 > 0.0 && capacity.is_finite(),
            "battery capacity must be positive, got {capacity}"
        );
        assert!(
            (0.0..=1.0).contains(&initial_soc),
            "initial SoC must be in [0,1], got {initial_soc}"
        );
        let mut tracker = DegradationTracker::with_prior_age(
            temperature,
            constants,
            age,
            prior_avg_soc,
            prior_cycle_damage,
        );
        tracker.record(SimTime::ZERO, initial_soc);
        let mut battery = Battery {
            original_capacity: capacity,
            stored: capacity * initial_soc,
            tracker,
            cached_degradation: 0.0,
        };
        battery.refresh_degradation(SimTime::ZERO);
        battery
    }

    /// The original (as-new) maximum capacity.
    #[must_use]
    pub fn original_capacity(&self) -> Joules {
        self.original_capacity
    }

    /// Energy currently stored.
    #[must_use]
    pub fn stored(&self) -> Joules {
        self.stored
    }

    /// State of charge relative to the original capacity.
    #[must_use]
    pub fn soc(&self) -> f64 {
        self.stored / self.original_capacity
    }

    /// The current maximum capacity, shrunk by the cached degradation.
    #[must_use]
    pub fn max_capacity(&self) -> Joules {
        self.original_capacity * (1.0 - self.cached_degradation)
    }

    /// The cached degradation fraction (refresh with
    /// [`refresh_degradation`](Battery::refresh_degradation)).
    #[must_use]
    pub fn cached_degradation(&self) -> f64 {
        self.cached_degradation
    }

    /// Recomputes the degradation at `at` from the embedded tracker,
    /// updates the cached capacity limit, sheds any stored energy that
    /// no longer fits, and returns the new degradation.
    pub fn refresh_degradation(&mut self, at: SimTime) -> f64 {
        self.cached_degradation = self.tracker.degradation(at);
        let max = self.max_capacity();
        if self.stored > max {
            self.stored = max;
            self.tracker.record(at, self.soc());
        }
        self.cached_degradation
    }

    /// Read-only access to the degradation tracker.
    #[must_use]
    pub fn tracker(&self) -> &DegradationTracker {
        &self.tracker
    }

    /// Offers `amount` of charge at time `at`, limited both by the
    /// current maximum capacity and by `soc_limit` (the paper's θ,
    /// relative to original capacity). Returns the energy actually
    /// accepted.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `amount` is negative.
    pub fn charge(&mut self, at: SimTime, amount: Joules, soc_limit: f64) -> Joules {
        debug_assert!(amount.0 >= 0.0, "cannot charge a negative amount");
        let ceiling = self.max_capacity().min(self.original_capacity * soc_limit);
        let accepted = (ceiling - self.stored).max(Joules::ZERO).min(amount);
        if accepted.0 > 0.0 {
            self.stored += accepted;
            self.tracker.record(at, self.soc());
        }
        accepted
    }

    /// Draws up to `amount` from the battery at time `at`, returning the
    /// energy actually delivered (less than `amount` if the battery runs
    /// empty).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `amount` is negative.
    pub fn discharge(&mut self, at: SimTime, amount: Joules) -> Joules {
        debug_assert!(amount.0 >= 0.0, "cannot discharge a negative amount");
        let delivered = self.stored.min(amount).max(Joules::ZERO);
        if delivered.0 > 0.0 {
            self.stored -= delivered;
            self.tracker.record(at, self.soc());
        }
        delivered
    }

    /// True if the stored energy is (numerically) zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stored.0 <= 1e-12
    }

    /// True if the battery has reached End of Life (cached degradation
    /// ≥ 20%).
    #[must_use]
    pub fn is_end_of_life(&self) -> bool {
        self.cached_degradation >= EOL_DEGRADATION
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blam_units::Duration;

    fn battery() -> Battery {
        Battery::new(Joules(10.0), 0.5, Celsius(25.0))
    }

    #[test]
    fn charge_respects_soc_limit() {
        let mut b = battery();
        let accepted = b.charge(SimTime::from_secs(1), Joules(100.0), 0.8);
        assert_eq!(accepted, Joules(3.0));
        assert!((b.soc() - 0.8).abs() < 1e-12);
        // A second charge at the same limit accepts nothing.
        assert_eq!(
            b.charge(SimTime::from_secs(2), Joules(1.0), 0.8),
            Joules::ZERO
        );
    }

    #[test]
    fn charge_to_full() {
        let mut b = battery();
        let accepted = b.charge(SimTime::from_secs(1), Joules(100.0), 1.0);
        assert_eq!(accepted, Joules(5.0));
        assert!((b.soc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn discharge_clamps_at_empty() {
        let mut b = battery();
        let drawn = b.discharge(SimTime::from_secs(1), Joules(7.0));
        assert_eq!(drawn, Joules(5.0));
        assert!(b.is_empty());
        assert_eq!(
            b.discharge(SimTime::from_secs(2), Joules(1.0)),
            Joules::ZERO
        );
    }

    #[test]
    fn soc_tracks_energy() {
        let mut b = battery();
        b.discharge(SimTime::from_secs(1), Joules(2.5));
        assert!((b.soc() - 0.25).abs() < 1e-12);
        assert_eq!(b.stored(), Joules(2.5));
    }

    #[test]
    fn degradation_shrinks_capacity() {
        let mut b = Battery::new(Joules(10.0), 1.0, Celsius(25.0));
        let after = SimTime::ZERO + Duration::from_days(3 * 365);
        let d = b.refresh_degradation(after);
        assert!(d > 0.01, "three idle years at full SoC must degrade: {d}");
        assert!(b.max_capacity() < b.original_capacity());
        // Stored energy was shed to fit the shrunken capacity.
        assert!(b.stored() <= b.max_capacity() + Joules(1e-12));
    }

    #[test]
    fn charge_cannot_exceed_degraded_capacity() {
        let mut b = Battery::new(Joules(10.0), 0.2, Celsius(25.0));
        b.refresh_degradation(SimTime::ZERO + Duration::from_days(5 * 365));
        let accepted = b.charge(
            SimTime::ZERO + Duration::from_days(5 * 365),
            Joules(100.0),
            1.0,
        );
        assert!(accepted < Joules(8.0), "degraded battery took {accepted}");
        assert!(b.soc() < 1.0);
    }

    #[test]
    fn transactions_feed_the_tracker() {
        let mut b = battery();
        let day = Duration::from_days(1);
        for d in 0..30u64 {
            let t = SimTime::ZERO + day * d;
            b.charge(t, Joules(4.0), 0.9);
            b.discharge(t + day / 2, Joules(4.0));
        }
        assert!(b.tracker().closed_cycle_count() >= 28);
    }

    #[test]
    fn eol_flag() {
        let mut b = Battery::new(Joules(10.0), 1.0, Celsius(45.0));
        assert!(!b.is_end_of_life());
        // Hot and full for 15 years: decisively past EoL.
        b.refresh_degradation(SimTime::ZERO + Duration::from_days(15 * 365));
        assert!(b.is_end_of_life());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Battery::new(Joules(0.0), 0.5, Celsius(25.0));
    }

    #[test]
    #[should_panic(expected = "initial SoC")]
    fn bad_initial_soc_rejected() {
        let _ = Battery::new(Joules(1.0), 1.5, Celsius(25.0));
    }
}
