//! Battery degradation constants.
//!
//! The paper writes its degradation equations (1)–(4) in terms of
//! constants `k1 … k6`, `α_sei` and `k`, and cites the lithium-ion model
//! of Xu, Oudalov, Ulbig, Andersson & Kirschen, *Modeling of Lithium-Ion
//! Battery Degradation for Cell Life Assessment* (IEEE Trans. Smart
//! Grid, 2016) as their source. [`DegradationConstants::lmo`] carries
//! that paper's published values for an LMO cell, re-parameterized into
//! the ICDCS paper's equation shapes.

use blam_units::Celsius;
use serde::{Deserialize, Serialize};

use crate::rainflow::Cycle;

/// Which cycle-stress law converts a rainflow cycle into damage.
///
/// The ICDCS paper's Eq. (2) is linear in depth and mean SoC; the Xu et
/// al. model it cites uses a sub-linear power law in depth. The paper
/// explicitly claims independence of the specific battery model — the
/// `cycle_model` ablation exercises that claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CycleStressModel {
    /// Eq. (2): `damage = η · δ · φ · k6`.
    PaperLinear,
    /// Xu et al. (2016): `damage = η · S_δ(δ) · S_σ(φ)` with
    /// `S_δ(δ) = (kδ1 · δ^kδ2 + kδ3)⁻¹` and
    /// `S_σ(φ) = e^{k2 (φ − k3)}`.
    XuPowerLaw,
}

/// The constants of the paper's degradation equations (1)–(4).
///
/// | Symbol | Field | Meaning |
/// |--------|-------|---------|
/// | `k1` | `time_stress_per_sec` | calendar aging rate at reference SoC/temperature, per second |
/// | `k2` | `soc_stress` | exponential SoC-stress coefficient |
/// | `k3` | `soc_ref` | reference SoC (stress = 1 at this SoC) |
/// | `k4` | `temp_stress` | Arrhenius-style temperature coefficient, 1/K |
/// | `k5` | `temp_ref` | reference temperature, °C |
/// | `k6` | `cycle_stress` | per-cycle aging coefficient (multiplies η·δ·φ) |
/// | `α_sei` | `alpha_sei` | capacity fraction governed by SEI-film formation |
/// | `k` | `k_sei` | SEI decay constant |
///
/// # Examples
///
/// ```
/// use blam_battery::DegradationConstants;
///
/// let k = DegradationConstants::lmo();
/// // Stress factor is exactly 1 at the reference temperature.
/// assert!((k.temperature_stress(blam_units::Celsius(25.0)) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationConstants {
    /// `k1`: calendar-aging rate per second at the reference SoC and
    /// temperature.
    pub time_stress_per_sec: f64,
    /// `k2`: exponential SoC-stress coefficient.
    pub soc_stress: f64,
    /// `k3`: reference SoC.
    pub soc_ref: f64,
    /// `k4`: temperature-stress coefficient (1/K).
    pub temp_stress: f64,
    /// `k5`: reference temperature (°C).
    pub temp_ref_celsius: f64,
    /// `k6`: cycle-aging coefficient, applied per cycle as
    /// `η·δ·φ·k6`.
    pub cycle_stress: f64,
    /// `α_sei`: fraction of capacity tied to SEI-film formation.
    pub alpha_sei: f64,
    /// `k`: SEI decay constant multiplying the linear degradation in the
    /// first exponential of Eq. (4).
    pub k_sei: f64,
    /// Which cycle-stress law to apply.
    pub cycle_model: CycleStressModel,
    /// Xu's `kδ1` (power-law scale).
    pub xu_kdelta1: f64,
    /// Xu's `kδ2` (power-law exponent, negative).
    pub xu_kdelta2: f64,
    /// Xu's `kδ3` (power-law offset).
    pub xu_kdelta3: f64,
}

impl DegradationConstants {
    /// Constants for an LMO lithium-ion cell from Xu et al. (2016):
    ///
    /// * time stress `k_t = 4.14e-10 s⁻¹`,
    /// * SoC stress `k_σ = 1.04` around `σ_ref = 0.5`,
    /// * temperature stress `k_T = 0.0693 K⁻¹` around 25 °C,
    /// * SEI parameters `α_sei = 5.75e-2`, `β_sei (our k) = 121`,
    /// * cycle coefficient `k6 = 1.5e-5`. The ICDCS paper leaves `k6`
    ///   unspecified; its reported lifespans pin it down — LoRaWAN's
    ///   8.1-year network lifespan equals the *pure calendar-aging*
    ///   prediction at high SoC, and Fig. 2 shows cycle aging as a
    ///   small fraction of the total. `1.5e-5` reproduces that
    ///   cycle-to-calendar ratio for the paper's workload (tens of
    ///   shallow transmission cycles per day plus one overnight
    ///   discharge).
    #[must_use]
    pub fn lmo() -> Self {
        DegradationConstants {
            time_stress_per_sec: 4.14e-10,
            soc_stress: 1.04,
            soc_ref: 0.5,
            temp_stress: 0.0693,
            temp_ref_celsius: 25.0,
            cycle_stress: 1.5e-5,
            alpha_sei: 5.75e-2,
            k_sei: 121.0,
            cycle_model: CycleStressModel::PaperLinear,
            xu_kdelta1: 1.4e5,
            xu_kdelta2: -0.501,
            xu_kdelta3: -1.23e5,
        }
    }

    /// The LMO constants with Xu et al.'s sub-linear power-law cycle
    /// stress instead of the paper's linear Eq. (2).
    #[must_use]
    pub fn lmo_xu_cycle() -> Self {
        DegradationConstants {
            cycle_model: CycleStressModel::XuPowerLaw,
            ..DegradationConstants::lmo()
        }
    }

    /// Damage contributed by one rainflow cycle, before the temperature
    /// stress multiplier, under the configured cycle-stress law.
    #[must_use]
    pub fn cycle_damage(&self, cycle: &Cycle) -> f64 {
        match self.cycle_model {
            CycleStressModel::PaperLinear => {
                cycle.weight * cycle.depth * cycle.mean_soc * self.cycle_stress
            }
            CycleStressModel::XuPowerLaw => {
                if cycle.depth <= 0.0 {
                    return 0.0;
                }
                let s_delta = (self.xu_kdelta1 * cycle.depth.powf(self.xu_kdelta2)
                    + self.xu_kdelta3)
                    .recip()
                    .max(0.0);
                let s_sigma = self.soc_stress_factor(cycle.mean_soc);
                cycle.weight * s_delta * s_sigma
            }
        }
    }

    /// The temperature-stress multiplier of Eqs. (1) and (2):
    ///
    /// ```text
    /// exp(k4 · (T − k5) · (273 + k5) / (273 + T))
    /// ```
    ///
    /// Equals 1 at the reference temperature and grows exponentially
    /// above it.
    #[must_use]
    pub fn temperature_stress(&self, temp: Celsius) -> f64 {
        let t = temp.0;
        let t_ref = self.temp_ref_celsius;
        (self.temp_stress * (t - t_ref) * (273.0 + t_ref) / (273.0 + t)).exp()
    }

    /// The SoC-stress multiplier of Eq. (1): `exp(k2 · (soc − k3))`.
    #[must_use]
    pub fn soc_stress_factor(&self, avg_soc: f64) -> f64 {
        (self.soc_stress * (avg_soc - self.soc_ref)).exp()
    }
}

impl Default for DegradationConstants {
    fn default() -> Self {
        DegradationConstants::lmo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_stress_is_one_at_reference() {
        let k = DegradationConstants::lmo();
        assert!((k.temperature_stress(Celsius(25.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn temperature_stress_monotone() {
        let k = DegradationConstants::lmo();
        let cold = k.temperature_stress(Celsius(0.0));
        let warm = k.temperature_stress(Celsius(40.0));
        assert!(cold < 1.0);
        assert!(warm > 1.0);
        // Xu et al.: ~35 °C roughly doubles aging vs 25 °C.
        let hot = k.temperature_stress(Celsius(35.0));
        assert!(hot > 1.8 && hot < 2.2, "got {hot}");
    }

    #[test]
    fn soc_stress_is_one_at_reference() {
        let k = DegradationConstants::lmo();
        assert!((k.soc_stress_factor(0.5) - 1.0).abs() < 1e-12);
        assert!(k.soc_stress_factor(1.0) > 1.0);
        assert!(k.soc_stress_factor(0.0) < 1.0);
    }

    #[test]
    fn full_soc_costs_about_68_percent_more_than_reference() {
        // e^{1.04·0.5} ≈ 1.68: storing full instead of half-full ages
        // the battery ~68% faster — the quantitative heart of the
        // paper's θ-clamping idea.
        let k = DegradationConstants::lmo();
        let ratio = k.soc_stress_factor(1.0) / k.soc_stress_factor(0.5);
        assert!((ratio - 1.68).abs() < 0.02, "got {ratio}");
    }

    #[test]
    fn xu_power_law_values() {
        let k = DegradationConstants::lmo_xu_cycle();
        // Full cycle at δ = 1, φ = 0.5 (S_σ = 1):
        // S_δ(1) = 1/(1.4e5 − 1.23e5) ≈ 5.88e-5.
        let full = Cycle::full(1.0, 0.0);
        assert!((k.cycle_damage(&full) - 5.882e-5).abs() < 1e-7);
        // Depth is penalized super-linearly per cycle: a 50%-deep cycle
        // costs less than half a full one (S_δ(0.5) ≈ 1.33e-5), i.e.
        // splitting a deep cycle into shallow ones reduces damage —
        // the property the θ clamp and green-energy timing exploit.
        let half_depth = Cycle::full(0.75, 0.25);
        assert!((k.cycle_damage(&half_depth) - 1.33e-5).abs() < 1e-7);
        assert!(2.0 * k.cycle_damage(&half_depth) < k.cycle_damage(&full));
        // Zero-depth cycles contribute nothing.
        let flat = Cycle::full(0.5, 0.5);
        assert_eq!(k.cycle_damage(&flat), 0.0);
    }

    #[test]
    fn xu_model_never_negative() {
        let k = DegradationConstants::lmo_xu_cycle();
        for depth_milli in 1..=1000u32 {
            let d = f64::from(depth_milli) / 1000.0;
            let c = Cycle::full(0.5 + d / 2.0, 0.5 - d / 2.0);
            assert!(k.cycle_damage(&c) >= 0.0, "negative damage at δ={d}");
        }
    }

    #[test]
    fn paper_linear_matches_formula() {
        let k = DegradationConstants::lmo();
        let c = Cycle::half(0.8, 0.4);
        // η(0.5)·δ(0.4)·φ(0.6)·k6
        assert!((k.cycle_damage(&c) - 0.5 * 0.4 * 0.6 * k.cycle_stress).abs() < 1e-18);
    }

    #[test]
    fn yearly_calendar_scale_is_plausible() {
        // k1 × one year ≈ 1.3% linear degradation at reference
        // conditions, giving lifespans in the 8–15 year band the paper
        // reports once SoC stress is applied.
        let k = DegradationConstants::lmo();
        let yearly = k.time_stress_per_sec * 365.25 * 86_400.0;
        assert!((yearly - 0.013).abs() < 0.001, "got {yearly}");
    }
}
