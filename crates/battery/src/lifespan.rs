//! End-of-Life bookkeeping and lifespan projection.
//!
//! The paper (following Xu et al.) declares a battery at End of Life
//! once its maximum capacity has dropped by 20%, because degradation
//! accelerates exponentially beyond that point. The *network* battery
//! lifespan is the time until the first battery in the network reaches
//! EoL.

use blam_units::SimTime;

/// The degradation fraction at which a battery reaches End of Life.
pub const EOL_DEGRADATION: f64 = 0.20;

/// True once `degradation` has reached the EoL threshold.
///
/// # Examples
///
/// ```
/// use blam_battery::is_end_of_life;
///
/// assert!(!is_end_of_life(0.19));
/// assert!(is_end_of_life(0.20));
/// ```
#[must_use]
pub fn is_end_of_life(degradation: f64) -> bool {
    degradation >= EOL_DEGRADATION
}

/// Projects when a battery will reach EoL by linear extrapolation of its
/// two most recent `(time, degradation)` samples.
///
/// Returns `None` when fewer than two samples are available, when
/// degradation is not increasing, or when EoL has not been bracketed and
/// cannot be projected. If the last sample is already at EoL its
/// timestamp is returned.
///
/// Long-horizon experiments sample degradation monthly; this helper
/// turns those samples into the lifespan estimates of Fig. 8 without
/// simulating every network past the exact crossing instant.
///
/// # Examples
///
/// ```
/// use blam_battery::project_eol;
/// use blam_units::SimTime;
///
/// let samples = [
///     (SimTime::from_secs(0), 0.0),
///     (SimTime::from_secs(1_000), 0.1),
/// ];
/// let eol = project_eol(&samples).unwrap();
/// assert_eq!(eol.as_secs(), 2_000);
/// ```
#[must_use]
pub fn project_eol(samples: &[(SimTime, f64)]) -> Option<SimTime> {
    let (&(t1, d1), rest) = samples.split_last()?;
    if is_end_of_life(d1) {
        // Walk back to the first sample at/after the threshold.
        let mut eol = t1;
        for &(t, d) in rest.iter().rev() {
            if is_end_of_life(d) {
                eol = t;
            } else {
                break;
            }
        }
        return Some(eol);
    }
    let &(t0, d0) = rest.last()?;
    let dt = (t1 - t0).as_secs_f64();
    let dd = d1 - d0;
    if dt <= 0.0 || dd <= 0.0 {
        return None;
    }
    let remaining = (EOL_DEGRADATION - d1) / (dd / dt);
    if !remaining.is_finite() || remaining < 0.0 {
        return None;
    }
    t1.checked_add(blam_units::Duration::from_secs_f64(remaining))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blam_units::Duration;

    #[test]
    fn threshold_is_twenty_percent() {
        assert!(!is_end_of_life(0.1999));
        assert!(is_end_of_life(0.2));
        assert!(is_end_of_life(0.9));
    }

    #[test]
    fn projection_extrapolates_linearly() {
        let day = Duration::from_days(1);
        let samples = [(SimTime::ZERO, 0.00), (SimTime::ZERO + day * 100, 0.05)];
        // 0.05 per 100 days ⇒ EoL (0.20) at day 400.
        let eol = project_eol(&samples).unwrap();
        assert_eq!(eol.as_days(), 400);
    }

    #[test]
    fn projection_needs_two_samples() {
        assert!(project_eol(&[]).is_none());
        assert!(project_eol(&[(SimTime::ZERO, 0.1)]).is_none());
    }

    #[test]
    fn projection_rejects_flat_or_decreasing() {
        let s = [(SimTime::ZERO, 0.10), (SimTime::from_secs(100), 0.10)];
        assert!(project_eol(&s).is_none());
        let s = [(SimTime::ZERO, 0.10), (SimTime::from_secs(100), 0.05)];
        assert!(project_eol(&s).is_none());
    }

    #[test]
    fn already_at_eol_returns_first_crossing() {
        let s = [
            (SimTime::from_secs(10), 0.18),
            (SimTime::from_secs(20), 0.21),
            (SimTime::from_secs(30), 0.25),
        ];
        assert_eq!(project_eol(&s), Some(SimTime::from_secs(20)));
    }

    #[test]
    fn projection_uses_latest_slope() {
        let s = [
            (SimTime::ZERO, 0.00),
            (SimTime::from_secs(100), 0.01), // slow early
            (SimTime::from_secs(200), 0.10), // fast lately
        ];
        // Latest slope: 0.09 per 100 s ⇒ remaining 0.10 ⇒ ~111 s more.
        let eol = project_eol(&s).unwrap();
        assert!((eol.as_secs_f64() - 311.1).abs() < 1.0, "{eol}");
    }
}
