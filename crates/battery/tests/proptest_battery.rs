//! Property-based tests for rainflow counting and the degradation model.

use blam_battery::degradation::{linear_for_nonlinear, nonlinear_degradation};
use blam_battery::{rainflow_count, Battery, DegradationConstants, PowerSwitch, StreamingRainflow};
use blam_units::{Celsius, Joules, SimTime};
use proptest::prelude::*;

fn soc_trace() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, 0..200)
}

proptest! {
    /// Streaming rainflow must produce exactly the batch result.
    #[test]
    fn streaming_equals_batch(trace in soc_trace()) {
        let batch = rainflow_count(&trace);
        let mut rf = StreamingRainflow::new();
        let mut streamed = Vec::new();
        for &s in &trace {
            streamed.extend(rf.push(s));
        }
        streamed.extend(rf.residue_half_cycles());
        prop_assert_eq!(batch, streamed);
    }

    /// Every counted cycle has a depth within the trace's total span and
    /// a mean within [0, 1]; weights are exactly 1 or ½.
    #[test]
    fn cycles_are_well_formed(trace in soc_trace()) {
        let lo = trace.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = trace.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for c in rainflow_count(&trace) {
            prop_assert!(c.depth >= 0.0 && c.depth <= (hi - lo) + 1e-12);
            prop_assert!((0.0..=1.0).contains(&c.mean_soc));
            prop_assert!(c.weight == 1.0 || c.weight == 0.5);
        }
    }

    /// Total cycle-equivalents equal half the number of direction
    /// reversals (each excursion is half a cycle).
    #[test]
    fn weighted_count_matches_reversals(trace in soc_trace()) {
        // Deduplicate and extract turning points.
        let mut pts: Vec<f64> = Vec::new();
        for &s in &trace {
            if pts.last() != Some(&s) {
                if pts.len() >= 2 {
                    let n = pts.len();
                    let prev_dir = pts[n - 1] > pts[n - 2];
                    let new_dir = s > pts[n - 1];
                    if prev_dir == new_dir {
                        pts.pop();
                    }
                }
                pts.push(s);
            }
        }
        let segments = pts.len().saturating_sub(1);
        let total: f64 = rainflow_count(&trace).iter().map(|c| c.weight).sum();
        prop_assert!(
            (total - segments as f64 / 2.0).abs() < 1e-9,
            "total {total} vs segments {segments}"
        );
    }

    /// The SEI-composite of Eq. (4) is monotone, bounded in [0, 1), and
    /// inverted correctly by bisection.
    #[test]
    fn nonlinear_monotone_and_invertible(dl in 0.0f64..2.0, target in 0.001f64..0.95) {
        let k = DegradationConstants::lmo();
        let d = nonlinear_degradation(dl, &k);
        prop_assert!((0.0..1.0).contains(&d));
        let d_eps = nonlinear_degradation(dl + 1e-6, &k);
        prop_assert!(d_eps >= d);
        let inv = linear_for_nonlinear(target, &k);
        prop_assert!((nonlinear_degradation(inv, &k) - target).abs() < 1e-8);
    }

    /// Degradation never decreases as time advances, whatever the SoC
    /// history.
    #[test]
    fn degradation_monotone_in_time(trace in prop::collection::vec(0.0f64..=1.0, 1..50)) {
        let mut tracker = blam_battery::DegradationTracker::new(Celsius(25.0));
        for (i, &s) in trace.iter().enumerate() {
            tracker.record(SimTime::from_secs(i as u64 * 3_600), s);
        }
        let t1 = SimTime::from_secs(trace.len() as u64 * 3_600);
        let t2 = t1 + blam_units::Duration::from_days(30);
        prop_assert!(tracker.degradation(t2) >= tracker.degradation(t1));
    }

    /// The power switch conserves energy exactly for any inputs.
    #[test]
    fn switch_conserves_energy(
        soc in 0.0f64..=1.0,
        theta in 0.0f64..=1.0,
        harvest in 0.0f64..10.0,
        demand in 0.0f64..10.0,
    ) {
        let mut battery = Battery::new(Joules(5.0), soc, Celsius(25.0));
        let before = battery.stored();
        let out = PowerSwitch::new(theta).step(
            SimTime::from_secs(60),
            &mut battery,
            Joules(harvest),
            Joules(demand),
        );
        // Harvest fully accounted.
        prop_assert!(((out.from_green + out.charged + out.spilled).0 - harvest).abs() < 1e-9);
        // Demand fully accounted.
        prop_assert!(((out.from_green + out.from_battery + out.deficit).0 - demand).abs() < 1e-9);
        // Battery delta consistent.
        let delta = battery.stored() - before;
        prop_assert!((delta - (out.charged - out.from_battery)).0.abs() < 1e-9);
        // θ is respected whenever the battery charged.
        if out.charged.0 > 1e-12 {
            prop_assert!(battery.soc() <= theta + 1e-9);
        }
    }

    /// A battery never stores more than its (degraded) capacity and
    /// never goes negative, across arbitrary operation sequences.
    #[test]
    fn battery_bounds_hold(ops in prop::collection::vec((0.0f64..3.0, any::<bool>()), 1..100)) {
        let mut battery = Battery::new(Joules(10.0), 0.5, Celsius(25.0));
        for (i, &(amount, charge)) in ops.iter().enumerate() {
            let t = SimTime::from_secs(i as u64 * 600);
            if charge {
                battery.charge(t, Joules(amount), 1.0);
            } else {
                battery.discharge(t, Joules(amount));
            }
            prop_assert!(battery.stored().0 >= -1e-12);
            prop_assert!(battery.stored() <= battery.max_capacity() + Joules(1e-12));
        }
    }
}
