//! The gateway radio: parallel demodulation, collisions, half-duplex.
//!
//! A LoRa gateway (e.g. the SX1301-based RAK2245 of the paper's
//! testbed) demodulates up to ω concurrent uplinks across its channels
//! — the `ω` of the paper's constraint (11) — but is half-duplex: while
//! it transmits a downlink ACK it hears nothing. Co-channel, co-SF
//! uplinks that overlap in time interfere and are resolved with the
//! 6 dB capture rule; different SFs are treated as orthogonal (the
//! standard LoRa simulation assumption, as in the NS-3 module the paper
//! uses).

use blam_lora_phy::link::{inter_sf_threshold, sensitivity};
use blam_lora_phy::{Channel, InterferenceModel, SpreadingFactor};
use blam_units::{Dbm, SimTime};
use serde::{Deserialize, Serialize};

use crate::frame::DeviceAddr;

/// Identifier for an in-flight uplink at the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransmissionId(u64);

/// A transmission currently arriving at the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UplinkTransmission {
    /// Sending device.
    pub device: DeviceAddr,
    /// Channel the uplink rides on.
    pub channel: Channel,
    /// Spreading factor of the uplink.
    pub sf: SpreadingFactor,
    /// Received signal strength at the gateway.
    pub rssi: Dbm,
    /// When the transmission started.
    pub start: SimTime,
    /// When its airtime ends.
    pub end: SimTime,
}

/// Why an uplink was or wasn't received.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReceptionOutcome {
    /// Demodulated successfully.
    Received,
    /// Below the gateway's sensitivity for this SF/bandwidth.
    TooWeak,
    /// Lost to a co-channel, co-SF collision (no 6 dB capture).
    Collided,
    /// All ω demodulation paths were busy when it arrived.
    NoDemodPath,
    /// The gateway was transmitting a downlink during the reception
    /// (half-duplex).
    GatewayDeaf,
}

impl ReceptionOutcome {
    /// True for [`ReceptionOutcome::Received`].
    #[must_use]
    pub fn is_received(self) -> bool {
        self == ReceptionOutcome::Received
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Ongoing {
    id: TransmissionId,
    tx: UplinkTransmission,
    /// True once some overlapping transmission exceeded this
    /// reception's capture/rejection threshold.
    collided: bool,
    /// True if a downlink overlapped this reception.
    deafened: bool,
    /// True if no demodulation path was free at arrival.
    no_path: bool,
}

/// The gateway radio model.
///
/// # Examples
///
/// ```
/// use blam_lorawan::{DeviceAddr, GatewayRadio, ReceptionOutcome, UplinkTransmission};
/// use blam_lora_phy::{SpreadingFactor, Us915};
/// use blam_units::{Dbm, SimTime};
///
/// let mut gw = GatewayRadio::new(8);
/// let id = gw.begin_uplink(UplinkTransmission {
///     device: DeviceAddr(1),
///     channel: Us915::uplink_125(8),
///     sf: SpreadingFactor::Sf10,
///     rssi: Dbm(-110.0),
///     start: SimTime::ZERO,
///     end: SimTime::from_secs(1),
/// });
/// assert_eq!(gw.end_uplink(id), ReceptionOutcome::Received);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatewayRadio {
    demod_paths: usize,
    interference: InterferenceModel,
    active: Vec<Ongoing>,
    downlink_busy_until: SimTime,
    next_id: u64,
}

impl GatewayRadio {
    /// Creates a gateway with ω demodulation paths.
    ///
    /// # Panics
    ///
    /// Panics if `demod_paths` is zero.
    #[must_use]
    pub fn new(demod_paths: usize) -> Self {
        assert!(demod_paths > 0, "gateway needs at least one demod path");
        GatewayRadio {
            demod_paths,
            interference: InterferenceModel::Orthogonal,
            active: Vec::new(),
            downlink_busy_until: SimTime::ZERO,
            next_id: 0,
        }
    }

    /// Selects the cross-SF interference model (orthogonal by default,
    /// as in the NS-3 module the paper uses).
    #[must_use]
    pub fn with_interference(mut self, interference: InterferenceModel) -> Self {
        self.interference = interference;
        self
    }

    /// Number of demodulation paths (the paper's ω).
    #[must_use]
    pub fn demod_paths(&self) -> usize {
        self.demod_paths
    }

    /// Number of uplinks currently arriving.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Registers an uplink that starts arriving now; call
    /// [`end_uplink`](GatewayRadio::end_uplink) when its airtime ends.
    pub fn begin_uplink(&mut self, tx: UplinkTransmission) -> TransmissionId {
        let id = TransmissionId(self.next_id);
        self.next_id += 1;

        let deafened = tx.start < self.downlink_busy_until;
        let paths_in_use = self.active.iter().filter(|o| !o.no_path).count();
        let no_path = paths_in_use >= self.demod_paths;

        let mut entry = Ongoing {
            id,
            tx,
            collided: false,
            deafened,
            no_path,
        };
        // Mutual interference with concurrent same-channel receptions —
        // both directions. A reception survives each overlapping pair
        // only if it clears the capture/rejection threshold for the
        // SF pair (co-SF: 6 dB; cross-SF: only under the non-orthogonal
        // model, with Croce et al.'s thresholds).
        for other in &mut self.active {
            if other.tx.channel != tx.channel {
                continue;
            }
            let cross_sf = other.tx.sf != tx.sf;
            if cross_sf && self.interference == InterferenceModel::Orthogonal {
                continue;
            }
            if (tx.rssi - other.tx.rssi).0 < inter_sf_threshold(tx.sf, other.tx.sf).0 {
                entry.collided = true;
            }
            if (other.tx.rssi - tx.rssi).0 < inter_sf_threshold(other.tx.sf, tx.sf).0 {
                other.collided = true;
            }
        }
        self.active.push(entry);
        id
    }

    /// Concludes a reception and reports its outcome.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an active reception.
    pub fn end_uplink(&mut self, id: TransmissionId) -> ReceptionOutcome {
        let idx = self
            .active
            .iter()
            .position(|o| o.id == id)
            .expect("end_uplink: unknown transmission id");
        let entry = self.active.swap_remove(idx);
        // Half-duplex check also covers downlinks that started mid-way.
        let deafened = entry.deafened || entry.tx.start < self.downlink_busy_until;
        if deafened {
            return ReceptionOutcome::GatewayDeaf;
        }
        if entry.no_path {
            return ReceptionOutcome::NoDemodPath;
        }
        if entry.tx.rssi.0 < sensitivity(entry.tx.sf, entry.tx.channel.bandwidth).0 {
            return ReceptionOutcome::TooWeak;
        }
        if entry.collided {
            ReceptionOutcome::Collided
        } else {
            ReceptionOutcome::Received
        }
    }

    /// True if the gateway can start a downlink now (not already
    /// transmitting one).
    #[must_use]
    pub fn downlink_available(&self, now: SimTime) -> bool {
        now >= self.downlink_busy_until
    }

    /// Starts a downlink occupying the radio over `[now, until)`.
    /// Every uplink reception overlapping that interval is lost
    /// (half-duplex).
    ///
    /// # Panics
    ///
    /// Panics if a downlink is already in progress.
    pub fn begin_downlink(&mut self, now: SimTime, until: SimTime) {
        assert!(
            self.downlink_available(now),
            "downlink while gateway already transmitting"
        );
        self.downlink_busy_until = until;
        for o in &mut self.active {
            o.deafened = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blam_lora_phy::Us915;

    fn tx(
        dev: u32,
        ch: u8,
        sf: SpreadingFactor,
        rssi: f64,
        start: u64,
        end: u64,
    ) -> UplinkTransmission {
        UplinkTransmission {
            device: DeviceAddr(dev),
            channel: Us915::uplink_125(ch),
            sf,
            rssi: Dbm(rssi),
            start: SimTime::from_millis(start),
            end: SimTime::from_millis(end),
        }
    }

    #[test]
    fn clean_reception() {
        let mut gw = GatewayRadio::new(8);
        let id = gw.begin_uplink(tx(1, 0, SpreadingFactor::Sf10, -110.0, 0, 300));
        assert_eq!(gw.active_count(), 1);
        assert_eq!(gw.end_uplink(id), ReceptionOutcome::Received);
        assert_eq!(gw.active_count(), 0);
    }

    #[test]
    fn below_sensitivity_is_too_weak() {
        let mut gw = GatewayRadio::new(8);
        let id = gw.begin_uplink(tx(1, 0, SpreadingFactor::Sf7, -130.0, 0, 300));
        assert_eq!(gw.end_uplink(id), ReceptionOutcome::TooWeak);
    }

    #[test]
    fn co_channel_co_sf_collision_no_capture() {
        let mut gw = GatewayRadio::new(8);
        let a = gw.begin_uplink(tx(1, 0, SpreadingFactor::Sf10, -110.0, 0, 300));
        let b = gw.begin_uplink(tx(2, 0, SpreadingFactor::Sf10, -112.0, 100, 400));
        assert_eq!(gw.end_uplink(a), ReceptionOutcome::Collided);
        assert_eq!(gw.end_uplink(b), ReceptionOutcome::Collided);
    }

    #[test]
    fn capture_lets_strong_signal_through() {
        let mut gw = GatewayRadio::new(8);
        let strong = gw.begin_uplink(tx(1, 0, SpreadingFactor::Sf10, -100.0, 0, 300));
        let weak = gw.begin_uplink(tx(2, 0, SpreadingFactor::Sf10, -110.0, 100, 400));
        assert_eq!(gw.end_uplink(strong), ReceptionOutcome::Received);
        assert_eq!(gw.end_uplink(weak), ReceptionOutcome::Collided);
    }

    #[test]
    fn different_channels_do_not_interfere() {
        let mut gw = GatewayRadio::new(8);
        let a = gw.begin_uplink(tx(1, 0, SpreadingFactor::Sf10, -110.0, 0, 300));
        let b = gw.begin_uplink(tx(2, 1, SpreadingFactor::Sf10, -110.0, 0, 300));
        assert_eq!(gw.end_uplink(a), ReceptionOutcome::Received);
        assert_eq!(gw.end_uplink(b), ReceptionOutcome::Received);
    }

    #[test]
    fn different_sfs_are_orthogonal() {
        let mut gw = GatewayRadio::new(8);
        let a = gw.begin_uplink(tx(1, 0, SpreadingFactor::Sf10, -110.0, 0, 300));
        let b = gw.begin_uplink(tx(2, 0, SpreadingFactor::Sf9, -110.0, 0, 300));
        assert_eq!(gw.end_uplink(a), ReceptionOutcome::Received);
        assert_eq!(gw.end_uplink(b), ReceptionOutcome::Received);
    }

    #[test]
    fn demod_paths_limit_concurrency() {
        let mut gw = GatewayRadio::new(2);
        // Three concurrent uplinks on three different channels.
        let a = gw.begin_uplink(tx(1, 0, SpreadingFactor::Sf10, -110.0, 0, 300));
        let b = gw.begin_uplink(tx(2, 1, SpreadingFactor::Sf10, -110.0, 0, 300));
        let c = gw.begin_uplink(tx(3, 2, SpreadingFactor::Sf10, -110.0, 0, 300));
        assert_eq!(gw.end_uplink(a), ReceptionOutcome::Received);
        assert_eq!(gw.end_uplink(b), ReceptionOutcome::Received);
        assert_eq!(gw.end_uplink(c), ReceptionOutcome::NoDemodPath);
    }

    #[test]
    fn path_frees_after_reception_ends() {
        let mut gw = GatewayRadio::new(1);
        let a = gw.begin_uplink(tx(1, 0, SpreadingFactor::Sf10, -110.0, 0, 300));
        assert_eq!(gw.end_uplink(a), ReceptionOutcome::Received);
        let b = gw.begin_uplink(tx(2, 1, SpreadingFactor::Sf10, -110.0, 300, 600));
        assert_eq!(gw.end_uplink(b), ReceptionOutcome::Received);
    }

    #[test]
    fn downlink_deafens_ongoing_and_new_uplinks() {
        let mut gw = GatewayRadio::new(8);
        let a = gw.begin_uplink(tx(1, 0, SpreadingFactor::Sf10, -110.0, 0, 1_000));
        gw.begin_downlink(SimTime::from_millis(200), SimTime::from_millis(500));
        // New arrival during the downlink.
        let b = gw.begin_uplink(tx(2, 1, SpreadingFactor::Sf10, -110.0, 300, 900));
        assert_eq!(gw.end_uplink(a), ReceptionOutcome::GatewayDeaf);
        assert_eq!(gw.end_uplink(b), ReceptionOutcome::GatewayDeaf);
        // After the downlink the radio hears again.
        let c = gw.begin_uplink(tx(3, 0, SpreadingFactor::Sf10, -110.0, 600, 900));
        assert_eq!(gw.end_uplink(c), ReceptionOutcome::Received);
    }

    #[test]
    fn downlink_availability() {
        let mut gw = GatewayRadio::new(8);
        assert!(gw.downlink_available(SimTime::ZERO));
        gw.begin_downlink(SimTime::ZERO, SimTime::from_millis(100));
        assert!(!gw.downlink_available(SimTime::from_millis(50)));
        assert!(gw.downlink_available(SimTime::from_millis(100)));
    }

    #[test]
    #[should_panic(expected = "already transmitting")]
    fn overlapping_downlinks_panic() {
        let mut gw = GatewayRadio::new(8);
        gw.begin_downlink(SimTime::ZERO, SimTime::from_millis(100));
        gw.begin_downlink(SimTime::from_millis(50), SimTime::from_millis(150));
    }

    #[test]
    fn three_way_collision_strongest_needs_6db_over_runner_up() {
        let mut gw = GatewayRadio::new(8);
        let a = gw.begin_uplink(tx(1, 0, SpreadingFactor::Sf10, -100.0, 0, 300));
        let b = gw.begin_uplink(tx(2, 0, SpreadingFactor::Sf10, -104.0, 0, 300));
        let c = gw.begin_uplink(tx(3, 0, SpreadingFactor::Sf10, -120.0, 0, 300));
        // a is only 4 dB above b: nobody captures.
        assert_eq!(gw.end_uplink(a), ReceptionOutcome::Collided);
        assert_eq!(gw.end_uplink(b), ReceptionOutcome::Collided);
        assert_eq!(gw.end_uplink(c), ReceptionOutcome::Collided);
    }

    #[test]
    fn non_orthogonal_cross_sf_interference() {
        // Under the non-orthogonal model, a strong SF7 burst destroys a
        // weak SF12 reception once it exceeds the rejection threshold.
        let mut gw = GatewayRadio::new(8).with_interference(InterferenceModel::NonOrthogonal);
        // SF12 at −130 dBm vs SF7 interferer at −95 dBm: the SF12 signal
        // is 35 dB below, beyond its −23 dB tolerance.
        let weak = gw.begin_uplink(tx(1, 0, SpreadingFactor::Sf12, -130.0, 0, 1_500));
        let loud = gw.begin_uplink(tx(2, 0, SpreadingFactor::Sf7, -95.0, 100, 200));
        assert_eq!(gw.end_uplink(loud), ReceptionOutcome::Received);
        assert_eq!(gw.end_uplink(weak), ReceptionOutcome::Collided);

        // A modestly louder SF7 (within SF12's tolerance) does no harm.
        let weak = gw.begin_uplink(tx(3, 0, SpreadingFactor::Sf12, -120.0, 2_000, 3_500));
        let mild = gw.begin_uplink(tx(4, 0, SpreadingFactor::Sf7, -110.0, 2_100, 2_200));
        assert_eq!(gw.end_uplink(mild), ReceptionOutcome::Received);
        assert_eq!(gw.end_uplink(weak), ReceptionOutcome::Received);
    }

    #[test]
    fn orthogonal_model_ignores_cross_sf() {
        let mut gw = GatewayRadio::new(8); // default: orthogonal
        let weak = gw.begin_uplink(tx(1, 0, SpreadingFactor::Sf12, -130.0, 0, 1_500));
        let loud = gw.begin_uplink(tx(2, 0, SpreadingFactor::Sf7, -60.0, 100, 200));
        assert_eq!(gw.end_uplink(loud), ReceptionOutcome::Received);
        assert_eq!(gw.end_uplink(weak), ReceptionOutcome::Received);
    }

    #[test]
    fn sequential_same_channel_uplinks_do_not_interfere() {
        let mut gw = GatewayRadio::new(8);
        let a = gw.begin_uplink(tx(1, 0, SpreadingFactor::Sf10, -110.0, 0, 300));
        assert_eq!(gw.end_uplink(a), ReceptionOutcome::Received);
        let b = gw.begin_uplink(tx(2, 0, SpreadingFactor::Sf10, -110.0, 301, 600));
        assert_eq!(gw.end_uplink(b), ReceptionOutcome::Received);
    }
}
