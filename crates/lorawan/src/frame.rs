//! Frames and addressing.
//!
//! Frames are modeled structurally (no bit-level encoding): what the
//! simulation needs is *sizes* — airtime and energy follow from the PHY
//! payload length — plus the metadata the MAC and server act on.

use serde::{Deserialize, Serialize};

/// LoRaWAN MAC-layer overhead added to every application payload:
/// MHDR (1) + DevAddr (4) + FCtrl (1) + FCnt (2) + FPort (1) + MIC (4).
pub const MAC_OVERHEAD_BYTES: usize = 13;

/// A device (end-node) address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DeviceAddr(pub u32);

impl std::fmt::Display for DeviceAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{:05}", self.0)
    }
}

/// An uplink frame.
///
/// # Examples
///
/// ```
/// use blam_lorawan::{Uplink, MAC_OVERHEAD_BYTES};
///
/// let mut up = Uplink::confirmed(10);
/// up.piggyback_len = 4; // the paper's compressed SoC trace
/// assert_eq!(up.phy_payload_len(), 10 + 4 + MAC_OVERHEAD_BYTES);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uplink {
    /// Sending device.
    pub device: DeviceAddr,
    /// Uplink frame counter.
    pub fcnt: u32,
    /// Application payload length in bytes.
    pub app_payload_len: usize,
    /// Extra protocol bytes appended by the MAC above (the paper's
    /// 4-byte battery-trace piggyback).
    pub piggyback_len: usize,
    /// Whether the uplink requests an acknowledgment.
    pub confirmed: bool,
}

impl Uplink {
    /// A confirmed uplink with the given application payload size
    /// (device/fcnt zeroed; the MAC fills them in).
    #[must_use]
    pub fn confirmed(app_payload_len: usize) -> Self {
        Uplink {
            device: DeviceAddr(0),
            fcnt: 0,
            app_payload_len,
            piggyback_len: 0,
            confirmed: true,
        }
    }

    /// An unconfirmed uplink.
    #[must_use]
    pub fn unconfirmed(app_payload_len: usize) -> Self {
        Uplink {
            confirmed: false,
            ..Uplink::confirmed(app_payload_len)
        }
    }

    /// The PHY payload length: application payload + piggyback + MAC
    /// overhead.
    #[must_use]
    pub fn phy_payload_len(&self) -> usize {
        self.app_payload_len + self.piggyback_len + MAC_OVERHEAD_BYTES
    }
}

/// A downlink frame (Class A: sent in one of the receive windows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Downlink {
    /// Destination device.
    pub device: DeviceAddr,
    /// Acknowledges the last confirmed uplink.
    pub ack: bool,
    /// Application/piggyback payload length (the paper's 1-byte
    /// normalized degradation rides here).
    pub payload_len: usize,
}

impl Downlink {
    /// An ACK for `device` carrying `payload_len` piggyback bytes.
    #[must_use]
    pub fn ack(device: DeviceAddr, payload_len: usize) -> Self {
        Downlink {
            device,
            ack: true,
            payload_len,
        }
    }

    /// The PHY payload length including MAC overhead.
    #[must_use]
    pub fn phy_payload_len(&self) -> usize {
        self.payload_len + MAC_OVERHEAD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplink_sizes() {
        let up = Uplink::confirmed(10);
        assert_eq!(up.phy_payload_len(), 23);
        let mut up = up;
        up.piggyback_len = 4;
        assert_eq!(up.phy_payload_len(), 27);
    }

    #[test]
    fn unconfirmed_flag() {
        assert!(!Uplink::unconfirmed(5).confirmed);
        assert!(Uplink::confirmed(5).confirmed);
    }

    #[test]
    fn downlink_sizes() {
        let d = Downlink::ack(DeviceAddr(3), 1);
        assert!(d.ack);
        assert_eq!(d.phy_payload_len(), 14);
    }

    #[test]
    fn device_addr_display() {
        assert_eq!(DeviceAddr(42).to_string(), "dev00042");
    }
}
