//! LoRaWAN substrate: Class-A MAC, gateway radio and network server.
//!
//! This crate models the parts of LoRaWAN the paper's evaluation
//! depends on, in a *sans-IO* style: every component is a pure state
//! machine that consumes events and returns actions, and the `netsim`
//! crate wires those actions into the discrete-event simulator. That
//! keeps each piece unit-testable without a running simulation.
//!
//! * [`frame`] — uplink/downlink frames with LoRaWAN size accounting
//!   (13-byte MAC overhead) so airtime and energy are computed on real
//!   PHY payload sizes, including the paper's piggyback bytes.
//! * [`mac`] — [`ClassAMac`]: pure-ALOHA confirmed uplinks with
//!   pseudo-random channel hopping, RX1/RX2 receive windows and up to 8
//!   transmissions per packet (the LoRa maximum the paper cites).
//! * [`gateway`] — [`GatewayRadio`]: ω parallel demodulation paths,
//!   co-channel/co-SF collision resolution with 6 dB capture, and
//!   half-duplex behaviour (transmitting an ACK deafens the uplink
//!   receiver — a major collision source at scale).
//! * [`server`] — [`NetworkServer`]: frame-counter deduplication and
//!   ACK generation with a hook for piggybacked downlink bytes (the
//!   paper's normalized-degradation dissemination).
//! * [`adr`] — [`AdrEngine`]: server-side Adaptive Data Rate, the
//!   mechanism whose parameter changes motivate the paper's EWMA
//!   energy estimator (Eq. 13).
//! * [`codec`] — the LoRaWAN 1.0.x wire format, consistent with the
//!   13-byte framing the airtime and energy models assume.
//!
//! # Examples
//!
//! Drive one confirmed uplink through the MAC state machine:
//!
//! ```
//! use blam_lorawan::{ClassAMac, MacAction, MacParams, Uplink};
//! use blam_units::SimTime;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let mut mac = ClassAMac::new(MacParams::default());
//! let actions = mac.send(SimTime::ZERO, Uplink::confirmed(10), &mut rng);
//! assert!(matches!(actions[0], MacAction::Transmit(_)));
//! ```

// `forbid(unsafe_code)` comes from `[workspace.lints]` in the root
// manifest; only the doc requirement stays crate-local.
#![warn(missing_docs)]

pub mod adr;
pub mod codec;
pub mod frame;
pub mod gateway;
pub mod mac;
pub mod server;

pub use adr::{AdrCommand, AdrEngine, AdrState};
pub use codec::{decode, encode, DecodeFrameError, MType, WireFrame};
pub use frame::{DeviceAddr, Downlink, Uplink, MAC_OVERHEAD_BYTES};
pub use gateway::{GatewayRadio, ReceptionOutcome, TransmissionId, UplinkTransmission};
pub use mac::{ClassAMac, MacAction, MacParams, MacState, TransmitDescriptor, TxReport};
pub use server::{AckDecision, NetworkServer, ServerState};
