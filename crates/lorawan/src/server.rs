//! The network server: deduplication and ACK generation.
//!
//! The server sits behind the gateway, deduplicates retransmitted
//! frames by frame counter, and answers every confirmed uplink with an
//! ACK in the device's RX1 window. A per-device piggyback byte can be
//! attached to outgoing ACKs — the hook the paper's protocol uses to
//! disseminate normalized battery degradation once a day.

use std::collections::HashMap;

use blam_lora_phy::{Channel, ChannelPlan, SpreadingFactor};
use serde::{Deserialize, Serialize};

use crate::frame::{DeviceAddr, Downlink, Uplink};

/// The server's response to a received uplink.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AckDecision {
    /// The downlink to transmit in the device's RX1 window.
    pub downlink: Downlink,
    /// The downlink channel (RX1 mapping of the uplink channel).
    pub channel: Channel,
    /// The downlink spreading factor.
    pub sf: SpreadingFactor,
    /// True if this uplink was a retransmission of an
    /// already-delivered frame (the application layer must not count it
    /// again).
    pub duplicate: bool,
    /// Piggyback byte included in the ACK, if one was pending.
    pub piggyback: Option<u8>,
}

/// A minimal LoRaWAN network server.
///
/// # Examples
///
/// ```
/// use blam_lorawan::{DeviceAddr, NetworkServer, Uplink};
/// use blam_lora_phy::{ChannelPlan, SpreadingFactor, Us915};
///
/// let plan = ChannelPlan::default();
/// let mut server = NetworkServer::new();
/// server.set_piggyback(DeviceAddr(1), 128);
///
/// let mut up = Uplink::confirmed(10);
/// up.device = DeviceAddr(1);
/// let decision = server.on_uplink(&up, &plan.uplink[0], SpreadingFactor::Sf10, &plan);
/// assert!(decision.downlink.ack);
/// assert_eq!(decision.piggyback, Some(128));
/// assert!(!decision.duplicate);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetworkServer {
    last_fcnt: HashMap<DeviceAddr, u32>,
    pending_piggyback: HashMap<DeviceAddr, u8>,
    unique_received: u64,
    duplicates: u64,
}

impl NetworkServer {
    /// Creates an empty server.
    #[must_use]
    pub fn new() -> Self {
        NetworkServer::default()
    }

    /// Queues a piggyback byte to ride on the next ACK to `device`
    /// (replacing any pending byte).
    pub fn set_piggyback(&mut self, device: DeviceAddr, value: u8) {
        self.pending_piggyback.insert(device, value);
    }

    /// Processes a successfully demodulated uplink and produces the ACK
    /// decision. Every confirmed uplink is acknowledged — including
    /// retransmissions, whose earlier ACK may have been lost — but
    /// retransmissions are flagged as duplicates.
    pub fn on_uplink(
        &mut self,
        frame: &Uplink,
        uplink_channel: &Channel,
        uplink_sf: SpreadingFactor,
        plan: &ChannelPlan,
    ) -> AckDecision {
        let duplicate = match self.last_fcnt.get(&frame.device) {
            Some(&last) => last == frame.fcnt,
            None => false,
        };
        if duplicate {
            self.duplicates += 1;
        } else {
            self.unique_received += 1;
            self.last_fcnt.insert(frame.device, frame.fcnt);
        }
        let piggyback = self.pending_piggyback.remove(&frame.device);
        let payload_len = usize::from(piggyback.is_some());
        AckDecision {
            downlink: Downlink::ack(frame.device, payload_len),
            channel: plan.rx1_channel(uplink_channel),
            sf: plan.rx1_sf(uplink_sf),
            duplicate,
            piggyback,
        }
    }

    /// Unique (non-duplicate) frames received so far.
    #[must_use]
    pub fn unique_received(&self) -> u64 {
        self.unique_received
    }

    /// Duplicate frames (retransmissions of delivered frames) seen.
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Captures the server's state for checkpointing. The hash-map
    /// contents are exported as device-sorted vectors, so the snapshot
    /// bytes never depend on hash iteration order.
    #[must_use]
    pub fn checkpoint(&self) -> ServerState {
        let mut last_fcnt: Vec<(DeviceAddr, u32)> =
            self.last_fcnt.iter().map(|(&d, &f)| (d, f)).collect();
        last_fcnt.sort_unstable_by_key(|&(d, _)| d);
        let mut pending_piggyback: Vec<(DeviceAddr, u8)> = self
            .pending_piggyback
            .iter()
            .map(|(&d, &b)| (d, b))
            .collect();
        pending_piggyback.sort_unstable_by_key(|&(d, _)| d);
        ServerState {
            last_fcnt,
            pending_piggyback,
            unique_received: self.unique_received,
            duplicates: self.duplicates,
        }
    }

    /// Rebuilds a server from a [`ServerState`] checkpoint.
    #[must_use]
    pub fn restore(state: ServerState) -> Self {
        NetworkServer {
            // analyzer: allow(determinism, reason = "iterates the snapshot's sorted Vec to refill the map; insertion order cannot affect map contents")
            last_fcnt: state.last_fcnt.into_iter().collect(),
            // analyzer: allow(determinism, reason = "iterates the snapshot's sorted Vec to refill the map; insertion order cannot affect map contents")
            pending_piggyback: state.pending_piggyback.into_iter().collect(),
            unique_received: state.unique_received,
            duplicates: state.duplicates,
        }
    }
}

/// A serializable image of a [`NetworkServer`] — map contents sorted
/// by device address for deterministic snapshot bytes.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerState {
    /// Last frame counter seen per device, sorted by device.
    pub last_fcnt: Vec<(DeviceAddr, u32)>,
    /// Pending piggyback byte per device, sorted by device.
    pub pending_piggyback: Vec<(DeviceAddr, u8)>,
    /// Unique (non-duplicate) frames received.
    pub unique_received: u64,
    /// Duplicate frames seen.
    pub duplicates: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uplink(dev: u32, fcnt: u32) -> Uplink {
        let mut u = Uplink::confirmed(10);
        u.device = DeviceAddr(dev);
        u.fcnt = fcnt;
        u
    }

    fn plan() -> ChannelPlan {
        ChannelPlan::default()
    }

    #[test]
    fn acks_every_uplink() {
        let p = plan();
        let mut s = NetworkServer::new();
        let d = s.on_uplink(&uplink(1, 0), &p.uplink[0], SpreadingFactor::Sf10, &p);
        assert!(d.downlink.ack);
        assert_eq!(d.downlink.device, DeviceAddr(1));
        assert_eq!(s.unique_received(), 1);
    }

    #[test]
    fn duplicate_detection_by_fcnt() {
        let p = plan();
        let mut s = NetworkServer::new();
        let first = s.on_uplink(&uplink(1, 5), &p.uplink[0], SpreadingFactor::Sf10, &p);
        assert!(!first.duplicate);
        let second = s.on_uplink(&uplink(1, 5), &p.uplink[1], SpreadingFactor::Sf10, &p);
        assert!(second.duplicate);
        assert!(second.downlink.ack, "duplicates are still ACKed");
        assert_eq!(s.unique_received(), 1);
        assert_eq!(s.duplicates(), 1);
        let third = s.on_uplink(&uplink(1, 6), &p.uplink[0], SpreadingFactor::Sf10, &p);
        assert!(!third.duplicate);
    }

    #[test]
    fn devices_are_independent() {
        let p = plan();
        let mut s = NetworkServer::new();
        s.on_uplink(&uplink(1, 0), &p.uplink[0], SpreadingFactor::Sf10, &p);
        let other = s.on_uplink(&uplink(2, 0), &p.uplink[0], SpreadingFactor::Sf10, &p);
        assert!(!other.duplicate);
        assert_eq!(s.unique_received(), 2);
    }

    #[test]
    fn piggyback_rides_once() {
        let p = plan();
        let mut s = NetworkServer::new();
        s.set_piggyback(DeviceAddr(1), 200);
        let d = s.on_uplink(&uplink(1, 0), &p.uplink[0], SpreadingFactor::Sf10, &p);
        assert_eq!(d.piggyback, Some(200));
        assert_eq!(d.downlink.payload_len, 1);
        // Consumed: the next ACK is empty.
        let d = s.on_uplink(&uplink(1, 1), &p.uplink[0], SpreadingFactor::Sf10, &p);
        assert_eq!(d.piggyback, None);
        assert_eq!(d.downlink.payload_len, 0);
    }

    #[test]
    fn rx1_mapping_used_for_ack() {
        let p = plan();
        let mut s = NetworkServer::new();
        // Sub-band 2 channel index 17 maps to downlink 17 % 8 = 1.
        let up_ch = p.uplink[1];
        assert_eq!(up_ch.index, 17);
        let d = s.on_uplink(&uplink(1, 0), &up_ch, SpreadingFactor::Sf9, &p);
        assert_eq!(d.channel.index, 1);
        assert_eq!(d.sf, SpreadingFactor::Sf9);
    }
}
