//! The Class-A end-device MAC state machine.
//!
//! LoRaWAN end devices transmit pure-ALOHA: a confirmed uplink goes out
//! on a pseudo-randomly hopped channel the moment the MAC is asked to
//! send, two receive windows open 1 s and 2 s after the uplink ends,
//! and if no ACK arrives the frame is retransmitted after a short
//! random ACK timeout, up to 8 transmissions total (the maximum the
//! paper cites for LoRa).
//!
//! The state machine is *sans-IO*: each input returns the
//! [`MacAction`]s the caller must perform (start a radio transmission,
//! schedule a callback, surface a completion report). The same
//! machinery serves both the LoRaWAN baseline (send immediately on
//! packet generation) and the paper's protocol (send at the start of
//! the selected forecast window).

use blam_lora_phy::{Channel, ChannelPlan, TxConfig};
use blam_units::{Duration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::frame::{DeviceAddr, Uplink};

/// Static MAC parameters for one end device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacParams {
    /// This device's address.
    pub device: DeviceAddr,
    /// Channel plan to hop over.
    pub plan: ChannelPlan,
    /// Radio configuration for uplinks.
    pub tx: TxConfig,
    /// Maximum transmissions per confirmed uplink (first + retries).
    pub max_transmissions: u8,
    /// Minimum ACK-timeout backoff before a retransmission.
    pub ack_timeout_min: Duration,
    /// Maximum ACK-timeout backoff before a retransmission.
    pub ack_timeout_max: Duration,
    /// How long the receiver stays open per receive window when no
    /// preamble is detected.
    pub rx_window: Duration,
    /// Regulatory duty cycle as a fraction of airtime (EU868 sub-bands:
    /// 0.01). `None` disables enforcement (US915 has dwell-time rules
    /// instead, which the paper's 10-byte payloads never hit).
    pub duty_cycle: Option<f64>,
}

impl Default for MacParams {
    /// LoRaWAN defaults: sub-band 2, SF10/125 kHz/CR4-5 at 14 dBm,
    /// 8 transmissions, 1–3 s ACK timeout, 50 ms idle receive windows.
    fn default() -> Self {
        MacParams {
            device: DeviceAddr(0),
            plan: ChannelPlan::default(),
            tx: TxConfig::default(),
            max_transmissions: 8,
            ack_timeout_min: Duration::from_secs(1),
            ack_timeout_max: Duration::from_secs(3),
            rx_window: Duration::from_millis(50),
            duty_cycle: None,
        }
    }
}

/// Everything the radio needs to start one uplink transmission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransmitDescriptor {
    /// Uplink channel chosen by the hopper.
    pub channel: Channel,
    /// Radio configuration.
    pub config: TxConfig,
    /// The frame being (re)transmitted.
    pub frame: Uplink,
    /// Time on air for this frame.
    pub airtime: Duration,
    /// 1-based transmission attempt number.
    pub attempt: u8,
}

/// Final accounting for one confirmed-uplink exchange.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxReport {
    /// The frame that completed (or was dropped).
    pub frame: Uplink,
    /// Number of transmissions used.
    pub transmissions: u8,
    /// True if an ACK was received.
    pub delivered: bool,
    /// Total time spent transmitting.
    pub total_airtime: Duration,
    /// Total time spent with the receiver open.
    pub total_rx_time: Duration,
    /// When the exchange concluded.
    pub completed_at: SimTime,
}

/// Actions the caller must carry out after feeding the MAC an input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MacAction {
    /// Start a radio transmission now; call
    /// [`ClassAMac::on_tx_completed`] when its airtime elapses.
    Transmit(TransmitDescriptor),
    /// Call [`ClassAMac::on_rx_deadline`] at this absolute time unless
    /// an ACK arrives first.
    ScheduleRxDeadline(SimTime),
    /// Call [`ClassAMac::on_retransmit_time`] at this absolute time.
    ScheduleRetransmit(SimTime),
    /// The exchange finished; deliver the report to the application.
    Complete(TxReport),
}

/// MAC protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MacState {
    /// No exchange in progress.
    Idle,
    /// An uplink is on the air.
    Transmitting,
    /// Receive windows are open / pending.
    WaitingRx,
    /// ACK timeout running before the next retransmission.
    Backoff,
}

/// The Class-A MAC state machine for one end device.
///
/// # Examples
///
/// A full no-ACK exchange that exhausts all transmissions:
///
/// ```
/// use blam_lorawan::{ClassAMac, MacAction, MacParams, Uplink};
/// use blam_units::SimTime;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let params = MacParams { max_transmissions: 2, ..MacParams::default() };
/// let mut mac = ClassAMac::new(params);
///
/// let mut now = SimTime::ZERO;
/// let mut actions = mac.send(now, Uplink::confirmed(10), &mut rng);
/// for _ in 0..2 {
///     let MacAction::Transmit(tx) = actions[0] else { panic!() };
///     now = now + tx.airtime;
///     actions = mac.on_tx_completed(now);
///     let MacAction::ScheduleRxDeadline(deadline) = actions[0] else { panic!() };
///     now = deadline;
///     actions = mac.on_rx_deadline(now, &mut rng);
///     if let MacAction::ScheduleRetransmit(at) = actions[0] {
///         now = at;
///         actions = mac.on_retransmit_time(now, &mut rng);
///     }
/// }
/// let MacAction::Complete(report) = actions[0] else { panic!() };
/// assert!(!report.delivered);
/// assert_eq!(report.transmissions, 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassAMac {
    params: MacParams,
    state: MacState,
    next_fcnt: u32,
    current: Option<Exchange>,
    /// Earliest instant the duty cycle permits the next transmission.
    duty_free_at: SimTime,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Exchange {
    frame: Uplink,
    attempt: u8,
    total_airtime: Duration,
    total_rx_time: Duration,
}

impl ClassAMac {
    /// Creates an idle MAC.
    #[must_use]
    pub fn new(params: MacParams) -> Self {
        assert!(
            params.max_transmissions >= 1,
            "max_transmissions must be at least 1"
        );
        assert!(
            !params.plan.uplink.is_empty(),
            "channel plan has no uplink channels"
        );
        assert!(
            params.ack_timeout_min <= params.ack_timeout_max,
            "ACK timeout bounds inverted"
        );
        ClassAMac {
            params,
            state: MacState::Idle,
            next_fcnt: 0,
            current: None,
            duty_free_at: SimTime::ZERO,
        }
    }

    /// The earliest instant the regulatory duty cycle permits another
    /// transmission (always the past when enforcement is off).
    #[must_use]
    pub fn duty_free_at(&self) -> SimTime {
        self.duty_free_at
    }

    /// The MAC parameters.
    #[must_use]
    pub fn params(&self) -> &MacParams {
        &self.params
    }

    /// Current protocol state.
    #[must_use]
    pub fn state(&self) -> MacState {
        self.state
    }

    /// True when a send may be issued.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.state == MacState::Idle
    }

    /// The frame of the exchange currently in progress, if any — the
    /// authoritative device/counter/payload data a receiver of the
    /// on-air transmission would decode.
    #[must_use]
    pub fn current_frame(&self) -> Option<Uplink> {
        self.current.map(|ex| ex.frame)
    }

    /// Updates the radio configuration for subsequent uplinks (ADR or
    /// protocol-driven parameter changes).
    pub fn set_tx_config(&mut self, tx: TxConfig) {
        self.params.tx = tx;
    }

    /// Begins a confirmed-uplink exchange.
    ///
    /// # Panics
    ///
    /// Panics if the MAC is not idle — callers must check
    /// [`is_idle`](ClassAMac::is_idle) (the paper's node never generates
    /// a new packet before the previous exchange concluded; sampling
    /// periods far exceed the exchange duration).
    pub fn send(&mut self, now: SimTime, mut frame: Uplink, rng: &mut impl Rng) -> Vec<MacAction> {
        assert!(
            self.is_idle(),
            "send() while MAC busy in state {:?}",
            self.state
        );
        frame.device = self.params.device;
        frame.fcnt = self.next_fcnt;
        self.next_fcnt = self.next_fcnt.wrapping_add(1);
        self.current = Some(Exchange {
            frame,
            attempt: 0,
            total_airtime: Duration::ZERO,
            total_rx_time: Duration::ZERO,
        });
        self.start_attempt(now, rng)
    }

    fn start_attempt(&mut self, now: SimTime, rng: &mut impl Rng) -> Vec<MacAction> {
        // Regulatory duty cycle: defer (without consuming an attempt)
        // until the off-time from the previous transmission has elapsed.
        if self.params.duty_cycle.is_some() && now < self.duty_free_at {
            self.state = MacState::Backoff;
            return vec![MacAction::ScheduleRetransmit(self.duty_free_at)];
        }
        let ex = self.current.as_mut().expect("exchange in progress");
        ex.attempt += 1;
        let channel = self.params.plan.uplink[rng.gen_range(0..self.params.plan.uplink.len())];
        let airtime = self.params.tx.airtime(ex.frame.phy_payload_len());
        ex.total_airtime += airtime;
        if let Some(duty) = self.params.duty_cycle {
            // After `airtime` on air, stay off for airtime·(1/duty − 1).
            let off_ms = (airtime.as_millis() as f64 * (1.0 / duty - 1.0)).ceil() as u64;
            self.duty_free_at = now + airtime + Duration::from_millis(off_ms);
        }
        self.state = MacState::Transmitting;
        vec![MacAction::Transmit(TransmitDescriptor {
            channel,
            config: self.params.tx,
            frame: ex.frame,
            airtime,
            attempt: ex.attempt,
        })]
    }

    /// The uplink's airtime has elapsed; open the receive windows.
    ///
    /// # Panics
    ///
    /// Panics if the MAC was not transmitting.
    pub fn on_tx_completed(&mut self, now: SimTime) -> Vec<MacAction> {
        assert_eq!(
            self.state,
            MacState::Transmitting,
            "on_tx_completed in state {:?}",
            self.state
        );
        let ex = self.current.as_mut().expect("exchange in progress");
        if !ex.frame.confirmed {
            // Unconfirmed: done after one transmission (no windows
            // modeled — the class-A windows open but nothing arrives).
            let report = TxReport {
                frame: ex.frame,
                transmissions: ex.attempt,
                delivered: true,
                total_airtime: ex.total_airtime,
                total_rx_time: ex.total_rx_time,
                completed_at: now,
            };
            self.state = MacState::Idle;
            self.current = None;
            return vec![MacAction::Complete(report)];
        }
        self.state = MacState::WaitingRx;
        // The no-ACK conclusion lands when RX2 closes.
        let deadline = now + self.params.plan.rx2_delay + self.params.rx_window;
        vec![MacAction::ScheduleRxDeadline(deadline)]
    }

    /// An ACK for the outstanding frame arrived.
    ///
    /// Ignored (returns no actions) unless receive windows are open —
    /// a late ACK that raced the deadline simply loses.
    pub fn on_ack(&mut self, now: SimTime) -> Vec<MacAction> {
        if self.state != MacState::WaitingRx {
            return Vec::new();
        }
        let ex = self.current.as_mut().expect("exchange in progress");
        // Energy accounting: one receive window was open to catch this.
        ex.total_rx_time += self.params.rx_window;
        let report = TxReport {
            frame: ex.frame,
            transmissions: ex.attempt,
            delivered: true,
            total_airtime: ex.total_airtime,
            total_rx_time: ex.total_rx_time,
            completed_at: now,
        };
        self.state = MacState::Idle;
        self.current = None;
        vec![MacAction::Complete(report)]
    }

    /// The receive windows closed without an ACK.
    ///
    /// Ignored unless windows were open (an ACK may have raced this
    /// deadline and won).
    pub fn on_rx_deadline(&mut self, now: SimTime, rng: &mut impl Rng) -> Vec<MacAction> {
        if self.state != MacState::WaitingRx {
            return Vec::new();
        }
        let ex = self.current.as_mut().expect("exchange in progress");
        // Both windows were opened and timed out.
        ex.total_rx_time += self.params.rx_window * 2;
        if ex.attempt >= self.params.max_transmissions {
            let report = TxReport {
                frame: ex.frame,
                transmissions: ex.attempt,
                delivered: false,
                total_airtime: ex.total_airtime,
                total_rx_time: ex.total_rx_time,
                completed_at: now,
            };
            self.state = MacState::Idle;
            self.current = None;
            return vec![MacAction::Complete(report)];
        }
        self.state = MacState::Backoff;
        let lo = self.params.ack_timeout_min.as_millis();
        let hi = self.params.ack_timeout_max.as_millis();
        let backoff = Duration::from_millis(rng.gen_range(lo..=hi));
        vec![MacAction::ScheduleRetransmit(now + backoff)]
    }

    /// The ACK-timeout backoff elapsed; retransmit.
    ///
    /// # Panics
    ///
    /// Panics if the MAC was not backing off.
    pub fn on_retransmit_time(&mut self, now: SimTime, rng: &mut impl Rng) -> Vec<MacAction> {
        assert_eq!(
            self.state,
            MacState::Backoff,
            "on_retransmit_time in state {:?}",
            self.state
        );
        self.start_attempt(now, rng)
    }

    /// Force-terminates the in-flight exchange as undelivered — used
    /// when the node's battery can no longer fund the next
    /// (re)transmission (brownout). Returns the final report, or `None`
    /// if the MAC was already idle.
    pub fn abort(&mut self, now: SimTime) -> Option<TxReport> {
        let ex = self.current.take()?;
        self.state = MacState::Idle;
        Some(TxReport {
            frame: ex.frame,
            transmissions: ex.attempt,
            delivered: false,
            total_airtime: ex.total_airtime,
            total_rx_time: ex.total_rx_time,
            completed_at: now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(9)
    }

    fn mac(max_tx: u8) -> ClassAMac {
        ClassAMac::new(MacParams {
            max_transmissions: max_tx,
            ..MacParams::default()
        })
    }

    #[test]
    fn successful_exchange_first_try() {
        let mut m = mac(8);
        let mut r = rng();
        let a = m.send(SimTime::ZERO, Uplink::confirmed(10), &mut r);
        let MacAction::Transmit(tx) = a[0] else {
            panic!("expected Transmit")
        };
        assert_eq!(tx.attempt, 1);
        assert_eq!(tx.frame.fcnt, 0);
        let end = SimTime::ZERO + tx.airtime;
        let a = m.on_tx_completed(end);
        assert!(matches!(a[0], MacAction::ScheduleRxDeadline(_)));
        // ACK lands in RX1.
        let ack_at = end + Duration::from_secs(1);
        let a = m.on_ack(ack_at);
        let MacAction::Complete(report) = a[0] else {
            panic!("expected Complete")
        };
        assert!(report.delivered);
        assert_eq!(report.transmissions, 1);
        assert_eq!(report.completed_at, ack_at);
        assert!(m.is_idle());
        // Deadline firing later is ignored.
        assert!(m
            .on_rx_deadline(ack_at + Duration::from_secs(1), &mut r)
            .is_empty());
    }

    #[test]
    fn retransmits_until_cap_then_drops() {
        let mut m = mac(3);
        let mut r = rng();
        let mut now = SimTime::ZERO;
        let mut actions = m.send(now, Uplink::confirmed(10), &mut r);
        let mut transmissions = 0;
        loop {
            match actions[0] {
                MacAction::Transmit(tx) => {
                    transmissions += 1;
                    now += tx.airtime;
                    actions = m.on_tx_completed(now);
                }
                MacAction::ScheduleRxDeadline(t) => {
                    now = t;
                    actions = m.on_rx_deadline(now, &mut r);
                }
                MacAction::ScheduleRetransmit(t) => {
                    assert!(t > now);
                    now = t;
                    actions = m.on_retransmit_time(now, &mut r);
                }
                MacAction::Complete(report) => {
                    assert!(!report.delivered);
                    assert_eq!(report.transmissions, 3);
                    assert_eq!(transmissions, 3);
                    assert!(report.total_airtime > Duration::ZERO);
                    assert!(report.total_rx_time >= Duration::from_millis(300));
                    break;
                }
            }
        }
        assert!(m.is_idle());
    }

    #[test]
    fn fcnt_increments_per_frame_not_per_attempt() {
        let mut m = mac(2);
        let mut r = rng();
        let mut now = SimTime::ZERO;
        // First frame, exhaust attempts.
        let mut actions = m.send(now, Uplink::confirmed(10), &mut r);
        let mut fcnts = Vec::new();
        loop {
            match actions[0] {
                MacAction::Transmit(tx) => {
                    fcnts.push(tx.frame.fcnt);
                    now += tx.airtime;
                    actions = m.on_tx_completed(now);
                }
                MacAction::ScheduleRxDeadline(t) => {
                    now = t;
                    actions = m.on_rx_deadline(now, &mut r);
                }
                MacAction::ScheduleRetransmit(t) => {
                    now = t;
                    actions = m.on_retransmit_time(now, &mut r);
                }
                MacAction::Complete(_) => break,
            }
        }
        assert_eq!(fcnts, vec![0, 0]);
        // Second frame uses the next counter.
        let a = m.send(now, Uplink::confirmed(10), &mut r);
        let MacAction::Transmit(tx) = a[0] else {
            panic!()
        };
        assert_eq!(tx.frame.fcnt, 1);
    }

    #[test]
    fn unconfirmed_completes_after_one_tx() {
        let mut m = mac(8);
        let mut r = rng();
        let a = m.send(SimTime::ZERO, Uplink::unconfirmed(10), &mut r);
        let MacAction::Transmit(tx) = a[0] else {
            panic!()
        };
        let a = m.on_tx_completed(SimTime::ZERO + tx.airtime);
        assert!(matches!(a[0], MacAction::Complete(r) if r.transmissions == 1));
    }

    #[test]
    fn channel_hopping_spreads_over_plan() {
        let mut m = mac(8);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        let mut now = SimTime::ZERO;
        for _ in 0..40 {
            let a = m.send(now, Uplink::confirmed(10), &mut r);
            let MacAction::Transmit(tx) = a[0] else {
                panic!()
            };
            seen.insert(tx.channel.index);
            now += tx.airtime;
            let _ = m.on_tx_completed(now);
            let a = m.on_ack(now + Duration::from_secs(1));
            assert!(matches!(a[0], MacAction::Complete(_)));
            now += Duration::from_secs(5);
        }
        assert!(seen.len() >= 4, "only hopped over {seen:?}");
    }

    #[test]
    fn deadline_matches_rx2_close() {
        let mut m = mac(8);
        let mut r = rng();
        let a = m.send(SimTime::ZERO, Uplink::confirmed(10), &mut r);
        let MacAction::Transmit(tx) = a[0] else {
            panic!()
        };
        let end = SimTime::ZERO + tx.airtime;
        let a = m.on_tx_completed(end);
        let MacAction::ScheduleRxDeadline(deadline) = a[0] else {
            panic!()
        };
        assert_eq!(
            deadline,
            end + Duration::from_secs(2) + Duration::from_millis(50)
        );
    }

    #[test]
    fn late_ack_after_drop_is_ignored() {
        let mut m = mac(1);
        let mut r = rng();
        let a = m.send(SimTime::ZERO, Uplink::confirmed(10), &mut r);
        let MacAction::Transmit(tx) = a[0] else {
            panic!()
        };
        let end = SimTime::ZERO + tx.airtime;
        let a = m.on_tx_completed(end);
        let MacAction::ScheduleRxDeadline(deadline) = a[0] else {
            panic!()
        };
        let a = m.on_rx_deadline(deadline, &mut r);
        assert!(matches!(a[0], MacAction::Complete(rep) if !rep.delivered));
        assert!(m.on_ack(deadline + Duration::from_millis(1)).is_empty());
    }

    #[test]
    fn duty_cycle_defers_back_to_back_sends() {
        let mut m = ClassAMac::new(MacParams {
            duty_cycle: Some(0.01),
            ..MacParams::default()
        });
        let mut r = rng();
        // First exchange: transmit, get ACKed.
        let a = m.send(SimTime::ZERO, Uplink::confirmed(10), &mut r);
        let MacAction::Transmit(tx) = a[0] else {
            panic!()
        };
        let end = SimTime::ZERO + tx.airtime;
        let _ = m.on_tx_completed(end);
        let _ = m.on_ack(end + Duration::from_secs(1));
        // Off-time ≈ airtime × 99.
        let expected_free = SimTime::ZERO + tx.airtime + tx.airtime * 99;
        assert!(m.duty_free_at() >= expected_free - Duration::from_millis(200));
        // An immediate second send is deferred, not transmitted.
        let a = m.send(end + Duration::from_secs(2), Uplink::confirmed(10), &mut r);
        let MacAction::ScheduleRetransmit(at) = a[0] else {
            panic!("expected duty-cycle deferral, got {a:?}")
        };
        assert_eq!(at, m.duty_free_at());
        // At the permitted time the transmission proceeds as attempt 1.
        let a = m.on_retransmit_time(at, &mut r);
        let MacAction::Transmit(tx2) = a[0] else {
            panic!()
        };
        assert_eq!(tx2.attempt, 1);
    }

    #[test]
    fn no_duty_cycle_means_no_deferral() {
        let mut m = mac(8);
        let mut r = rng();
        let a = m.send(SimTime::ZERO, Uplink::confirmed(10), &mut r);
        let MacAction::Transmit(tx) = a[0] else {
            panic!()
        };
        let end = SimTime::ZERO + tx.airtime;
        let _ = m.on_tx_completed(end);
        let _ = m.on_ack(end + Duration::from_secs(1));
        assert_eq!(m.duty_free_at(), SimTime::ZERO);
        let a = m.send(end + Duration::from_secs(2), Uplink::confirmed(10), &mut r);
        assert!(matches!(a[0], MacAction::Transmit(_)));
    }

    #[test]
    fn abort_terminates_exchange() {
        let mut m = mac(8);
        let mut r = rng();
        assert!(m.abort(SimTime::ZERO).is_none(), "idle abort is a no-op");
        let a = m.send(SimTime::ZERO, Uplink::confirmed(10), &mut r);
        let MacAction::Transmit(tx) = a[0] else {
            panic!()
        };
        let _ = m.on_tx_completed(SimTime::ZERO + tx.airtime);
        let report = m.abort(SimTime::from_secs(5)).unwrap();
        assert!(!report.delivered);
        assert_eq!(report.transmissions, 1);
        assert!(m.is_idle());
        // The MAC is reusable afterwards.
        let a = m.send(SimTime::from_secs(6), Uplink::confirmed(10), &mut r);
        assert!(matches!(a[0], MacAction::Transmit(_)));
    }

    #[test]
    #[should_panic(expected = "while MAC busy")]
    fn send_while_busy_panics() {
        let mut m = mac(8);
        let mut r = rng();
        m.send(SimTime::ZERO, Uplink::confirmed(10), &mut r);
        m.send(SimTime::ZERO, Uplink::confirmed(10), &mut r);
    }
}
