//! Binary frame codec (LoRaWAN 1.0.x wire format).
//!
//! Encodes and decodes the PHYPayload layout the airtime model already
//! assumes: `MHDR(1) | DevAddr(4) | FCtrl(1) | FCnt(2) | FOpts(0–15) |
//! FPort(1) | FRMPayload | MIC(4)` — exactly
//! [`MAC_OVERHEAD_BYTES`](crate::MAC_OVERHEAD_BYTES) of framing around
//! the application payload. The paper's 4-byte compressed SoC trace and
//! the 1-byte degradation weight ride in `FOpts` (≤ 15 bytes).
//!
//! The MIC is a 32-bit FNV-1a over the frame — a stand-in for AES-CMAC
//! (cryptography is out of scope for a simulation substrate, but the
//! *size* and tamper-detection role are preserved).

use crate::frame::DeviceAddr;

/// LoRaWAN message types (MHDR.MType).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MType {
    /// Unconfirmed data uplink.
    UnconfirmedUp,
    /// Confirmed data uplink.
    ConfirmedUp,
    /// Unconfirmed data downlink.
    UnconfirmedDown,
    /// Confirmed data downlink.
    ConfirmedDown,
}

impl MType {
    fn bits(self) -> u8 {
        match self {
            MType::UnconfirmedUp => 0b010,
            MType::ConfirmedUp => 0b100,
            MType::UnconfirmedDown => 0b011,
            MType::ConfirmedDown => 0b101,
        }
    }

    fn from_bits(bits: u8) -> Option<Self> {
        match bits {
            0b010 => Some(MType::UnconfirmedUp),
            0b100 => Some(MType::ConfirmedUp),
            0b011 => Some(MType::UnconfirmedDown),
            0b101 => Some(MType::ConfirmedDown),
            _ => None,
        }
    }

    /// True for the two uplink types.
    #[must_use]
    pub fn is_uplink(self) -> bool {
        matches!(self, MType::UnconfirmedUp | MType::ConfirmedUp)
    }
}

/// A decoded (or to-be-encoded) data frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// Message type.
    pub mtype: MType,
    /// Device address.
    pub device: DeviceAddr,
    /// The ACK bit of FCtrl (set on downlinks answering confirmed
    /// uplinks).
    pub ack: bool,
    /// Frame counter (low 16 bits on the wire).
    pub fcnt: u16,
    /// MAC options (the protocol's piggyback bytes; ≤ 15).
    pub fopts: Vec<u8>,
    /// Application port.
    pub fport: u8,
    /// Application payload.
    pub payload: Vec<u8>,
}

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeFrameError {
    /// Fewer bytes than the minimal frame.
    TooShort,
    /// Unknown or non-data MHDR.
    BadHeader,
    /// FOpts length points past the frame end.
    BadLength,
    /// MIC verification failed.
    BadMic,
}

impl std::fmt::Display for DecodeFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            DecodeFrameError::TooShort => "frame shorter than the minimal PHYPayload",
            DecodeFrameError::BadHeader => "unsupported MHDR",
            DecodeFrameError::BadLength => "FOpts length exceeds the frame",
            DecodeFrameError::BadMic => "MIC mismatch",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for DecodeFrameError {}

const LORAWAN_MAJOR: u8 = 0b00;

fn mic(bytes: &[u8]) -> [u8; 4] {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h.to_le_bytes()
}

/// Encodes a frame into its wire bytes.
///
/// # Panics
///
/// Panics if `fopts` exceeds the 15-byte FOpts field.
#[must_use]
pub fn encode(frame: &WireFrame) -> Vec<u8> {
    assert!(frame.fopts.len() <= 15, "FOpts is limited to 15 bytes");
    let mut out = Vec::with_capacity(13 + frame.fopts.len() + frame.payload.len());
    out.push((frame.mtype.bits() << 5) | LORAWAN_MAJOR);
    out.extend_from_slice(&frame.device.0.to_le_bytes());
    let fctrl = (u8::from(frame.ack) << 5) | (frame.fopts.len() as u8);
    out.push(fctrl);
    out.extend_from_slice(&frame.fcnt.to_le_bytes());
    out.extend_from_slice(&frame.fopts);
    out.push(frame.fport);
    out.extend_from_slice(&frame.payload);
    let tag = mic(&out);
    out.extend_from_slice(&tag);
    out
}

/// Decodes wire bytes back into a frame, verifying the MIC.
///
/// # Errors
///
/// Returns a [`DecodeFrameError`] for truncated, malformed or tampered
/// frames.
pub fn decode(bytes: &[u8]) -> Result<WireFrame, DecodeFrameError> {
    // MHDR + DevAddr + FCtrl + FCnt + FPort + MIC.
    if bytes.len() < 13 {
        return Err(DecodeFrameError::TooShort);
    }
    let (body, tag) = bytes.split_at(bytes.len() - 4);
    if mic(body) != tag {
        return Err(DecodeFrameError::BadMic);
    }
    let mhdr = body[0];
    if mhdr & 0b11 != LORAWAN_MAJOR {
        return Err(DecodeFrameError::BadHeader);
    }
    let mtype = MType::from_bits(mhdr >> 5).ok_or(DecodeFrameError::BadHeader)?;
    let device = DeviceAddr(u32::from_le_bytes([body[1], body[2], body[3], body[4]]));
    let fctrl = body[5];
    let ack = fctrl & 0b0010_0000 != 0;
    let fopts_len = usize::from(fctrl & 0x0F);
    let fcnt = u16::from_le_bytes([body[6], body[7]]);
    let fopts_end = 8 + fopts_len;
    if body.len() < fopts_end + 1 {
        return Err(DecodeFrameError::BadLength);
    }
    let fopts = body[8..fopts_end].to_vec();
    let fport = body[fopts_end];
    let payload = body[fopts_end + 1..].to_vec();
    Ok(WireFrame {
        mtype,
        device,
        ack,
        fcnt,
        fopts,
        fport,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WireFrame {
        WireFrame {
            mtype: MType::ConfirmedUp,
            device: DeviceAddr(0x0102_0304),
            ack: false,
            fcnt: 41,
            fopts: vec![0x02, 0x72, 0x07, 0x80], // a compressed SoC trace
            fport: 1,
            payload: vec![0xAA; 10],
        }
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let bytes = encode(&f);
        assert_eq!(decode(&bytes).unwrap(), f);
    }

    #[test]
    fn wire_size_matches_overhead_model() {
        // The airtime/energy model assumes 13 bytes of framing.
        let f = sample();
        let bytes = encode(&f);
        assert_eq!(
            bytes.len(),
            crate::MAC_OVERHEAD_BYTES + f.fopts.len() + f.payload.len()
        );
    }

    #[test]
    fn ack_bit_roundtrips() {
        let mut f = sample();
        f.mtype = MType::UnconfirmedDown;
        f.ack = true;
        f.fopts = vec![0xC8]; // degradation weight byte
        f.payload.clear();
        let out = decode(&encode(&f)).unwrap();
        assert!(out.ack);
        assert!(!out.mtype.is_uplink());
        assert_eq!(out.fopts, vec![0xC8]);
    }

    #[test]
    fn tampering_is_detected() {
        let mut bytes = encode(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert_eq!(decode(&bytes), Err(DecodeFrameError::BadMic));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample());
        assert_eq!(decode(&bytes[..5]), Err(DecodeFrameError::TooShort));
    }

    #[test]
    fn bad_fopts_length_is_detected() {
        // Craft a frame whose FCtrl claims more FOpts than exist: build a
        // minimal valid frame, set FOptsLen, re-MIC.
        let mut f = sample();
        f.fopts.clear();
        f.payload.clear();
        let mut bytes = encode(&f);
        let body_len = bytes.len() - 4;
        bytes[5] |= 0x0F; // claim 15 FOpts bytes
        let tag = super::mic(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&tag);
        assert_eq!(decode(&bytes), Err(DecodeFrameError::BadLength));
    }

    #[test]
    fn join_style_mtype_rejected() {
        let mut f_bytes = encode(&sample());
        f_bytes[0] = 0b000_00000; // JoinRequest MType
        let body_len = f_bytes.len() - 4;
        let tag = super::mic(&f_bytes[..body_len]);
        f_bytes[body_len..].copy_from_slice(&tag);
        assert_eq!(decode(&f_bytes), Err(DecodeFrameError::BadHeader));
    }

    #[test]
    #[should_panic(expected = "15 bytes")]
    fn oversized_fopts_panics() {
        let mut f = sample();
        f.fopts = vec![0; 16];
        let _ = encode(&f);
    }
}
