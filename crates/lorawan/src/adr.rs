//! Adaptive Data Rate (ADR).
//!
//! The network server observes uplink SNRs and commands nodes to faster
//! spreading factors / lower power when their link margin allows —
//! LoRaWAN's standard mechanism, and the reason the paper's protocol
//! estimates transmission energy with an EWMA (Eq. 13) instead of
//! trusting the last exchange: "the nodes can change their transmission
//! parameters dynamically as governed by the underlying MAC layer or
//! the network server".
//!
//! The algorithm follows the semantics of the reference LoRaWAN ADR:
//! keep the best SNR of the last `history` uplinks, compute the margin
//! over the SF's demodulation floor plus a safety device margin, and
//! spend the excess in 3 dB steps — first stepping the data rate up
//! (SF down), then stepping transmit power down.

use std::collections::HashMap;

use blam_lora_phy::SpreadingFactor;
use blam_units::{Db, Dbm};
use serde::{Deserialize, Serialize};

use crate::frame::DeviceAddr;

/// A parameter change commanded to a device (rides on an ACK).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdrCommand {
    /// New spreading factor.
    pub sf: SpreadingFactor,
    /// New transmit power.
    pub power: Dbm,
}

/// Server-side ADR state.
///
/// # Examples
///
/// ```
/// use blam_lorawan::{AdrEngine, DeviceAddr};
/// use blam_lora_phy::SpreadingFactor;
/// use blam_units::{Db, Dbm};
///
/// let mut adr = AdrEngine::new(Db(10.0), 4);
/// let dev = DeviceAddr(1);
/// // Four strong uplinks at SF12: plenty of margin to harvest.
/// let mut cmd = None;
/// for _ in 0..4 {
///     cmd = adr.observe(dev, SpreadingFactor::Sf12, Dbm(14.0), Db(5.0));
/// }
/// let cmd = cmd.expect("enough history");
/// assert!(cmd.sf < SpreadingFactor::Sf12);
/// ```
#[derive(Debug, Clone)]
pub struct AdrEngine {
    /// Safety margin kept on top of the demodulation floor.
    device_margin: Db,
    /// Uplinks collected before a decision.
    history: usize,
    /// Lowest power the server will command.
    min_power: Dbm,
    snr_history: HashMap<DeviceAddr, Vec<f64>>,
}

impl AdrEngine {
    /// Creates an engine with the given device margin and history depth.
    ///
    /// # Panics
    ///
    /// Panics if `history` is zero.
    #[must_use]
    pub fn new(device_margin: Db, history: usize) -> Self {
        assert!(history > 0, "ADR needs at least one observation");
        AdrEngine {
            device_margin,
            history,
            min_power: Dbm(7.0),
            snr_history: HashMap::new(),
        }
    }

    /// The standard LoRaWAN configuration: 10 dB device margin over the
    /// best of the last 20 uplinks.
    #[must_use]
    pub fn standard() -> Self {
        AdrEngine::new(Db(10.0), 20)
    }

    /// Records one demodulated uplink's SNR and, once enough history
    /// exists, returns the parameter change to command (if any).
    ///
    /// `current_sf`/`current_power` are the parameters the uplink used.
    pub fn observe(
        &mut self,
        device: DeviceAddr,
        current_sf: SpreadingFactor,
        current_power: Dbm,
        snr: Db,
    ) -> Option<AdrCommand> {
        let hist = self.snr_history.entry(device).or_default();
        hist.push(snr.0);
        if hist.len() < self.history {
            return None;
        }
        let best = hist.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        hist.clear();

        let required = current_sf.snr_floor_db() + self.device_margin.0;
        let mut steps = ((best - required) / 3.0).floor() as i64;
        if steps <= 0 {
            return None;
        }
        let mut sf = current_sf;
        let mut power = current_power;
        while steps > 0 {
            if let Some(faster) = faster_sf(sf) {
                sf = faster;
            } else if power.0 - 2.0 >= self.min_power.0 {
                power = Dbm(power.0 - 2.0);
            } else {
                break;
            }
            steps -= 1;
        }
        if sf == current_sf && power == current_power {
            None
        } else {
            Some(AdrCommand { sf, power })
        }
    }

    /// Forgets a device's history (e.g. after commanding a change, so
    /// the next decision uses fresh observations).
    pub fn reset(&mut self, device: DeviceAddr) {
        self.snr_history.remove(&device);
    }

    /// Captures the engine's mutable state (the per-device SNR
    /// histories) for checkpointing, sorted by device address so the
    /// snapshot bytes never depend on hash iteration order. The
    /// configuration fields are not exported — a restored engine is
    /// rebuilt from the scenario configuration first.
    #[must_use]
    pub fn checkpoint(&self) -> AdrState {
        let mut snr_history: Vec<(DeviceAddr, Vec<f64>)> = self
            .snr_history
            .iter()
            .map(|(&d, h)| (d, h.clone()))
            .collect();
        snr_history.sort_unstable_by_key(|&(d, _)| d);
        AdrState { snr_history }
    }

    /// Overlays a checkpointed [`AdrState`] onto this (freshly built)
    /// engine, replacing its observation histories.
    pub fn restore_state(&mut self, state: AdrState) {
        // analyzer: allow(determinism, reason = "iterates the snapshot's sorted Vec to refill the map; insertion order cannot affect map contents")
        self.snr_history = state.snr_history.into_iter().collect();
    }
}

/// A serializable image of an [`AdrEngine`]'s mutable state.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AdrState {
    /// Collected SNR observations per device, sorted by device.
    pub snr_history: Vec<(DeviceAddr, Vec<f64>)>,
}

fn faster_sf(sf: SpreadingFactor) -> Option<SpreadingFactor> {
    match sf {
        SpreadingFactor::Sf7 => None,
        SpreadingFactor::Sf8 => Some(SpreadingFactor::Sf7),
        SpreadingFactor::Sf9 => Some(SpreadingFactor::Sf8),
        SpreadingFactor::Sf10 => Some(SpreadingFactor::Sf9),
        SpreadingFactor::Sf11 => Some(SpreadingFactor::Sf10),
        SpreadingFactor::Sf12 => Some(SpreadingFactor::Sf11),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(
        adr: &mut AdrEngine,
        dev: u32,
        sf: SpreadingFactor,
        snr: f64,
        n: usize,
    ) -> Option<AdrCommand> {
        let mut out = None;
        for _ in 0..n {
            out = adr.observe(DeviceAddr(dev), sf, Dbm(14.0), Db(snr));
        }
        out
    }

    #[test]
    fn no_decision_before_history_fills() {
        let mut adr = AdrEngine::new(Db(10.0), 5);
        assert!(feed(&mut adr, 1, SpreadingFactor::Sf12, 10.0, 4).is_none());
    }

    #[test]
    fn strong_link_steps_sf_down() {
        let mut adr = AdrEngine::new(Db(10.0), 3);
        // SF12 floor −20 dB + 10 margin = −10; SNR 5 ⇒ 15 dB excess ⇒ 5 steps.
        let cmd = feed(&mut adr, 1, SpreadingFactor::Sf12, 5.0, 3).unwrap();
        assert_eq!(cmd.sf, SpreadingFactor::Sf7);
        assert_eq!(cmd.power, Dbm(14.0));
    }

    #[test]
    fn excess_beyond_sf7_reduces_power() {
        let mut adr = AdrEngine::new(Db(10.0), 3);
        // SF7 floor −7.5 + 10 = 2.5; SNR 10 ⇒ 7.5 dB ⇒ 2 steps ⇒ −4 dB power.
        let cmd = feed(&mut adr, 1, SpreadingFactor::Sf7, 10.0, 3).unwrap();
        assert_eq!(cmd.sf, SpreadingFactor::Sf7);
        assert_eq!(cmd.power, Dbm(10.0));
    }

    #[test]
    fn power_floor_is_respected() {
        let mut adr = AdrEngine::new(Db(10.0), 2);
        let cmd = feed(&mut adr, 1, SpreadingFactor::Sf7, 60.0, 2).unwrap();
        assert!(cmd.power.0 >= 7.0);
    }

    #[test]
    fn weak_link_commands_nothing() {
        let mut adr = AdrEngine::new(Db(10.0), 3);
        // SF10 floor −15 + 10 = −5; SNR −6 ⇒ negative margin.
        assert!(feed(&mut adr, 1, SpreadingFactor::Sf10, -6.0, 3).is_none());
    }

    #[test]
    fn best_of_history_decides() {
        let mut adr = AdrEngine::new(Db(10.0), 3);
        adr.observe(DeviceAddr(1), SpreadingFactor::Sf10, Dbm(14.0), Db(-20.0));
        adr.observe(DeviceAddr(1), SpreadingFactor::Sf10, Dbm(14.0), Db(-20.0));
        // One good sample dominates (ADR uses max SNR).
        let cmd = adr.observe(DeviceAddr(1), SpreadingFactor::Sf10, Dbm(14.0), Db(1.0));
        assert!(cmd.is_some());
    }

    #[test]
    fn history_clears_after_decision() {
        let mut adr = AdrEngine::new(Db(10.0), 2);
        assert!(feed(&mut adr, 1, SpreadingFactor::Sf12, 5.0, 2).is_some());
        // Next decision needs a fresh window.
        assert!(adr
            .observe(DeviceAddr(1), SpreadingFactor::Sf11, Dbm(14.0), Db(5.0))
            .is_none());
    }

    #[test]
    fn devices_tracked_independently() {
        let mut adr = AdrEngine::new(Db(10.0), 2);
        adr.observe(DeviceAddr(1), SpreadingFactor::Sf12, Dbm(14.0), Db(5.0));
        assert!(adr
            .observe(DeviceAddr(2), SpreadingFactor::Sf12, Dbm(14.0), Db(5.0))
            .is_none());
        assert!(adr
            .observe(DeviceAddr(1), SpreadingFactor::Sf12, Dbm(14.0), Db(5.0))
            .is_some());
    }

    #[test]
    fn reset_forgets_history() {
        let mut adr = AdrEngine::new(Db(10.0), 2);
        adr.observe(DeviceAddr(1), SpreadingFactor::Sf12, Dbm(14.0), Db(5.0));
        adr.reset(DeviceAddr(1));
        assert!(adr
            .observe(DeviceAddr(1), SpreadingFactor::Sf12, Dbm(14.0), Db(5.0))
            .is_none());
    }
}
