//! Property-based tests for the wire codec.

use blam_lorawan::codec::{decode, encode, MType, WireFrame};
use blam_lorawan::DeviceAddr;
use proptest::prelude::*;

fn any_mtype() -> impl Strategy<Value = MType> {
    prop_oneof![
        Just(MType::UnconfirmedUp),
        Just(MType::ConfirmedUp),
        Just(MType::UnconfirmedDown),
        Just(MType::ConfirmedDown),
    ]
}

fn any_frame() -> impl Strategy<Value = WireFrame> {
    (
        any_mtype(),
        any::<u32>(),
        any::<bool>(),
        any::<u16>(),
        prop::collection::vec(any::<u8>(), 0..=15),
        any::<u8>(),
        prop::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(mtype, dev, ack, fcnt, fopts, fport, payload)| WireFrame {
            mtype,
            device: DeviceAddr(dev),
            ack,
            fcnt,
            fopts,
            fport,
            payload,
        })
}

proptest! {
    /// Every frame round-trips exactly through the wire format.
    #[test]
    fn roundtrip(frame in any_frame()) {
        let bytes = encode(&frame);
        prop_assert_eq!(decode(&bytes).unwrap(), frame);
    }

    /// Wire size is exactly the 13-byte framing plus the variable parts.
    #[test]
    fn size_model_holds(frame in any_frame()) {
        let bytes = encode(&frame);
        prop_assert_eq!(
            bytes.len(),
            blam_lorawan::MAC_OVERHEAD_BYTES + frame.fopts.len() + frame.payload.len()
        );
    }

    /// Any single-bit flip is caught by the MIC (or produces a parse
    /// error) — never a silently different frame.
    #[test]
    fn bit_flips_never_pass_silently(frame in any_frame(), byte_idx in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut bytes = encode(&frame);
        let i = byte_idx.index(bytes.len());
        bytes[i] ^= 1 << bit;
        match decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, frame, "corrupted frame decoded as original"),
        }
    }

    /// Random byte soup never panics the decoder.
    #[test]
    fn decoder_total(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode(&bytes);
    }
}
