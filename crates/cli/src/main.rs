//! `blam-sim` — command-line front end for the lpwan-blam simulator.
//!
//! ```text
//! blam-sim template                          # print a default scenario JSON
//! blam-sim run --config scenario.json        # run it, print metrics
//! blam-sim run --config scenario.json --out results.json --trace trace.jsonl
//! blam-sim run --config scenario.json --reference   # force the reference engine
//! blam-sim run --config scenario.json --shards 8    # cell-sharded execution
//! blam-sim compare --nodes 100 --days 60     # the policy zoo side by side
//! blam-sim compare --trace trace.jsonl --profile
//! blam-sim chaos --nodes 60 --days 30        # fault-injection resilience drill
//! blam-sim scale --nodes 100000 --gateways 64 --days 2   # sharded scale run
//! blam-sim run --config scenario.json --checkpoint-every 4 --snapshot run.ckpt
//! blam-sim crash-drill --nodes 20            # kill/resume byte-parity drill
//! blam-sim trace-check trace.jsonl           # validate a recorded trace
//! blam-sim campaign --spec sweep.json --spool spool/   # run a sweep, resumable
//! blam-sim serve --spool spool/ --addr 127.0.0.1:0     # job daemon (HTTP/NDJSON)
//! blam-sim submit --addr HOST:PORT --spec sweep.json   # POST a campaign to it
//! blam-sim jobs --addr HOST:PORT             # list the daemon's jobs
//! blam-sim tail --addr HOST:PORT --job ID    # follow a job's live telemetry
//! blam-sim shutdown --addr HOST:PORT         # graceful daemon stop
//! ```
//!
//! Tables and metrics go to **stdout**; progress, telemetry summaries
//! and profiles go to **stderr**, so stdout stays pipeable.

use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use blam::BlamConfig;
use blam_battery::EOL_DEGRADATION;
use blam_campaign::{CampaignSpec, Daemon, DaemonConfig};
use blam_netsim::engine::Engine;
use blam_netsim::telemetry::{expected_counts, TelemetryOptions};
use blam_netsim::{
    config::Protocol, run_sharded_checkpointed, BatchRunner, CheckpointConfig, FaultConfig,
    RunResult, ScenarioConfig,
};
use blam_telemetry::replay;
use blam_units::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("template") => template(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("compare") => compare(&args[1..]),
        Some("chaos") => chaos(&args[1..]),
        Some("scale") => scale(&args[1..]),
        Some("crash-drill") => crash_drill(&args[1..]),
        Some("trace-check") => trace_check(&args[1..]),
        Some("campaign") => campaign(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("submit") => submit(&args[1..]),
        Some("jobs") => jobs_cmd(&args[1..]),
        Some("tail") => tail_cmd(&args[1..]),
        Some("shutdown") => shutdown_cmd(&args[1..]),
        Some("--help" | "-h") | None => {
            usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage:\n  blam-sim template                      print a default scenario config (JSON)\n  \
         blam-sim run --config FILE [--out FILE] [--trace FILE] [--profile] [--reference]\n               [--shards K [--jobs J]] [--checkpoint-every N [--snapshot FILE]]\n                                           simulate a scenario (--reference forces the\n                                           unoptimized oracle engine; --shards runs the\n                                           cell-sharded engine; results are identical\n                                           across K and J; --checkpoint-every snapshots\n                                           state every N dissemination epochs and resumes\n                                           byte-identically from FILE after a crash)\n  \
         blam-sim compare [--nodes N] [--days D] [--seed S] [--jobs J] [--trace FILE] [--profile]\n                                           protocol-zoo comparison: LoRaWAN, the H-θ\n                                           sweep, Long-Lived LoRa and battery-less\n  \
         blam-sim chaos [--nodes N] [--days D] [--seed S] [--jobs J] [--trace FILE]\n                                           fault-injection drill: the policy zoo (hardened\n                                           H-50 in the BLAM slot), fault-free vs chaos\n  \
         blam-sim scale [--nodes N] [--gateways G] [--days D] [--seed S] [--shards K] [--jobs J]\n               [--lorawan] [--out FILE] [--trace FILE] [--checkpoint-every N [--snapshot FILE]]\n                                           multi-gateway sharded scale run with\n                                           events/sec and peak-RSS reporting\n  \
         blam-sim crash-drill [--nodes N] [--seed S] [--shards K]\n                                           crash-injection drill: kill checkpointed runs at\n                                           every epoch barrier, resume, byte-compare against\n                                           the uninterrupted run; plus a torn-snapshot\n                                           quarantine leg\n  \
         blam-sim trace-check FILE [--results FILE]  validate a JSONL telemetry trace\n  \
         blam-sim campaign --spec FILE --spool DIR [--jobs J]\n                                           run a parameter-sweep campaign in-process;\n                                           resumable — completed jobs are skipped by\n                                           content hash\n  \
         blam-sim serve --spool DIR [--addr HOST:PORT] [--workers N]\n                                           job daemon: POST /jobs, GET /jobs/:id,\n                                           GET /jobs/:id/tail (live NDJSON), POST\n                                           /jobs/:id/cancel, POST /shutdown; the bound\n                                           address lands in DIR/daemon.addr\n  \
         blam-sim submit --addr HOST:PORT (--config FILE [--shards K] | --spec FILE)\n                                           submit a scenario or campaign to a daemon\n  \
         blam-sim jobs --addr HOST:PORT [--job ID]   list daemon jobs / one job's status\n  \
         blam-sim tail --addr HOST:PORT --job ID     follow a job's telemetry (NDJSON)\n  \
         blam-sim shutdown --addr HOST:PORT          graceful daemon stop"
    );
}

fn flag(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{name} requires a value")),
    }
}

fn switch(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Telemetry options from the shared `--trace FILE` flag.
fn telemetry_options(args: &[String]) -> Result<TelemetryOptions, String> {
    Ok(match flag(args, "--trace")? {
        Some(path) => TelemetryOptions::with_trace(path),
        None => TelemetryOptions::off(),
    })
}

/// Checkpointing from the shared `--checkpoint-every N` / `--snapshot
/// FILE` flags. Either flag alone enables it: the interval defaults to
/// every dissemination epoch, the snapshot path to `blam-sim.ckpt`.
fn checkpoint_config(args: &[String]) -> Result<Option<CheckpointConfig>, String> {
    let every = flag(args, "--checkpoint-every")?;
    let path = flag(args, "--snapshot")?;
    if every.is_none() && path.is_none() {
        return Ok(None);
    }
    let every_epochs: u64 = match every {
        Some(n) => n
            .parse()
            .map_err(|e| format!("--checkpoint-every: bad number: {e}"))?,
        None => 1,
    };
    if every_epochs == 0 {
        return Err("--checkpoint-every requires an integer ≥ 1".into());
    }
    Ok(Some(CheckpointConfig {
        path: PathBuf::from(path.unwrap_or_else(|| "blam-sim.ckpt".to_string())),
        every_epochs,
    }))
}

/// Unwraps a checkpointed run's outcome: with the CLI's always-true
/// `keep_going` the engine only ever returns `None` if a caller-side
/// interrupt hook fires, which `run`/`scale` never install.
fn completed(result: std::io::Result<Option<RunResult>>) -> Result<RunResult, String> {
    result
        .map_err(|e| format!("checkpoint: {e}"))?
        .ok_or_else(|| "run interrupted before completion".to_string())
}

fn template(args: &[String]) -> Result<(), String> {
    let parse = |v: Option<String>, d: u64| -> Result<u64, String> {
        v.map_or(Ok(d), |s| s.parse().map_err(|e| format!("bad number: {e}")))
    };
    let nodes = parse(flag(args, "--nodes")?, 100)? as usize;
    let days = parse(flag(args, "--days")?, 0)?;
    let seed = parse(flag(args, "--seed")?, 42)?;
    let mut cfg = ScenarioConfig::large_scale(nodes, Protocol::h(0.5), seed);
    if days > 0 {
        cfg.duration = Duration::from_days(days);
        cfg.sample_interval = Duration::from_days(days.clamp(1, 30));
    }
    let json = serde_json::to_string_pretty(&cfg).map_err(|e| e.to_string())?;
    println!("{json}");
    Ok(())
}

/// Writes pretty result JSON to `--out` targets atomically
/// (temp-then-rename), so a crash or kill mid-write can never leave a
/// torn results file.
fn write_out(out: &str, json: &str) -> Result<(), String> {
    blam_campaign::write_string_atomic(Path::new(out), json).map_err(|e| format!("{out}: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--config")?.ok_or("run requires --config FILE")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let mut cfg: ScenarioConfig =
        serde_json::from_str(&text).map_err(|e| format!("{path}: invalid scenario: {e}"))?;
    // The differential-oracle escape hatch: run the binary-heap queue,
    // uncached PHY arithmetic and replay-per-pass ledger instead of the
    // optimized hot paths. Results are byte-identical by contract.
    if switch(args, "--reference") {
        cfg.reference_impl = true;
    }
    let opts = telemetry_options(args)?;
    let profile = switch(args, "--profile");
    eprintln!(
        "simulating {} nodes under {} for {} (seed {})…",
        cfg.nodes,
        cfg.protocol.label(),
        cfg.duration,
        cfg.seed
    );
    if let Some(shards) = flag(args, "--shards")? {
        let shards: usize = shards
            .parse()
            .map_err(|e| format!("--shards: bad number: {e}"))?;
        // Checked here so a config mistake is a clean CLI error, not
        // the coordinator's panic.
        if cfg.stop_at_first_eol {
            return Err(
                "--shards is incompatible with stop_at_first_eol scenarios: sharded \
                 cells advance through time windows and cannot stop at a global first EoL"
                    .into(),
            );
        }
        let jobs = match flag(args, "--jobs")? {
            Some(j) => j.parse().map_err(|e| format!("--jobs: bad number: {e}"))?,
            None => BatchRunner::available().jobs(),
        };
        let result = match checkpoint_config(args)? {
            Some(ckpt) => {
                eprintln!(
                    "[checkpointing to {} every {} epoch(s)]",
                    ckpt.path.display(),
                    ckpt.every_epochs
                );
                completed(run_sharded_checkpointed(
                    &cfg,
                    shards,
                    jobs,
                    &opts,
                    &ckpt,
                    || true,
                ))?
            }
            None => blam_netsim::shard::run_sharded(&cfg, shards, jobs, &opts),
        };
        print_summary(&result);
        if let Some(report) = &result.telemetry {
            eprint!("{}", report.render());
        }
        if let Some(out) = flag(args, "--out")? {
            let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
            write_out(&out, &json)?;
            eprintln!("[full results written to {out}]");
        }
        return Ok(());
    }
    if let Some(ckpt) = checkpoint_config(args)? {
        eprintln!(
            "[checkpointing to {} every {} epoch(s)]",
            ckpt.path.display(),
            ckpt.every_epochs
        );
        // Checkpointed runs drive the engine directly: the snapshot
        // loop owns the barrier schedule, so the batch runner's
        // windowing would be redundant. Telemetry still attaches —
        // sinks observe and never feed back, so the resume contract
        // (which covers simulation state only) is unaffected.
        let mut engine = Engine::build(cfg);
        let writer = opts.open_writer().map_err(|e| e.to_string())?;
        if let Some(sink) = opts.sink_for_run(0, writer) {
            engine = engine.with_sink(sink);
        }
        let result = completed(engine.run_checkpointed(&ckpt, || true))?;
        print_summary(&result);
        if let Some(report) = &result.telemetry {
            eprint!("{}", report.render());
        }
        if let Some(out) = flag(args, "--out")? {
            let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
            write_out(&out, &json)?;
            eprintln!("[full results written to {out}]");
        }
        return Ok(());
    }
    // A single run goes through the batch runner too, so --trace and
    // --profile behave identically on `run` and `compare`.
    let outcome = BatchRunner::new(1).run_all_with(vec![cfg], &opts);
    let result = outcome
        .results
        .into_iter()
        .next()
        .expect("one config produces one result");
    print_summary(&result);
    if let Some(report) = &outcome.telemetry {
        eprint!("{}", report.render());
    }
    if profile {
        eprint!("{}", outcome.profile.render());
    }
    if let Some(out) = flag(args, "--out")? {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        write_out(&out, &json)?;
        eprintln!("[full results written to {out}]");
    }
    Ok(())
}

fn compare(args: &[String]) -> Result<(), String> {
    let parse = |v: Option<String>, d: u64| -> Result<u64, String> {
        v.map_or(Ok(d), |s| s.parse().map_err(|e| format!("bad number: {e}")))
    };
    let nodes = parse(flag(args, "--nodes")?, 100)? as usize;
    let days = parse(flag(args, "--days")?, 60)?;
    let seed = parse(flag(args, "--seed")?, 42)?;
    let jobs = parse(
        flag(args, "--jobs")?,
        BatchRunner::available().jobs() as u64,
    )? as usize;
    if jobs == 0 {
        return Err("--jobs requires an integer ≥ 1".into());
    }
    let opts = telemetry_options(args)?;
    let profile = switch(args, "--profile");

    // The full policy zoo plus the paper's H-θ sweep. The H-θ
    // variants slot in after their H-50 zoo sibling so the table reads
    // baseline → BLAM family → alternative schedulers.
    let mut roster = vec![
        Protocol::Lorawan,
        Protocol::h(1.0),
        Protocol::h(0.5),
        Protocol::h(0.05),
        Protocol::h50c(),
    ];
    for p in Protocol::zoo() {
        if !roster.contains(&p) {
            roster.push(p);
        }
    }
    let configs: Vec<ScenarioConfig> = roster
        .into_iter()
        .map(|protocol| {
            let mut cfg = ScenarioConfig::large_scale(nodes, protocol, seed);
            cfg.duration = Duration::from_days(days);
            cfg.sample_interval = Duration::from_days(days.clamp(1, 30));
            cfg
        })
        .collect();
    let outcome = BatchRunner::new(jobs).run_all_with(configs, &opts);

    print!(
        "{}",
        blam_netsim::report::comparison_table(&outcome.results)
    );
    if let Some(report) = &outcome.telemetry {
        eprint!("{}", report.render());
    }
    if profile {
        eprint!("{}", outcome.profile.render());
    }
    Ok(())
}

/// Fault-injection drill: runs the whole policy zoo (with hardened
/// H-50 in the BLAM slot) through the same chaos schedule (burst loss,
/// gateway outages, node reboots) and reports how much each protocol's
/// projected minimum battery lifespan degrades relative to its own
/// fault-free baseline.
fn chaos(args: &[String]) -> Result<(), String> {
    let parse = |v: Option<String>, d: u64| -> Result<u64, String> {
        v.map_or(Ok(d), |s| s.parse().map_err(|e| format!("bad number: {e}")))
    };
    let nodes = parse(flag(args, "--nodes")?, 60)? as usize;
    let days = parse(flag(args, "--days")?, 30)?;
    let seed = parse(flag(args, "--seed")?, 42)?;
    let jobs = parse(
        flag(args, "--jobs")?,
        BatchRunner::available().jobs() as u64,
    )? as usize;
    if jobs == 0 {
        return Err("--jobs requires an integer ≥ 1".into());
    }
    let opts = telemetry_options(args)?;

    let faults = FaultConfig::chaos(0.3, 0.1, Duration::from_days(2));
    eprintln!(
        "chaos drill: {nodes} nodes, {days} days, seed {seed} — 30% burst loss, \
         10% outage duty, reboots every ~2 days"
    );
    // Every zoo policy goes through the same chaos schedule; the BLAM
    // slot runs the hardened H-50 variant, which is the protocol the
    // resilience check is about.
    let protocols: Vec<Protocol> = Protocol::zoo()
        .into_iter()
        .map(|p| match p {
            Protocol::Blam(_) => Protocol::Blam(BlamConfig::h(0.5).hardened()),
            other => other,
        })
        .collect();
    let mut configs: Vec<ScenarioConfig> = Vec::new();
    for protocol in &protocols {
        let protocol = protocol.clone();
        for faulted in [false, true] {
            let mut cfg = ScenarioConfig::large_scale(nodes, protocol.clone(), seed);
            cfg.duration = Duration::from_days(days);
            cfg.sample_interval = Duration::from_days(days.clamp(1, 30));
            if faulted {
                cfg.faults = faults.clone();
            }
            configs.push(cfg);
        }
    }
    let outcome = BatchRunner::new(jobs).run_all_with(configs, &opts);

    // Projected minimum network lifespan: linear extrapolation of the
    // run's worst per-node degradation to the 20% EoL threshold.
    let project = |r: &RunResult| -> f64 {
        let years = r.sim_end.as_millis() as f64 / (365.0 * 86_400_000.0);
        years * EOL_DEGRADATION / r.network.degradation.max.max(1e-12)
    };
    // results arrive in input order: protocol i's fault-free run at
    // index 2i, its chaos run at 2i + 1.
    let r = &outcome.results;
    let width = r.iter().map(|r| r.label.len()).max().unwrap_or(3).max(3);
    println!(
        "{:<width$} {:>7} {:>7} {:>10} {:>10} {:>17}",
        "MAC", "faults", "PRR", "brownouts", "deg. max", "min-lifespan [y]"
    );
    for (idx, run) in r.iter().enumerate() {
        println!(
            "{:<width$} {:>7} {:>6.1}% {:>10} {:>10.5} {:>17.2}",
            run.label,
            if idx % 2 == 0 { "off" } else { "on" },
            100.0 * run.network.prr,
            run.network.brownouts,
            run.network.degradation.max,
            project(run),
        );
    }
    let wear = |i: usize| r[2 * i + 1].network.degradation.max - r[2 * i].network.degradation.max;
    for i in 0..protocols.len() {
        println!(
            "min-lifespan delta under faults: {:<width$} {:+.2} y",
            r[2 * i].label,
            project(&r[2 * i + 1]) - project(&r[2 * i]),
        );
    }
    // The headline resilience claim stays pinned to the hardened BLAM
    // slot vs the LoRaWAN baseline, whatever else joins the zoo.
    let blam = protocols
        .iter()
        .position(|p| matches!(p, Protocol::Blam(_)))
        .expect("the zoo always fields a BLAM policy");
    println!(
        "resilience check (hardened {} wears less under faults than {}): {}",
        r[2 * blam].label,
        r[0].label,
        wear(blam) < wear(0),
    );
    if let Some(report) = &outcome.telemetry {
        eprint!("{}", report.render());
    }
    Ok(())
}

/// Multi-gateway sharded scale run: one protocol over the
/// [`ScenarioConfig::scale`] deployment, reporting throughput
/// (events/sec) and memory (peak RSS, bytes/node) to stderr alongside
/// the usual summary. The result is byte-identical across `--shards`
/// and `--jobs`.
fn scale(args: &[String]) -> Result<(), String> {
    let parse = |v: Option<String>, d: u64| -> Result<u64, String> {
        v.map_or(Ok(d), |s| s.parse().map_err(|e| format!("bad number: {e}")))
    };
    let nodes = parse(flag(args, "--nodes")?, 10_000)? as usize;
    let gateways = parse(flag(args, "--gateways")?, 16)? as usize;
    let days = parse(flag(args, "--days")?, 2)?;
    let seed = parse(flag(args, "--seed")?, 42)?;
    let shards = parse(flag(args, "--shards")?, gateways as u64)? as usize;
    let jobs = parse(
        flag(args, "--jobs")?,
        BatchRunner::available().jobs() as u64,
    )? as usize;
    let protocol = if switch(args, "--lorawan") {
        Protocol::Lorawan
    } else {
        Protocol::h(0.5)
    };
    let opts = telemetry_options(args)?;

    let mut cfg = ScenarioConfig::scale(nodes, gateways, protocol, seed);
    cfg.duration = Duration::from_days(days);
    cfg.sample_interval = Duration::from_days(days.clamp(1, 30));
    eprintln!(
        "scale run: {nodes} nodes / {gateways} cells under {} for {days} day(s), \
         --shards {shards} --jobs {jobs} (seed {seed})…",
        cfg.protocol.label()
    );
    let started = std::time::Instant::now();
    let result = match checkpoint_config(args)? {
        Some(ckpt) => {
            eprintln!(
                "[checkpointing to {} every {} epoch(s)]",
                ckpt.path.display(),
                ckpt.every_epochs
            );
            completed(run_sharded_checkpointed(
                &cfg,
                shards,
                jobs,
                &opts,
                &ckpt,
                || true,
            ))?
        }
        None => blam_netsim::shard::run_sharded(&cfg, shards, jobs, &opts),
    };
    let elapsed = started.elapsed().as_secs_f64();
    let events_per_sec = result.events_processed as f64 / elapsed.max(1e-9);
    eprintln!(
        "[{} events in {elapsed:.1} s — {events_per_sec:.0} events/s]",
        result.events_processed
    );
    match peak_rss_bytes() {
        Some(rss) => eprintln!(
            "[peak RSS {:.1} MiB — {:.0} bytes/node]",
            rss as f64 / (1024.0 * 1024.0),
            rss as f64 / nodes as f64
        ),
        // Not every kernel/procfs exposes VmHWM (non-Linux, hardened
        // or masked /proc): degrade to an explicit null rather than
        // garbage numbers, and keep it on stderr so --out JSON is
        // unaffected either way.
        None => eprintln!("[peak RSS null — VmHWM not available on this platform]"),
    }
    print_summary(&result);
    if let Some(report) = &result.telemetry {
        eprint!("{}", report.render());
    }
    if let Some(out) = flag(args, "--out")? {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        write_out(&out, &json)?;
        eprintln!("[full results written to {out}]");
    }
    Ok(())
}

/// Peak resident set size of this process in bytes, from
/// `/proc/self/status` (`VmHWM`). `None` off Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// In-process crash-injection drill. Runs each scenario uninterrupted
/// for a baseline, then kills checkpointed runs at successive
/// dissemination-epoch barriers (a countdown `keep_going` hook stands
/// in for SIGKILL — the snapshot on disk is identical either way),
/// resumes them, and byte-compares the serialized results. A final leg
/// tears a snapshot mid-file and checks it is quarantined to
/// `*.corrupt` while the rerun recovers from scratch, still
/// byte-identical.
fn crash_drill(args: &[String]) -> Result<(), String> {
    let parse = |v: Option<String>, d: u64| -> Result<u64, String> {
        v.map_or(Ok(d), |s| s.parse().map_err(|e| format!("bad number: {e}")))
    };
    let nodes = parse(flag(args, "--nodes")?, 20)? as usize;
    let seed = parse(flag(args, "--seed")?, 42)?;
    let shards = parse(flag(args, "--shards")?, 2)? as usize;

    let dir = std::env::temp_dir().join(format!("blam-crash-drill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let serialize = |r: &RunResult| serde_json::to_string(r).map_err(|e| e.to_string());
    let mut legs = 0u32;
    let mut failed = 0u32;
    let mut check = |name: &str, ok: bool| {
        legs += 1;
        if !ok {
            failed += 1;
        }
        eprintln!("[crash-drill] {name}: {}", if ok { "PASS" } else { "FAIL" });
    };

    // Leg 1–3: single engine under chaos faults, killed after 1, 2 and
    // 3 of the four 6-hour epochs.
    let mut cfg = ScenarioConfig::large_scale(nodes, Protocol::h(0.5), seed);
    cfg.duration = Duration::from_days(1);
    cfg.sample_interval = Duration::from_hours(8);
    cfg.dissemination_interval = Duration::from_hours(6);
    cfg.faults = FaultConfig::chaos(0.2, 0.05, Duration::from_days(2));
    eprintln!("[crash-drill] single engine: {nodes} nodes, 1 day, 6 h epochs, chaos faults");
    let baseline = serialize(&Engine::build(cfg.clone()).run())?;
    for kill_at in 1..=3u64 {
        let path = dir.join(format!("single-{kill_at}.ckpt"));
        let ckpt = CheckpointConfig::every_epoch(&path);
        let mut polls = 0u64;
        let interrupted = Engine::build(cfg.clone())
            .run_checkpointed(&ckpt, || {
                polls += 1;
                polls <= kill_at
            })
            .map_err(|e| format!("checkpoint: {e}"))?;
        let resumed = Engine::build(cfg.clone())
            .run_checkpointed(&ckpt, || true)
            .map_err(|e| format!("checkpoint: {e}"))?;
        let resumed = match resumed {
            Some(r) => serialize(&r)?,
            None => String::new(),
        };
        check(
            &format!("single-engine kill@{kill_at} resumes byte-identical"),
            interrupted.is_none() && resumed == baseline,
        );
    }

    // Leg 4: sharded engine, killed mid-run, resumed under a single
    // worker — the snapshot is cell-structured, so the worker layout
    // may change across the crash.
    let mut sharded_cfg = ScenarioConfig::scale(nodes * 2, 4, Protocol::h(0.5), seed);
    sharded_cfg.duration = Duration::from_days(1);
    sharded_cfg.sample_interval = Duration::from_hours(8);
    sharded_cfg.dissemination_interval = Duration::from_hours(6);
    sharded_cfg.faults = FaultConfig::chaos(0.1, 0.05, Duration::from_days(2));
    eprintln!(
        "[crash-drill] sharded engine: {} nodes / 4 cells, --shards {shards}",
        nodes * 2
    );
    let sharded_baseline = serialize(&blam_netsim::run_sharded(
        &sharded_cfg,
        1,
        1,
        &TelemetryOptions::off(),
    ))?;
    {
        let path = dir.join("sharded.ckpt");
        let ckpt = CheckpointConfig::every_epoch(&path);
        let mut polls = 0u64;
        let interrupted = run_sharded_checkpointed(
            &sharded_cfg,
            shards,
            shards,
            &TelemetryOptions::off(),
            &ckpt,
            || {
                polls += 1;
                polls <= 2
            },
        )
        .map_err(|e| format!("checkpoint: {e}"))?;
        let resumed =
            run_sharded_checkpointed(&sharded_cfg, 1, 1, &TelemetryOptions::off(), &ckpt, || true)
                .map_err(|e| format!("checkpoint: {e}"))?;
        let resumed = match resumed {
            Some(r) => serialize(&r)?,
            None => String::new(),
        };
        check(
            &format!("sharded kill@2 (--shards {shards}) resumes byte-identical"),
            interrupted.is_none() && resumed == sharded_baseline,
        );
    }

    // Leg 5: torn snapshot — truncate the file mid-payload, as a power
    // cut during a write-without-rename would. The run must quarantine
    // it and recover from scratch.
    {
        let path = dir.join("torn.ckpt");
        let ckpt = CheckpointConfig::every_epoch(&path);
        let mut polls = 0u64;
        let interrupted = Engine::build(cfg.clone())
            .run_checkpointed(&ckpt, || {
                polls += 1;
                polls <= 2
            })
            .map_err(|e| format!("checkpoint: {e}"))?;
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        // analyzer: allow(atomic-write, reason = "deliberately plants a torn snapshot to drill the quarantine path; atomicity is the thing under test, not wanted here")
        std::fs::write(&path, &text[..text.len() * 2 / 3])
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let recovered = Engine::build(cfg.clone())
            .run_checkpointed(&ckpt, || true)
            .map_err(|e| format!("checkpoint: {e}"))?;
        let recovered = match recovered {
            Some(r) => serialize(&r)?,
            None => String::new(),
        };
        let quarantined = dir.join("torn.ckpt.corrupt").exists();
        check(
            "torn snapshot quarantined, rerun recovers from scratch",
            interrupted.is_none() && recovered == baseline && quarantined,
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    if failed > 0 {
        return Err(format!("crash drill: {failed}/{legs} leg(s) FAILED"));
    }
    println!("crash drill: {legs}/{legs} legs PASS");
    Ok(())
}

fn trace_check(args: &[String]) -> Result<(), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("trace-check requires a trace FILE")?;
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let summary = replay::validate(BufReader::new(file))
        .map_err(|e| format!("{path}: invalid trace: {e}"))?;
    println!(
        "{path}: OK — {} line(s), {} event(s), {} run(s), {} flight dump(s)",
        summary.lines, summary.events, summary.runs, summary.flight_dumps
    );
    if let Some(results_path) = flag(args, "--results")? {
        let text =
            std::fs::read_to_string(&results_path).map_err(|e| format!("{results_path}: {e}"))?;
        let result: RunResult = serde_json::from_str(&text)
            .map_err(|e| format!("{results_path}: invalid results JSON: {e}"))?;
        // `run --out` writes a single run, traced as run 0.
        summary
            .reconcile(0, &expected_counts(&result.nodes))
            .map_err(|e| format!("trace does not reconcile with {results_path}: {e}"))?;
        println!(
            "{path}: reconciles with {results_path} (run 0, {} node(s))",
            result.nodes.len()
        );
    }
    Ok(())
}

/// Runs a campaign spec in-process (no daemon): expand, spool,
/// execute with a worker pool, checkpoint after every job. Re-running
/// against the same spool resumes, skipping completed jobs.
fn campaign(args: &[String]) -> Result<(), String> {
    let spec_path = flag(args, "--spec")?.ok_or("campaign requires --spec FILE")?;
    let spool = flag(args, "--spool")?.ok_or("campaign requires --spool DIR")?;
    let jobs = match flag(args, "--jobs")? {
        Some(j) => j.parse().map_err(|e| format!("--jobs: bad number: {e}"))?,
        None => BatchRunner::available().jobs(),
    };
    let text = std::fs::read_to_string(&spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let spec = CampaignSpec::from_json(&text).map_err(|e| format!("{spec_path}: {e}"))?;
    eprintln!("campaign `{}`: spool {spool}, {jobs} worker(s)…", spec.name);
    let outcome = blam_campaign::run_campaign(&spec, Path::new(&spool), jobs, &|| true)?;
    println!("{:<16} {:>8} {}", "job", "status", "label");
    for entry in &outcome.manifest.jobs {
        println!(
            "{:<16} {:>8} {}",
            entry.id,
            match entry.status {
                blam_campaign::JobStatus::Done => "done",
                blam_campaign::JobStatus::Pending => "pending",
            },
            entry.label
        );
    }
    eprintln!(
        "[campaign `{}`: {} ran, {} skipped, complete: {}]",
        spec.name,
        outcome.ran,
        outcome.skipped,
        outcome.manifest.complete()
    );
    Ok(())
}

/// The simulation-as-a-service daemon. Binds (port 0 = ephemeral),
/// writes the actual address to `<spool>/daemon.addr`, resumes any
/// unfinished spooled campaigns, and serves until `POST /shutdown`.
fn serve(args: &[String]) -> Result<(), String> {
    let spool = flag(args, "--spool")?.ok_or("serve requires --spool DIR")?;
    let addr = flag(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:0".to_string());
    let workers = match flag(args, "--workers")? {
        Some(w) => w
            .parse()
            .map_err(|e| format!("--workers: bad number: {e}"))?,
        None => 2,
    };
    let daemon = Daemon::bind(
        DaemonConfig {
            spool: PathBuf::from(&spool),
            workers,
        },
        &addr,
    )
    .map_err(|e| format!("binding {addr}: {e}"))?;
    // The bound address goes to stdout (scriptable) and to
    // <spool>/daemon.addr (for clients that only know the spool).
    println!("{}", daemon.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!(
        "[serve] listening on {} — spool {spool}, {workers} worker(s)",
        daemon.local_addr()
    );
    daemon.run().map_err(|e| format!("serve: {e}"))?;
    eprintln!("[serve] shut down cleanly");
    Ok(())
}

fn require_addr(args: &[String]) -> Result<String, String> {
    flag(args, "--addr")?
        .ok_or_else(|| "requires --addr HOST:PORT (see <spool>/daemon.addr)".to_string())
}

/// Submits a scenario (`--config`, optionally `--shards`) or a
/// campaign spec (`--spec`) to a running daemon.
fn submit(args: &[String]) -> Result<(), String> {
    let addr = require_addr(args)?;
    let body = match (flag(args, "--config")?, flag(args, "--spec")?) {
        (Some(config_path), None) => {
            let scenario =
                std::fs::read_to_string(&config_path).map_err(|e| format!("{config_path}: {e}"))?;
            let shards: usize = match flag(args, "--shards")? {
                Some(s) => s
                    .parse()
                    .map_err(|e| format!("--shards: bad number: {e}"))?,
                None => 1,
            };
            let shard_jobs = match flag(args, "--jobs")? {
                Some(j) => j.parse().map_err(|e| format!("--jobs: bad number: {e}"))?,
                None => BatchRunner::available().jobs(),
            };
            format!("{{\"scenario\":{scenario},\"shards\":{shards},\"shard_jobs\":{shard_jobs}}}")
        }
        (None, Some(spec_path)) => {
            let spec =
                std::fs::read_to_string(&spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
            format!("{{\"campaign\":{spec}}}")
        }
        _ => return Err("submit needs exactly one of --config FILE or --spec FILE".into()),
    };
    let (status, response) = blam_campaign::request(&addr, "POST", "/jobs", Some(&body))
        .map_err(|e| format!("{addr}: {e}"))?;
    println!("{response}");
    if status >= 300 {
        return Err(format!("submit rejected: HTTP {status}"));
    }
    Ok(())
}

/// Lists the daemon's jobs, or one job's status with `--job ID`.
fn jobs_cmd(args: &[String]) -> Result<(), String> {
    let addr = require_addr(args)?;
    let path = match flag(args, "--job")? {
        Some(id) => format!("/jobs/{id}"),
        None => "/jobs".to_string(),
    };
    let (status, response) =
        blam_campaign::request(&addr, "GET", &path, None).map_err(|e| format!("{addr}: {e}"))?;
    println!("{response}");
    if status >= 300 {
        return Err(format!("{path}: HTTP {status}"));
    }
    Ok(())
}

/// Follows a job's live telemetry: chunked NDJSON from the daemon,
/// one trace line per stdout line, until the job ends.
fn tail_cmd(args: &[String]) -> Result<(), String> {
    let addr = require_addr(args)?;
    let job = flag(args, "--job")?.ok_or("tail requires --job ID")?;
    let mut lines = 0u64;
    let status = blam_campaign::tail_ndjson(&addr, &format!("/jobs/{job}/tail"), &mut |line| {
        println!("{line}");
        lines += 1;
    })
    .map_err(|e| format!("{addr}: {e}"))?;
    if status != 200 {
        return Err(format!("tail of job {job}: HTTP {status}"));
    }
    eprintln!("[tail closed after {lines} line(s)]");
    Ok(())
}

/// Asks the daemon to stop: in-flight jobs finish, queued jobs stay
/// spooled for the next daemon on the same spool.
fn shutdown_cmd(args: &[String]) -> Result<(), String> {
    let addr = require_addr(args)?;
    let (status, response) = blam_campaign::request(&addr, "POST", "/shutdown", None)
        .map_err(|e| format!("{addr}: {e}"))?;
    println!("{response}");
    if status >= 300 {
        return Err(format!("shutdown: HTTP {status}"));
    }
    Ok(())
}

fn print_summary(r: &RunResult) {
    print!("{}", blam_netsim::report::summary(r));
}
