//! `blam-sim` — command-line front end for the lpwan-blam simulator.
//!
//! ```text
//! blam-sim template                          # print a default scenario JSON
//! blam-sim run --config scenario.json        # run it, print metrics
//! blam-sim run --config scenario.json --out results.json
//! blam-sim compare --nodes 100 --days 60     # LoRaWAN vs H-θ side by side
//! ```

use std::process::ExitCode;

use blam_netsim::engine::Engine;
use blam_netsim::{config::Protocol, BatchRunner, RunResult, ScenarioConfig};
use blam_units::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("template") => template(),
        Some("run") => run(&args[1..]),
        Some("compare") => compare(&args[1..]),
        Some("--help" | "-h") | None => {
            usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage:\n  blam-sim template                      print a default scenario config (JSON)\n  \
         blam-sim run --config FILE [--out FILE]  simulate a scenario\n  \
         blam-sim compare [--nodes N] [--days D] [--seed S] [--jobs J]  quick protocol comparison"
    );
}

fn flag(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{name} requires a value")),
    }
}

fn template() -> Result<(), String> {
    let cfg = ScenarioConfig::large_scale(100, Protocol::h(0.5), 42);
    let json = serde_json::to_string_pretty(&cfg).map_err(|e| e.to_string())?;
    println!("{json}");
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--config")?.ok_or("run requires --config FILE")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let cfg: ScenarioConfig =
        serde_json::from_str(&text).map_err(|e| format!("{path}: invalid scenario: {e}"))?;
    eprintln!(
        "simulating {} nodes under {} for {} (seed {})…",
        cfg.nodes,
        cfg.protocol.label(),
        cfg.duration,
        cfg.seed
    );
    let start = std::time::Instant::now();
    let result = Engine::build(cfg).run();
    eprintln!(
        "done: {} events in {:.1?}",
        result.events_processed,
        start.elapsed()
    );
    print_summary(&result);
    if let Some(out) = flag(args, "--out")? {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        std::fs::write(&out, json).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("[full results written to {out}]");
    }
    Ok(())
}

fn compare(args: &[String]) -> Result<(), String> {
    let parse = |v: Option<String>, d: u64| -> Result<u64, String> {
        v.map_or(Ok(d), |s| s.parse().map_err(|e| format!("bad number: {e}")))
    };
    let nodes = parse(flag(args, "--nodes")?, 100)? as usize;
    let days = parse(flag(args, "--days")?, 60)?;
    let seed = parse(flag(args, "--seed")?, 42)?;
    let jobs = parse(
        flag(args, "--jobs")?,
        BatchRunner::available().jobs() as u64,
    )? as usize;
    if jobs == 0 {
        return Err("--jobs requires an integer ≥ 1".into());
    }

    let configs: Vec<ScenarioConfig> = [
        Protocol::Lorawan,
        Protocol::h(1.0),
        Protocol::h(0.5),
        Protocol::h(0.05),
        Protocol::h50c(),
    ]
    .into_iter()
    .map(|protocol| {
        let mut cfg = ScenarioConfig::large_scale(nodes, protocol, seed);
        cfg.duration = Duration::from_days(days);
        cfg.sample_interval = Duration::from_days(days.clamp(1, 30));
        cfg
    })
    .collect();
    let runs = BatchRunner::new(jobs).run_all(configs);

    println!("{}", blam_netsim::report::comparison_header());
    for r in &runs {
        println!("{}", blam_netsim::report::comparison_row(r));
    }
    Ok(())
}

fn print_summary(r: &RunResult) {
    print!("{}", blam_netsim::report::summary(r));
}
