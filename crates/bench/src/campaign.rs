//! Campaign result aggregation: fold a `blam-sim campaign`/`serve`
//! spool directory into one comparison table.
//!
//! A campaign spool (see `blam-campaign`) holds a `manifest.json` plus
//! one `results/<id>.json` per completed job, each a full
//! [`RunResult`]. [`aggregate`] reads them back into comparable rows
//! (manifest order, i.e. deterministic expansion order) and [`render`]
//! prints them through the shared [`Table`] so campaign summaries look
//! like every other experiment table.

use std::path::Path;

use blam_campaign::{JobStatus, Spool};
use blam_netsim::RunResult;

use crate::report::{Align, Table};

/// One aggregated campaign job: the headline network metrics of its
/// [`RunResult`], keyed by the job's content-hash id.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Content-hash job id (the spool result file stem).
    pub id: String,
    /// Human-readable sweep label (`theta=0.3 seed=1`).
    pub label: String,
    /// The seed the job ran under.
    pub seed: u64,
    /// Network packet reception rate.
    pub prr: f64,
    /// Mean retransmissions per completed exchange.
    pub avg_retx: f64,
    /// Mean per-packet utility.
    pub avg_utility: f64,
    /// Worst end-of-run degradation across nodes.
    pub degradation_max: f64,
    /// Brownout events across the network.
    pub brownouts: u64,
    /// First end-of-life, in simulated days (`None` if no node died).
    pub first_eol_days: Option<f64>,
}

impl CampaignRow {
    fn from_result(id: &str, label: &str, seed: u64, run: &RunResult) -> CampaignRow {
        CampaignRow {
            id: id.to_string(),
            label: label.to_string(),
            seed,
            prr: run.network.prr,
            avg_retx: run.network.avg_retx,
            avg_utility: run.network.avg_utility,
            degradation_max: run.network.degradation.max,
            brownouts: run.network.brownouts,
            first_eol_days: run.first_eol.map(|(_, at)| at.as_secs_f64() / 86_400.0),
        }
    }
}

/// Reads a campaign spool and aggregates every completed job into a
/// [`CampaignRow`], in manifest (expansion) order. Pending jobs are
/// skipped; the second element reports how many.
///
/// # Errors
///
/// Returns a message when the spool, its manifest, or any completed
/// job's result file is missing or unparseable.
pub fn aggregate(spool_dir: &Path) -> Result<(Vec<CampaignRow>, usize), String> {
    let spool = Spool::create(spool_dir)
        .map_err(|e| format!("cannot open spool {}: {e}", spool_dir.display()))?;
    let manifest = spool
        .read_manifest()
        .map_err(|e| format!("cannot read manifest in {}: {e}", spool_dir.display()))?
        .ok_or_else(|| format!("no manifest in spool {}", spool_dir.display()))?;
    let mut rows = Vec::new();
    let mut pending = 0usize;
    for entry in &manifest.jobs {
        if entry.status != JobStatus::Done {
            pending += 1;
            continue;
        }
        let text = spool
            .read_result(&entry.id)
            .map_err(|e| format!("job {} marked done but result unreadable: {e}", entry.id))?
            .ok_or_else(|| format!("job {} marked done but its result file is gone", entry.id))?;
        let run: RunResult = serde_json::from_str(&text)
            .map_err(|e| format!("job {} result is not a RunResult: {e}", entry.id))?;
        rows.push(CampaignRow::from_result(
            &entry.id,
            &entry.label,
            entry.seed,
            &run,
        ));
    }
    Ok((rows, pending))
}

/// Prints campaign rows as an aligned table (one row per job).
pub fn render(rows: &[CampaignRow]) {
    let table = Table::with_header(&[
        ("label", 18, Align::Left),
        ("PRR", 6, Align::Right),
        ("RETX", 6, Align::Right),
        ("utility", 7, Align::Right),
        ("deg max", 8, Align::Right),
        ("brownouts", 9, Align::Right),
        ("first EOL (d)", 13, Align::Right),
    ]);
    for row in rows {
        table.row(&[
            row.label.clone(),
            format!("{:.4}", row.prr),
            format!("{:.3}", row.avg_retx),
            format!("{:.3}", row.avg_utility),
            format!("{:.4}", row.degradation_max),
            format!("{}", row.brownouts),
            row.first_eol_days
                .map_or_else(|| "—".to_string(), |d| format!("{d:.1}")),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use blam_campaign::{run_campaign, Axis, CampaignSpec};
    use blam_netsim::{Protocol, ScenarioConfig};

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("blam-bench-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> CampaignSpec {
        let mut cfg = ScenarioConfig::large_scale(3, Protocol::h(0.5), 1);
        cfg.duration = blam_units::Duration::from_days(1);
        CampaignSpec {
            name: "agg-test".to_string(),
            base: serde_json::to_value(&cfg).expect("base serializes"),
            axes: vec![Axis {
                path: "protocol.Blam.theta".to_string(),
                values: vec![
                    serde_json::to_value(0.3).expect("value"),
                    serde_json::to_value(0.7).expect("value"),
                ],
            }],
            seeds: vec![],
        }
    }

    #[test]
    fn aggregates_a_completed_spool_in_manifest_order() {
        let dir = scratch("done");
        let outcome = run_campaign(&tiny_spec(), &dir, 2, &|| true).expect("tiny campaign runs");
        assert_eq!(outcome.ran, 2);

        let (rows, pending) = aggregate(&dir).expect("aggregation succeeds");
        assert_eq!(pending, 0);
        assert_eq!(rows.len(), 2);
        // Manifest order is expansion order: theta=0.3 before theta=0.7.
        assert_eq!(rows[0].label, "theta=0.3");
        assert_eq!(rows[1].label, "theta=0.7");
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.prr), "PRR in [0,1]");
            assert!(row.degradation_max >= 0.0);
        }
        render(&rows); // smoke: must not panic on real rows
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pending_jobs_are_counted_not_fabricated() {
        let dir = scratch("pending");
        // keep_going = false: manifest written, nothing executed.
        let outcome = run_campaign(&tiny_spec(), &dir, 1, &|| false).expect("setup succeeds");
        assert!(outcome.stopped_early);

        let (rows, pending) = aggregate(&dir).expect("aggregation succeeds");
        assert!(rows.is_empty());
        assert_eq!(pending, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spool_without_a_manifest_is_an_error_message() {
        let dir = scratch("empty");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let err = aggregate(&dir).expect_err("must fail");
        assert!(err.contains("manifest"), "actionable message: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
