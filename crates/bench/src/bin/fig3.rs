//! Fig. 3 — Degradation influence on forecast-window selection.
//!
//! The paper contrasts the most- and least-degraded nodes of a 100-node
//! network across two sampling periods sharing one solar trace: in
//! period p₂₈ (generation above the transmission energy) both pick
//! window 1; in p₂₉ (generation below) the degraded node defers to a
//! cheaper window while the fresh node still transmits immediately.
//!
//! This binary reproduces the decision table directly from the
//! protocol's objective (Eq. 17) with the two weight extremes observed
//! in a simulated network.

use blam::select::{objectives, select_window, SelectInput, SelectOutcome};
use blam::utility::Utility;
use blam_bench::{banner, write_json, ExperimentArgs};
use blam_units::Joules;
use serde::Serialize;

#[derive(Serialize)]
struct Decision {
    period: &'static str,
    w_u: f64,
    chosen_window: Option<usize>,
    objectives: Vec<f64>,
}

fn main() {
    let args = ExperimentArgs::parse(2, 0.0);
    banner("fig3", "degradation influence on window selection", &args);

    let windows = 10;
    // A far node: SF12 transmissions cost nearly the worst case E_max,
    // so the Degradation Impact Factor spans its full [0, 1] range —
    // these are exactly the nodes whose window choice Fig. 3 contrasts.
    let e_tx = Joules(0.50); // SF12 exchange
    let e_max = Joules(0.55); // SF12/CR4-8/20 dBm worst case
    let tx = vec![e_tx; windows];

    // p28: the panel covers the transmission in every daylight window.
    let sunny: Vec<Joules> = (0..windows).map(|_| e_tx * 1.5).collect();
    // p29: generation has dipped below the transmission energy; a burst
    // of sun is forecast for window 2.
    let mut dim: Vec<Joules> = (0..windows).map(|_| e_tx * 0.25).collect();
    dim[2] = e_tx * 1.2;

    let mut decisions = Vec::new();
    println!(
        "{:<8} {:>6} {:>8}   objectives γ_t (lower is better)",
        "period", "w_u", "chosen"
    );
    for (period, green) in [("p28", &sunny), ("p29", &dim)] {
        // w_u = 1: the most degraded battery; w_u = 0.05: the freshest.
        for w_u in [1.0, 0.05] {
            let input = SelectInput {
                battery_energy: Joules(5.0),
                normalized_degradation: w_u,
                degradation_weight: 1.0,
                green_energy: green,
                tx_energy: &tx,
                max_tx_energy: e_max,
                utility: &Utility::Linear,
            };
            let gammas = objectives(&input);
            let chosen = match select_window(&input) {
                SelectOutcome::Selected { window, .. } => Some(window),
                SelectOutcome::Fail => None,
            };
            println!(
                "{:<8} {:>6.2} {:>8}   [{}]",
                period,
                w_u,
                chosen.map_or("drop".into(), |w| format!("w{w}")),
                gammas
                    .iter()
                    .map(|g| format!("{g:.3}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            decisions.push(Decision {
                period,
                w_u,
                chosen_window: chosen,
                objectives: gammas,
            });
        }
    }

    let p28_agree = decisions[0].chosen_window == decisions[1].chosen_window;
    let p29_split = decisions[2].chosen_window != decisions[3].chosen_window;
    println!(
        "\np28: both nodes choose the same early window — {}",
        if p28_agree {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "p29: the degraded node defers while the fresh node transmits early — {}",
        if p29_split {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    write_json("fig3", &decisions);
}
