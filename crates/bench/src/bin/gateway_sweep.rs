//! Extension — gateway density.
//!
//! The paper's system model allows "one or more gateways" but evaluates
//! a single one. Denser gateways shorten links (lower SFs, shorter
//! airtimes) and multiply demodulation and downlink capacity; this
//! sweep quantifies how much of LoRaWAN's collision pain — and of the
//! protocol's relative advantage — density buys away.

use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::{config::Protocol, Scenario};
use blam_units::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct GatewayRow {
    gateways: usize,
    protocol: String,
    prr: f64,
    avg_retx: f64,
    tx_energy_eq6_joules: f64,
    degradation_mean: f64,
}

fn main() {
    let mut args = ExperimentArgs::parse(120, 0.5);
    if args.full {
        args.nodes = 500;
        args.years = 1.0;
    }
    banner("gateway_sweep", "gateway density 1 / 2 / 4", &args);

    println!(
        "{:<4} {:<8} {:>7} {:>9} {:>14} {:>11}",
        "GWs", "MAC", "PRR", "RETX", "TX energy [J]", "deg. mean"
    );
    let mut rows = Vec::new();
    for gateways in [1usize, 2, 4] {
        for protocol in [Protocol::Lorawan, Protocol::h(0.5)] {
            let mut scenario = Scenario::large_scale(args.nodes, protocol, args.seed)
                .with_duration(args.duration())
                .with_sample_interval(Duration::from_days(30));
            scenario.config.gateways = gateways;
            let run = scenario.run();
            println!(
                "{:<4} {:<8} {:>6.1}% {:>9.3} {:>14.1} {:>11.5}",
                gateways,
                run.label,
                100.0 * run.network.prr,
                run.network.avg_retx,
                run.network.total_tx_energy_eq6.0,
                run.network.degradation.mean,
            );
            rows.push(GatewayRow {
                gateways,
                protocol: run.label.clone(),
                prr: run.network.prr,
                avg_retx: run.network.avg_retx,
                tx_energy_eq6_joules: run.network.total_tx_energy_eq6.0,
                degradation_mean: run.network.degradation.mean,
            });
        }
    }

    let lorawan = |g: usize| rows.iter().find(|r| r.gateways == g && r.protocol == "LoRaWAN").unwrap();
    let h50 = |g: usize| rows.iter().find(|r| r.gateways == g && r.protocol == "H-50").unwrap();
    println!(
        "\nShape checks — density cuts LoRaWAN TX energy (shorter links): {}; the θ-driven \
         degradation advantage\nsurvives at every density: {}",
        lorawan(4).tx_energy_eq6_joules < lorawan(1).tx_energy_eq6_joules,
        [1usize, 2, 4]
            .iter()
            .all(|&g| h50(g).degradation_mean < lorawan(g).degradation_mean * 0.95),
    );
    write_json("gateway_sweep", &rows);
}
