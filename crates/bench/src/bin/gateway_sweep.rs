//! Extension — gateway density.
//!
//! The paper's system model allows "one or more gateways" but evaluates
//! a single one. Denser gateways shorten links (lower SFs, shorter
//! airtimes) and multiply demodulation and downlink capacity; this
//! sweep quantifies how much of LoRaWAN's collision pain — and of the
//! protocol's relative advantage — density buys away.

use blam_bench::report::{shape_checks, Align, Table};
use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::{config::Protocol, Scenario, ScenarioConfig};
use blam_units::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct GatewayRow {
    gateways: usize,
    protocol: String,
    prr: f64,
    avg_retx: f64,
    tx_energy_eq6_joules: f64,
    degradation_mean: f64,
}

fn main() {
    let mut args = ExperimentArgs::parse(120, 0.5);
    if args.full {
        args.nodes = 500;
        args.years = 1.0;
    }
    banner("gateway_sweep", "gateway density 1 / 2 / 4", &args);

    // The six (density, protocol) cells are independent runs: one batch.
    let densities = [1usize, 2, 4];
    let mut cells = Vec::new();
    let mut configs: Vec<ScenarioConfig> = Vec::new();
    for gateways in densities {
        for protocol in [Protocol::Lorawan, Protocol::h(0.5)] {
            let mut scenario = Scenario::large_scale(args.nodes, protocol, args.seed)
                .with_duration(args.duration())
                .with_sample_interval(Duration::from_days(30));
            scenario.config.gateways = gateways;
            cells.push(gateways);
            configs.push(scenario.config);
        }
    }
    let runs = args.run_batch(configs);

    let table = Table::with_header(&[
        ("GWs", 4, Align::Left),
        ("MAC", 8, Align::Left),
        ("PRR", 7, Align::Right),
        ("RETX", 9, Align::Right),
        ("TX energy [J]", 14, Align::Right),
        ("deg. mean", 11, Align::Right),
    ]);
    let mut rows = Vec::new();
    for (gateways, run) in cells.into_iter().zip(&runs) {
        table.row(&[
            gateways.to_string(),
            run.label.clone(),
            format!("{:.1}%", 100.0 * run.network.prr),
            format!("{:.3}", run.network.avg_retx),
            format!("{:.1}", run.network.total_tx_energy_eq6.0),
            format!("{:.5}", run.network.degradation.mean),
        ]);
        rows.push(GatewayRow {
            gateways,
            protocol: run.label.clone(),
            prr: run.network.prr,
            avg_retx: run.network.avg_retx,
            tx_energy_eq6_joules: run.network.total_tx_energy_eq6.0,
            degradation_mean: run.network.degradation.mean,
        });
    }

    let lorawan = |g: usize| {
        rows.iter()
            .find(|r| r.gateways == g && r.protocol == "LoRaWAN")
            .unwrap()
    };
    let h50 = |g: usize| {
        rows.iter()
            .find(|r| r.gateways == g && r.protocol == "H-50")
            .unwrap()
    };
    println!();
    shape_checks(&[
        (
            "density cuts LoRaWAN TX energy (shorter links)",
            lorawan(4).tx_energy_eq6_joules < lorawan(1).tx_energy_eq6_joules,
        ),
        (
            "the θ-driven degradation advantage survives at every density",
            densities
                .iter()
                .all(|&g| h50(g).degradation_mean < lorawan(g).degradation_mean * 0.95),
        ),
    ]);
    write_json("gateway_sweep", &rows);
}
