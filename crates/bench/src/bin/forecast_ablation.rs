//! Ablation — green-energy forecaster quality.
//!
//! The protocol consumes per-window green-energy predictions (the paper
//! assumes the on-device forecaster of its ref. \[22\]). This ablation
//! bounds the protocol's sensitivity to forecast error: a clairvoyant
//! oracle, the deployable diurnal-persistence forecaster, and oracles
//! corrupted by increasing log-normal error.

use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::config::ForecasterKind;
use blam_netsim::{config::Protocol, Scenario};
use blam_units::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct ForecastRow {
    forecaster: String,
    prr: f64,
    avg_utility: f64,
    degradation_mean: f64,
    dropped: u64,
}

fn main() {
    let mut args = ExperimentArgs::parse(100, 1.0);
    if args.full {
        args.nodes = 300;
        args.years = 2.0;
    }
    banner("forecast_ablation", "forecaster quality sensitivity", &args);

    let kinds = [
        ("oracle".to_string(), ForecasterKind::Oracle),
        (
            "persistence".to_string(),
            ForecasterKind::DiurnalPersistence,
        ),
        ("noisy σ=0.5".to_string(), ForecasterKind::Noisy(0.5)),
        ("noisy σ=1.0".to_string(), ForecasterKind::Noisy(1.0)),
    ];

    println!(
        "{:<14} {:>7} {:>9} {:>11} {:>9}",
        "forecaster", "PRR", "utility", "deg. mean", "dropped"
    );
    let mut rows = Vec::new();
    for (name, kind) in kinds {
        let run = Scenario::large_scale(args.nodes, Protocol::h(0.5), args.seed)
            .with_duration(args.duration())
            .with_sample_interval(Duration::from_days(30))
            .with_forecaster(kind)
            .run();
        let dropped: u64 = run
            .nodes
            .iter()
            .map(|n| n.dropped_no_window + n.dropped_brownout)
            .sum();
        println!(
            "{:<14} {:>6.1}% {:>9.3} {:>11.5} {:>9}",
            name,
            100.0 * run.network.prr,
            run.network.avg_utility,
            run.network.degradation.mean,
            dropped,
        );
        rows.push(ForecastRow {
            forecaster: name,
            prr: run.network.prr,
            avg_utility: run.network.avg_utility,
            degradation_mean: run.network.degradation.mean,
            dropped,
        });
    }

    println!(
        "\nShape check — the deployable persistence forecaster stays close to the oracle \
         (PRR within 5 points): {}",
        (rows[0].prr - rows[1].prr).abs() < 0.05,
    );
    write_json("forecast_ablation", &rows);
}
