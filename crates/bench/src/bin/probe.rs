//! Diagnostic probe: quick look at simulation dynamics.
//!
//! Not part of the paper reproduction — a developer tool to sanity-check
//! PRR, retransmissions, window spread, energy and degradation scales.

use blam_netsim::{config::Protocol, Scenario};
use blam_units::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    let days: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(30);

    for protocol in [
        Protocol::Lorawan,
        Protocol::h(1.0),
        Protocol::h(0.5),
        Protocol::h(0.05),
    ] {
        let start = std::time::Instant::now();
        let r = Scenario::large_scale(nodes, protocol.clone(), 42)
            .with_duration(Duration::from_days(days))
            .run();
        let elapsed = start.elapsed();
        println!(
            "{:8}  PRR {:5.1}%  utility {:.3}  lat(del) {:7.1}s  lat(pen) {:7.1}s  retx {:.3}  txE(eq6) {:9.1} J  deg(mean) {:.5}  deg(max) {:.5}  brownouts {:6}  dropped {:6}  events {:9}  [{:?}]",
            r.label,
            100.0 * r.network.prr,
            r.network.avg_utility,
            r.network.avg_latency_delivered_secs,
            r.network.avg_latency_secs,
            r.network.avg_retx,
            r.network.total_tx_energy_eq6.0,
            r.network.degradation.mean,
            r.network.degradation.max,
            r.network.brownouts,
            r.nodes.iter().map(|n| n.dropped_no_window + n.dropped_brownout).sum::<u64>(),
            r.events_processed,
            elapsed,
        );
        if let Some(last) = r.samples.last() {
            let n = last.per_node.len() as f64;
            let cal: f64 = last.per_node.iter().map(|b| b.calendar).sum::<f64>() / n;
            let cyc: f64 = last.per_node.iter().map(|b| b.cycle).sum::<f64>() / n;
            let max_cal = last.per_node.iter().map(|b| b.calendar).fold(0.0, f64::max);
            let max_cyc = last.per_node.iter().map(|b| b.cycle).fold(0.0, f64::max);
            println!(
                "          linear components: mean cal {cal:.5} cyc {cyc:.5} | max cal {max_cal:.5} cyc {max_cyc:.5}"
            );
        }
        // Window histogram (network-wide) for the first 8 windows.
        let mut hist = vec![0u64; 8];
        for n in &r.nodes {
            for (w, &c) in n.window_histogram.iter().enumerate().take(8) {
                hist[w] += c;
            }
        }
        println!("          windows[0..8]: {hist:?}");
    }
}
