//! Fig. 10 — Deployment map.
//!
//! The paper shows the indoor testbed layout; for the simulation we
//! render the generated deployment: gateway at the origin, nodes
//! scattered over the disk, labelled by spreading factor. Prints an
//! ASCII map and writes the exact coordinates as JSON.

use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::{config::Protocol, topology::Topology, ScenarioConfig};
use serde::Serialize;

#[derive(Serialize)]
struct MapNode {
    id: usize,
    x_m: f64,
    y_m: f64,
    distance_m: f64,
    sf: u8,
}

fn main() {
    let mut args = ExperimentArgs::parse(100, 0.0);
    if args.full {
        args.nodes = 500;
    }
    banner("fig10", "deployment map", &args);

    let cfg = ScenarioConfig::large_scale(args.nodes, Protocol::h(0.5), args.seed);
    let topo = Topology::generate(&cfg);

    // ASCII render: 61×31 grid over the deployment square.
    const W: usize = 61;
    const H: usize = 31;
    let r = cfg.radius.0;
    let mut grid = vec![vec![' '; W]; H];
    for p in &topo.placements {
        let col = ((p.position.x + r) / (2.0 * r) * (W - 1) as f64).round() as usize;
        let row = ((r - p.position.y) / (2.0 * r) * (H - 1) as f64).round() as usize;
        grid[row.min(H - 1)][col.min(W - 1)] =
            char::from_digit(u32::from(p.sf.as_u8() - 5), 10).unwrap_or('?');
    }
    grid[H / 2][W / 2] = 'G';
    println!(
        "gateway = G, digits = SF − 5 (2 ⇒ SF7 … 7 ⇒ SF12); 1 cell ≈ {:.0} m\n",
        2.0 * r / W as f64
    );
    for row in &grid {
        println!("{}", row.iter().collect::<String>());
    }

    let hist = topo.sf_histogram();
    println!("\nSF histogram (SF7..SF12): {hist:?}");
    println!("max distance: {}", topo.max_distance());

    let nodes: Vec<MapNode> = topo
        .placements
        .iter()
        .enumerate()
        .map(|(id, p)| MapNode {
            id,
            x_m: p.position.x,
            y_m: p.position.y,
            distance_m: p.link.distance.0,
            sf: p.sf.as_u8(),
        })
        .collect();
    write_json("fig10", &nodes);
}
