//! Ablation — the degradation-importance weight w_b.
//!
//! The paper notes (§IV-A.4) that latency is configurable through w_b:
//! low values trade battery lifespan for lower latency. This sweep
//! quantifies that knob: w_b ∈ {0, 0.25, 0.5, 0.75, 1.0} on H-50.

use blam::BlamConfig;
use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::{config::Protocol, Scenario};
use blam_units::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct WbRow {
    w_b: f64,
    avg_latency_delivered_secs: f64,
    avg_utility: f64,
    avg_retx: f64,
    degradation_mean: f64,
    prr: f64,
}

fn main() {
    let mut args = ExperimentArgs::parse(100, 1.0);
    if args.full {
        args.nodes = 300;
        args.years = 2.0;
    }
    banner("wb_sweep", "latency/lifespan knob w_b", &args);

    println!(
        "{:<6} {:>12} {:>9} {:>10} {:>11} {:>7}",
        "w_b", "latency", "utility", "RETX", "deg. mean", "PRR"
    );
    let mut rows = Vec::new();
    for w_b in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let cfg = BlamConfig::h(0.5).with_degradation_weight(w_b);
        let run = Scenario::large_scale(args.nodes, Protocol::Blam(cfg), args.seed)
            .with_duration(args.duration())
            .with_sample_interval(Duration::from_days(30))
            .run();
        println!(
            "{:<6.2} {:>11.1}s {:>9.3} {:>10.3} {:>11.5} {:>6.1}%",
            w_b,
            run.network.avg_latency_delivered_secs,
            run.network.avg_utility,
            run.network.avg_retx,
            run.network.degradation.mean,
            100.0 * run.network.prr,
        );
        rows.push(WbRow {
            w_b,
            avg_latency_delivered_secs: run.network.avg_latency_delivered_secs,
            avg_utility: run.network.avg_utility,
            avg_retx: run.network.avg_retx,
            degradation_mean: run.network.degradation.mean,
            prr: run.network.prr,
        });
    }

    println!(
        "\nShape check — higher w_b trades latency for battery impact: latency up {}, RETX (collision \
         energy) down {}",
        rows.last().unwrap().avg_latency_delivered_secs >= rows[0].avg_latency_delivered_secs,
        rows.last().unwrap().avg_retx <= rows[0].avg_retx,
    );
    println!(
        "(With θ fixed at 0.5, calendar aging dominates total degradation; w_b's battery effect \
         shows in the\n cycle/collision energy, i.e. RETX and TX energy — exactly the paper's \
         remark that low w_b trades\n lifespan for latency at the margin.)"
    );
    write_json("wb_sweep", &rows);
}
