//! Fig. 6 — (a) average utility, (b) PRR, (c) average latency, under
//! varying charging threshold θ.
//!
//! The paper's findings: LoRaWAN's utility and PRR vary widely across
//! nodes (lowest PRR 63.9%) under pure ALOHA; H-50 improves both
//! (utility +39%, PRR +54% versus the LoRaWAN worst case) at the cost
//! of latency (LoRaWAN delivers within ~35 s, H-50 averages minutes —
//! tunable via w_b); H-5 loses packets to battery depletion.
//!
//! Shares the θ-sweep runs with fig4/fig5 (cached).

use blam_bench::report::{delta_vs_paper, percent_change, shape_checks, Align, Table};
use blam_bench::{banner, theta_sweep, write_json, ExperimentArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Row {
    protocol: String,
    avg_utility: f64,
    utility_min_node: f64,
    utility_max_node: f64,
    prr: f64,
    prr_min_node: f64,
    prr_max_node: f64,
    avg_latency_delivered_secs: f64,
    avg_latency_penalized_secs: f64,
}

fn main() {
    let args = ExperimentArgs::parse(150, 1.0);
    banner("fig6", "utility / PRR / latency under varying θ", &args);
    let sweep = theta_sweep::run_or_load(&args);

    let table = Table::with_header(&[
        ("MAC", 8, Align::Left),
        ("utility", 9, Align::Right),
        ("per-node [lo,hi]", 17, Align::Right),
        ("PRR", 7, Align::Right),
        ("per-node [lo,hi]", 15, Align::Right),
        ("lat(deliv)", 13, Align::Right),
        ("lat(penal)", 13, Align::Right),
    ]);
    let mut rows = Vec::new();
    for run in &sweep.runs {
        let n = &run.network;
        table.row(&[
            run.label.clone(),
            format!("{:.3}", n.avg_utility),
            format!(
                "{:.3},{:.3}",
                n.utility_per_node.min, n.utility_per_node.max
            ),
            format!("{:.1}%", 100.0 * n.prr),
            format!(
                "{:.1}%,{:.1}%",
                100.0 * n.prr_per_node.min,
                100.0 * n.prr_per_node.max
            ),
            format!("{:.1}s", n.avg_latency_delivered_secs),
            format!("{:.1}s", n.avg_latency_secs),
        ]);
        rows.push(Fig6Row {
            protocol: run.label.clone(),
            avg_utility: n.avg_utility,
            utility_min_node: n.utility_per_node.min,
            utility_max_node: n.utility_per_node.max,
            prr: n.prr,
            prr_min_node: n.prr_per_node.min,
            prr_max_node: n.prr_per_node.max,
            avg_latency_delivered_secs: n.avg_latency_delivered_secs,
            avg_latency_penalized_secs: n.avg_latency_secs,
        });
    }

    let lorawan = &rows[0];
    let h5 = &rows[1];
    let h50 = &rows[2];
    println!();
    delta_vs_paper(
        "H-50 vs LoRaWAN worst node: utility",
        percent_change(h50.utility_min_node, lorawan.utility_min_node),
        "+39%",
    );
    delta_vs_paper(
        "H-50 vs LoRaWAN worst node: PRR",
        percent_change(h50.prr_min_node, lorawan.prr_min_node),
        "+54%",
    );
    let lowest_prr = rows.iter().map(|r| r.prr).fold(f64::MAX, f64::min);
    shape_checks(&[
        (
            "LoRaWAN per-node PRR spread wide",
            lorawan.prr_min_node < 0.9,
        ),
        ("H-5 PRR lowest", h5.prr <= lowest_prr + 1e-12),
        (
            "H-50 delivers later than LoRaWAN",
            h50.avg_latency_delivered_secs > lorawan.avg_latency_delivered_secs,
        ),
    ]);
    write_json("fig6", &rows);
}
