//! Ablation — Algorithm 1 versus the clairvoyant optimum (§III-A).
//!
//! The paper motivates its on-sensor heuristic by the impracticality of
//! the centralized TDMA formulation, but never quantifies the gap. On
//! instances small enough for exact enumeration we can: build a
//! clairvoyant problem, compute the exact weighted-sum optimum, then
//! evaluate the schedule Algorithm 1 would pick (each node planning
//! locally with oracle green-energy forecasts) in the same objective.

use blam::clairvoyant::{Assignment, ClairvoyantNode, ClairvoyantProblem};
use blam::select::{select_window, SelectInput, SelectOutcome};
use blam::utility::Utility;
use blam_bench::{banner, write_json, ExperimentArgs};
use blam_units::{Celsius, Duration, Joules};
use serde::Serialize;

#[derive(Serialize)]
struct GapRow {
    lambda: f64,
    exact_max_degradation: f64,
    exact_min_utility: f64,
    heuristic_max_degradation: f64,
    heuristic_min_utility: f64,
    degradation_gap_pct: f64,
}

/// Two-node, two-period instance with sun in one slot per period.
fn instance() -> ClairvoyantProblem {
    let slots = 12;
    let mut green = vec![Joules(0.0); slots];
    green[2] = Joules(0.12);
    green[8] = Joules(0.12);
    ClairvoyantProblem {
        slots,
        slot_length: Duration::from_mins(1),
        omega: 1,
        nodes: (0..2)
            .map(|i| ClairvoyantNode {
                period_slots: 6,
                tx_energy: Joules(0.05),
                sleep_energy: Joules(0.0005),
                green: green.clone(),
                battery_capacity: Joules(1.0),
                initial_soc: 0.4 + 0.2 * i as f64,
                theta: 0.5,
            })
            .collect(),
        temperature: Celsius(25.0),
    }
}

/// The schedule Algorithm 1 produces: each node plans each period
/// independently with oracle forecasts, taking the normalized
/// degradation as 1 (conservative) and breaking gateway ties by
/// shifting to the next-best window when the slot is taken.
fn heuristic_assignment(p: &ClairvoyantProblem) -> Assignment {
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); p.nodes.len()];
    let periods = p.slots / p.nodes[0].period_slots;
    for period in 0..periods {
        let mut taken: Vec<usize> = Vec::new();
        for (u, node) in p.nodes.iter().enumerate() {
            let tau = node.period_slots;
            let base = period * tau;
            let green: Vec<Joules> = (0..tau)
                .map(|t| node.green.get(base + t).copied().unwrap_or(Joules::ZERO))
                .collect();
            let tx = vec![node.tx_energy; tau];
            let input = SelectInput {
                battery_energy: node.battery_capacity * node.initial_soc,
                normalized_degradation: 1.0,
                degradation_weight: 1.0,
                green_energy: &green,
                tx_energy: &tx,
                max_tx_energy: node.tx_energy * 2.0,
                utility: &Utility::Linear,
            };
            let w = match select_window(&input) {
                SelectOutcome::Selected { window, .. } => window,
                SelectOutcome::Fail => 0,
            };
            // ω = 1: if a peer already claimed the slot this period, take
            // the next free one — the role the collision feedback of
            // Eq. (14) plays over time in the online protocol.
            let mut w = w;
            while taken.contains(&w) {
                w = (w + 1) % tau;
            }
            taken.push(w);
            assignment[u].push(w);
        }
    }
    Assignment(assignment)
}

fn main() {
    let args = ExperimentArgs::parse(2, 0.0);
    banner(
        "clairvoyant_gap",
        "Algorithm 1 vs the §III-A optimum",
        &args,
    );

    let p = instance();
    println!("search space: {} schedules\n", p.search_space());
    let heuristic = heuristic_assignment(&p);
    let heuristic_eval = p.evaluate(&heuristic);

    // Normalize degradation against the transmit-immediately schedule so
    // the scalarized objectives are comparable across λ.
    let deg_scale = p
        .evaluate(&p.immediate_assignment())
        .max_degradation
        .max(1e-300);

    println!(
        "{:>6} {:>13} {:>12} {:>11} | {:>13} {:>12} {:>11} {:>10}",
        "λ",
        "opt max-deg",
        "opt utility",
        "opt obj",
        "heur max-deg",
        "heur utility",
        "heur obj",
        "obj gap"
    );
    let mut rows = Vec::new();
    let mut worst_gap: f64 = 0.0;
    for lambda in [0.0, 0.5, 0.9, 1.0] {
        let (_, exact) = p
            .solve_exhaustive(lambda, 1 << 24)
            .expect("feasible instance");
        let opt_obj = exact.scalarized(lambda, deg_scale);
        let heur_obj = heuristic_eval.scalarized(lambda, deg_scale);
        let gap = heur_obj - opt_obj;
        worst_gap = worst_gap.max(gap);
        println!(
            "{lambda:>6.2} {:>13.6e} {:>12.3} {:>11.4} | {:>13.6e} {:>12.3} {:>11.4} {:>10.4}",
            exact.max_degradation,
            exact.min_utility,
            opt_obj,
            heuristic_eval.max_degradation,
            heuristic_eval.min_utility,
            heur_obj,
            gap
        );
        rows.push(GapRow {
            lambda,
            exact_max_degradation: exact.max_degradation,
            exact_min_utility: exact.min_utility,
            heuristic_max_degradation: heuristic_eval.max_degradation,
            heuristic_min_utility: heuristic_eval.min_utility,
            degradation_gap_pct: 100.0
                * (heuristic_eval.max_degradation / exact.max_degradation.max(1e-300) - 1.0),
        });
    }

    println!(
        "\nThe fixed local schedule is a single point on the Pareto front: it pays up to \
         {worst_gap:.3} of scalarized\nobjective against the per-λ clairvoyant optimum, \
         without any synchronization or global knowledge —\nthe trade §III-A argues for."
    );
    write_json("clairvoyant_gap", &rows);
}
