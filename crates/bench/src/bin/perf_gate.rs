//! Performance gate for the hot-path optimizations (calendar event
//! queue, PHY airtime/energy memo tables, incremental gateway ledger).
//!
//! Runs one pinned reference scenario twice through the batch runner:
//! first with `reference_impl: true` (binary-heap queue, uncached
//! Semtech arithmetic, replay-per-pass ledger — the in-PR
//! pre-optimization baseline), then with the optimized defaults. The
//! two legs must produce **byte-identical** serialized [`RunResult`]s
//! — the differential-oracle contract — and the optimized leg must be
//! at least [`MIN_SPEEDUP`]× faster (skipped under `--smoke`).
//!
//! Writes a schema-versioned report to
//! `target/experiments/BENCH_netsim.json` (override with `--out PATH`),
//! including the batch runner's [`BatchProfile`] phase stats per leg
//! and (schema v2) informational scale rows timing the multi-gateway
//! deployment through the monolithic and cell-sharded engines.
//!
//! ```text
//! cargo run --release -p blam-bench --bin perf_gate
//! cargo run --release -p blam-bench --bin perf_gate -- --smoke --out /tmp/BENCH_netsim.json
//! ```

use std::time::Instant;

use blam_bench::ExperimentArgs;
use blam_netsim::config::Protocol;
use blam_netsim::engine::Engine;
use blam_netsim::shard::run_sharded;
use blam_netsim::{BatchRunner, RunResult, Scenario, ScenarioConfig, TelemetryOptions};
use blam_telemetry::BatchProfile;
use blam_units::Duration;
use serde::Serialize;

/// Bump when the JSON layout changes (consumers must check this).
const SCHEMA_VERSION: u32 = 2;

/// The optimized leg must beat the reference leg by this factor.
const MIN_SPEEDUP: f64 = 1.3;

/// One timed leg of the gate.
#[derive(Debug, Serialize)]
struct Leg {
    /// Whether this leg ran the reference implementations.
    reference_impl: bool,
    /// Wall-clock seconds for the whole batch.
    elapsed_s: f64,
    /// Simulator events processed, summed over the batch.
    events: u64,
    /// Events per wall-clock second.
    events_per_sec: f64,
    /// Simulated hours per wall-clock second.
    sim_hours_per_sec: f64,
    /// Batch runner phase breakdown (queue wait, sim run, merge).
    profile: BatchProfile,
}

#[derive(Debug, Serialize)]
struct GateReport {
    schema_version: u32,
    scenario: ScenarioInfo,
    baseline: Leg,
    optimized: Leg,
    /// baseline.elapsed_s / optimized.elapsed_s.
    speedup: f64,
    /// Always `"byte-identical"`: the binary aborts on any divergence.
    parity: &'static str,
    gate: Gate,
    /// Throughput/footprint rows for the multi-gateway scale scenario,
    /// monolithic vs cell-sharded (schema v2).
    scale: Vec<ScaleRow>,
}

/// One timed scale-scenario run (informational — not gated, since the
/// monolithic and sharded engines are distinct execution modes).
#[derive(Debug, Serialize)]
struct ScaleRow {
    nodes: usize,
    gateways: usize,
    days: u64,
    /// False = the monolithic single engine; true = the cell-sharded
    /// coordinator at `shards` groups / `jobs` workers.
    sharded: bool,
    shards: usize,
    jobs: usize,
    elapsed_s: f64,
    events: u64,
    events_per_sec: f64,
    /// Resident set per node right after the run (`VmRSS`/nodes),
    /// 0 when `/proc/self/status` is unavailable. Process-wide, so
    /// compare rows within one invocation only.
    bytes_per_node: f64,
}

#[derive(Debug, Serialize)]
struct ScenarioInfo {
    nodes: usize,
    days: u64,
    seed: u64,
    jobs: usize,
    smoke: bool,
    protocols: Vec<String>,
}

#[derive(Debug, Serialize)]
struct Gate {
    min_speedup: f64,
    enforced: bool,
    passed: bool,
}

/// The pinned gate scenarios: the same deployment under BLAM (window
/// selection, ledger, dissemination all hot) and plain LoRaWAN
/// (airtime/energy caches hot), so both policy paths are measured.
fn configs(args: &ExperimentArgs) -> Vec<ScenarioConfig> {
    [Protocol::h(1.0), Protocol::Lorawan]
        .into_iter()
        .map(|p| {
            Scenario::large_scale(args.nodes, p, args.seed)
                .with_duration(args.duration())
                .config
        })
        .collect()
}

/// Current resident set size in bytes (`VmRSS` from
/// `/proc/self/status`); `None` off Linux.
fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Times one scale-scenario run through either engine.
fn scale_row(
    nodes: usize,
    gateways: usize,
    days: u64,
    seed: u64,
    jobs: usize,
    sharded: bool,
) -> ScaleRow {
    let mut cfg = ScenarioConfig::scale(nodes, gateways, Protocol::h(0.5), seed);
    cfg.duration = Duration::from_days(days);
    cfg.sample_interval = Duration::from_days(days.clamp(1, 30));
    let start = Instant::now();
    let result = if sharded {
        run_sharded(&cfg, gateways, jobs, &TelemetryOptions::off())
    } else {
        Engine::build(cfg).run()
    };
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);
    ScaleRow {
        nodes,
        gateways,
        days,
        sharded,
        shards: if sharded { gateways } else { 1 },
        jobs: if sharded { jobs } else { 1 },
        elapsed_s,
        events: result.events_processed,
        events_per_sec: result.events_processed as f64 / elapsed_s,
        bytes_per_node: rss_bytes().map_or(0.0, |b| b as f64 / nodes as f64),
    }
}

fn run_leg(args: &ExperimentArgs, reference: bool) -> (Vec<RunResult>, Leg) {
    let mut cfgs = configs(args);
    for c in &mut cfgs {
        c.reference_impl = reference;
    }
    let runner = BatchRunner::new(args.jobs).quiet();
    let start = Instant::now();
    let outcome = runner.run_all_with(cfgs, &TelemetryOptions::off());
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);
    let events: u64 = outcome.results.iter().map(|r| r.events_processed).sum();
    let sim_hours: f64 = outcome
        .results
        .iter()
        .map(|r| r.sim_end.as_secs_f64() / 3600.0)
        .sum();
    let leg = Leg {
        reference_impl: reference,
        elapsed_s,
        events,
        events_per_sec: events as f64 / elapsed_s,
        sim_hours_per_sec: sim_hours / elapsed_s,
        profile: outcome.profile,
    };
    (outcome.results, leg)
}

fn main() {
    // `--smoke` and `--out` are gate-specific; everything else is the
    // shared experiment CLI (`--nodes`, `--years`, `--seed`, `--jobs`).
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(it.next().expect("--out requires a path")),
            _ => rest.push(flag),
        }
    }
    let mut args = ExperimentArgs::parse_from(&rest, 60, 0.25);
    if smoke {
        // Tiny but non-trivial: enough traffic to exercise every hot
        // path (queue, caches, ledger) in a few seconds, no gating.
        args.nodes = args.nodes.min(10);
        args.years = args.years.min(0.01);
    }
    let days = args.duration().as_secs() / 86_400;

    println!("=== perf_gate: hot-path speedup vs in-PR reference baseline ===");
    println!(
        "nodes = {}, days = {days}, seed = {}, jobs = {}{}",
        args.nodes,
        args.seed,
        args.jobs,
        if smoke {
            " (smoke: gate not enforced)"
        } else {
            ""
        }
    );

    let (ref_results, baseline) = run_leg(&args, true);
    let (opt_results, optimized) = run_leg(&args, false);

    // The differential-oracle contract: the optimized engine must be
    // byte-identical to the reference one, down to serialized floats.
    let ref_json = serde_json::to_string(&ref_results).expect("serialize reference results");
    let opt_json = serde_json::to_string(&opt_results).expect("serialize optimized results");
    assert!(
        ref_json == opt_json,
        "PARITY FAILURE: optimized engine diverged from the reference \
         implementation (serialized RunResults differ)"
    );

    let speedup = baseline.elapsed_s / optimized.elapsed_s;
    let passed = smoke || speedup >= MIN_SPEEDUP;
    println!(
        "baseline : {:>10.3} s  {:>12.0} events/s  {:>10.1} sim-h/s",
        baseline.elapsed_s, baseline.events_per_sec, baseline.sim_hours_per_sec
    );
    println!(
        "optimized: {:>10.3} s  {:>12.0} events/s  {:>10.1} sim-h/s",
        optimized.elapsed_s, optimized.events_per_sec, optimized.sim_hours_per_sec
    );
    println!(
        "parity   : byte-identical ({} bytes of RunResult JSON)",
        opt_json.len()
    );
    println!(
        "speedup  : {speedup:.2}x (gate: >= {MIN_SPEEDUP}x{})",
        if smoke {
            ", not enforced in smoke mode"
        } else {
            ""
        }
    );

    // Scale rows: the multi-gateway deployment through the monolithic
    // engine and the cell-sharded coordinator. Informational — the two
    // are distinct execution modes with different event totals, so no
    // parity or speedup is asserted here; the sharded mode's own
    // byte-identity contract is covered by the shard_equivalence tests.
    let scale_points: &[(usize, usize, u64)] = if smoke {
        &[(1_000, 4, 1)]
    } else {
        &[(10_000, 16, 2), (100_000, 64, 2)]
    };
    println!("--- scale scenario (monolithic vs cell-sharded) ---");
    let mut scale_rows = Vec::new();
    for &(nodes, gateways, scale_days) in scale_points {
        for sharded in [false, true] {
            let row = scale_row(nodes, gateways, scale_days, args.seed, args.jobs, sharded);
            println!(
                "{:>7} nodes / {:>3} cells {}: {:>8.2} s  {:>12.0} events/s  {:>8.0} B/node",
                row.nodes,
                row.gateways,
                if row.sharded {
                    "sharded   "
                } else {
                    "monolithic"
                },
                row.elapsed_s,
                row.events_per_sec,
                row.bytes_per_node,
            );
            scale_rows.push(row);
        }
    }

    let report = GateReport {
        schema_version: SCHEMA_VERSION,
        scenario: ScenarioInfo {
            nodes: args.nodes,
            days,
            seed: args.seed,
            jobs: args.jobs,
            smoke,
            protocols: ref_results.iter().map(|r| r.label.clone()).collect(),
        },
        baseline,
        optimized,
        speedup,
        parity: "byte-identical",
        gate: Gate {
            min_speedup: MIN_SPEEDUP,
            enforced: !smoke,
            passed,
        },
        scale: scale_rows,
    };
    match &out {
        Some(path) => {
            let json = serde_json::to_string_pretty(&report).expect("serialize gate report");
            blam_campaign::write_string_atomic(std::path::Path::new(path), &json)
                .unwrap_or_else(|e| panic!("cannot write `{path}`: {e}"));
            println!("\n[written {path}]");
        }
        None => blam_bench::write_json("BENCH_netsim", &report),
    }

    if !passed {
        eprintln!(
            "perf gate FAILED: speedup {speedup:.2}x < {MIN_SPEEDUP}x \
             (optimized hot paths regressed against the reference baseline)"
        );
        std::process::exit(1);
    }
}
