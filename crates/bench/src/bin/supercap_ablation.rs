//! Extension — supercapacitor hybrid storage (the paper's future work).
//!
//! The paper's related work (its ref. \[39\]) proposes buffering the
//! battery behind a supercapacitor; the paper leaves studying such
//! setups as future work but argues its software-defined-battery
//! approach stays applicable. This experiment quantifies the
//! combination: a supercap sized for ~10 transmissions absorbs the
//! shallow per-packet cycles, so the battery's *cycle* aging collapses
//! while calendar aging (the protocol's θ lever) is untouched — the two
//! mechanisms compose.

use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::{config::Protocol, Scenario};
use blam_units::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct SupercapRow {
    variant: String,
    prr: f64,
    mean_calendar_aging: f64,
    mean_cycle_aging: f64,
    degradation_mean: f64,
}

fn main() {
    let mut args = ExperimentArgs::parse(80, 1.0);
    if args.full {
        args.nodes = 300;
        args.years = 2.0;
    }
    banner(
        "supercap_ablation",
        "hybrid supercap + battery storage",
        &args,
    );

    println!(
        "{:<22} {:>7} {:>14} {:>13} {:>11}",
        "variant", "PRR", "calendar aging", "cycle aging", "deg. total"
    );
    let mut rows = Vec::new();
    for (name, protocol, supercap) in [
        ("LoRaWAN", Protocol::Lorawan, None),
        ("LoRaWAN + supercap", Protocol::Lorawan, Some(10.0)),
        ("H-50", Protocol::h(0.5), None),
        ("H-50 + supercap", Protocol::h(0.5), Some(10.0)),
    ] {
        let mut scenario = Scenario::large_scale(args.nodes, protocol, args.seed)
            .with_duration(args.duration())
            .with_sample_interval(Duration::from_days(30));
        scenario.config.supercap_tx_multiple = supercap;
        let run = scenario.run();
        let last = run.samples.last().expect("samples");
        let n = last.per_node.len() as f64;
        let cal = last.per_node.iter().map(|b| b.calendar).sum::<f64>() / n;
        let cyc = last.per_node.iter().map(|b| b.cycle).sum::<f64>() / n;
        println!(
            "{:<22} {:>6.1}% {:>14.6} {:>13.6} {:>11.5}",
            name,
            100.0 * run.network.prr,
            cal,
            cyc,
            run.network.degradation.mean,
        );
        rows.push(SupercapRow {
            variant: name.to_string(),
            prr: run.network.prr,
            mean_calendar_aging: cal,
            mean_cycle_aging: cyc,
            degradation_mean: run.network.degradation.mean,
        });
    }

    let cyc_cut_lorawan = 1.0 - rows[1].mean_cycle_aging / rows[0].mean_cycle_aging.max(1e-300);
    let cyc_cut_h50 = 1.0 - rows[3].mean_cycle_aging / rows[2].mean_cycle_aging.max(1e-300);
    println!(
        "\nSupercap cuts battery cycle aging by {:.0}% under LoRaWAN and {:.0}% under H-50;",
        100.0 * cyc_cut_lorawan,
        100.0 * cyc_cut_h50
    );
    println!(
        "calendar aging (θ's lever) is within 3% in both cases: {} — the mechanisms compose, \
         supporting the\npaper's claim that its approach remains applicable to hybrid \
         platforms.",
        (rows[3].mean_calendar_aging / rows[2].mean_calendar_aging - 1.0).abs() < 0.03
    );
    write_json("supercap_ablation", &rows);
}
