//! Ablation — the per-window retransmission estimator (Eq. 14).
//!
//! H-50 with and without the retransmission-history scaling of the
//! per-window energy estimate. Without it, nodes cannot detect crowded
//! windows, so persistent collision groups survive and RETX stays
//! high — isolating Eq. (14)'s contribution to the Fig. 5a result.

use blam::BlamConfig;
use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::{config::Protocol, Scenario};
use blam_units::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    retx_estimator: bool,
    avg_retx: f64,
    prr: f64,
    tx_energy_eq6_joules: f64,
    degradation_mean: f64,
}

fn main() {
    let mut args = ExperimentArgs::parse(150, 1.0);
    if args.full {
        args.nodes = 500;
        args.years = 2.0;
    }
    banner(
        "retx_ablation",
        "Eq. (14) retransmission estimator on/off",
        &args,
    );

    println!(
        "{:<22} {:>10} {:>7} {:>14} {:>11}",
        "variant", "avg RETX", "PRR", "TX energy [J]", "deg. mean"
    );
    let mut rows = Vec::new();
    for use_estimator in [true, false] {
        let mut cfg = BlamConfig::h(0.5);
        cfg.use_retx_estimator = use_estimator;
        let run = Scenario::large_scale(args.nodes, Protocol::Blam(cfg), args.seed)
            .with_duration(args.duration())
            .with_sample_interval(Duration::from_days(30))
            .run();
        println!(
            "{:<22} {:>10.3} {:>6.1}% {:>14.1} {:>11.5}",
            if use_estimator {
                "H-50 (with Eq. 14)"
            } else {
                "H-50 (ablated)"
            },
            run.network.avg_retx,
            100.0 * run.network.prr,
            run.network.total_tx_energy_eq6.0,
            run.network.degradation.mean,
        );
        rows.push(AblationRow {
            retx_estimator: use_estimator,
            avg_retx: run.network.avg_retx,
            prr: run.network.prr,
            tx_energy_eq6_joules: run.network.total_tx_energy_eq6.0,
            degradation_mean: run.network.degradation.mean,
        });
    }

    println!(
        "\nShape check — the estimator lowers retransmissions: {}",
        rows[0].avg_retx <= rows[1].avg_retx,
    );
    write_json("retx_ablation", &rows);
}
