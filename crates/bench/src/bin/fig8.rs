//! Fig. 8 — Network battery lifespan.
//!
//! The time until the first battery of the network reaches End of Life
//! (20% degradation) under LoRaWAN, H-50 and H-50C. The paper reports
//! 2980 days (8.1 years) for LoRaWAN against 13.86 years for H-50 —
//! a 69.7% lifespan improvement; H-50C lands close to H-50.
//!
//! Shares the lifespan runs with fig7 (cached). If a run's horizon ended
//! before EoL, the lifespan is projected from the last two monthly
//! samples of maximum degradation.

use blam_battery::project_eol;
use blam_bench::lifespan::lifespan_runs;
use blam_bench::report::{delta_vs_paper, percent_change, shape_checks, Align, Table};
use blam_bench::{banner, write_json, ExperimentArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Row {
    protocol: String,
    lifespan_days: f64,
    lifespan_years: f64,
    projected: bool,
}

fn main() {
    let args = ExperimentArgs::parse(40, 16.0);
    banner("fig8", "network battery lifespan", &args);
    let runs = lifespan_runs(&args);

    let table = Table::with_header(&[
        ("MAC", 8, Align::Left),
        ("days", 12, Align::Right),
        ("years", 10, Align::Right),
        ("projected?", 11, Align::Right),
    ]);
    let mut rows = Vec::new();
    for run in &runs {
        let (days, projected) = match run.lifespan_days() {
            Some(d) => (d, false),
            None => {
                let trend: Vec<_> = run.samples.iter().map(|s| (s.at, s.max_total())).collect();
                let eol = project_eol(&trend).expect("degradation trend must project to EoL");
                (eol.as_millis() as f64 / 86_400_000.0, true)
            }
        };
        table.row(&[
            run.label.clone(),
            format!("{days:.0}"),
            format!("{:.2}", days / 365.25),
            (if projected { "yes" } else { "no" }).to_string(),
        ]);
        rows.push(Fig8Row {
            protocol: run.label.clone(),
            lifespan_days: days,
            lifespan_years: days / 365.25,
            projected,
        });
    }

    println!();
    delta_vs_paper(
        "H-50 lifespan improvement over LoRaWAN:",
        percent_change(rows[1].lifespan_days, rows[0].lifespan_days),
        "+69.7%, 8.1 y → 13.86 y",
    );
    shape_checks(&[
        (
            "H-50 outlives LoRaWAN",
            rows[1].lifespan_days > rows[0].lifespan_days,
        ),
        (
            "H-50C close to H-50",
            (rows[2].lifespan_days / rows[1].lifespan_days - 1.0).abs() < 0.25,
        ),
    ]);
    write_json("fig8", &rows);
}
