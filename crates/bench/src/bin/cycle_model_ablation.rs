//! Ablation — cycle-stress law: the paper's linear Eq. (2) vs Xu et
//! al.'s sub-linear power law.
//!
//! §III of the paper claims its formulation "does not depend on any
//! specific battery degradation model". This ablation tests that: run
//! the same networks under both cycle-stress laws and check that the
//! protocol's advantage over LoRaWAN (the paper's headline claim)
//! survives the model swap.

use blam_battery::DegradationConstants;
use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::{config::Protocol, Scenario};
use blam_units::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct ModelRow {
    cycle_model: String,
    protocol: String,
    mean_cycle_aging: f64,
    degradation_mean: f64,
}

fn main() {
    let mut args = ExperimentArgs::parse(60, 1.0);
    if args.full {
        args.nodes = 200;
        args.years = 2.0;
    }
    banner(
        "cycle_model_ablation",
        "paper's linear Eq. (2) vs Xu's power-law cycle stress",
        &args,
    );

    println!(
        "{:<12} {:<8} {:>13} {:>12}",
        "model", "MAC", "cycle aging", "deg. mean"
    );
    let mut rows = Vec::new();
    for (model_name, constants) in [
        ("linear", DegradationConstants::lmo()),
        ("xu-power", DegradationConstants::lmo_xu_cycle()),
    ] {
        for protocol in [Protocol::Lorawan, Protocol::h(0.5)] {
            let mut scenario = Scenario::large_scale(args.nodes, protocol, args.seed)
                .with_duration(args.duration())
                .with_sample_interval(Duration::from_days(30));
            scenario.config.degradation = constants;
            let run = scenario.run();
            let last = run.samples.last().expect("samples");
            let cyc =
                last.per_node.iter().map(|b| b.cycle).sum::<f64>() / last.per_node.len() as f64;
            println!(
                "{:<12} {:<8} {:>13.6} {:>12.5}",
                model_name, run.label, cyc, run.network.degradation.mean,
            );
            rows.push(ModelRow {
                cycle_model: model_name.to_string(),
                protocol: run.label.clone(),
                mean_cycle_aging: cyc,
                degradation_mean: run.network.degradation.mean,
            });
        }
    }

    let gain = |a: &ModelRow, b: &ModelRow| 1.0 - b.degradation_mean / a.degradation_mean;
    let linear_gain = gain(&rows[0], &rows[1]);
    let xu_gain = gain(&rows[2], &rows[3]);
    println!(
        "\nH-50's degradation reduction vs LoRaWAN: {:.1}% under the linear law, {:.1}% under \
         Xu's power law.",
        100.0 * linear_gain,
        100.0 * xu_gain
    );
    println!(
        "Model-independence claim (the advantage survives the swap, within a third): {}",
        linear_gain > 0.0
            && xu_gain > 0.0
            && (linear_gain - xu_gain).abs() < linear_gain.max(xu_gain) / 3.0
    );
    write_json("cycle_model_ablation", &rows);
}
