//! Ablation — ADR-driven parameter changes and the Eq. (13) estimator.
//!
//! The paper justifies smoothing the transmission-energy estimate with
//! an EWMA because "nodes can change their transmission parameters
//! dynamically as governed by the underlying MAC layer or the network
//! server". This experiment turns on a standard LoRaWAN ADR engine:
//! every node boots at SF12 (join-time conservatism), the server steps
//! capable nodes down toward SF7, and the protocol's energy estimate
//! must follow. We compare against the same network with static
//! distance-based SF assignment.

use blam_bench::{banner, write_json, ExperimentArgs};
use blam_lora_phy::SpreadingFactor;
use blam_netsim::{config::Protocol, Scenario};
use blam_units::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct AdrRow {
    variant: String,
    prr: f64,
    avg_retx: f64,
    tx_energy_eq6_joules: f64,
    final_sf_histogram: [usize; 6],
    degradation_mean: f64,
}

fn main() {
    let mut args = ExperimentArgs::parse(100, 0.5);
    if args.full {
        args.nodes = 300;
        args.years = 1.0;
    }
    banner("adr_ablation", "ADR + the Eq. (13) energy estimator", &args);

    println!(
        "{:<22} {:>7} {:>9} {:>14} {:>11}   final SF histogram (SF7..SF12)",
        "variant", "PRR", "RETX", "TX energy [J]", "deg. mean"
    );
    let mut rows = Vec::new();
    for (name, adr, force) in [
        ("static (paper)", false, None),
        ("SF12, no ADR", false, Some(SpreadingFactor::Sf12)),
        ("ADR from SF12", true, Some(SpreadingFactor::Sf12)),
    ] {
        let mut scenario = Scenario::large_scale(args.nodes, Protocol::h(0.5), args.seed)
            .with_duration(args.duration())
            .with_sample_interval(Duration::from_days(30));
        scenario.config.adr = adr;
        scenario.config.force_sf = force;
        let run = scenario.run();
        let mut hist = [0usize; 6];
        for p in &run.topology.placements {
            hist[usize::from(p.sf.as_u8() - 7)] += 1;
        }
        println!(
            "{:<22} {:>6.1}% {:>9.3} {:>14.1} {:>11.5}   {:?}",
            name,
            100.0 * run.network.prr,
            run.network.avg_retx,
            run.network.total_tx_energy_eq6.0,
            run.network.degradation.mean,
            hist
        );
        rows.push(AdrRow {
            variant: name.to_string(),
            prr: run.network.prr,
            avg_retx: run.network.avg_retx,
            tx_energy_eq6_joules: run.network.total_tx_energy_eq6.0,
            final_sf_histogram: hist,
            degradation_mean: run.network.degradation.mean,
        });
    }

    let moved = rows[2].final_sf_histogram[..5].iter().sum::<usize>();
    let energy_saved = 1.0 - rows[2].tx_energy_eq6_joules / rows[1].tx_energy_eq6_joules;
    println!(
        "\nShape checks — ADR stepped {moved}/{} nodes off SF12: {}; TX energy saved vs no-ADR: \
         {:.0}% ({}); PRR preserved: {}",
        args.nodes,
        moved > args.nodes / 4,
        100.0 * energy_saved,
        energy_saved > 0.15,
        (rows[0].prr - rows[2].prr).abs() < 0.03,
    );
    println!(
        "(The protocol's EWMA keeps its per-window energy estimates valid through the \
         parameter changes;\n a last-sample estimator would misprice every window for a \
         full period after each ADR command.)"
    );
    write_json("adr_ablation", &rows);
}
