//! Extension — fairness in a mixed-age deployment.
//!
//! The dissemination mechanism's purpose (§III-B) is to maximize the
//! *minimum* lifespan: heavily degraded nodes receive w_u → 1 and
//! conserve their batteries, while fresh nodes spend theirs on utility.
//! The paper only evaluates uniformly-new networks; here a quarter of
//! the fleet starts with batteries that already served several years —
//! the battery-replacement scenario §III-B's "new node joins" remark
//! implies — and we check the protection actually materializes.

use blam_bench::report::{shape_checks, Align, Table};
use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::{config::Protocol, RunResult, Scenario, ScenarioConfig};
use blam_units::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct FairnessRow {
    protocol: String,
    aged_retx: f64,
    fresh_retx: f64,
    aged_utility: f64,
    fresh_utility: f64,
    aged_cycle_growth: f64,
    fresh_cycle_growth: f64,
}

fn group_stats(run: &RunResult, aged_count: usize) -> FairnessRow {
    let (aged, fresh) = run.nodes.split_at(aged_count);
    let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let retx =
        |g: &[blam_netsim::NodeMetrics]| avg(&g.iter().map(|n| n.avg_retx()).collect::<Vec<_>>());
    let util = |g: &[blam_netsim::NodeMetrics]| {
        avg(&g.iter().map(|n| n.avg_utility()).collect::<Vec<_>>())
    };
    let last = run.samples.last().expect("samples");
    let first = run.samples.first().expect("samples");
    let cycle_growth = |range: std::ops::Range<usize>| {
        avg(&range
            .map(|i| last.per_node[i].cycle - first.per_node[i].cycle)
            .collect::<Vec<_>>())
    };
    FairnessRow {
        protocol: run.label.clone(),
        aged_retx: retx(aged),
        fresh_retx: retx(fresh),
        aged_utility: util(aged),
        fresh_utility: util(fresh),
        aged_cycle_growth: cycle_growth(0..aged_count),
        fresh_cycle_growth: cycle_growth(aged_count..run.nodes.len()),
    }
}

fn main() {
    let mut args = ExperimentArgs::parse(80, 1.0);
    if args.full {
        args.nodes = 300;
        args.years = 2.0;
    }
    banner(
        "fairness",
        "mixed-age fleet: do worn batteries get protected?",
        &args,
    );
    let aged_fraction = 0.25;
    let aged_count = (args.nodes as f64 * aged_fraction) as usize;
    println!(
        "{aged_count}/{} nodes start with 4-year-old batteries\n",
        args.nodes
    );

    let configs: Vec<ScenarioConfig> = [Protocol::Lorawan, Protocol::h(0.5)]
        .into_iter()
        .map(|protocol| {
            let mut scenario = Scenario::large_scale(args.nodes, protocol, args.seed)
                .with_duration(args.duration())
                .with_sample_interval(Duration::from_days(30));
            scenario.config.aged_fraction = aged_fraction;
            scenario.config.aged_years = 4.0;
            scenario.config
        })
        .collect();
    let runs = args.run_batch(configs);

    let table = Table::with_header(&[
        ("MAC", 8, Align::Left),
        ("RETX(aged)", 11, Align::Right),
        ("RETX(new)", 11, Align::Right),
        ("util(aged)", 12, Align::Right),
        ("util(new)", 12, Align::Right),
        ("cycΔ(aged)", 13, Align::Right),
        ("cycΔ(new)", 13, Align::Right),
    ]);
    let mut rows = Vec::new();
    for run in &runs {
        let row = group_stats(run, aged_count);
        table.row(&[
            row.protocol.clone(),
            format!("{:.3}", row.aged_retx),
            format!("{:.3}", row.fresh_retx),
            format!("{:.3}", row.aged_utility),
            format!("{:.3}", row.fresh_utility),
            format!("{:.6}", row.aged_cycle_growth),
            format!("{:.6}", row.fresh_cycle_growth),
        ]);
        rows.push(row);
    }

    let (lorawan, h50) = (&rows[0], &rows[1]);
    // Under LoRaWAN aged and fresh nodes behave identically; under H-50
    // aged nodes (w_u ≈ 1) conserve: fewer retransmissions and less new
    // cycle damage than their fresh peers, paid with a little utility.
    println!();
    shape_checks(&[
        (
            "LoRaWAN treats groups alike (RETX within 15%)",
            (lorawan.aged_retx / lorawan.fresh_retx.max(1e-12) - 1.0).abs() < 0.15,
        ),
        (
            "under H-50 aged nodes add less cycle damage than fresh ones",
            h50.aged_cycle_growth < h50.fresh_cycle_growth,
        ),
        (
            "the aged group's utility trades down for it",
            h50.aged_utility <= h50.fresh_utility + 1e-9,
        ),
    ]);
    write_json("fairness", &rows);
}
