//! Extension — green-energy source independence.
//!
//! The paper's mechanism only consumes per-window green-energy
//! forecasts, so nothing ties it to solar. This experiment swaps the
//! panels for micro wind turbines (no diurnal structure, multi-hour
//! lulls) and checks the protocol still beats LoRaWAN on degradation
//! with comparable reliability.

use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::config::HarvestKind;
use blam_netsim::{config::Protocol, Scenario};
use blam_units::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct HarvestRow {
    source: String,
    protocol: String,
    prr: f64,
    avg_utility: f64,
    degradation_mean: f64,
    brownouts: u64,
}

fn main() {
    let mut args = ExperimentArgs::parse(80, 1.0);
    if args.full {
        args.nodes = 300;
        args.years = 2.0;
    }
    banner(
        "harvest_source_ablation",
        "solar panels vs wind turbines",
        &args,
    );

    println!(
        "{:<7} {:<8} {:>7} {:>9} {:>11} {:>10}",
        "source", "MAC", "PRR", "utility", "deg. mean", "brownouts"
    );
    let mut rows = Vec::new();
    for (source, kind) in [("solar", HarvestKind::Solar), ("wind", HarvestKind::Wind)] {
        for protocol in [Protocol::Lorawan, Protocol::h(0.5)] {
            let mut scenario = Scenario::large_scale(args.nodes, protocol, args.seed)
                .with_duration(args.duration())
                .with_sample_interval(Duration::from_days(30));
            scenario.config.harvest = kind;
            let run = scenario.run();
            println!(
                "{:<7} {:<8} {:>6.1}% {:>9.3} {:>11.5} {:>10}",
                source,
                run.label,
                100.0 * run.network.prr,
                run.network.avg_utility,
                run.network.degradation.mean,
                run.network.brownouts,
            );
            rows.push(HarvestRow {
                source: source.to_string(),
                protocol: run.label.clone(),
                prr: run.network.prr,
                avg_utility: run.network.avg_utility,
                degradation_mean: run.network.degradation.mean,
                brownouts: run.network.brownouts,
            });
        }
    }

    let find = |s: &str, p: &str| {
        rows.iter()
            .find(|r| r.source == s && r.protocol == p)
            .expect("row")
    };
    let solar_gain =
        1.0 - find("solar", "H-50").degradation_mean / find("solar", "LoRaWAN").degradation_mean;
    let wind_gain =
        1.0 - find("wind", "H-50").degradation_mean / find("wind", "LoRaWAN").degradation_mean;
    println!(
        "\nH-50's degradation advantage: {:.1}% under solar, {:.1}% under wind.",
        100.0 * solar_gain,
        100.0 * wind_gain
    );
    println!(
        "Source-independence shape check (advantage > 10% for both): {}",
        solar_gain > 0.10 && wind_gain > 0.10
    );
    write_json("harvest_source_ablation", &rows);
}
