//! Extension — battery temperature sensitivity.
//!
//! The paper fixes an insulated 25 °C battery; the degradation model's
//! Arrhenius-style temperature stress (Eqs. 1–2) says deployments run
//! hotter age exponentially faster. This sweep quantifies how much of
//! the protocol's lifespan advantage survives at other operating
//! temperatures.

use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::{config::Protocol, Scenario};
use blam_units::{Celsius, Duration};
use serde::Serialize;

#[derive(Serialize)]
struct TempRow {
    celsius: f64,
    lorawan_degradation: f64,
    h50_degradation: f64,
    h50_advantage_pct: f64,
}

fn main() {
    let mut args = ExperimentArgs::parse(50, 1.0);
    if args.full {
        args.nodes = 200;
        args.years = 2.0;
    }
    banner(
        "temperature_sweep",
        "battery temperature sensitivity",
        &args,
    );

    println!(
        "{:<8} {:>14} {:>12} {:>14}",
        "temp", "LoRaWAN deg.", "H-50 deg.", "H-50 advantage"
    );
    let mut rows = Vec::new();
    for celsius in [5.0, 15.0, 25.0, 35.0] {
        let mut degs = Vec::new();
        for protocol in [Protocol::Lorawan, Protocol::h(0.5)] {
            let mut scenario = Scenario::large_scale(args.nodes, protocol, args.seed)
                .with_duration(args.duration())
                .with_sample_interval(Duration::from_days(30));
            scenario.config.temperature = Celsius(celsius);
            degs.push(scenario.run().network.degradation.mean);
        }
        let advantage = 1.0 - degs[1] / degs[0];
        println!(
            "{:<8} {:>14.5} {:>12.5} {:>13.1}%",
            format!("{celsius} °C"),
            degs[0],
            degs[1],
            100.0 * advantage
        );
        rows.push(TempRow {
            celsius,
            lorawan_degradation: degs[0],
            h50_degradation: degs[1],
            h50_advantage_pct: 100.0 * advantage,
        });
    }

    let monotone = rows.windows(2).all(|w| {
        w[1].lorawan_degradation > w[0].lorawan_degradation
            && w[1].h50_degradation > w[0].h50_degradation
    });
    println!(
        "\nShape checks — degradation grows with temperature (Arrhenius): {monotone}; the \
         protocol's advantage persists\nat every temperature: {}",
        rows.iter().all(|r| r.h50_advantage_pct > 5.0)
    );
    write_json("temperature_sweep", &rows);
}
