//! Fig. 4 — Forecast-window selection under varying θ.
//!
//! For each protocol variant, the histogram of nodes by the forecast
//! window they transmitted the *majority* of their packets in.
//! LoRaWAN always uses the first window; the H variants spread nodes
//! over the first few windows.
//!
//! Shares the θ-sweep runs with fig5/fig6 (cached).
//! Quick default: 150 nodes, 1 year. `--full`: 500 nodes, 5 years.

use blam_bench::{banner, theta_sweep, write_json, ExperimentArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Row {
    protocol: String,
    /// nodes whose majority window is t, for t = 0.. (paper plots these
    /// 1-indexed).
    nodes_per_window: Vec<usize>,
    share_within_first_four: f64,
}

fn main() {
    let args = ExperimentArgs::parse(150, 1.0);
    banner(
        "fig4",
        "forecast window selection (majority per node)",
        &args,
    );
    let sweep = theta_sweep::run_or_load(&args);

    let mut rows = Vec::new();
    println!(
        "{:<8}  nodes whose majority window is w (w = 1.. as in the paper)",
        "MAC"
    );
    for run in &sweep.runs {
        let mut hist = vec![0usize; 8];
        for node in &run.nodes {
            if let Some(w) = node.majority_window() {
                if w < hist.len() {
                    hist[w] += 1;
                } else {
                    hist.resize(w + 1, 0);
                    hist[w] += 1;
                }
            }
        }
        let total: usize = hist.iter().sum();
        let first_four: usize = hist.iter().take(4).sum();
        let share = if total > 0 {
            first_four as f64 / total as f64
        } else {
            0.0
        };
        println!(
            "{:<8}  {:?}  (within first 4 windows: {:.0}%)",
            run.label,
            &hist[..hist.len().min(8)],
            100.0 * share
        );
        rows.push(Fig4Row {
            protocol: run.label.clone(),
            nodes_per_window: hist,
            share_within_first_four: share,
        });
    }

    let lorawan_all_first =
        rows[0].nodes_per_window[0] == rows[0].nodes_per_window.iter().sum::<usize>();
    let h50_spreads = rows[2].nodes_per_window.iter().skip(1).sum::<usize>() > 0;
    println!(
        "\nLoRaWAN always selects the first window — {}",
        if lorawan_all_first {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "H variants distribute nodes across windows (most within the first 4) — {}",
        if h50_spreads && rows[2].share_within_first_four > 0.8 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    write_json("fig4", &rows);
}
