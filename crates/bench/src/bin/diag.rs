//! Diagnostic: per-node health of a run (developer tool).

use blam_netsim::{config::Protocol, Scenario};
use blam_units::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(150);
    let days: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(90);
    let testbed = std::env::args().any(|a| a == "testbed");
    let r = if testbed {
        Scenario::testbed(Protocol::Lorawan, 42).run()
    } else {
        Scenario::large_scale(nodes, Protocol::Lorawan, 42)
            .with_duration(Duration::from_days(days))
            .run()
    };
    let mut worst: Vec<usize> = (0..r.nodes.len()).collect();
    worst.sort_by(|&a, &b| r.nodes[a].prr().total_cmp(&r.nodes[b].prr()));
    println!(
        "{:>4} {:>5} {:>9} {:>7} {:>6} {:>6} {:>8} {:>8} {:>8} {:>9}",
        "node", "sf", "dist", "margin", "gen", "deliv", "noack", "brnout", "drops", "PRR"
    );
    for &i in worst.iter().take(12) {
        let n = &r.nodes[i];
        let p = &r.topology.placements[i];
        let rssi = p.link.rssi(blam_units::Dbm(14.0));
        let margin = p.link.margin(rssi, p.sf, blam_lora_phy::Bandwidth::Khz125);
        println!(
            "{:>4} {:>5} {:>9.2} {:>7.1} {:>6} {:>6} {:>8} {:>8} {:>8} {:>8.1}%",
            i,
            p.sf.to_string(),
            p.link.distance.as_km(),
            margin.0,
            n.generated,
            n.delivered,
            n.failed_no_ack,
            n.brownout_events,
            n.dropped_brownout + n.dropped_no_window,
            100.0 * n.prr()
        );
    }
}
