//! Extension — imperfect SF orthogonality.
//!
//! The paper's NS-3 simulations treat spreading factors as orthogonal;
//! measured LoRa hardware is only quasi-orthogonal (Croce et al., IEEE
//! Comm. Letters 2018): a loud transmission on another SF can still
//! destroy a weak reception. This experiment re-runs the comparison
//! under the measured rejection thresholds and checks the protocol's
//! conclusions survive the harsher channel.

use blam_bench::{banner, write_json, ExperimentArgs};
use blam_lora_phy::InterferenceModel;
use blam_netsim::{config::Protocol, Scenario};
use blam_units::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct InterSfRow {
    interference: String,
    protocol: String,
    prr: f64,
    avg_retx: f64,
    degradation_mean: f64,
}

fn main() {
    let mut args = ExperimentArgs::parse(120, 0.5);
    if args.full {
        args.nodes = 500;
        args.years = 1.0;
    }
    banner(
        "intersf_ablation",
        "orthogonal vs non-orthogonal SF interference",
        &args,
    );

    println!(
        "{:<16} {:<8} {:>7} {:>9} {:>11}",
        "interference", "MAC", "PRR", "RETX", "deg. mean"
    );
    let mut rows = Vec::new();
    for (name, model) in [
        ("orthogonal", InterferenceModel::Orthogonal),
        ("non-orthogonal", InterferenceModel::NonOrthogonal),
    ] {
        for protocol in [Protocol::Lorawan, Protocol::h(0.5)] {
            let mut scenario = Scenario::large_scale(args.nodes, protocol, args.seed)
                .with_duration(args.duration())
                .with_sample_interval(Duration::from_days(30));
            scenario.config.interference = model;
            let run = scenario.run();
            println!(
                "{:<16} {:<8} {:>6.1}% {:>9.3} {:>11.5}",
                name,
                run.label,
                100.0 * run.network.prr,
                run.network.avg_retx,
                run.network.degradation.mean,
            );
            rows.push(InterSfRow {
                interference: name.to_string(),
                protocol: run.label.clone(),
                prr: run.network.prr,
                avg_retx: run.network.avg_retx,
                degradation_mean: run.network.degradation.mean,
            });
        }
    }

    let find = |i: &str, p: &str| {
        rows.iter()
            .find(|r| r.interference == i && r.protocol == p)
            .expect("row")
    };
    let ortho_gain = 1.0
        - find("orthogonal", "H-50").degradation_mean
            / find("orthogonal", "LoRaWAN").degradation_mean;
    let cross_gain = 1.0
        - find("non-orthogonal", "H-50").degradation_mean
            / find("non-orthogonal", "LoRaWAN").degradation_mean;
    println!(
        "\nNon-orthogonality raises RETX for both MACs (LoRaWAN {:.2} → {:.2}); H-50's \
         degradation advantage\nholds under both channel models ({:.1}% vs {:.1}%).",
        find("orthogonal", "LoRaWAN").avg_retx,
        find("non-orthogonal", "LoRaWAN").avg_retx,
        100.0 * ortho_gain,
        100.0 * cross_gain,
    );
    write_json("intersf_ablation", &rows);
}
