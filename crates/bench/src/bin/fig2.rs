//! Fig. 2 — Battery degradation of a regular LoRa node over 5 years.
//!
//! The paper plots calendar aging, cycle aging and total degradation of
//! a regular (LoRaWAN) node in a 100-node network with random
//! transmission intervals in [16, 60] min, showing calendar aging
//! dominating. This binary reproduces the three series (monthly,
//! network-median node) plus the network mean.
//!
//! Quick default: 40 nodes, 2 years. `--full`: 100 nodes, 5 years.

use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::{config::Protocol, Scenario};
use blam_units::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct Fig2Row {
    month: usize,
    years: f64,
    median_calendar: f64,
    median_cycle: f64,
    median_total: f64,
    mean_total: f64,
}

fn main() {
    let mut args = ExperimentArgs::parse(40, 2.0);
    if args.full {
        args.nodes = 100;
        args.years = 5.0;
    }
    banner("fig2", "battery degradation of a regular LoRa node", &args);

    let result = Scenario::large_scale(args.nodes, Protocol::Lorawan, args.seed)
        .with_duration(args.duration())
        .with_sample_interval(Duration::from_days(30))
        .run();

    println!(
        "{:>5} {:>7} {:>16} {:>13} {:>13} {:>11}",
        "month", "years", "calendar(med)", "cycle(med)", "total(med)", "total(mean)"
    );
    let mut rows = Vec::new();
    for (m, sample) in result.samples.iter().enumerate() {
        let median = |f: &dyn Fn(&blam_battery::DegradationBreakdown) -> f64| {
            let mut v: Vec<f64> = sample.per_node.iter().map(f).collect();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let row = Fig2Row {
            month: m + 1,
            years: sample.at.as_years_f64(),
            median_calendar: median(&|b| b.calendar),
            median_cycle: median(&|b| b.cycle),
            median_total: median(&|b| b.total),
            mean_total: sample.mean_total(),
        };
        if (m + 1) % 3 == 0 || m == 0 || m + 1 == result.samples.len() {
            println!(
                "{:>5} {:>7.2} {:>16.6} {:>13.6} {:>13.6} {:>11.6}",
                row.month,
                row.years,
                row.median_calendar,
                row.median_cycle,
                row.median_total,
                row.mean_total
            );
        }
        rows.push(row);
    }

    let last = rows.last().expect("at least one sample");
    let ratio = last.median_calendar / last.median_cycle.max(1e-12);
    println!(
        "\nFinal linear components (median node): calendar {:.6} vs cycle {:.6} (ratio {:.1}:1)",
        last.median_calendar, last.median_cycle, ratio
    );
    println!(
        "Paper's Fig. 2 shape: calendar aging dominates cycle aging — {}",
        if ratio > 1.5 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    write_json("fig2", &rows);
}
