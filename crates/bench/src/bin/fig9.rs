//! Fig. 9 — Small-scale testbed: degradation, retransmissions, latency
//! of 10 nodes over 24 hours, H-100 vs LoRaWAN.
//!
//! The paper runs 10 Dragino SX1276 nodes on one 125 kHz channel at
//! SF10 with 10-minute sampling periods for a day, the battery emulated
//! in software (exactly as here — their testbed also updates a local
//! variable with Eq. 5). Findings: PRR 100% for both; the degradation
//! *variance* across nodes is far lower under H (fair distribution);
//! cycle aging is ~80% lower; H needs fewer retransmissions; LoRaWAN
//! delivers with lower latency.

use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::{config::Protocol, Scenario};
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Result {
    protocol: String,
    prr: f64,
    per_node_degradation: Vec<f64>,
    degradation_variance: f64,
    mean_cycle_aging: f64,
    avg_retx: f64,
    avg_latency_delivered_secs: f64,
}

fn main() {
    let args = ExperimentArgs::parse(10, 1.0 / 365.0);
    banner(
        "fig9",
        "testbed: 10 nodes, 24 h, single channel SF10",
        &args,
    );

    let mut results = Vec::new();
    for protocol in [Protocol::Lorawan, Protocol::h(1.0)] {
        let run = Scenario::testbed(protocol, args.seed).run();
        let per_node: Vec<f64> = run.nodes.iter().map(|n| n.final_degradation).collect();
        let cycle = run.samples.last().map_or(0.0, |s| {
            s.per_node.iter().map(|b| b.cycle).sum::<f64>() / s.per_node.len() as f64
        });
        results.push(Fig9Result {
            protocol: run.label.clone(),
            prr: run.network.prr,
            degradation_variance: run.network.degradation.variance,
            per_node_degradation: per_node,
            mean_cycle_aging: cycle,
            avg_retx: run.network.avg_retx,
            avg_latency_delivered_secs: run.network.avg_latency_delivered_secs,
        });
    }

    println!(
        "{:<8} {:>7} {:>13} {:>14} {:>9} {:>12}",
        "MAC", "PRR", "deg. variance", "cycle aging", "RETX", "latency"
    );
    for r in &results {
        println!(
            "{:<8} {:>6.1}% {:>13.3e} {:>14.3e} {:>9.2} {:>11.1}s",
            r.protocol,
            100.0 * r.prr,
            r.degradation_variance,
            r.mean_cycle_aging,
            r.avg_retx,
            r.avg_latency_delivered_secs,
        );
    }

    let (lorawan, h100) = (&results[0], &results[1]);
    let var_cut = 1.0 - h100.degradation_variance / lorawan.degradation_variance.max(1e-300);
    let cyc_cut = 1.0 - h100.mean_cycle_aging / lorawan.mean_cycle_aging.max(1e-300);
    println!(
        "\nH-100 vs LoRaWAN: degradation variance {:+.1}% (paper: −99.7%), cycle aging {:+.1}% (paper: −80%)",
        -100.0 * var_cut,
        -100.0 * cyc_cut
    );
    println!(
        "Shape checks: PRR ≈ 100% both: {}; H retransmits less: {}; LoRaWAN latency lower: {}",
        lorawan.prr > 0.99 && h100.prr > 0.99,
        h100.avg_retx <= lorawan.avg_retx,
        lorawan.avg_latency_delivered_secs <= h100.avg_latency_delivered_secs,
    );
    write_json("fig9", &results);
}
