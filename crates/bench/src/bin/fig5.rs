//! Fig. 5 — (a) average TX attempts, (b) TX energy, (c) battery
//! degradation, under varying charging threshold θ.
//!
//! The paper's findings: every H variant retransmits less than LoRaWAN
//! (H-50: −69.9%); TX energy follows the same trend; H-100's mean
//! degradation matches LoRaWAN with less spread, H-50 cuts the mean by
//! ~22% and the variance by ~92%, and H-5 degrades least of all.
//!
//! Shares the θ-sweep runs with fig4/fig6 (cached).

use blam_bench::report::{delta_vs_paper, percent_change, shape_checks, Align, Table};
use blam_bench::{banner, theta_sweep, write_json, ExperimentArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Fig5Row {
    protocol: String,
    avg_retx: f64,
    total_tx_energy_eq6_joules: f64,
    degradation_mean: f64,
    degradation_variance: f64,
    degradation_min: f64,
    degradation_p25: f64,
    degradation_median: f64,
    degradation_p75: f64,
    degradation_max: f64,
}

fn main() {
    let args = ExperimentArgs::parse(150, 1.0);
    banner(
        "fig5",
        "avg RETX / TX energy / degradation under varying θ",
        &args,
    );
    let sweep = theta_sweep::run_or_load(&args);

    let table = Table::with_header(&[
        ("MAC", 8, Align::Left),
        ("avg RETX", 10, Align::Right),
        ("TX energy [J]", 14, Align::Right),
        ("deg. mean", 11, Align::Right),
        ("deg. var", 12, Align::Right),
        ("deg. quartiles", 22, Align::Right),
    ]);
    let mut rows = Vec::new();
    for run in &sweep.runs {
        let d = run.network.degradation;
        table.row(&[
            run.label.clone(),
            format!("{:.3}", run.network.avg_retx),
            format!("{:.1}", run.network.total_tx_energy_eq6.0),
            format!("{:.5}", d.mean),
            format!("{:.3e}", d.variance),
            format!(
                "[{:.4} {:.4} {:.4} {:.4} {:.4}]",
                d.min, d.p25, d.median, d.p75, d.max
            ),
        ]);
        rows.push(Fig5Row {
            protocol: run.label.clone(),
            avg_retx: run.network.avg_retx,
            total_tx_energy_eq6_joules: run.network.total_tx_energy_eq6.0,
            degradation_mean: d.mean,
            degradation_variance: d.variance,
            degradation_min: d.min,
            degradation_p25: d.p25,
            degradation_median: d.median,
            degradation_p75: d.p75,
            degradation_max: d.max,
        });
    }

    let lorawan = &rows[0];
    let h50 = &rows[2];
    println!();
    delta_vs_paper(
        "H-50 vs LoRaWAN: RETX",
        percent_change(h50.avg_retx, lorawan.avg_retx),
        "−69.9%",
    );
    delta_vs_paper(
        "H-50 vs LoRaWAN: mean degradation",
        percent_change(h50.degradation_mean, lorawan.degradation_mean),
        "−21.9%",
    );
    delta_vs_paper(
        "H-50 vs LoRaWAN: degradation variance",
        percent_change(h50.degradation_variance, lorawan.degradation_variance),
        "−91.5%",
    );
    let least_mean = rows
        .iter()
        .map(|r| r.degradation_mean)
        .fold(f64::MAX, f64::min);
    shape_checks(&[
        (
            "every H ≤ LoRaWAN RETX",
            rows[1..]
                .iter()
                .all(|r| r.avg_retx <= lorawan.avg_retx * 1.02),
        ),
        (
            "H-5 degrades least",
            rows[1].degradation_mean <= least_mean + 1e-12,
        ),
        (
            "H-100 mean ≈ LoRaWAN",
            (rows[3].degradation_mean / lorawan.degradation_mean - 1.0).abs() < 0.1,
        ),
    ]);
    write_json("fig5", &rows);
}
