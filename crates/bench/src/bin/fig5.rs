//! Fig. 5 — (a) average TX attempts, (b) TX energy, (c) battery
//! degradation, under varying charging threshold θ.
//!
//! The paper's findings: every H variant retransmits less than LoRaWAN
//! (H-50: −69.9%); TX energy follows the same trend; H-100's mean
//! degradation matches LoRaWAN with less spread, H-50 cuts the mean by
//! ~22% and the variance by ~92%, and H-5 degrades least of all.
//!
//! Shares the θ-sweep runs with fig4/fig6 (cached).

use blam_bench::{banner, theta_sweep, write_json, ExperimentArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Fig5Row {
    protocol: String,
    avg_retx: f64,
    total_tx_energy_eq6_joules: f64,
    degradation_mean: f64,
    degradation_variance: f64,
    degradation_min: f64,
    degradation_p25: f64,
    degradation_median: f64,
    degradation_p75: f64,
    degradation_max: f64,
}

fn main() {
    let args = ExperimentArgs::parse(150, 1.0);
    banner(
        "fig5",
        "avg RETX / TX energy / degradation under varying θ",
        &args,
    );
    let sweep = theta_sweep::run_or_load(&args);

    println!(
        "{:<8} {:>10} {:>14} {:>11} {:>12} {:>22}",
        "MAC", "avg RETX", "TX energy [J]", "deg. mean", "deg. var", "deg. quartiles"
    );
    let mut rows = Vec::new();
    for run in &sweep.runs {
        let d = run.network.degradation;
        println!(
            "{:<8} {:>10.3} {:>14.1} {:>11.5} {:>12.3e}   [{:.4} {:.4} {:.4} {:.4} {:.4}]",
            run.label,
            run.network.avg_retx,
            run.network.total_tx_energy_eq6.0,
            d.mean,
            d.variance,
            d.min,
            d.p25,
            d.median,
            d.p75,
            d.max
        );
        rows.push(Fig5Row {
            protocol: run.label.clone(),
            avg_retx: run.network.avg_retx,
            total_tx_energy_eq6_joules: run.network.total_tx_energy_eq6.0,
            degradation_mean: d.mean,
            degradation_variance: d.variance,
            degradation_min: d.min,
            degradation_p25: d.p25,
            degradation_median: d.median,
            degradation_p75: d.p75,
            degradation_max: d.max,
        });
    }

    let lorawan = &rows[0];
    let h50 = &rows[2];
    let retx_cut = 1.0 - h50.avg_retx / lorawan.avg_retx.max(1e-12);
    let deg_cut = 1.0 - h50.degradation_mean / lorawan.degradation_mean.max(1e-12);
    let var_cut = 1.0 - h50.degradation_variance / lorawan.degradation_variance.max(1e-300);
    println!("\nH-50 vs LoRaWAN: RETX {:+.1}%  (paper: −69.9%)", -100.0 * retx_cut);
    println!("H-50 vs LoRaWAN: mean degradation {:+.1}%  (paper: −21.9%)", -100.0 * deg_cut);
    println!("H-50 vs LoRaWAN: degradation variance {:+.1}%  (paper: −91.5%)", -100.0 * var_cut);
    println!(
        "Shape checks: every H ≤ LoRaWAN RETX: {}; H-5 degrades least: {}; H-100 mean ≈ LoRaWAN: {}",
        rows[1..].iter().all(|r| r.avg_retx <= lorawan.avg_retx * 1.02),
        rows[1].degradation_mean <= rows.iter().map(|r| r.degradation_mean).fold(f64::MAX, f64::min) + 1e-12,
        (rows[3].degradation_mean / lorawan.degradation_mean - 1.0).abs() < 0.1,
    );
    write_json("fig5", &rows);
}
