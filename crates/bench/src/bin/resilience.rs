//! Extension — resilience under infrastructure faults.
//!
//! The paper evaluates BLAM on a clean channel with an always-up
//! gateway. This sweep injects the chaos schedule (Gilbert–Elliott
//! burst loss, random gateway outages, node reboots, sensor error,
//! dissemination corruption) at increasing loss/outage intensity and
//! reports how each protocol's projected minimum network lifespan
//! moves against its own fault-free baseline. The hardened H-50
//! profile (w_u TTL decay, cold-start fallback, bounded trace queue)
//! should give up strictly less lifespan than LoRaWAN does.

use blam::BlamConfig;
use blam_battery::EOL_DEGRADATION;
use blam_bench::report::{shape_checks, Align, Table};
use blam_bench::{banner, write_json, ExperimentArgs};
use blam_netsim::{config::Protocol, FaultConfig, RunResult, Scenario, ScenarioConfig};
use blam_units::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct ResilienceRow {
    loss: f64,
    outage_duty: f64,
    protocol: String,
    prr: f64,
    brownouts: u64,
    degradation_max: f64,
    projected_min_lifespan_years: f64,
}

/// Projected minimum network lifespan: linear extrapolation of the
/// run's worst per-node degradation to the 20% EoL threshold.
fn projected_min_lifespan_years(run: &RunResult) -> f64 {
    let years = run.sim_end.as_millis() as f64 / (365.0 * 86_400_000.0);
    years * EOL_DEGRADATION / run.network.degradation.max.max(1e-12)
}

fn cell_faults(baseline: bool, loss: f64, outage_duty: f64) -> FaultConfig {
    if baseline {
        // The (0, 0) cell is contractually fault-free.
        FaultConfig::default()
    } else {
        FaultConfig::chaos(loss, outage_duty, Duration::from_days(2))
    }
}

fn main() {
    let mut args = ExperimentArgs::parse(60, 0.25);
    if args.full {
        args.nodes = 100;
        args.years = 1.0;
    }
    banner(
        "resilience",
        "chaos-schedule intensity sweep (loss × outage duty)",
        &args,
    );

    let losses = [0.0, 0.15, 0.3];
    let duties = [0.0, 0.05, 0.15];
    let mut cells = Vec::new();
    let mut configs: Vec<ScenarioConfig> = Vec::new();
    for (li, &loss) in losses.iter().enumerate() {
        for (di, &duty) in duties.iter().enumerate() {
            for protocol in [
                Protocol::Lorawan,
                Protocol::Blam(BlamConfig::h(0.5).hardened()),
            ] {
                let mut scenario = Scenario::large_scale(args.nodes, protocol, args.seed)
                    .with_duration(args.duration())
                    .with_sample_interval(Duration::from_days(30));
                scenario.config.faults = cell_faults(li == 0 && di == 0, loss, duty);
                cells.push((loss, duty));
                configs.push(scenario.config);
            }
        }
    }
    let runs = args.run_batch(configs);

    let table = Table::with_header(&[
        ("loss", 5, Align::Right),
        ("outage", 6, Align::Right),
        ("MAC", 8, Align::Left),
        ("PRR", 7, Align::Right),
        ("brownouts", 9, Align::Right),
        ("deg. max", 10, Align::Right),
        ("min-lifespan [y]", 16, Align::Right),
    ]);
    let mut rows = Vec::new();
    for (&(loss, duty), run) in cells.iter().zip(&runs) {
        let lifespan = projected_min_lifespan_years(run);
        table.row(&[
            format!("{loss:.2}"),
            format!("{duty:.2}"),
            run.label.clone(),
            format!("{:.1}%", 100.0 * run.network.prr),
            run.network.brownouts.to_string(),
            format!("{:.5}", run.network.degradation.max),
            format!("{lifespan:.2}"),
        ]);
        rows.push(ResilienceRow {
            loss,
            outage_duty: duty,
            protocol: run.label.clone(),
            prr: run.network.prr,
            brownouts: run.network.brownouts,
            degradation_max: run.network.degradation.max,
            projected_min_lifespan_years: lifespan,
        });
    }

    let cell = |loss: f64, duty: f64, protocol: &str| {
        rows.iter()
            .find(|r| r.loss == loss && r.outage_duty == duty && r.protocol == protocol)
            .unwrap()
    };
    let max_loss = losses[losses.len() - 1];
    let max_duty = duties[duties.len() - 1];
    let lost = |protocol: &str| {
        cell(0.0, 0.0, protocol).projected_min_lifespan_years
            - cell(max_loss, max_duty, protocol).projected_min_lifespan_years
    };
    let (aloha_lost, blam_lost) = (lost("LoRaWAN"), lost("H-50"));
    println!(
        "\nmin-lifespan given up at max intensity: LoRaWAN {aloha_lost:.2} y, H-50 {blam_lost:.2} y"
    );
    shape_checks(&[
        (
            "H-50 outlives LoRaWAN in every cell",
            cells.iter().step_by(2).all(|&(loss, duty)| {
                cell(loss, duty, "H-50").projected_min_lifespan_years
                    > cell(loss, duty, "LoRaWAN").projected_min_lifespan_years
            }),
        ),
        (
            "hardened H-50 gives up less lifespan under max chaos than LoRaWAN",
            blam_lost < aloha_lost,
        ),
    ]);
    write_json("resilience", &rows);
}
