//! Fig. 7 — Maximum network degradation, month by month, until the
//! first battery reaches End of Life.
//!
//! The paper runs 100-node networks under LoRaWAN, H-50 and H-50C
//! (θ-clamp without window selection) until the first node hits 20%
//! degradation, plotting the monthly maximum. LoRaWAN degrades fastest.
//!
//! Quick default: 40 nodes, horizon 16 years (EoL stops the run early).
//! `--full`: 100 nodes.

use blam_bench::lifespan::lifespan_runs;
use blam_bench::{banner, write_json, ExperimentArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Fig7Series {
    protocol: String,
    /// (years, max degradation) per monthly sample.
    monthly_max: Vec<(f64, f64)>,
    eol_days: Option<f64>,
}

fn main() {
    let args = ExperimentArgs::parse(40, 16.0);
    banner("fig7", "max degradation per month until first EoL", &args);
    let runs = lifespan_runs(&args);

    let mut series = Vec::new();
    for run in &runs {
        let monthly: Vec<(f64, f64)> = run
            .samples
            .iter()
            .map(|s| (s.at.as_years_f64(), s.max_total()))
            .collect();
        series.push(Fig7Series {
            protocol: run.label.clone(),
            monthly_max: monthly,
            eol_days: run.lifespan_days(),
        });
    }

    // Print yearly cross-sections of the three curves.
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "years", "LoRaWAN", "H-50", "H-50C"
    );
    let max_len = series
        .iter()
        .map(|s| s.monthly_max.len())
        .max()
        .unwrap_or(0);
    for m in (11..max_len).step_by(12) {
        let cell = |s: &Fig7Series| {
            s.monthly_max
                .get(m)
                .map_or("  (EoL)".to_string(), |&(_, d)| format!("{d:.4}"))
        };
        println!(
            "{:>6.1} {:>12} {:>12} {:>12}",
            (m + 1) as f64 / 12.0,
            cell(&series[0]),
            cell(&series[1]),
            cell(&series[2])
        );
    }

    // Degradation rate comparison over the common prefix.
    let common = series
        .iter()
        .map(|s| s.monthly_max.len())
        .min()
        .unwrap_or(0);
    if common >= 2 {
        let rate = |s: &Fig7Series| s.monthly_max[common - 1].1 / s.monthly_max[common - 1].0;
        println!(
            "\nDegradation rate over the common horizon: LoRaWAN {:.4}/y, H-50 {:.4}/y, H-50C {:.4}/y",
            rate(&series[0]),
            rate(&series[1]),
            rate(&series[2])
        );
        println!(
            "LoRaWAN degrades fastest — {}",
            if rate(&series[0]) > rate(&series[1]) && rate(&series[0]) > rate(&series[2]) {
                "REPRODUCED"
            } else {
                "NOT reproduced"
            }
        );
    }
    write_json("fig7", &series);
}
