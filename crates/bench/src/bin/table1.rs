//! Table I — System overhead of the protocol at each node.
//!
//! The paper measures CPU/memory overhead of its MAC versus plain
//! LoRaWAN on a Raspberry Pi with psutil (CPU +12.56%, memory +5.73%,
//! executable +7.14%, USS +2.61%). Without that hardware we report the
//! equivalent software costs: the wall-clock cost of the per-period
//! protocol decision (Algorithm 1 + estimator updates) against the
//! baseline ALOHA decision path, and the size of the protocol state a
//! node must keep — the quantities the paper's percentages are proxies
//! for. See also `benches/overhead.rs` for the Criterion version.

use std::hint::black_box;
use std::time::Instant;

use blam::{BlamConfig, BlamNode};
use blam_bench::{banner, write_json, ExperimentArgs};
use blam_units::Joules;
use serde::Serialize;

#[derive(Serialize)]
struct Table1 {
    windows: usize,
    aloha_decision_ns: f64,
    blam_decision_ns: f64,
    decision_overhead_ratio: f64,
    blam_state_bytes: usize,
    feedback_update_ns: f64,
}

fn time_per_iter(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let args = ExperimentArgs::parse(0, 0.0);
    banner("table1", "per-node protocol overhead", &args);

    let mut rows = Vec::new();
    for windows in [10usize, 38, 60] {
        let mut node = BlamNode::new(BlamConfig::h(0.5), Joules(0.054), Joules(0.55), windows);
        node.on_weight_update(200);
        // A representative half-sunny forecast.
        let green: Vec<Joules> = (0..windows)
            .map(|w| {
                if w % 2 == 0 {
                    Joules(0.08)
                } else {
                    Joules(0.01)
                }
            })
            .collect();
        // Mixed retransmission history.
        for w in 0..windows {
            node.on_exchange_complete(w, 1 + (w % 4) as u8, Joules(0.054));
        }

        let iters = 200_000;
        // Baseline "ALOHA decision": LoRaWAN transmits immediately — its
        // decision is a constant. We time an equivalent trivial branch.
        let aloha_ns = time_per_iter(iters, || {
            black_box(0usize);
        });
        let blam_ns = time_per_iter(iters, || {
            black_box(node.plan(black_box(Joules(2.0)), black_box(&green)));
        });
        let feedback_ns = time_per_iter(iters, || {
            node.on_exchange_complete(black_box(3), 2, black_box(Joules(0.06)));
        });

        // Protocol state: struct + heap (retransmission table dominates:
        // windows × (max_retx + 1) u64 counters + selections).
        let state_bytes = std::mem::size_of::<BlamNode>()
            + windows * (8 + 1) * std::mem::size_of::<u64>()
            + windows * std::mem::size_of::<u64>();

        println!(
            "|T| = {windows:>2}: ALOHA decision {aloha_ns:>6.1} ns, Algorithm 1 {blam_ns:>8.1} ns, \
             feedback {feedback_ns:>6.1} ns, protocol state {state_bytes} B"
        );
        rows.push(Table1 {
            windows,
            aloha_decision_ns: aloha_ns,
            blam_decision_ns: blam_ns,
            decision_overhead_ratio: blam_ns / aloha_ns.max(0.1),
            blam_state_bytes: state_bytes,
            feedback_update_ns: feedback_ns,
        });
    }

    let worst = rows.last().expect("rows");
    println!(
        "\nAt the paper's largest period (|T| = 60) one decision costs {:.1} µs — \
         once per 16–60 min period,\nthat is <0.00001% duty on even an 8 MHz MCU; \
         state fits in {} bytes of RAM.",
        worst.blam_decision_ns / 1_000.0,
        worst.blam_state_bytes
    );
    println!(
        "The paper's Table I measured +12.56% CPU on a Raspberry Pi running the full \
         LMIC stack; the incremental\nalgorithmic cost shown here is consistent with \
         a small constant overhead."
    );
    write_json("table1", &rows);
}
