//! Shared plumbing for the paper-reproduction experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper. They share:
//!
//! * [`ExperimentArgs`] — a tiny `--key value` argument parser
//!   (`--nodes`, `--years`, `--seed`, `--full`, quick by default);
//! * [`write_json`] — result serialization under `target/experiments/`;
//! * [`theta_sweep`] — the shared θ-sweep runs behind Figs. 4, 5 and 6,
//!   cached on disk so the three binaries don't re-simulate;
//! * [`campaign`] — aggregation of `blam-sim campaign`/`serve` spool
//!   directories into comparison tables.
//!
//! Run any experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p blam-bench --bin fig7 -- --full
//! ```

// `forbid(unsafe_code)` comes from `[workspace.lints]` in the root
// manifest; only the doc requirement stays crate-local.
#![warn(missing_docs)]

use std::path::PathBuf;

use serde::de::DeserializeOwned;
use serde::Serialize;

pub mod campaign;
pub mod lifespan;
pub mod report;
pub mod theta_sweep;

/// Common experiment parameters parsed from the command line.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Number of nodes (experiment-specific default).
    pub nodes: usize,
    /// Simulated years (experiment-specific default; fractions allowed).
    pub years: f64,
    /// Master seed.
    pub seed: u64,
    /// Paper-scale run (overrides nodes/years with the paper's values).
    pub full: bool,
    /// Worker threads for batched simulations (defaults to the host's
    /// available parallelism). Results are identical for any value.
    pub jobs: usize,
    /// Print the batch wall-clock profile (queue wait, sim run, merge)
    /// to stderr after each batch.
    pub profile: bool,
    /// Write a JSONL telemetry trace of every batched run to this path.
    pub trace: Option<String>,
}

impl ExperimentArgs {
    /// Parses `std::env::args`, starting from experiment-specific quick
    /// defaults.
    ///
    /// Recognized flags: `--nodes N`, `--years Y`, `--seed S`,
    /// `--jobs N`, `--full`, `--profile`, `--trace FILE`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn parse(default_nodes: usize, default_years: f64) -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Self::parse_from(&argv, default_nodes, default_years)
    }

    /// Parses an explicit argument list (testable core of
    /// [`parse`](ExperimentArgs::parse)).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn parse_from(argv: &[String], default_nodes: usize, default_years: f64) -> Self {
        let mut args = ExperimentArgs {
            nodes: default_nodes,
            years: default_years,
            seed: 42,
            full: false,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            profile: false,
            trace: None,
        };
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> &String {
                it.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--nodes" => args.nodes = take("--nodes").parse().expect("--nodes: integer"),
                "--years" => args.years = take("--years").parse().expect("--years: number"),
                "--seed" => args.seed = take("--seed").parse().expect("--seed: integer"),
                "--jobs" => {
                    args.jobs = take("--jobs").parse().expect("--jobs: integer ≥ 1");
                    assert!(args.jobs >= 1, "--jobs: integer ≥ 1");
                }
                "--full" => args.full = true,
                "--profile" => args.profile = true,
                "--trace" => args.trace = Some(take("--trace").clone()),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --nodes N --years Y --seed S --jobs N --full \
                         --profile --trace FILE"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other} (try --help)"),
            }
        }
        args
    }

    /// A [`BatchRunner`](blam_netsim::runner::BatchRunner) sized to the
    /// parsed `--jobs`.
    #[must_use]
    pub fn runner(&self) -> blam_netsim::runner::BatchRunner {
        blam_netsim::runner::BatchRunner::new(self.jobs)
    }

    /// The telemetry options the `--trace` flag asked for.
    #[must_use]
    pub fn telemetry(&self) -> blam_netsim::TelemetryOptions {
        match &self.trace {
            Some(path) => blam_netsim::TelemetryOptions::with_trace(path),
            None => blam_netsim::TelemetryOptions::off(),
        }
    }

    /// Runs a batch of scenarios honoring `--jobs`, `--trace` and
    /// `--profile`: the telemetry summary (when tracing) and the batch
    /// profile (when `--profile`) go to stderr, the results come back
    /// in input order.
    ///
    /// # Panics
    ///
    /// Panics if a scenario fails validation, a worker panics, or the
    /// `--trace` file cannot be created.
    #[must_use]
    pub fn run_batch(
        &self,
        configs: Vec<blam_netsim::ScenarioConfig>,
    ) -> Vec<blam_netsim::RunResult> {
        let outcome = self.runner().run_all_with(configs, &self.telemetry());
        if let Some(report) = &outcome.telemetry {
            eprint!("{}", report.render());
        }
        if self.profile {
            eprint!("{}", outcome.profile.render());
        }
        outcome.results
    }

    /// The simulated duration.
    #[must_use]
    pub fn duration(&self) -> blam_units::Duration {
        blam_units::Duration::from_days((self.years * 365.0).round().max(1.0) as u64)
    }
}

/// The directory experiment outputs land in (created on first use).
///
/// # Panics
///
/// Panics with an actionable message when the directory cannot be
/// created (wrong working directory, missing permissions).
#[must_use]
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        panic!(
            "cannot create experiment output directory `{}`: {e}\n\
             (experiments write relative to the working directory — \
             run from the workspace root, or fix permissions)",
            dir.display()
        );
    }
    dir
}

/// Serializes an experiment result to
/// `target/experiments/<id>.json` and reports the path.
///
/// # Panics
///
/// Panics with an actionable message if serialization or the write
/// fails.
pub fn write_json<T: Serialize>(id: &str, value: &T) {
    let path = experiments_dir().join(format!("{id}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize experiment result");
    // Atomic (temp-then-rename): an interrupted experiment never
    // leaves a torn cache file for `load_json` to choke on.
    if let Err(e) = blam_campaign::write_string_atomic(&path, &json) {
        panic!(
            "cannot write experiment result `{}`: {e}\n\
             (check free space and permissions on target/experiments)",
            path.display()
        );
    }
    println!("\n[written {}]", path.display());
}

/// Loads a previously cached JSON value, if present and parseable.
#[must_use]
pub fn load_json<T: DeserializeOwned>(id: &str) -> Option<T> {
    let path = experiments_dir().join(format!("{id}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Prints a figure/table banner.
pub fn banner(id: &str, title: &str, args: &ExperimentArgs) {
    println!("=== {id}: {title} ===");
    println!(
        "nodes = {}, years = {}, seed = {}{}\n",
        args.nodes,
        args.years,
        args.seed,
        if args.full {
            " (paper scale)"
        } else {
            " (quick scale; use --full for paper scale)"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_apply() {
        let a = ExperimentArgs::parse_from(&[], 150, 1.0);
        assert_eq!(a.nodes, 150);
        assert!((a.years - 1.0).abs() < 1e-12);
        assert_eq!(a.seed, 42);
        assert!(!a.full);
    }

    #[test]
    fn flags_override_defaults() {
        let a = ExperimentArgs::parse_from(&argv("--nodes 500 --years 5 --seed 7 --full"), 10, 0.5);
        assert_eq!(a.nodes, 500);
        assert!((a.years - 5.0).abs() < 1e-12);
        assert_eq!(a.seed, 7);
        assert!(a.full);
    }

    #[test]
    fn jobs_flag_sizes_the_runner() {
        let a = ExperimentArgs::parse_from(&argv("--jobs 3"), 10, 1.0);
        assert_eq!(a.jobs, 3);
        assert_eq!(a.runner().jobs(), 3);
        let d = ExperimentArgs::parse_from(&[], 10, 1.0);
        assert!(d.jobs >= 1, "default jobs come from available parallelism");
    }

    #[test]
    fn telemetry_flags_parse() {
        let a = ExperimentArgs::parse_from(&argv("--profile --trace /tmp/t.jsonl"), 10, 1.0);
        assert!(a.profile);
        assert_eq!(a.trace.as_deref(), Some("/tmp/t.jsonl"));
        assert!(a.telemetry().enabled());
        let d = ExperimentArgs::parse_from(&[], 10, 1.0);
        assert!(!d.profile);
        assert!(d.trace.is_none());
        assert!(!d.telemetry().enabled());
    }

    #[test]
    #[should_panic(expected = "--jobs: integer ≥ 1")]
    fn zero_jobs_panics() {
        let _ = ExperimentArgs::parse_from(&argv("--jobs 0"), 1, 1.0);
    }

    #[test]
    fn duration_rounds_to_days() {
        let a = ExperimentArgs::parse_from(&argv("--years 0.5"), 10, 1.0);
        assert_eq!(a.duration(), blam_units::Duration::from_days(183));
        let b = ExperimentArgs::parse_from(&argv("--years 0.001"), 10, 1.0);
        assert_eq!(
            b.duration(),
            blam_units::Duration::from_days(1),
            "at least a day"
        );
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = ExperimentArgs::parse_from(&argv("--bogus"), 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn missing_value_panics() {
        let _ = ExperimentArgs::parse_from(&argv("--nodes"), 1, 1.0);
    }

    #[test]
    fn json_roundtrip_through_cache() {
        let id = "test_cache_roundtrip";
        write_json(id, &vec![1u32, 2, 3]);
        let back: Vec<u32> = load_json(id).expect("cache readable");
        assert_eq!(back, vec![1, 2, 3]);
        assert!(load_json::<Vec<u32>>("no_such_cache_id").is_none());
        let _ = std::fs::remove_file(experiments_dir().join(format!("{id}.json")));
    }
}
