//! The shared lifespan runs behind Figs. 7 and 8.
//!
//! The paper simulates 100-node networks under LoRaWAN, H-50 and H-50C
//! until the first battery reaches End of Life; Fig. 7 plots the
//! monthly maximum degradation, Fig. 8 the resulting network battery
//! lifespans. Both binaries share these runs through the on-disk cache.

use blam_netsim::{config::Protocol, RunResult, Scenario, ScenarioConfig};
use blam_units::Duration;

use crate::ExperimentArgs;

/// Runs (or loads) the LoRaWAN / H-50 / H-50C lifespan simulations.
#[must_use]
pub fn lifespan_runs(args: &ExperimentArgs) -> Vec<RunResult> {
    let nodes = if args.full { 100 } else { args.nodes };
    let horizon_years = args.years;
    let cache_id = format!(
        "lifespan_{}n_{}y_{}s",
        nodes, horizon_years as u64, args.seed
    );
    if let Some(cached) = crate::load_json::<Vec<RunResult>>(&cache_id) {
        if cached.len() == 3 {
            println!("[lifespan runs loaded from cache {cache_id}]");
            return cached;
        }
    }
    let configs: Vec<ScenarioConfig> = [Protocol::Lorawan, Protocol::h(0.5), Protocol::h50c()]
        .into_iter()
        .map(|protocol| {
            Scenario::large_scale(nodes, protocol, args.seed)
                .until_first_eol(Duration::from_days((horizon_years * 365.0) as u64))
                .with_sample_interval(Duration::from_days(30))
                .config
        })
        .collect();
    let runs = args.run_batch(configs);
    crate::write_json(&cache_id, &runs);
    runs
}
