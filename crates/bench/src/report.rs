//! Shared row-building/printing helpers for the figure binaries.
//!
//! Every figure binary renders the same three shapes of output: an
//! aligned metrics table (one row per protocol), percent-delta lines
//! against the paper's reported numbers, and a list of qualitative
//! shape checks. [`Table`], [`percent_change`], [`delta_vs_paper`] and
//! [`shape_checks`] factor that boilerplate so a figure binary only
//! supplies its numbers.

/// Column alignment within a [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Flush left (labels).
    Left,
    /// Flush right (numbers).
    Right,
}

/// An aligned fixed-width text table. Cells arrive pre-formatted (each
/// figure keeps its own precision); the table owns only widths and
/// alignment.
#[derive(Debug, Clone)]
pub struct Table {
    widths: Vec<usize>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table and prints its header row. Each column is
    /// `(name, min_width, alignment)`; the width grows to fit the name.
    #[must_use]
    pub fn with_header(columns: &[(&str, usize, Align)]) -> Self {
        let widths: Vec<usize> = columns
            .iter()
            .map(|(name, w, _)| (*w).max(name.chars().count()))
            .collect();
        let aligns: Vec<Align> = columns.iter().map(|&(_, _, a)| a).collect();
        let table = Table { widths, aligns };
        table.row(
            &columns
                .iter()
                .map(|(n, ..)| (*n).to_string())
                .collect::<Vec<_>>(),
        );
        table
    }

    /// Prints one aligned row. Extra cells are printed unaligned rather
    /// than dropped; missing cells leave columns empty.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            let width = self.widths.get(i).copied().unwrap_or(0);
            let align = self.aligns.get(i).copied().unwrap_or(Align::Right);
            let pad = width.saturating_sub(cell.chars().count());
            match align {
                Align::Left => {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                }
                Align::Right => {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
        }
        println!("{}", line.trim_end());
    }
}

/// Percent change of `value` against `baseline` (`+` above, `−` below),
/// guarding near-zero baselines: `percent_change(0.3, 1.0)` = −70.
#[must_use]
pub fn percent_change(value: f64, baseline: f64) -> f64 {
    100.0 * (value / baseline.abs().max(1e-300) - 1.0)
}

/// Prints one reproduction-vs-paper delta line:
/// `H-50 vs LoRaWAN: RETX -68.2%  (paper: −69.9%)`.
pub fn delta_vs_paper(comparison: &str, actual_pct: f64, paper: &str) {
    println!("{comparison} {actual_pct:+.1}%  (paper: {paper})");
}

/// Prints the qualitative shape checks of a figure:
/// `Shape checks: every H ≤ LoRaWAN RETX: true; …`.
pub fn shape_checks(checks: &[(&str, bool)]) {
    let rendered: Vec<String> = checks
        .iter()
        .map(|(desc, ok)| format!("{desc}: {ok}"))
        .collect();
    println!("Shape checks: {}", rendered.join("; "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_change_matches_paper_convention() {
        assert!((percent_change(0.301, 1.0) - -69.9).abs() < 1e-9);
        assert!((percent_change(1.5, 1.0) - 50.0).abs() < 1e-9);
        // Near-zero baselines saturate instead of dividing by zero.
        assert!(percent_change(1.0, 0.0).is_finite());
    }

    #[test]
    fn table_grows_columns_to_fit_headers() {
        let t = Table::with_header(&[("MAC", 2, Align::Left), ("avg RETX", 4, Align::Right)]);
        assert_eq!(t.widths, vec![3, 8]);
        assert_eq!(t.aligns, vec![Align::Left, Align::Right]);
        // Rows beyond the declared columns must not panic.
        t.row(&["H-50".into(), "0.31".into(), "extra".into()]);
        t.row(&["LoRaWAN".into()]);
    }
}
