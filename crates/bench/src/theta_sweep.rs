//! The shared θ-sweep behind Figs. 4, 5 and 6.
//!
//! The paper evaluates LoRaWAN against H-5, H-50 and H-100 on one
//! 500-node, 5-year simulation per variant; Figs. 4–6 are different
//! views of those same four runs. This module runs the sweep once and
//! caches the `RunResult`s under `target/experiments/`, keyed by the
//! run parameters, so each figure binary reuses them.

use blam_netsim::{config::Protocol, RunResult, Scenario, ScenarioConfig};
use blam_units::Duration;
use serde::{Deserialize, Serialize};

use crate::ExperimentArgs;

/// The four protocol variants of the paper's θ sweep.
#[must_use]
pub fn protocols() -> Vec<Protocol> {
    vec![
        Protocol::Lorawan,
        Protocol::h(0.05),
        Protocol::h(0.5),
        Protocol::h(1.0),
    ]
}

/// Cached sweep results.
#[derive(Debug, Serialize, Deserialize)]
pub struct ThetaSweep {
    /// Cache key: (nodes, days, seed).
    pub key: (usize, u64, u64),
    /// One run per protocol, in [`protocols`] order.
    pub runs: Vec<RunResult>,
}

/// Runs (or loads) the θ sweep for the given parameters.
#[must_use]
pub fn run_or_load(args: &ExperimentArgs) -> ThetaSweep {
    let (nodes, years) = if args.full {
        (500, 5.0)
    } else {
        (args.nodes, args.years)
    };
    let days = (years * 365.0).round() as u64;
    let key = (nodes, days, args.seed);
    let cache_id = format!("theta_sweep_{}n_{}d_{}s", key.0, key.1, key.2);

    if let Some(cached) = crate::load_json::<ThetaSweep>(&cache_id) {
        if cached.key == key {
            println!("[θ sweep loaded from cache {cache_id}]");
            return cached;
        }
    }

    // The four variants are independent (they deliberately share one
    // seed, so every protocol sees the same topology and clouds): hand
    // them to the batch runner as one deterministic batch.
    let configs: Vec<ScenarioConfig> = protocols()
        .into_iter()
        .map(|protocol| {
            Scenario::large_scale(nodes, protocol, args.seed)
                .with_duration(Duration::from_days(days))
                .with_sample_interval(Duration::from_days(30))
                .config
        })
        .collect();
    let runs = args.run_batch(configs);
    let sweep = ThetaSweep { key, runs };
    crate::write_json(&cache_id, &sweep);
    sweep
}
