//! End-to-end simulator throughput: full-network events per second,
//! which bounds how many node-years fit in a benchmarking session.

use blam_netsim::{config::Protocol, Scenario};
use blam_units::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_network_week(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_week_30_nodes");
    group.sample_size(10);
    for protocol in [Protocol::Lorawan, Protocol::h(0.5)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.label()),
            &protocol,
            |b, protocol| {
                b.iter(|| {
                    let r = Scenario::large_scale(30, protocol.clone(), 7)
                        .with_duration(Duration::from_days(7))
                        .with_sample_interval(Duration::from_days(7))
                        .run();
                    black_box(r.events_processed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_network_week);
criterion_main!(benches);
