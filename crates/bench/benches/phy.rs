//! PHY-layer hot paths: airtime and energy computations run once per
//! simulated transmission (hundreds of millions per full-scale run).

use blam_lora_phy::energy::tx_energy_eq6;
use blam_lora_phy::{
    airtime, Bandwidth, CodingRate, LinkBudget, RadioPowerModel, SpreadingFactor, TxConfig,
};
use blam_units::{Dbm, Meters};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_airtime(c: &mut Criterion) {
    let cfg = TxConfig::default();
    c.bench_function("airtime_sf10_27B", |b| {
        b.iter(|| black_box(airtime::airtime_secs(black_box(&cfg), black_box(27))));
    });
    c.bench_function("airtime_all_sfs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for sf in SpreadingFactor::ALL {
                let cfg = TxConfig::new(sf, Bandwidth::Khz125, CodingRate::Cr4_5);
                acc += airtime::airtime_secs(&cfg, 27);
            }
            black_box(acc)
        });
    });
}

fn bench_energy(c: &mut Criterion) {
    let radio = RadioPowerModel::sx1276();
    let cfg = TxConfig::default().with_power(Dbm(17.3));
    c.bench_function("tx_energy_electrical", |b| {
        b.iter(|| black_box(radio.tx_energy(black_box(&cfg), 27)));
    });
    c.bench_function("tx_energy_eq6", |b| {
        b.iter(|| black_box(tx_energy_eq6(black_box(&cfg), 27)));
    });
}

fn bench_link(c: &mut Criterion) {
    let link = LinkBudget::new(Meters::from_km(3.7));
    c.bench_function("rssi_and_margin", |b| {
        b.iter(|| {
            let rssi = link.rssi(black_box(Dbm(14.0)));
            black_box(link.margin(rssi, SpreadingFactor::Sf10, Bandwidth::Khz125))
        });
    });
}

criterion_group!(benches, bench_airtime, bench_energy, bench_link);
criterion_main!(benches);
