//! Algorithm 1 and the clairvoyant reference side by side: the paper's
//! complexity claim is `O(|T| log |T|)` for the on-sensor step versus
//! an exponential exact solve.

use blam::clairvoyant::{ClairvoyantNode, ClairvoyantProblem};
use blam::select::{select_window, SelectInput};
use blam::utility::Utility;
use blam_units::{Celsius, Duration, Joules};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_select_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_window");
    for &t in &[10usize, 60, 240, 1024] {
        let green: Vec<Joules> = (0..t)
            .map(|w| Joules(if w % 3 == 0 { 0.08 } else { 0.01 }))
            .collect();
        let tx = vec![Joules(0.054); t];
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            let input = SelectInput {
                battery_energy: Joules(1.0),
                normalized_degradation: 0.8,
                degradation_weight: 1.0,
                green_energy: &green,
                tx_energy: &tx,
                max_tx_energy: Joules(0.15),
                utility: &Utility::Linear,
            };
            b.iter(|| black_box(select_window(black_box(&input))));
        });
    }
    group.finish();
}

fn clairvoyant_instance(nodes: usize) -> ClairvoyantProblem {
    let slots = 8;
    let mut green = vec![Joules(0.0); slots];
    green[2] = Joules(0.1);
    green[6] = Joules(0.1);
    ClairvoyantProblem {
        slots,
        slot_length: Duration::from_mins(1),
        omega: 2,
        nodes: (0..nodes)
            .map(|i| ClairvoyantNode {
                period_slots: 4,
                tx_energy: Joules(0.05),
                sleep_energy: Joules(0.0001),
                green: green.clone(),
                battery_capacity: Joules(1.0),
                initial_soc: 0.4 + 0.1 * (i % 3) as f64,
                theta: 0.5,
            })
            .collect(),
        temperature: Celsius(25.0),
    }
}

fn bench_clairvoyant(c: &mut Criterion) {
    let mut group = c.benchmark_group("clairvoyant");
    group.sample_size(10);
    for &nodes in &[1usize, 2, 3] {
        let p = clairvoyant_instance(nodes);
        group.bench_with_input(BenchmarkId::new("exhaustive", nodes), &p, |b, p| {
            b.iter(|| black_box(p.solve_exhaustive(0.5, 1 << 30)));
        });
    }
    let p = clairvoyant_instance(6);
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(1);
    group.bench_function("hill_climb_6_nodes", |b| {
        b.iter(|| black_box(p.solve_hill_climb(0.5, 2, 200, &mut rng)));
    });
    group.finish();
}

criterion_group!(benches, bench_select_scaling, bench_clairvoyant);
criterion_main!(benches);
