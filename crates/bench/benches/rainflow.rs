//! Rainflow-counting throughput: the cost of the gateway-side (and
//! test-side) degradation bookkeeping. Streaming must sustain tens of
//! millions of samples for the 15-year × 500-node simulations.

use blam_battery::{rainflow_count, StreamingRainflow};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn random_walk(n: usize) -> Vec<f64> {
    let mut x = 0.5f64;
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let step = ((seed % 2001) as f64 / 1000.0) - 1.0;
            x = (x + 0.1 * step).clamp(0.0, 1.0);
            x
        })
        .collect()
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("rainflow_streaming");
    for &n in &[1_000usize, 100_000] {
        let trace = random_walk(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, trace| {
            b.iter(|| {
                let mut rf = StreamingRainflow::new();
                let mut damage = 0.0;
                for &s in trace {
                    for cyc in rf.push(s) {
                        damage += cyc.weight * cyc.depth * cyc.mean_soc;
                    }
                }
                black_box(damage)
            });
        });
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let trace = random_walk(10_000);
    c.bench_function("rainflow_batch_10k", |b| {
        b.iter(|| black_box(rainflow_count(black_box(&trace))));
    });
}

criterion_group!(benches, bench_streaming, bench_batch);
criterion_main!(benches);
