//! Criterion version of Table I: the per-decision cost of the
//! protocol against the trivial ALOHA decision path, plus the feedback
//! updates a node performs per exchange.

use blam::{BlamConfig, BlamNode};
use blam_units::Joules;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision");
    for &windows in &[10usize, 38, 60] {
        let mut node = BlamNode::new(BlamConfig::h(0.5), Joules(0.054), Joules(0.15), windows);
        node.on_weight_update(200);
        for w in 0..windows {
            node.on_exchange_complete(w, 1 + (w % 4) as u8, Joules(0.054));
        }
        let green: Vec<Joules> = (0..windows)
            .map(|w| {
                if w % 2 == 0 {
                    Joules(0.08)
                } else {
                    Joules(0.01)
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("algorithm1", windows), &windows, |b, _| {
            b.iter(|| black_box(node.plan(black_box(Joules(2.0)), black_box(&green))));
        });
    }
    group.bench_function("aloha_baseline", |b| {
        b.iter(|| black_box(0usize));
    });
    group.finish();
}

fn bench_feedback(c: &mut Criterion) {
    let mut node = BlamNode::new(BlamConfig::h(0.5), Joules(0.054), Joules(0.15), 60);
    c.bench_function("exchange_feedback", |b| {
        b.iter(|| node.on_exchange_complete(black_box(3), black_box(2), black_box(Joules(0.06))));
    });
    c.bench_function("weight_update", |b| {
        b.iter(|| node.on_weight_update(black_box(128)));
    });
}

criterion_group!(benches, bench_decision, bench_feedback);
criterion_main!(benches);
