//! Event-kernel throughput: schedule/pop rates bound how many node-years
//! the simulator covers per wall-clock second.

use blam_des::{EventQueue, Simulator};
use blam_units::{Duration, SimTime};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..n {
                // Pseudo-random interleaving.
                let t = (i * 2_654_435_761) % 1_000_000;
                q.schedule(SimTime::from_millis(t), i);
            }
            let mut count = 0u64;
            while let Some((_, e)) = q.pop() {
                count += black_box(e) & 1;
            }
            black_box(count)
        });
    });
    group.finish();
}

fn bench_simulator_cascade(c: &mut Criterion) {
    let n = 100_000u64;
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(n));
    group.bench_function("self_scheduling_cascade", |b| {
        b.iter(|| {
            let mut sim: Simulator<u64> = Simulator::new();
            sim.schedule(SimTime::ZERO, 0);
            sim.run_to_completion(|sim, _, k| {
                if k < n {
                    sim.schedule_in(Duration::from_millis(1), k + 1);
                }
            });
            black_box(sim.processed())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_queue, bench_simulator_cascade);
criterion_main!(benches);
