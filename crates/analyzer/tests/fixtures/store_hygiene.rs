//! Seeded fixture for the `store-hygiene` lint. Classified as
//! `crates/netsim/src/store_fixture.rs` by the integration test — a
//! netsim library file that is NOT one of the store's owner files, so
//! every direct column access below must be flagged and every
//! accessor-shaped use must pass. Never compiled.

struct Coordinator {
    store: NodeStore,
}

impl Coordinator {
    fn flagged_hot_column_read(&self, i: usize) -> Duration {
        self.store.period[i] // SEED: store-period
    }

    fn flagged_cold_arena_write(&mut self, i: usize) {
        self.store.cold[i].placement.sf = SpreadingFactor::SF7; // SEED: store-cold
    }

    fn flagged_on_a_suffixed_binding(cell_store: &NodeStore) -> bool {
        !cell_store.cap_latched.is_empty() // SEED: store-suffixed
    }

    fn accessors_pass(&mut self, i: usize) -> u32 {
        // Column-shadowing accessor methods and the view are the
        // sanctioned surface: none of these may fire.
        let _ = self.store.node_mut(i);
        let _ = self.store.period_of(i);
        let _ = self.store.placement_of(i);
        self.store.global_id(i)
    }

    fn non_store_receivers_pass(restore: &Checkpoint, datastore_kv: &Kv) -> u64 {
        // `restore` is not a store name; `datastore_kv` neither.
        restore.period + datastore_kv.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_reach_into_columns() {
        let mut store = NodeStore::with_total(1);
        assert_eq!(store.windows.len(), store.cold.len());
    }
}
