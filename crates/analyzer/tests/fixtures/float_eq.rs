//! Float-equality fixture: a bare comparison (flagged), a properly
//! waived one (passes), and a reason-less pragma (the comparison is
//! still flagged AND the pragma itself is reported). Never compiled;
//! loaded as text by `tests/analyzer.rs`.

pub fn bare_comparison(v: f64) -> bool {
    v == 0.0 // SEED: bare-float-eq
}

pub fn waived_comparison(v: f64) -> bool {
    // analyzer: allow(float-eq, reason = "fixture: exact sentinel")
    v == 1.0
}

pub fn badly_waived_comparison(v: f64) -> bool {
    // analyzer: allow(float-eq) -- SEED: reasonless-pragma
    v != 2.0 // SEED: reasonless-float-eq
}

pub fn tolerance_is_the_fix(v: f64) -> bool {
    (v - 3.0).abs() < 1e-9
}
