//! Seeded fixture for the `lock-discipline` lint, in the style of the
//! `campaign` daemon. Each seeded violation has a passing twin right
//! above it: build-then-drop-then-respond vs. responding under the
//! guard, a looped Condvar wait vs. a bare one, catalog-ordered
//! nesting vs. the reverse, and the mutex-protects-the-writer idiom
//! vs. a transitive sink through a callee. Never compiled; loaded as
//! text by `tests/analyzer.rs` under a `campaign` path.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// The daemon's poison-recovering lock helper: a `MutexGuard`-returning
/// fn counts as an acquisition in the call-graph model.
fn lock(registry: &Registry) -> MutexGuard<'_, State> {
    registry.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Build the payload under the lock, drop the guard, then respond.
pub fn good_route(registry: &Registry, conn: &mut Conn) {
    let state = lock(registry);
    let body = state.summary.clone();
    drop(state);
    conn.respond_json(&body);
}

/// Socket I/O while the registry lock is held stalls every worker.
pub fn bad_route(registry: &Registry, conn: &mut Conn) {
    let state = lock(registry);
    conn.respond_json(&state.summary); // SEED: sink-under-lock
}

/// Mutex-protects-the-writer: the sink goes *through* the guard.
pub fn good_writer(shared: &Mutex<TraceWriter>, line: &[u8]) {
    let mut w = shared.lock().unwrap_or_else(PoisonError::into_inner);
    w.write_all(line).ok();
}

/// A Condvar wait whose predicate is re-checked in a loop.
pub fn good_wait(registry: &Registry) {
    let mut state = lock(registry);
    while state.busy {
        state = registry.cond.wait(state).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Spurious wakeups are legal; a bare wait is a latent race.
pub fn bad_wait(registry: &Registry) {
    let state = lock(registry);
    let _woken = registry.cond.wait(state); // SEED: wait-outside-loop
}

/// registry.state before shared.state is the registered order.
pub fn good_nested(registry: &Registry, shared: &Shared) {
    let outer = registry.state.lock().unwrap_or_else(PoisonError::into_inner);
    let inner = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    inner.close(&outer.summary);
}

/// The reverse nesting is a deadlock waiting for its second thread.
pub fn bad_nested(registry: &Registry, shared: &Shared) {
    let inner = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    let outer = registry.state.lock().unwrap_or_else(PoisonError::into_inner); // SEED: unregistered-order
    inner.close(&outer.summary);
}

/// The callee does the blocking write (call-graph sink summary).
fn persist(conn: &mut Conn, text: &str) {
    conn.write_all(text.as_bytes()).ok();
}

/// A transitive sink under the guard is still a sink.
pub fn bad_transitive(registry: &Registry, conn: &mut Conn) {
    let state = lock(registry);
    persist(conn, &state.summary); // SEED: transitive-sink
}
