//! Unit-safety fixture: public signatures taking unit-suffixed raw
//! `f64` parameters, plus shapes that must pass. Never compiled;
//! loaded as text by `tests/analyzer.rs`.

pub fn raw_energy(energy_j: f64, cycles: u32) -> f64 { // SEED: raw-energy
    energy_j * cycles as f64
}

pub fn raw_generic<T: Into<Vec<u8>>>(payload: T, level_dbm: f64) {} // SEED: raw-dbm

pub(crate) fn restricted_visibility_is_exempt(freq_hz: f64) -> f64 {
    freq_hz
}

fn private_is_exempt(temp_c: f64) -> f64 {
    temp_c
}

pub fn newtyped_is_the_fix(energy: Joules, ratio: f64) -> f64 {
    energy.as_f64() * ratio
}
