//! Panic-hygiene fixture: three library-code sites, none in test
//! code. Never compiled; loaded as text by `tests/analyzer.rs`.

pub fn lib_unwrap(o: Option<u8>) -> u8 {
    o.unwrap() // SEED: unwrap
}

pub fn lib_expect(r: Result<u8, String>) -> u8 {
    r.expect("fixture expect") // SEED: expect
}

pub fn lib_panic(flag: bool) {
    if flag {
        panic!("fixture panic"); // SEED: panic
    }
}

pub fn mentions_are_not_sites() -> &'static str {
    // A comment saying unwrap() is fine, and so is this string:
    "call .unwrap() and panic!(…) at your peril"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        Some(1u8).unwrap();
    }
}
