//! Seeded fixture for the `rng-streams` lint: catalog-registered
//! literal draws (direct, through a `let` binding, through a closure,
//! and interprocedurally through a parameter) must pass; a duplicated
//! name, an unregistered name, and a dynamically built name must each
//! yield exactly one finding. Never compiled; loaded as text by
//! `tests/analyzer.rs` under a sim-core path.

/// Two registered fault layers, one draw each: the canonical shape.
pub fn seed_loss_layers(seeder: &RngSeeder) -> (ChaCha, ChaCha) {
    let ul = seeder.stream("fault-ul");
    let dl = seeder.stream("fault-dl");
    (ul, dl)
}

/// An indexed draw through a provable `let`-bound literal.
pub fn seed_cell(seeder: &RngSeeder, cell: u64) -> ChaCha {
    let name = "mac";
    seeder.stream_indexed(name, cell)
}

/// A draw inside an inline closure is attributed to the closure's own
/// scope, still against the catalog.
pub fn seed_node_batch(seeder: &RngSeeder, count: u64) -> Vec<ChaCha> {
    let draw = |i: u64| { seeder.stream_indexed("nodes", i) };
    (0..count).map(draw).collect()
}

/// Interprocedural resolution: the `stream` parameter is proved
/// through every caller in the call-graph model.
fn derive(seeder: &RngSeeder, stream: &str) -> ChaCha {
    seeder.stream(stream)
}

pub fn seed_topology(seeder: &RngSeeder) -> ChaCha {
    derive(seeder, "topology")
}

pub fn seed_phases(seeder: &RngSeeder) -> ChaCha {
    derive(seeder, "phases")
}

/// Drawing the same name twice silently correlates the two ChaCha
/// streams — the second draw is the finding.
pub fn correlated(seeder: &RngSeeder) -> (ChaCha, ChaCha) {
    let a = seeder.stream("solar");
    let b = seeder.stream("solar"); // SEED: dup-stream
    (a, b)
}

/// A name missing from the registered catalog.
pub fn unregistered(seeder: &RngSeeder) -> ChaCha {
    seeder.stream("laser") // SEED: unregistered-stream
}

/// A dynamically built name can never be audited against the catalog.
pub fn dynamic(seeder: &RngSeeder, cell: u64) -> ChaCha {
    let name = format!("mac-{cell}");
    seeder.stream(&name) // SEED: dynamic-stream
}
