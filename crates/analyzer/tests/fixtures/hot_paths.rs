//! Hot-path fixture: the shapes introduced by the engine optimization
//! PR — a dense `OnceLock` memo table, a single-entry energy memo, a
//! BTree ledger folded in ascending key order, and reused scratch
//! buffers. The whole file must produce **zero** findings from every
//! lint (`determinism`, `cache-order`, `float-eq`, …): this is the
//! seeded proof that the optimized code patterns are lint-clean. The
//! file is never compiled — `tests/analyzer.rs` feeds it to the
//! analyzer as text under a sim-core crate path.

use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Dense airtime memo: index arithmetic over a `Vec`, no hash order.
static AIRTIME_CACHE: OnceLock<Vec<f64>> = OnceLock::new();

pub(crate) fn airtime_lookup(cell: usize) -> f64 {
    let table = AIRTIME_CACHE.get_or_init(|| vec![0.0; 18_432]);
    table[cell]
}

/// Single-entry TX-energy memo keyed by the last (config, length).
pub(crate) struct EnergyMemo {
    key: Option<(u8, usize)>,
    value: f64,
}

impl EnergyMemo {
    pub(crate) fn energy(&mut self, sf: u8, len: usize, direct: f64) -> f64 {
        if self.key != Some((sf, len)) {
            self.key = Some((sf, len));
            self.value = direct;
        }
        self.value
    }
}

/// Ledger caches keyed by node id: BTree iteration is ascending, so
/// float folds over it are bit-stable without a collect-and-sort.
pub(crate) fn worst_degradation(tracker_cache: &BTreeMap<u32, f64>) -> f64 {
    tracker_cache
        .values()
        .fold(0.0_f64, |worst, &d| worst.max(d))
}

/// Scratch reuse: clear-and-refill keeps the hot loop allocation-free
/// and visits windows in index order.
pub(crate) fn fill_forecast(scratch: &mut Vec<f64>, windows: usize) {
    scratch.clear();
    scratch.reserve(windows);
    for w in 0..windows {
        scratch.push(0.25 * w as f64);
    }
}
