//! Telemetry-guard fixture: one guarded emit (passes), one bare emit
//! (flagged), and the emit definition itself (not a call site).
//! Never compiled; loaded as text by `tests/analyzer.rs` under a
//! netsim path.

impl Engine {
    fn emit(&mut self, ev: Event) {
        self.sink.record(&ev);
    }

    fn guarded_site(&mut self) {
        if self.telemetry_on() {
            self.emit(Event::Wake);
        }
    }

    fn unguarded_site(&mut self) {
        self.emit(Event::Sleep); // SEED: bare-emit
    }
}
