//! Determinism fixture: seeded violations plus the repo's
//! sort-before-use idiom, which must pass. This file is never
//! compiled — `tests/analyzer.rs` feeds it to the analyzer as text
//! under a sim-core crate path.

use std::collections::HashMap;
use std::time::Instant;

pub(crate) fn unsorted_iteration(m: &HashMap<u32, f64>) -> Vec<u32> {
    let mut out = Vec::new();
    for (id, _) in m.iter() { // SEED: unsorted-iter
        out.push(*id);
    }
    out
}

pub(crate) fn sorted_after_collect(m: &HashMap<u32, f64>) -> Vec<(u32, f64)> {
    let mut v: Vec<(u32, f64)> = m.iter().map(|(&k, &x)| (k, x)).collect();
    v.sort_by_key(|&(k, _)| k);
    v
}

pub(crate) fn order_insensitive_reduction(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum() // order-insensitive: allowed
}

pub(crate) fn wall_clock_profiling() -> Instant {
    Instant::now() // SEED: wall-clock
}

pub(crate) fn os_seeded_randomness() -> u64 {
    let mut rng = rand::thread_rng(); // SEED: thread-rng
    rng.gen()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_read_the_clock() {
        let _ = std::time::Instant::now();
    }
}
