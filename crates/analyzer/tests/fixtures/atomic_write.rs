//! Seeded fixture for the `atomic-write` lint: raw `fs::write` /
//! `File::create` outside the spool's owner code must route through
//! the atomic writer, whose own body (the temp-file + rename protocol)
//! is exempt by function name, as is test code. Never compiled; loaded
//! as text by `tests/analyzer.rs` under a `campaign` path.

use std::fs::File;
use std::path::Path;

/// A local copy of the owner protocol: the raw write inside an
/// `atomic_write_owner_fns` body IS the protocol, not a violation.
fn write_string_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Durable checkpoints route through the atomic writer.
pub fn good_checkpoint(path: &Path, payload: &str) -> std::io::Result<()> {
    write_string_atomic(path, payload)
}

/// A raw `fs::write` can leave a torn file behind a crash.
pub fn bad_checkpoint(path: &Path, payload: &str) -> std::io::Result<()> {
    std::fs::write(path, payload) // SEED: raw-fs-write
}

/// `File::create` truncates in place: readers can observe the gap.
pub fn bad_open(path: &Path) -> std::io::Result<File> {
    File::create(path) // SEED: raw-file-create
}

#[cfg(test)]
mod tests {
    /// Test code may scribble scratch files directly.
    #[test]
    fn scratch_files_are_fine_here() {
        std::fs::write("scratch.json", "{}").ok();
    }
}
