//! Seeded fixture for the policy layer's RNG discipline: `MacPolicy`
//! implementations are deterministic by trait contract and draw no
//! randomness of their own — engine-side jitter comes from the `mac`
//! stream. A policy that starts drawing must register its stream name
//! in the catalog, so the one draw below is flagged until it is.
//! Never compiled; loaded as text by `tests/analyzer.rs` under the
//! netsim policy path.

/// The compliant shape: a window decision computed from node state
/// and forecasts only, no seeder in sight.
pub fn select_window(node: &mut NodeMut<'_>, windows: usize) -> usize {
    let mut best = 0;
    for w in 1..windows {
        if node.forecast_scratch[w] > node.forecast_scratch[best] {
            best = w;
        }
    }
    best
}

/// A policy sneaking in its own randomness: the stream name is not in
/// the registered catalog, so the lint holds the door until it is
/// added to `[rng-streams]` deliberately.
pub fn randomized_backoff(seeder: &RngSeeder) -> ChaCha {
    seeder.stream("policy-backoff") // SEED: policy-stream
}
