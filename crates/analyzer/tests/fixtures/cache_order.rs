//! Cache-order fixture: hash-container caches whose iterated state
//! feeds float folds. The general `determinism` lint excuses these
//! (the reductions are on its ORDER_OK list); `cache-order` must
//! catch them, and must pass the repo's actual cache shapes (dense
//! `Vec` tables, BTree maps, point lookups, collect-then-sort). This
//! file is never compiled — `tests/analyzer.rs` feeds it to the
//! analyzer as text under a sim-core crate path.

use std::collections::{BTreeMap, HashMap};

pub(crate) struct Caches {
    airtime_cache: HashMap<u32, f64>,
    memo_table: HashMap<u32, f64>,
    ledger_cache: BTreeMap<u32, f64>,
    dense_lookup: Vec<f64>,
}

pub(crate) fn float_fold_over_hash_cache(c: &Caches) -> f64 {
    c.airtime_cache.values().sum() // SEED: cache-sum
}

pub(crate) fn drained_hash_memo(c: &mut Caches) -> f64 {
    c.memo_table.drain().map(|(_, v)| v).fold(0.0, |a, b| a + b) // SEED: cache-drain
}

pub(crate) fn ordered_cache_folds_pass(c: &Caches) -> f64 {
    let btree: f64 = c.ledger_cache.values().sum();
    let dense: f64 = c.dense_lookup.iter().sum();
    btree + dense
}

pub(crate) fn collect_then_sort_passes(c: &Caches) -> Vec<(u32, f64)> {
    let mut v: Vec<(u32, f64)> = c.airtime_cache.iter().map(|(&k, &x)| (k, x)).collect();
    v.sort_by_key(|&(k, _)| k);
    v
}

pub(crate) fn point_lookups_pass(c: &Caches, sf: u32) -> Option<f64> {
    c.airtime_cache.get(&sf).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_iterate_caches_freely() {
        let mut probe_cache = std::collections::HashMap::new();
        probe_cache.insert(1u32, 2.0f64);
        let _ = probe_cache.values().sum::<f64>();
    }
}
