//! Fixture: service-layer code in the style of `crates/campaign` —
//! wall-clock poll deadlines and lock-based worker claims are
//! legitimate in the daemon (it schedules OS threads around real
//! time), so the determinism lint must stay silent for the `campaign`
//! crate. The exemption must NOT travel: the same text attributed to a
//! sim-core crate still yields the wall-clock finding. Panic-hygiene
//! has no service-layer carve-out — the unwrap below is a finding in
//! `campaign` too (its baseline budget is zero).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A tail poll deadline: real elapsed time, fine in the daemon.
pub fn poll_deadline() -> Instant {
    Instant::now() + Duration::from_millis(250) // SEED: serve-wall-clock
}

/// A worker claiming the next queued task.
pub fn claim(tasks: &Mutex<Vec<u32>>) -> Option<u32> {
    tasks.lock().unwrap().pop() // SEED: serve-unwrap
}
