//! Fault-injection determinism fixture: the seeded per-node stream
//! idiom of `netsim/src/faults.rs` must pass the determinism lint,
//! while the tempting OS-seeded shortcut must be flagged. This file is
//! never compiled — `tests/analyzer.rs` feeds it to the analyzer as
//! text under a sim-core crate path.

use rand::Rng;

pub(crate) struct FaultStreams {
    streams: Vec<rand_chacha::ChaCha12Rng>,
}

impl FaultStreams {
    /// Per-node fault streams derived from the run's master seed: the
    /// repo's replayable idiom, allowed.
    pub(crate) fn build(seeder: &RngSeeder, nodes: usize) -> Self {
        let streams = (0..nodes)
            .map(|i| seeder.stream_indexed("fault-ul", i))
            .collect();
        FaultStreams { streams }
    }

    /// Seeded draw: byte-identical on replay, allowed.
    pub(crate) fn uplink_lost(&mut self, node: usize) -> bool {
        self.streams[node].gen::<f64>() < 0.1
    }

    /// The shortcut that breaks replay: a loss draw nobody can reseed.
    pub(crate) fn ambient_lost() -> bool {
        rand::thread_rng().gen::<f64>() < 0.1 // SEED: faults-thread-rng
    }
}
