//! Tokenizer stress fixture: violation-shaped text hidden where a
//! naive regex would bite — strings, raw strings, nested block
//! comments, char literals — plus exactly one real violation at the
//! end. Never compiled; loaded as text by `tests/analyzer.rs` under a
//! sim-core path.

pub(crate) fn strings_are_not_code() -> &'static str {
    "Instant::now() thread_rng() m.iter() v == 0.0 panic!(no)"
}

pub(crate) fn raw_strings_too() -> String {
    let tricky = r#"SystemTime::now() == 0.5 and a "quoted" bit"#;
    let hashes = r##"even r#"nested"# raw strings: .unwrap()"##;
    format!("{tricky}{hashes}")
}

/* nested /* block comments */ may contain Instant::now() == 1.0 */

pub(crate) fn chars_are_not_lifetimes<'a>(x: &'a u8) -> (char, &'a u8) {
    ('"', x) // a double-quote char must not open a string
}

pub(crate) fn escaped_chars_too() -> (char, char) {
    ('\'', '\\')
}

pub(crate) fn the_one_real_violation() -> std::time::Instant {
    std::time::Instant::now() // SEED: tricks-wall-clock
}
