//! Integration tests for the lint battery: the seeded fixture files
//! under `tests/fixtures/` go through the analyzer as text, and every
//! expected finding is asserted by exact file and line. The fixtures
//! are never compiled, and the workspace walk must never see them.

use blam_analyzer::{analyze_files, walk, Baseline, Config, Outcome, SourceFile};

const DETERMINISM: &str = include_str!("fixtures/determinism.rs");
const FAULTS_DETERMINISM: &str = include_str!("fixtures/faults_determinism.rs");
const PANIC_HYGIENE: &str = include_str!("fixtures/panic_hygiene.rs");
const UNIT_SAFETY: &str = include_str!("fixtures/unit_safety.rs");
const TELEMETRY_GUARD: &str = include_str!("fixtures/telemetry_guard.rs");
const FLOAT_EQ: &str = include_str!("fixtures/float_eq.rs");
const TOKENIZER_TRICKS: &str = include_str!("fixtures/tokenizer_tricks.rs");
const CACHE_ORDER: &str = include_str!("fixtures/cache_order.rs");
const STORE_HYGIENE: &str = include_str!("fixtures/store_hygiene.rs");
const HOT_PATHS: &str = include_str!("fixtures/hot_paths.rs");
const CAMPAIGN_DAEMON: &str = include_str!("fixtures/campaign_daemon.rs");
const RNG_STREAMS: &str = include_str!("fixtures/rng_streams.rs");
const POLICY_RNG: &str = include_str!("fixtures/policy_rng.rs");
const LOCK_DISCIPLINE: &str = include_str!("fixtures/lock_discipline.rs");
const ATOMIC_WRITE: &str = include_str!("fixtures/atomic_write.rs");
const SARIF_GOLDEN: &str = include_str!("golden/atomic_write.sarif");

/// 1-based line of the (unique) line containing `marker`.
fn line_of(src: &str, marker: &str) -> u32 {
    let hits: Vec<usize> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains(marker))
        .map(|(i, _)| i + 1)
        .collect();
    assert_eq!(hits.len(), 1, "marker {marker:?} must appear exactly once");
    hits[0] as u32
}

/// Loads fixture text as if it lived at `rel` inside the workspace.
fn fixture(rel: &str, src: &str) -> SourceFile {
    let (crate_name, kind) = walk::classify(rel);
    SourceFile::from_source(rel, &crate_name, kind, src.to_string())
}

fn analyze(files: &[SourceFile]) -> Outcome {
    analyze_files(files, &Config::default(), &Baseline::default())
}

/// `(lint, line)` pairs of all hard findings, sorted.
fn findings_of(out: &Outcome) -> Vec<(&'static str, u32)> {
    out.findings.iter().map(|f| (f.lint, f.line)).collect()
}

#[test]
fn determinism_fixture_yields_exactly_the_seeded_findings() {
    let rel = "crates/netsim/src/det_fixture.rs";
    let out = analyze(&[fixture(rel, DETERMINISM)]);
    assert_eq!(
        findings_of(&out),
        vec![
            ("determinism", line_of(DETERMINISM, "SEED: unsorted-iter")),
            ("determinism", line_of(DETERMINISM, "SEED: wall-clock")),
            ("determinism", line_of(DETERMINISM, "SEED: thread-rng")),
        ],
        "{}",
        out.render_human(true)
    );
    assert!(out.findings.iter().all(|f| f.file == rel));
}

#[test]
fn fault_layer_seeded_streams_pass_and_thread_rng_is_flagged() {
    let rel = "crates/netsim/src/faults_fixture.rs";
    let out = analyze(&[fixture(rel, FAULTS_DETERMINISM)]);
    assert_eq!(
        findings_of(&out),
        vec![(
            "determinism",
            line_of(FAULTS_DETERMINISM, "SEED: faults-thread-rng")
        )],
        "{}",
        out.render_human(true)
    );
}

#[test]
fn panic_hygiene_fixture_and_baseline_ratchet() {
    let rel = "crates/lorawan/src/panic_fixture.rs";
    let files = [fixture(rel, PANIC_HYGIENE)];
    let expected = vec![
        ("panic-hygiene", line_of(PANIC_HYGIENE, "SEED: unwrap")),
        ("panic-hygiene", line_of(PANIC_HYGIENE, "SEED: expect")),
        ("panic-hygiene", line_of(PANIC_HYGIENE, "SEED: panic")),
    ];

    // No baseline: all three sites are hard findings.
    let out = analyze(&files);
    assert_eq!(findings_of(&out), expected, "{}", out.render_human(true));
    assert!(out.findings[0].message.contains("baseline budget of 0"));

    // Budget exactly met: clean, sites reported as baselined.
    let mut baseline = Baseline::default();
    baseline.panic_hygiene.insert("lorawan".to_string(), 3);
    let out = analyze_files(&files, &Config::default(), &baseline);
    assert!(out.clean(), "{}", out.render_human(true));
    assert_eq!(out.baselined.len(), 3);

    // Budget loose: clean, and the ratchet asks to be tightened.
    baseline.panic_hygiene.insert("lorawan".to_string(), 9);
    let out = analyze_files(&files, &Config::default(), &baseline);
    assert!(out.clean());
    assert_eq!(out.improvements.len(), 1, "{:?}", out.improvements);
    assert!(out.improvements[0].contains("--update-baseline"));
}

#[test]
fn unit_safety_fixture_names_the_covering_newtypes() {
    let rel = "crates/battery/src/unit_fixture.rs";
    let out = analyze(&[fixture(rel, UNIT_SAFETY)]);
    assert_eq!(
        findings_of(&out),
        vec![
            ("unit-safety", line_of(UNIT_SAFETY, "SEED: raw-energy")),
            ("unit-safety", line_of(UNIT_SAFETY, "SEED: raw-dbm")),
        ],
        "{}",
        out.render_human(true)
    );
    assert!(out.findings[0].message.contains("Joules"));
    assert!(out.findings[1].message.contains("Dbm"));
}

#[test]
fn telemetry_guard_fixture_flags_only_the_bare_emit() {
    let rel = "crates/netsim/src/tel_fixture.rs";
    let out = analyze(&[fixture(rel, TELEMETRY_GUARD)]);
    assert_eq!(
        findings_of(&out),
        vec![(
            "telemetry-guard",
            line_of(TELEMETRY_GUARD, "SEED: bare-emit")
        )],
        "{}",
        out.render_human(true)
    );
}

#[test]
fn float_eq_fixture_waiver_needs_a_reason() {
    let rel = "crates/units/src/float_fixture.rs";
    let out = analyze(&[fixture(rel, FLOAT_EQ)]);
    assert_eq!(
        findings_of(&out),
        vec![
            ("float-eq", line_of(FLOAT_EQ, "SEED: bare-float-eq")),
            ("pragma", line_of(FLOAT_EQ, "SEED: reasonless-pragma")),
            ("float-eq", line_of(FLOAT_EQ, "SEED: reasonless-float-eq")),
        ],
        "{}",
        out.render_human(true)
    );
    let pragma = out
        .findings
        .iter()
        .find(|f| f.lint == "pragma")
        .expect("pragma finding");
    assert!(pragma.message.contains("no reason"), "{}", pragma.message);
}

#[test]
fn tokenizer_tricks_hide_everything_but_the_real_violation() {
    let rel = "crates/netsim/src/tricks_fixture.rs";
    let out = analyze(&[fixture(rel, TOKENIZER_TRICKS)]);
    assert_eq!(
        findings_of(&out),
        vec![(
            "determinism",
            line_of(TOKENIZER_TRICKS, "SEED: tricks-wall-clock")
        )],
        "{}",
        out.render_human(true)
    );
}

#[test]
fn cache_order_fixture_yields_exactly_the_seeded_findings() {
    let rel = "crates/lora-phy/src/cache_fixture.rs";
    let out = analyze(&[fixture(rel, CACHE_ORDER)]);
    assert_eq!(
        findings_of(&out),
        vec![
            ("cache-order", line_of(CACHE_ORDER, "SEED: cache-sum")),
            ("cache-order", line_of(CACHE_ORDER, "SEED: cache-drain")),
        ],
        "{}",
        out.render_human(true)
    );
    // The seeds hide behind reductions the general determinism lint
    // excuses — only `cache-order` may fire on this fixture.
    assert!(
        out.findings.iter().all(|f| f.lint == "cache-order"),
        "{}",
        out.render_human(true)
    );
}

#[test]
fn store_hygiene_fixture_yields_exactly_the_seeded_findings() {
    let rel = "crates/netsim/src/store_fixture.rs";
    let out = analyze(&[fixture(rel, STORE_HYGIENE)]);
    assert_eq!(
        findings_of(&out),
        vec![
            (
                "store-hygiene",
                line_of(STORE_HYGIENE, "SEED: store-period")
            ),
            ("store-hygiene", line_of(STORE_HYGIENE, "SEED: store-cold")),
            (
                "store-hygiene",
                line_of(STORE_HYGIENE, "SEED: store-suffixed"),
            ),
        ],
        "{}",
        out.render_human(true)
    );
    // The accessor surface and non-store receivers must stay silent,
    // and no other lint may fire on the fixture.
    assert!(
        out.findings.iter().all(|f| f.lint == "store-hygiene"),
        "{}",
        out.render_human(true)
    );

    // The same text inside an owner file is the layout's home turf.
    let owned = analyze(&[fixture("crates/netsim/src/store.rs", STORE_HYGIENE)]);
    assert!(
        owned.findings.is_empty(),
        "owner files are exempt:\n{}",
        owned.render_human(true)
    );
}

/// The optimized hot-path shapes (dense `OnceLock` table, one-entry
/// energy memo, BTree ledger fold, scratch reuse) trip nothing — not
/// `determinism`, not `float-eq`, not the new `cache-order` lint.
#[test]
fn hot_path_shapes_are_lint_clean() {
    let rel = "crates/netsim/src/hot_paths_fixture.rs";
    let out = analyze(&[fixture(rel, HOT_PATHS)]);
    assert!(
        out.findings.is_empty(),
        "hot-path patterns must be lint-clean:\n{}",
        out.render_human(true)
    );
}

/// The `campaign` service layer is deliberately NOT a sim-core crate:
/// the daemon schedules OS threads around real time, so wall clocks
/// are its job — determinism findings would be noise there. The
/// exemption must not travel (the same text in netsim still flags the
/// wall clock), and panic-hygiene has no service carve-out (campaign's
/// baseline budget is zero, so the unwrap is a hard finding).
#[test]
fn service_layer_is_exempt_from_determinism_but_not_panic_hygiene() {
    let campaign = analyze(&[fixture(
        "crates/campaign/src/daemon_fixture.rs",
        CAMPAIGN_DAEMON,
    )]);
    assert_eq!(
        findings_of(&campaign),
        vec![(
            "panic-hygiene",
            line_of(CAMPAIGN_DAEMON, "SEED: serve-unwrap")
        )],
        "{}",
        campaign.render_human(true)
    );

    let sim_core = analyze(&[fixture(
        "crates/netsim/src/daemon_fixture.rs",
        CAMPAIGN_DAEMON,
    )]);
    assert_eq!(
        findings_of(&sim_core),
        vec![
            (
                "determinism",
                line_of(CAMPAIGN_DAEMON, "SEED: serve-wall-clock")
            ),
            (
                "panic-hygiene",
                line_of(CAMPAIGN_DAEMON, "SEED: serve-unwrap")
            ),
        ],
        "{}",
        sim_core.render_human(true)
    );
}

#[test]
fn rng_streams_fixture_yields_exactly_the_seeded_findings() {
    let rel = "crates/netsim/src/rng_fixture.rs";
    let out = analyze(&[fixture(rel, RNG_STREAMS)]);
    assert_eq!(
        findings_of(&out),
        vec![
            ("rng-streams", line_of(RNG_STREAMS, "SEED: dup-stream")),
            (
                "rng-streams",
                line_of(RNG_STREAMS, "SEED: unregistered-stream")
            ),
            ("rng-streams", line_of(RNG_STREAMS, "SEED: dynamic-stream")),
        ],
        "{}",
        out.render_human(true)
    );
    // The direct, let-bound, closure, and interprocedural catalog
    // draws above the seeds must all pass — and nothing else fires.
    assert!(
        out.findings.iter().all(|f| f.lint == "rng-streams"),
        "{}",
        out.render_human(true)
    );
    let dup = &out.findings[0];
    assert!(dup.message.contains("already drawn"), "{}", dup.message);
    assert!(
        out.findings[1].message.contains("\"laser\""),
        "{}",
        out.findings[1].message
    );
    assert!(
        out.findings[2].message.contains("dynamically"),
        "{}",
        out.findings[2].message
    );
}

/// The policy layer (netsim's `policy/` module tree, the MAC zoo) is
/// RNG-free by trait contract: a policy that starts drawing its own
/// randomness must register a stream name in the catalog first. The
/// fixture pins both halves — deterministic policy code passes, an
/// unregistered `policy-*` draw is flagged — and the catalog itself
/// must not grow a policy stream without this test noticing.
#[test]
fn policy_layer_is_rng_free_until_a_stream_is_registered() {
    let rel = "crates/netsim/src/policy/fixture.rs";
    let out = analyze(&[fixture(rel, POLICY_RNG)]);
    assert_eq!(
        findings_of(&out),
        vec![("rng-streams", line_of(POLICY_RNG, "SEED: policy-stream"))],
        "{}",
        out.render_human(true)
    );
    assert!(
        out.findings[0].message.contains("\"policy-backoff\""),
        "{}",
        out.findings[0].message
    );
    // No policy stream is registered today — the zoo's policies
    // (ALOHA, BLAM, Long-Lived, battery-less) decide from node state
    // and forecasts only. Registering one is a deliberate act that
    // updates this assertion alongside the catalog.
    let catalog = Config::default().rng_stream_catalog;
    assert!(
        catalog.iter().all(|(name, _)| !name.starts_with("policy")),
        "a policy RNG stream appeared in the catalog: {catalog:?}"
    );
}

#[test]
fn lock_discipline_fixture_yields_exactly_the_seeded_findings() {
    let rel = "crates/campaign/src/lock_fixture.rs";
    let out = analyze(&[fixture(rel, LOCK_DISCIPLINE)]);
    assert_eq!(
        findings_of(&out),
        vec![
            (
                "lock-discipline",
                line_of(LOCK_DISCIPLINE, "SEED: sink-under-lock")
            ),
            (
                "lock-discipline",
                line_of(LOCK_DISCIPLINE, "SEED: wait-outside-loop")
            ),
            (
                "lock-discipline",
                line_of(LOCK_DISCIPLINE, "SEED: unregistered-order")
            ),
            (
                "lock-discipline",
                line_of(LOCK_DISCIPLINE, "SEED: transitive-sink")
            ),
        ],
        "{}",
        out.render_human(true)
    );
    // The passing twins (build/drop/respond, guarded writer, looped
    // wait, catalog-ordered nesting) keep every other site silent.
    assert!(out.findings[0].message.contains("respond_json"));
    assert!(out.findings[1].message.contains("wait"));
    assert!(out.findings[2].message.contains("lock-order"));
    assert!(out.findings[3].message.contains("persist"));
}

#[test]
fn atomic_write_fixture_yields_exactly_the_seeded_findings() {
    let rel = "crates/campaign/src/atomic_fixture.rs";
    let out = analyze(&[fixture(rel, ATOMIC_WRITE)]);
    assert_eq!(
        findings_of(&out),
        vec![
            ("atomic-write", line_of(ATOMIC_WRITE, "SEED: raw-fs-write")),
            (
                "atomic-write",
                line_of(ATOMIC_WRITE, "SEED: raw-file-create")
            ),
        ],
        "{}",
        out.render_human(true)
    );

    // The same text inside the spool is the protocol's home turf.
    let owned = analyze(&[fixture("crates/campaign/src/spool.rs", ATOMIC_WRITE)]);
    assert!(
        !owned.findings.iter().any(|f| f.lint == "atomic-write"),
        "owner files are exempt:\n{}",
        owned.render_human(true)
    );
}

/// The syntactic engine must survive the tokenizer stress fixture:
/// every `fn` item recovered by name and in order, bodies well-formed
/// and non-overlapping, params intact, and the one real call visible
/// through `calls_in`.
#[test]
fn the_parser_round_trips_the_tokenizer_stress_fixture() {
    use blam_analyzer::syntax;
    let f = fixture("crates/netsim/src/tricks_fixture.rs", TOKENIZER_TRICKS);
    let decls = syntax::parse(&f.tokens);
    let names: Vec<&str> = decls.iter().map(|d| d.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "strings_are_not_code",
            "raw_strings_too",
            "chars_are_not_lifetimes",
            "escaped_chars_too",
            "the_one_real_violation",
        ],
    );
    let mut prev_end = 0usize;
    for d in &decls {
        assert!(
            d.parent.is_none() && !d.is_closure,
            "{} is top-level",
            d.name
        );
        let (start, end) = d.body;
        assert!(
            prev_end <= start && start < end && end <= f.tokens.len(),
            "body range of {} is ordered and in bounds",
            d.name
        );
        prev_end = end;
    }
    let tricky = decls
        .iter()
        .find(|d| d.name == "chars_are_not_lifetimes")
        .expect("parsed above");
    assert_eq!(tricky.params, ["x"]);
    let last = decls.last().expect("non-empty");
    let calls = syntax::calls_in(&f.tokens, last.body.0, last.body.1, &[]);
    assert!(
        calls
            .iter()
            .any(|c| c.callee == "now" && c.qual.as_deref() == Some("Instant")),
        "the wall-clock call must survive parsing: {calls:?}"
    );
}

/// Report order is part of the output contract: findings and
/// baselined sites sort by (file, line, lint) no matter what order
/// the walker hands files over in.
#[test]
fn findings_and_baselined_sites_sort_by_file_line_lint() {
    // netsim sorts after battery; pass it first.
    let out = analyze(&[
        fixture("crates/netsim/src/det_fixture.rs", DETERMINISM),
        fixture("crates/battery/src/unit_fixture.rs", UNIT_SAFETY),
    ]);
    let keys: Vec<(&str, u32, &str)> = out
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.lint))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "{}", out.render_human(true));
    assert_eq!(keys.len(), 5);
    assert!(keys[0].0.contains("battery"), "{keys:?}");

    // Baselined sites obey the same order.
    let mut baseline = Baseline::default();
    baseline.panic_hygiene.insert("lorawan".to_string(), 6);
    let out = analyze_files(
        &[
            fixture("crates/lorawan/src/z_panic.rs", PANIC_HYGIENE),
            fixture("crates/lorawan/src/a_panic.rs", PANIC_HYGIENE),
        ],
        &Config::default(),
        &baseline,
    );
    assert!(out.clean(), "{}", out.render_human(true));
    let keys: Vec<(&str, u32)> = out
        .baselined
        .iter()
        .map(|f| (f.file.as_str(), f.line))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
    assert_eq!(keys.len(), 6);
    assert!(keys[0].0.contains("a_panic"), "{keys:?}");
}

/// The SARIF log is consumed byte-for-byte by CI upload tooling;
/// regenerate `tests/golden/atomic_write.sarif` deliberately when the
/// shape changes (the test failure prints the fresh rendering).
#[test]
fn sarif_output_matches_the_golden_log() {
    let out = analyze(&[fixture(
        "crates/campaign/src/atomic_fixture.rs",
        ATOMIC_WRITE,
    )]);
    assert_eq!(out.render_sarif(), SARIF_GOLDEN);
}

/// Engine-swap pin: the syntactic engine must reproduce the
/// token-window engine's verdicts on the pre-existing fixture corpus
/// exactly — same lint, same file, same line, nothing added, nothing
/// lost. Lines are literal on purpose; if this test moves, the old
/// lints changed behavior.
#[test]
fn the_preexisting_fixture_corpus_pins_the_engine_swap() {
    let corpus: &[(&str, &str)] = &[
        ("crates/netsim/src/det_fixture.rs", DETERMINISM),
        ("crates/netsim/src/faults_fixture.rs", FAULTS_DETERMINISM),
        ("crates/lorawan/src/panic_fixture.rs", PANIC_HYGIENE),
        ("crates/battery/src/unit_fixture.rs", UNIT_SAFETY),
        ("crates/netsim/src/tel_fixture.rs", TELEMETRY_GUARD),
        ("crates/units/src/float_fixture.rs", FLOAT_EQ),
        ("crates/netsim/src/tricks_fixture.rs", TOKENIZER_TRICKS),
        ("crates/lora-phy/src/cache_fixture.rs", CACHE_ORDER),
        ("crates/netsim/src/store_fixture.rs", STORE_HYGIENE),
        ("crates/netsim/src/hot_paths_fixture.rs", HOT_PATHS),
        ("crates/campaign/src/daemon_fixture.rs", CAMPAIGN_DAEMON),
    ];
    let mut got: Vec<(String, u32, &str)> = Vec::new();
    for (rel, src) in corpus {
        let out = analyze(&[fixture(rel, src)]);
        got.extend(
            out.findings
                .iter()
                .map(|f| (f.file.clone(), f.line, f.lint)),
        );
    }
    let expected: Vec<(String, u32, &str)> = [
        ("crates/netsim/src/det_fixture.rs", 11, "determinism"),
        ("crates/netsim/src/det_fixture.rs", 28, "determinism"),
        ("crates/netsim/src/det_fixture.rs", 32, "determinism"),
        ("crates/netsim/src/faults_fixture.rs", 30, "determinism"),
        ("crates/lorawan/src/panic_fixture.rs", 5, "panic-hygiene"),
        ("crates/lorawan/src/panic_fixture.rs", 9, "panic-hygiene"),
        ("crates/lorawan/src/panic_fixture.rs", 14, "panic-hygiene"),
        ("crates/battery/src/unit_fixture.rs", 5, "unit-safety"),
        ("crates/battery/src/unit_fixture.rs", 9, "unit-safety"),
        ("crates/netsim/src/tel_fixture.rs", 18, "telemetry-guard"),
        ("crates/units/src/float_fixture.rs", 7, "float-eq"),
        ("crates/units/src/float_fixture.rs", 16, "pragma"),
        ("crates/units/src/float_fixture.rs", 17, "float-eq"),
        ("crates/netsim/src/tricks_fixture.rs", 28, "determinism"),
        ("crates/lora-phy/src/cache_fixture.rs", 19, "cache-order"),
        ("crates/lora-phy/src/cache_fixture.rs", 23, "cache-order"),
        ("crates/netsim/src/store_fixture.rs", 13, "store-hygiene"),
        ("crates/netsim/src/store_fixture.rs", 17, "store-hygiene"),
        ("crates/netsim/src/store_fixture.rs", 21, "store-hygiene"),
        ("crates/campaign/src/daemon_fixture.rs", 20, "panic-hygiene"),
    ]
    .iter()
    .map(|&(f, l, n)| (f.to_string(), l, n))
    .collect();
    assert_eq!(got, expected);
}

#[test]
fn fixtures_are_invisible_to_the_workspace_walk() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = walk::find_workspace_root(here).expect("workspace root above crates/analyzer");
    let files = walk::walk_workspace(&root, &Config::default().skip_dirs).expect("workspace walk");
    assert!(
        files.iter().all(|f| !f.rel.contains("fixtures")),
        "fixture files must never reach the lint battery"
    );
    assert!(
        files.iter().any(|f| f.rel == "crates/analyzer/src/lib.rs"),
        "the walk should see the analyzer's own sources"
    );
}
