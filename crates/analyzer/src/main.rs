//! `blam-analyze`: command-line front end for the workspace lint
//! battery. Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;

use blam_analyzer::{analyze_files, baseline::BASELINE_FILE, config, walk, Baseline, Config};

const USAGE: &str = "\
blam-analyze — static analysis for the lpwan-blam workspace

USAGE:
    blam-analyze [OPTIONS]

OPTIONS:
    --root <PATH>        Workspace root (default: discovered from cwd)
    --format <human|json> Output format (default: human)
    --lint <NAME>        Run only this lint (repeatable)
    --list-lints         Print the lint catalog and exit
    --update-baseline    Rewrite analyzer-baseline.toml with current
                         panic-hygiene counts (ratchet down)
    --verbose            Also list baselined panic-hygiene sites
    -h, --help           Show this help
";

const LINT_CATALOG: &[(&str, &str)] = &[
    (
        "determinism",
        "no thread_rng/Instant::now/SystemTime::now in sim-core crates; hash iteration must sort",
    ),
    (
        "cache-order",
        "cache/memo bindings with iterated state must use ordered or dense containers",
    ),
    (
        "store-hygiene",
        "NodeStore columns accessed only through accessors outside store.rs/nodes.rs",
    ),
    (
        "panic-hygiene",
        "unwrap()/expect(/panic! in library code, ratcheted by analyzer-baseline.toml",
    ),
    (
        "unit-safety",
        "public fns must not take unit-suffixed raw f64 params where a blam-units newtype exists",
    ),
    (
        "telemetry-guard",
        "every netsim emit( must follow an enabled()/telemetry_on() check in the same fn",
    ),
    ("float-eq", "no ==/!= against float literals outside tests"),
    (
        "pragma",
        "analyzer pragmas must name a known lint and carry a reason",
    ),
];

struct Args {
    root: Option<PathBuf>,
    json: bool,
    only: Vec<String>,
    list_lints: bool,
    update_baseline: bool,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        only: Vec::new(),
        list_lints: false,
        update_baseline: false,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().as_deref() {
                Some("human") => args.json = false,
                Some("json") => args.json = true,
                other => return Err(format!("--format must be `human` or `json`, got {other:?}")),
            },
            "--lint" => {
                let v = it.next().ok_or("--lint needs a lint name")?;
                if !config::LINT_NAMES.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown lint `{v}`; see --list-lints for the catalog"
                    ));
                }
                args.only.push(v);
            }
            "--list-lints" => args.list_lints = true,
            "--update-baseline" => args.update_baseline = true,
            "--verbose" => args.verbose = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`; try --help")),
        }
    }
    Ok(args)
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;
    if args.list_lints {
        for (name, what) in LINT_CATALOG {
            println!("{name:16} {what}");
        }
        return Ok(0);
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("reading current dir: {e}"))?;
            walk::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; use --root")?
        }
    };
    let cfg = Config {
        only: args.only,
        ..Config::default()
    };

    let files = walk::walk_workspace(&root, &cfg.skip_dirs)?;
    let mut baseline = Baseline::load(&root)?;
    let mut outcome = analyze_files(&files, &cfg, &baseline);

    if args.update_baseline {
        baseline = Baseline {
            panic_hygiene: outcome.panic_counts.clone(),
        };
        baseline.save(&root)?;
        eprintln!("blam-analyze: wrote {BASELINE_FILE}");
        outcome = analyze_files(&files, &cfg, &baseline);
    }

    if args.json {
        print!("{}", outcome.render_json());
    } else {
        print!("{}", outcome.render_human(args.verbose));
    }
    Ok(i32::from(!outcome.clean()))
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(err) => {
            eprintln!("blam-analyze: error: {err}");
            std::process::exit(2);
        }
    }
}
