//! `blam-analyze`: command-line front end for the workspace lint
//! battery. Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::io::Read as _;
use std::path::PathBuf;

use blam_analyzer::{analyze_files, baseline::BASELINE_FILE, config, walk, Baseline, Config};

const USAGE: &str = "\
blam-analyze — static analysis for the lpwan-blam workspace

USAGE:
    blam-analyze [OPTIONS]

OPTIONS:
    --root <PATH>        Workspace root (default: discovered from cwd)
    --format <human|json|sarif>
                         Output format (default: human)
    --lint <NAME>        Run only this lint (repeatable)
    --changed-only <FILE>...
                         Report findings only for the listed files; a
                         single `-` reads newline-separated paths from
                         stdin (the whole workspace is still analyzed,
                         so interprocedural lints see every caller)
    --list-lints         Print the lint catalog and exit
    --list-streams       Print the registered RNG stream catalog
                         (config defaults + [rng-streams] baseline
                         entries) and exit
    --update-baseline    Rewrite analyzer-baseline.toml with current
                         panic-hygiene counts (ratchet down); the
                         [rng-streams] registry is preserved
    --verbose            Also list baselined panic-hygiene sites
    -h, --help           Show this help
";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    root: Option<PathBuf>,
    format: Format,
    only: Vec<String>,
    changed_only: Option<Vec<String>>,
    list_lints: bool,
    list_streams: bool,
    update_baseline: bool,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Human,
        only: Vec::new(),
        changed_only: None,
        list_lints: false,
        list_streams: false,
        update_baseline: false,
        verbose: false,
    };
    let mut argv = std::env::args().skip(1).peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                let v = argv.next().ok_or("--root needs a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => match argv.next().as_deref() {
                Some("human") => args.format = Format::Human,
                Some("json") => args.format = Format::Json,
                Some("sarif") => args.format = Format::Sarif,
                other => {
                    return Err(format!(
                        "--format must be `human`, `json` or `sarif`, got {other:?}"
                    ))
                }
            },
            "--lint" => {
                let v = argv.next().ok_or("--lint needs a lint name")?;
                if !config::LINT_NAMES.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown lint `{v}`; see --list-lints for the catalog"
                    ));
                }
                args.only.push(v);
            }
            "--changed-only" => {
                let changed = args.changed_only.get_or_insert_with(Vec::new);
                // Consume every following non-flag argument as a path.
                let mut any = false;
                while let Some(next) = argv.peek() {
                    if next.starts_with("--") || (next.len() > 1 && next.starts_with('-')) {
                        break;
                    }
                    let path = argv.next().unwrap_or_default();
                    any = true;
                    if path == "-" {
                        let mut text = String::new();
                        std::io::stdin()
                            .read_to_string(&mut text)
                            .map_err(|e| format!("reading file list from stdin: {e}"))?;
                        changed.extend(
                            text.lines()
                                .map(str::trim)
                                .filter(|l| !l.is_empty())
                                .map(String::from),
                        );
                    } else {
                        changed.push(path);
                    }
                }
                if !any {
                    return Err("--changed-only needs file paths (or `-` for stdin)".to_string());
                }
            }
            "--list-lints" => args.list_lints = true,
            "--list-streams" => args.list_streams = true,
            "--update-baseline" => args.update_baseline = true,
            "--verbose" => args.verbose = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`; try --help")),
        }
    }
    Ok(args)
}

fn workspace_root(args_root: Option<PathBuf>) -> Result<PathBuf, String> {
    match args_root {
        Some(r) => Ok(r),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("reading current dir: {e}"))?;
            walk::find_workspace_root(&cwd).ok_or_else(|| {
                "no workspace root found above the current directory; use --root".to_string()
            })
        }
    }
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;
    if args.list_lints {
        for (name, what) in config::LINT_CATALOG {
            println!("{name:16} {what}");
        }
        return Ok(0);
    }
    if args.list_streams {
        let root = workspace_root(args.root)?;
        let baseline = Baseline::load(&root)?;
        let cfg = Config::default();
        let mut catalog: std::collections::BTreeMap<String, String> =
            cfg.rng_stream_catalog.iter().cloned().collect();
        catalog.extend(baseline.rng_streams);
        for (name, purpose) in &catalog {
            println!("{name:16} {purpose}");
        }
        return Ok(0);
    }

    let root = workspace_root(args.root)?;
    let cfg = Config {
        only: args.only,
        ..Config::default()
    };

    let files = walk::walk_workspace(&root, &cfg.skip_dirs)?;
    let mut baseline = Baseline::load(&root)?;
    let mut outcome = analyze_files(&files, &cfg, &baseline);

    if args.update_baseline {
        baseline = Baseline {
            panic_hygiene: outcome.panic_counts.clone(),
            rng_streams: baseline.rng_streams,
        };
        baseline.save(&root)?;
        eprintln!("blam-analyze: wrote {BASELINE_FILE}");
        outcome = analyze_files(&files, &cfg, &baseline);
    }

    if let Some(changed) = &args.changed_only {
        outcome.retain_files(changed);
    }

    match args.format {
        Format::Json => print!("{}", outcome.render_json()),
        Format::Sarif => print!("{}", outcome.render_sarif()),
        Format::Human => print!("{}", outcome.render_human(args.verbose)),
    }
    Ok(i32::from(!outcome.clean()))
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(err) => {
            eprintln!("blam-analyze: error: {err}");
            std::process::exit(2);
        }
    }
}
