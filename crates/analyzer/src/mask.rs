//! Marks the token ranges that belong to test-only code, so lints can
//! hold library code to a stricter standard than its tests.
//!
//! Covered: any item annotated `#[test]`, `#[cfg(test)]` (including
//! `all(test, …)`/`any(test, …)` combinations), and everything inside
//! such an item's braces — the common `#[cfg(test)] mod tests { … }`
//! masks the whole module. `#[cfg(not(test))]` is production code and
//! stays unmasked; `#[cfg_attr(test, …)]` only conditions an
//! attribute, so its item stays unmasked too.

use crate::tokenizer::{Token, TokenKind};

/// Returns one flag per token: `true` means the token is inside
/// test-only code.
#[must_use]
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let attr_end = match skip_attribute(tokens, i) {
                Some(end) => end,
                None => break, // unterminated attribute at EOF
            };
            if attribute_is_test(&tokens[i..=attr_end]) {
                let item_end = end_of_item(tokens, attr_end + 1);
                for flag in mask.iter_mut().take(item_end + 1).skip(i) {
                    *flag = true;
                }
                i = item_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// With `tokens[start]` the `#` of an attribute, returns the index of
/// its closing `]`.
fn skip_attribute(tokens: &[Token], start: usize) -> Option<usize> {
    let mut depth = 0u32;
    for (off, tok) in tokens.iter().enumerate().skip(start + 1) {
        if tok.is_punct("[") {
            depth += 1;
        } else if tok.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return Some(off);
            }
        }
    }
    None
}

/// Decides whether an attribute token slice (`#` through `]`) gates
/// test-only code.
fn attribute_is_test(attr: &[Token]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    match idents.first() {
        // #[test] and #[tokio::test]-style direct markers.
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        // #[cfg_attr(test, …)] conditions the *attribute*, not the item.
        _ => false,
    }
}

/// With `start` pointing just past an item's attributes, returns the
/// index of the item's last token: the matching `}` of its first
/// brace block, or the terminating `;` for braceless items.
fn end_of_item(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    // Skip over any further attributes stacked on the item.
    while i < tokens.len()
        && tokens[i].is_punct("#")
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
    {
        match skip_attribute(tokens, i) {
            Some(end) => i = end + 1,
            None => return tokens.len().saturating_sub(1),
        }
    }
    let mut depth = 0u32;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        } else if t.is_punct(";") && depth == 0 {
            return i;
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn masked_idents(src: &str) -> Vec<String> {
        let tokens = tokenize(src);
        let sig: Vec<Token> = tokens
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect();
        let mask = test_mask(&sig);
        sig.iter()
            .zip(&mask)
            .filter(|(t, &m)| m && t.kind == TokenKind::Ident)
            .map(|(t, _)| t.text.clone())
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_fully_masked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn helper() { x.unwrap(); }\n}";
        let masked = masked_idents(src);
        assert!(masked.contains(&"unwrap".to_string()));
        assert!(!masked.contains(&"lib".to_string()));
    }

    #[test]
    fn test_attribute_masks_one_fn() {
        let src = "#[test]\nfn a() { inner(); }\nfn b() { outer(); }";
        let masked = masked_idents(src);
        assert!(masked.contains(&"inner".to_string()));
        assert!(!masked.contains(&"outer".to_string()));
    }

    #[test]
    fn cfg_not_test_stays_unmasked() {
        let src = "#[cfg(not(test))]\nfn prod() { body(); }";
        assert!(masked_idents(src).is_empty());
    }

    #[test]
    fn cfg_all_test_is_masked() {
        let src = "#[cfg(all(test, feature = \"slow\"))]\nfn t() { body(); }";
        assert!(masked_idents(src).contains(&"body".to_string()));
    }

    #[test]
    fn cfg_attr_test_is_not_masked() {
        let src = "#[cfg_attr(test, derive(Debug))]\nstruct S { f: u8 }\nfn x() { go(); }";
        assert!(masked_idents(src).is_empty());
    }

    #[test]
    fn stacked_attributes_mask_through_the_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn t() { body(); }\nfn p() { keep(); }";
        let masked = masked_idents(src);
        assert!(masked.contains(&"body".to_string()));
        assert!(!masked.contains(&"keep".to_string()));
    }

    #[test]
    fn braceless_item_masks_to_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn p() { keep(); }";
        let masked = masked_idents(src);
        assert!(masked.contains(&"HashMap".to_string()));
        assert!(!masked.contains(&"keep".to_string()));
    }
}
