//! The repo-reviewed analyzer state file (`analyzer-baseline.toml`):
//! the panic-hygiene ratchet and the RNG stream-name registry.
//!
//! `[panic-hygiene]` records, per crate, how many `unwrap()` /
//! `expect(` / `panic!` sites its library code is *currently*
//! allowed. Counts may only go down: a crate over its budget fails
//! the gate; a crate under it is reported so the budget can be
//! tightened (via `blam-analyze --update-baseline`).
//!
//! `[rng-streams]` registers stream names beyond the compiled-in
//! catalog as `name = "purpose"` pairs; the rng-streams lint merges
//! the two, so adding a stream is a reviewed one-line diff here
//! instead of an analyzer release.
//!
//! The format is a deliberately tiny TOML subset parsed by hand so
//! the analyzer stays dependency-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// File name of the baseline at the workspace root.
pub const BASELINE_FILE: &str = "analyzer-baseline.toml";

/// Which table a parsed line belongs to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    PanicHygiene,
    RngStreams,
    /// An unrecognized table, ignored for forward compatibility.
    Unknown,
}

/// Parsed baseline state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Allowed panic-hygiene sites per crate (absent crate = 0).
    pub panic_hygiene: BTreeMap<String, u32>,
    /// Registered RNG stream names beyond the compiled-in catalog,
    /// as `name → purpose`.
    pub rng_streams: BTreeMap<String, String>,
}

impl Baseline {
    /// Budget for `crate_name` (0 when absent).
    #[must_use]
    pub fn budget(&self, crate_name: &str) -> u32 {
        self.panic_hygiene.get(crate_name).copied().unwrap_or(0)
    }

    /// Loads the baseline from `root`. A missing file is an empty
    /// baseline (budget 0 everywhere), not an error.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unparsable line, or of an
    /// I/O failure other than the file not existing.
    pub fn load(root: &Path) -> Result<Baseline, String> {
        let path = root.join(BASELINE_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Baseline::default());
            }
            Err(e) => return Err(format!("reading {}: {e}", path.display())),
        };
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the baseline text.
    ///
    /// # Errors
    ///
    /// Returns a `line N: …` description of the first unparsable line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut baseline = Baseline::default();
        let mut section: Option<Section> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let n = i + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = Some(match name.trim() {
                    "panic-hygiene" => Section::PanicHygiene,
                    "rng-streams" => Section::RngStreams,
                    _ => Section::Unknown,
                });
                continue;
            }
            let Some(section) = section else {
                return Err(format!("line {n}: entry outside a table"));
            };
            if section == Section::Unknown {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {n}: expected `key = value`"));
            };
            let key = key.trim().trim_matches('"').to_string();
            if key.is_empty() {
                return Err(format!("line {n}: empty key"));
            }
            if section == Section::PanicHygiene {
                let count: u32 = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("line {n}: count is not a non-negative integer"))?;
                baseline.panic_hygiene.insert(key, count);
            } else {
                let purpose = value
                    .trim()
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| format!("line {n}: stream purpose must be a quoted string"))?;
                baseline.rng_streams.insert(key, purpose.to_string());
            }
        }
        Ok(baseline)
    }

    /// Renders the baseline back to its on-disk form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic-hygiene ratchet for `blam-analyze` (crates/analyzer).\n\
             #\n\
             # Each entry is the number of `unwrap()` / `expect(` / `panic!` sites a\n\
             # crate's non-test library code may still contain. Counts only ratchet\n\
             # DOWN: fix a site, then run `blam-analyze --update-baseline` to bank\n\
             # the improvement. Raising a count requires justifying the regression\n\
             # in review. Crates not listed have a budget of zero.\n\n\
             [panic-hygiene]\n",
        );
        for (name, count) in &self.panic_hygiene {
            let _ = writeln!(out, "{name} = {count}");
        }
        if !self.rng_streams.is_empty() {
            out.push_str(
                "\n# RNG stream-name registry for the rng-streams lint, merged with the\n\
                 # compiled-in catalog (`blam-analyze --list-streams` prints the union).\n\
                 # The seeder hashes each name into its ChaCha key, so the partition\n\
                 # below IS the statistical independence structure of the simulation:\n\
                 # DESIGN.md \u{a7}7 (fault streams) and \u{a7}9 (per-cell `stream_indexed`\n\
                 # sharding) rely on these names staying disjoint. Register new streams\n\
                 # here as `name = \"purpose\"`; never reuse a name for a second draw.\n\n\
                 [rng-streams]\n",
            );
            for (name, purpose) in &self.rng_streams {
                let _ = writeln!(out, "{name} = \"{purpose}\"");
            }
        }
        out
    }

    /// Writes the baseline to `root`, dropping zero-count entries.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O failure.
    pub fn save(&self, root: &Path) -> Result<(), String> {
        let trimmed = Baseline {
            panic_hygiene: self
                .panic_hygiene
                .iter()
                .filter(|&(_, &n)| n > 0)
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            rng_streams: self.rng_streams.clone(),
        };
        write_string_atomic(&root.join(BASELINE_FILE), &trimmed.render())
    }
}

/// Atomic text write: temp file in the same directory, then rename.
/// Mirrors the campaign spool's protocol (the analyzer cannot depend
/// on `blam-campaign` without dragging the service stack into every
/// lint run). The name is load-bearing: it is an atomic-write lint
/// owner function, so the raw `fs::write` below is the protocol, not
/// a violation.
fn write_string_atomic(path: &Path, text: &str) -> Result<(), String> {
    let tmp = path.with_extension("toml.tmp");
    fs::write(&tmp, text).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    fs::rename(&tmp, path).map_err(|e| format!("renaming {}: {e}", tmp.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.panic_hygiene.insert("netsim".to_string(), 3);
        b.panic_hygiene.insert("telemetry".to_string(), 1);
        b.rng_streams
            .insert("debug-probe".to_string(), "ad-hoc probe draws".to_string());
        let parsed = Baseline::parse(&b.render()).expect("render output parses");
        assert_eq!(parsed, b);
    }

    #[test]
    fn missing_crate_has_zero_budget() {
        let b = Baseline::parse("[panic-hygiene]\nnetsim = 2\n").expect("parses");
        assert_eq!(b.budget("netsim"), 2);
        assert_eq!(b.budget("des"), 0);
    }

    #[test]
    fn quoted_keys_and_comments_parse() {
        let text = "# comment\n\n[panic-hygiene]\n\"lora-phy\" = 4\n";
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.budget("lora-phy"), 4);
    }

    #[test]
    fn rng_stream_entries_parse_and_require_quotes() {
        let text = "[rng-streams]\nprobe = \"ad-hoc probe draws\"\n";
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(
            b.rng_streams.get("probe").map(String::as_str),
            Some("ad-hoc probe draws")
        );
        let err = Baseline::parse("[rng-streams]\nprobe = 3\n").expect_err("rejects");
        assert!(err.contains("quoted"), "{err}");
    }

    #[test]
    fn bad_lines_are_rejected_with_line_numbers() {
        let err = Baseline::parse("[panic-hygiene]\nnetsim: 2\n").expect_err("rejects");
        assert!(err.contains("line 2"), "{err}");
        let err = Baseline::parse("x = 1\n").expect_err("rejects");
        assert!(err.contains("line 1"), "{err}");
        let err = Baseline::parse("[panic-hygiene]\nnetsim = -1\n").expect_err("rejects");
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn unknown_tables_are_tolerated_for_forward_compat() {
        let text = "[future-lint]\nfoo = 1\n[panic-hygiene]\nnetsim = 1\n";
        let b = Baseline::parse(text);
        // Entries in unknown tables are an error only when no table
        // header preceded them; a future table parses but is ignored.
        assert!(b.is_ok());
        assert_eq!(b.expect("checked").budget("netsim"), 1);
    }
}
