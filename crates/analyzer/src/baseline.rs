//! The panic-hygiene ratchet baseline (`analyzer-baseline.toml`).
//!
//! The baseline records, per crate, how many `unwrap()` / `expect(` /
//! `panic!` sites its library code is *currently* allowed. Counts may
//! only go down: a crate over its budget fails the gate; a crate
//! under it is reported so the budget can be tightened (via
//! `blam-analyze --update-baseline`). The format is a deliberately
//! tiny TOML subset — one `[panic-hygiene]` table of `crate = count`
//! pairs — parsed by hand so the analyzer stays dependency-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// File name of the baseline at the workspace root.
pub const BASELINE_FILE: &str = "analyzer-baseline.toml";

/// Parsed baseline budgets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Allowed panic-hygiene sites per crate (absent crate = 0).
    pub panic_hygiene: BTreeMap<String, u32>,
}

impl Baseline {
    /// Budget for `crate_name` (0 when absent).
    #[must_use]
    pub fn budget(&self, crate_name: &str) -> u32 {
        self.panic_hygiene.get(crate_name).copied().unwrap_or(0)
    }

    /// Loads the baseline from `root`. A missing file is an empty
    /// baseline (budget 0 everywhere), not an error.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unparsable line, or of an
    /// I/O failure other than the file not existing.
    pub fn load(root: &Path) -> Result<Baseline, String> {
        let path = root.join(BASELINE_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Baseline::default());
            }
            Err(e) => return Err(format!("reading {}: {e}", path.display())),
        };
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the baseline text.
    ///
    /// # Errors
    ///
    /// Returns a `line N: …` description of the first unparsable line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut baseline = Baseline::default();
        // None: before any table header. Some(false): inside an
        // unrecognized table (ignored for forward compatibility).
        let mut section: Option<bool> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let n = i + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = Some(name.trim() == "panic-hygiene");
                continue;
            }
            match section {
                None => return Err(format!("line {n}: entry outside a table")),
                Some(false) => continue,
                Some(true) => {}
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {n}: expected `crate = count`"));
            };
            let key = key.trim().trim_matches('"').to_string();
            let count: u32 = value
                .trim()
                .parse()
                .map_err(|_| format!("line {n}: count is not a non-negative integer"))?;
            if key.is_empty() {
                return Err(format!("line {n}: empty crate name"));
            }
            baseline.panic_hygiene.insert(key, count);
        }
        Ok(baseline)
    }

    /// Renders the baseline back to its on-disk form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic-hygiene ratchet for `blam-analyze` (crates/analyzer).\n\
             #\n\
             # Each entry is the number of `unwrap()` / `expect(` / `panic!` sites a\n\
             # crate's non-test library code may still contain. Counts only ratchet\n\
             # DOWN: fix a site, then run `blam-analyze --update-baseline` to bank\n\
             # the improvement. Raising a count requires justifying the regression\n\
             # in review. Crates not listed have a budget of zero.\n\n\
             [panic-hygiene]\n",
        );
        for (name, count) in &self.panic_hygiene {
            let _ = writeln!(out, "{name} = {count}");
        }
        out
    }

    /// Writes the baseline to `root`, dropping zero-count entries.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O failure.
    pub fn save(&self, root: &Path) -> Result<(), String> {
        let trimmed = Baseline {
            panic_hygiene: self
                .panic_hygiene
                .iter()
                .filter(|&(_, &n)| n > 0)
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
        };
        let path = root.join(BASELINE_FILE);
        fs::write(&path, trimmed.render()).map_err(|e| format!("writing {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.panic_hygiene.insert("netsim".to_string(), 3);
        b.panic_hygiene.insert("telemetry".to_string(), 1);
        let parsed = Baseline::parse(&b.render()).expect("render output parses");
        assert_eq!(parsed, b);
    }

    #[test]
    fn missing_crate_has_zero_budget() {
        let b = Baseline::parse("[panic-hygiene]\nnetsim = 2\n").expect("parses");
        assert_eq!(b.budget("netsim"), 2);
        assert_eq!(b.budget("des"), 0);
    }

    #[test]
    fn quoted_keys_and_comments_parse() {
        let text = "# comment\n\n[panic-hygiene]\n\"lora-phy\" = 4\n";
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.budget("lora-phy"), 4);
    }

    #[test]
    fn bad_lines_are_rejected_with_line_numbers() {
        let err = Baseline::parse("[panic-hygiene]\nnetsim: 2\n").expect_err("rejects");
        assert!(err.contains("line 2"), "{err}");
        let err = Baseline::parse("x = 1\n").expect_err("rejects");
        assert!(err.contains("line 1"), "{err}");
        let err = Baseline::parse("[panic-hygiene]\nnetsim = -1\n").expect_err("rejects");
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn unknown_tables_are_tolerated_for_forward_compat() {
        let text = "[future-lint]\nfoo = 1\n[panic-hygiene]\nnetsim = 1\n";
        let b = Baseline::parse(text);
        // Entries in unknown tables are an error only when no table
        // header preceded them; a future table parses but is ignored.
        assert!(b.is_ok());
        assert_eq!(b.expect("checked").budget("netsim"), 1);
    }
}
