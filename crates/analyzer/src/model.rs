//! The crate-wide semantic model the v2 lints share: every function
//! in every file, the calls each one makes, and fixpoint summaries
//! over the call graph (telemetry guards, blocking sinks, lock
//! acquisitions).
//!
//! Resolution is name-based with two sharpeners — a `Type::name`
//! qualifier matches `impl Type` owners, and same-file declarations
//! shadow same-named ones elsewhere — which is exactly enough for a
//! single workspace with house naming conventions. Summaries
//! over-approximate (a function *may* lock / *may* block), so they
//! can only widen what the lints see, never hide a direct finding.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::syntax::{self, Call, FnDecl};
use crate::walk::SourceFile;

/// Identifies one declaration: `(file index, declaration index)`.
pub type DeclId = (usize, usize);

/// The workspace-wide function index, call graph, and summaries.
pub struct Model {
    /// Parsed declarations, per file (same order as the input slice).
    pub decls: Vec<Vec<FnDecl>>,
    /// Calls made from each declaration's *own* scope (child closure
    /// and nested-fn bodies excluded), per file, per declaration.
    pub calls: Vec<Vec<Vec<Call>>>,
    /// Function names that transitively establish a telemetry guard:
    /// the configured guard names plus every function whose body
    /// calls one of them (`emit` itself excluded).
    pub guard_fns: BTreeSet<String>,
    /// Function names that transitively perform blocking I/O, mapped
    /// to a human-readable "via" description of the underlying sink.
    pub sink_fns: BTreeMap<String, String>,
    /// Mutex lock classes each function name transitively acquires.
    pub lock_summary: BTreeMap<String, BTreeSet<String>>,
    /// Known `MutexGuard`-returning helpers, by declaration, with the
    /// lock class they acquire.
    pub lock_helpers: BTreeMap<DeclId, String>,
    /// Callers of each declaration: `(caller decl, caller call idx)`.
    pub callers: BTreeMap<DeclId, Vec<(DeclId, usize)>>,
    index: BTreeMap<String, Vec<DeclId>>,
}

/// The display name of a lock, from the receiver path of a `.lock()`
/// call: the last two path segments (`registry.state.lock()` →
/// `"registry.state"`, `writer.lock()` → `"writer"`).
#[must_use]
pub fn lock_class(recv: &[String]) -> String {
    let tail = &recv[recv.len().saturating_sub(2)..];
    if tail.is_empty() {
        "lock".to_string()
    } else {
        tail.join(".")
    }
}

impl Model {
    /// Parses every file and computes all summaries.
    #[must_use]
    pub fn build(files: &[SourceFile], cfg: &Config) -> Self {
        let mut decls = Vec::with_capacity(files.len());
        let mut calls = Vec::with_capacity(files.len());
        let mut index: BTreeMap<String, Vec<DeclId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            let file_decls = syntax::parse(&file.tokens);
            let mut file_calls = Vec::with_capacity(file_decls.len());
            for (di, d) in file_decls.iter().enumerate() {
                let children: Vec<(usize, usize)> = file_decls
                    .iter()
                    .filter(|c| c.parent == Some(di))
                    .map(|c| (c.body.0, c.body.1))
                    .collect();
                file_calls.push(syntax::calls_in(
                    &file.tokens,
                    d.body.0,
                    d.body.1,
                    &children,
                ));
                index.entry(d.name.clone()).or_default().push((fi, di));
            }
            decls.push(file_decls);
            calls.push(file_calls);
        }

        let mut model = Model {
            decls,
            calls,
            guard_fns: BTreeSet::new(),
            sink_fns: BTreeMap::new(),
            lock_summary: BTreeMap::new(),
            lock_helpers: BTreeMap::new(),
            callers: BTreeMap::new(),
            index,
        };
        model.build_callers();
        model.build_guard_fns(cfg);
        model.build_lock_helpers(files);
        model.build_sink_fns(cfg);
        model.build_lock_summary(cfg);
        model
    }

    /// All declarations named `name`.
    #[must_use]
    pub fn decls_named(&self, name: &str) -> &[DeclId] {
        self.index.get(name).map_or(&[], Vec::as_slice)
    }

    /// Declarations a call may reach: same-named declarations,
    /// narrowed by `Type::` qualifier when it matches an `impl` owner
    /// and by same-file preference otherwise.
    #[must_use]
    pub fn resolve(&self, from_file: usize, call: &Call) -> Vec<DeclId> {
        let all = self.decls_named(&call.callee);
        if let Some(q) = &call.qual {
            let owned: Vec<DeclId> = all
                .iter()
                .copied()
                .filter(|&(fi, di)| self.decls[fi][di].owner.as_deref() == Some(q.as_str()))
                .collect();
            if !owned.is_empty() {
                return owned;
            }
        }
        let local: Vec<DeclId> = all
            .iter()
            .copied()
            .filter(|&(fi, _)| fi == from_file)
            .collect();
        if local.is_empty() {
            all.to_vec()
        } else {
            local
        }
    }

    /// The innermost declaration whose body contains token `tok`.
    #[must_use]
    pub fn decl_at(&self, fi: usize, tok: usize) -> Option<usize> {
        self.decls
            .get(fi)?
            .iter()
            .enumerate()
            .filter(|(_, d)| d.body.0 <= tok && tok < d.body.1)
            .min_by_key(|(_, d)| d.body.1 - d.body.0)
            .map(|(di, _)| di)
    }

    /// Names of the declarations enclosing token `tok`, innermost
    /// last (for owner-function exemptions).
    #[must_use]
    pub fn enclosing_fn_names(&self, fi: usize, tok: usize) -> Vec<&str> {
        let mut names = Vec::new();
        let mut at = self.decl_at(fi, tok);
        while let Some(di) = at {
            names.push(self.decls[fi][di].name.as_str());
            at = self.decls[fi][di].parent;
        }
        names.reverse();
        names
    }

    /// Calls from a declaration and all its descendant *closures*
    /// (not nested `fn` items, which don't run when the parent does),
    /// in token order.
    #[must_use]
    pub fn subtree_calls(&self, fi: usize, di: usize) -> Vec<&Call> {
        let mut out: Vec<&Call> = Vec::new();
        let mut stack = vec![di];
        while let Some(d) = stack.pop() {
            out.extend(self.calls[fi][d].iter());
            for (ci, c) in self.decls[fi].iter().enumerate() {
                if c.parent == Some(d) && c.is_closure {
                    stack.push(ci);
                }
            }
        }
        out.sort_by_key(|c| c.tok);
        out
    }

    /// Body ranges of nested `fn` items (not closures) anywhere under
    /// declaration `di` — token spans a linear body walk must skip.
    #[must_use]
    pub fn nested_fn_ranges(&self, fi: usize, di: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut stack = vec![di];
        while let Some(d) = stack.pop() {
            for (ci, c) in self.decls[fi].iter().enumerate() {
                if c.parent == Some(d) {
                    if c.is_closure {
                        stack.push(ci);
                    } else {
                        out.push((c.body.0, c.body.1));
                    }
                }
            }
        }
        out
    }

    /// The lock class acquired by a bare call, when it resolves to a
    /// known `MutexGuard`-returning helper.
    #[must_use]
    pub fn helper_class(&self, from_file: usize, call: &Call) -> Option<&str> {
        if call.method {
            return None;
        }
        self.resolve(from_file, call)
            .into_iter()
            .find_map(|id| self.lock_helpers.get(&id).map(String::as_str))
    }

    fn build_callers(&mut self) {
        let mut callers: BTreeMap<DeclId, Vec<(DeclId, usize)>> = BTreeMap::new();
        for fi in 0..self.decls.len() {
            for di in 0..self.decls[fi].len() {
                for (ci, call) in self.calls[fi][di].iter().enumerate() {
                    for target in self.resolve(fi, call) {
                        callers.entry(target).or_default().push(((fi, di), ci));
                    }
                }
            }
        }
        self.callers = callers;
    }

    /// Guard-name fixpoint: seed with the configured guard functions,
    /// then add every function whose own scope calls a known guard.
    /// `emit` never becomes a guard (an emit wrapping an emit must
    /// not mask the check), and stoplisted names never enter the map
    /// (a wrapper named `new` would make every constructor a guard).
    fn build_guard_fns(&mut self, cfg: &Config) {
        let mut names: BTreeSet<String> = cfg.guard_fns.iter().cloned().collect();
        loop {
            let mut changed = false;
            for (fi, file_decls) in self.decls.iter().enumerate() {
                for (di, d) in file_decls.iter().enumerate() {
                    if d.name == "emit"
                        || names.contains(&d.name)
                        || cfg.transitive_stoplist.contains(&d.name)
                    {
                        continue;
                    }
                    if self.calls[fi][di].iter().any(|c| names.contains(&c.callee)) {
                        names.insert(d.name.clone());
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.guard_fns = names;
    }

    /// A lock helper is a non-closure fn whose signature mentions
    /// `MutexGuard`; its class comes from the first `.lock()` call in
    /// its body.
    fn build_lock_helpers(&mut self, files: &[SourceFile]) {
        for (fi, file_decls) in self.decls.iter().enumerate() {
            for (di, d) in file_decls.iter().enumerate() {
                if d.is_closure {
                    continue;
                }
                let sig = &files[fi].tokens[d.fn_tok..d.body.0];
                if !sig.iter().any(|t| t.is_ident("MutexGuard")) {
                    continue;
                }
                let class = self.calls[fi][di]
                    .iter()
                    .find(|c| c.callee == "lock" && c.method)
                    .map(|c| lock_class(&c.recv));
                if let Some(class) = class {
                    self.lock_helpers.insert((fi, di), class);
                }
            }
        }
    }

    /// Sink-name fixpoint: functions that directly hit a blocking
    /// sink, then everything that calls them, transitively. Stoplisted
    /// names never become sinks — a `Drop` impl that flushes must not
    /// turn every `drop(x)` in the workspace into blocking I/O.
    fn build_sink_fns(&mut self, cfg: &Config) {
        let mut sinks: BTreeMap<String, String> = BTreeMap::new();
        for (fi, file_decls) in self.decls.iter().enumerate() {
            for (di, d) in file_decls.iter().enumerate() {
                if sinks.contains_key(&d.name) || cfg.transitive_stoplist.contains(&d.name) {
                    continue;
                }
                if let Some(desc) = self.calls[fi][di].iter().find_map(|c| direct_sink(c, cfg)) {
                    sinks.insert(d.name.clone(), desc);
                }
            }
        }
        loop {
            let mut changed = false;
            for (fi, file_decls) in self.decls.iter().enumerate() {
                for (di, d) in file_decls.iter().enumerate() {
                    if sinks.contains_key(&d.name) || cfg.transitive_stoplist.contains(&d.name) {
                        continue;
                    }
                    let via = self.calls[fi][di]
                        .iter()
                        .find(|c| sinks.contains_key(&c.callee))
                        .map(|c| format!("via `{}`", c.callee));
                    if let Some(via) = via {
                        sinks.insert(d.name.clone(), via);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.sink_fns = sinks;
    }

    /// Lock-class fixpoint: classes each function name acquires,
    /// directly (own scope + closures) or through callees. Stoplisted
    /// names stay out of the map in both directions: a helper named
    /// `lock` must not hand its class to every `.lock()` caller, and
    /// `SharedBuffer::drain` must not make `Vec::drain` an
    /// acquisition.
    fn build_lock_summary(&mut self, cfg: &Config) {
        let mut summary: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (fi, file_decls) in self.decls.iter().enumerate() {
            for (di, d) in file_decls.iter().enumerate() {
                if cfg.transitive_stoplist.contains(&d.name) {
                    continue;
                }
                let mut classes = BTreeSet::new();
                for call in self.subtree_calls(fi, di) {
                    if call.callee == "lock" && call.method {
                        classes.insert(lock_class(&call.recv));
                    } else if let Some(class) = self.helper_class(fi, call) {
                        classes.insert(class.to_string());
                    }
                }
                if !classes.is_empty() {
                    summary.entry(d.name.clone()).or_default().extend(classes);
                }
            }
        }
        loop {
            let mut changed = false;
            for (fi, file_decls) in self.decls.iter().enumerate() {
                for (di, d) in file_decls.iter().enumerate() {
                    if cfg.transitive_stoplist.contains(&d.name) {
                        continue;
                    }
                    let mut add = BTreeSet::new();
                    for call in &self.calls[fi][di] {
                        if let Some(classes) = summary.get(&call.callee) {
                            add.extend(classes.iter().cloned());
                        }
                    }
                    if add.is_empty() {
                        continue;
                    }
                    let own = summary.entry(d.name.clone()).or_default();
                    let before = own.len();
                    own.extend(add);
                    changed |= own.len() != before;
                }
            }
            if !changed {
                break;
            }
        }
        self.lock_summary = summary;
    }
}

/// Describes a call that is itself a blocking sink: a configured
/// blocking method, or a `fs::`/`File::`/`TcpStream::` path call.
#[must_use]
pub fn direct_sink(call: &Call, cfg: &Config) -> Option<String> {
    if call.method && cfg.blocking_sink_methods.iter().any(|m| *m == call.callee) {
        return Some(format!("`.{}(`", call.callee));
    }
    if !call.method {
        if let Some(q) = &call.qual {
            if cfg
                .blocking_sink_paths
                .iter()
                .any(|(pq, pn)| pq == q && pn == &call.callee)
            {
                return Some(format!("`{}::{}`", q, call.callee));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        let (crate_name, kind) = crate::walk::classify(rel);
        SourceFile::from_source(rel, &crate_name, kind, src.to_string())
    }

    #[test]
    fn guard_fixpoint_reaches_one_call_away() {
        let files = [file(
            "crates/netsim/src/a.rs",
            "fn tracing(&self) -> bool { self.opts.enabled() }\n\
             fn emit(&self, e: u8) { }\n\
             fn unrelated(&self) { }",
        )];
        let model = Model::build(&files, &Config::default());
        assert!(model.guard_fns.contains("tracing"));
        assert!(model.guard_fns.contains("enabled"));
        assert!(!model.guard_fns.contains("emit"));
        assert!(!model.guard_fns.contains("unrelated"));
    }

    #[test]
    fn sink_fixpoint_propagates_through_helpers() {
        let files = [file(
            "crates/campaign/src/a.rs",
            "fn checkpoint(path: &Path, text: &str) { std::fs::write(path, text).ok(); }\n\
             fn save(path: &Path) { checkpoint(path, \"x\"); }\n\
             fn pure(v: u8) -> u8 { v + 1 }",
        )];
        let model = Model::build(&files, &Config::default());
        assert!(model.sink_fns.contains_key("checkpoint"));
        assert_eq!(
            model.sink_fns.get("save").map(String::as_str),
            Some("via `checkpoint`")
        );
        assert!(!model.sink_fns.contains_key("pure"));
    }

    #[test]
    fn lock_helpers_and_summaries_carry_classes() {
        let files = [file(
            "crates/campaign/src/a.rs",
            "fn lock(registry: &Registry) -> MutexGuard<'_, State> {\n\
                 registry.state.lock().unwrap_or_else(PoisonError::into_inner)\n\
             }\n\
             fn closes(&self) { let g = self.shared.state.lock(); }\n\
             fn indirect(registry: &Registry) { let g = lock(registry); }",
        )];
        let model = Model::build(&files, &Config::default());
        assert_eq!(
            model.lock_helpers.values().next().map(String::as_str),
            Some("registry.state")
        );
        let closes = model.lock_summary.get("closes").unwrap();
        assert!(closes.contains("shared.state"));
        let indirect = model.lock_summary.get("indirect").unwrap();
        assert!(indirect.contains("registry.state"));
    }

    #[test]
    fn qualified_calls_resolve_to_the_owning_impl() {
        let files = [file(
            "crates/netsim/src/a.rs",
            "impl LossState { fn build(seeder: &S, stream: &str) { } }\n\
             impl FaultLayer { fn build(seeder: &S) { LossState::build(seeder, \"fault-ul\"); } }",
        )];
        let model = Model::build(&files, &Config::default());
        let fl = model.decls[0]
            .iter()
            .position(|d| d.owner.as_deref() == Some("FaultLayer"))
            .unwrap();
        let call = &model.calls[0][fl][0];
        let targets = model.resolve(0, call);
        assert_eq!(targets.len(), 1);
        assert_eq!(
            model.decls[0][targets[0].1].owner.as_deref(),
            Some("LossState")
        );
    }
}
