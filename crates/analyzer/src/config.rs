//! Lint battery configuration.
//!
//! Everything here is compiled in: the analyzer is a workspace tool,
//! and its policy *is* repo policy, reviewed like any other code. The
//! CLI can still narrow the battery with `--lint` for focused runs.

/// Names of the seven lints (plus the pragma self-check), as used on
/// the command line, in pragmas, and in reports.
pub const LINT_NAMES: &[&str] = &[
    "determinism",
    "cache-order",
    "store-hygiene",
    "panic-hygiene",
    "unit-safety",
    "telemetry-guard",
    "float-eq",
    "pragma",
];

/// Tuning for one analysis run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose library code must stay deterministic: no wall
    /// clocks, no OS-seeded RNG, no unordered hash iteration.
    pub sim_core_crates: Vec<String>,
    /// Relative-path suffixes where wall-clock time sources are
    /// allowed (profiling paths measuring real elapsed time).
    pub time_allowlist: Vec<String>,
    /// Crates whose `emit(` call sites must be guarded.
    pub telemetry_guard_crates: Vec<String>,
    /// Crates holding the SoA `NodeStore`, whose column fields may only
    /// be accessed from [`Config::store_owner_files`].
    pub store_hygiene_crates: Vec<String>,
    /// Relative-path suffixes of the files that own the `NodeStore`
    /// layout and may touch its columns directly.
    pub store_owner_files: Vec<String>,
    /// Function names that count as a telemetry guard when called
    /// before an `emit(` in the same function body.
    pub guard_fns: Vec<String>,
    /// Crates whose public `fn` signatures are checked for raw `f64`
    /// parameters that a `blam-units` newtype should replace.
    pub unit_safety_crates: Vec<String>,
    /// Parameter-name suffix → `blam-units` newtype that covers it.
    pub unit_suffixes: Vec<(String, String)>,
    /// Directory names skipped entirely during the workspace walk.
    pub skip_dirs: Vec<String>,
    /// How many significant tokens after a hash-container iteration
    /// to search for an ordering operation before flagging it.
    pub sort_window: usize,
    /// Lint names to run; empty means the full battery.
    pub only: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let owned = |xs: &[&str]| xs.iter().map(|s| (*s).to_string()).collect();
        Config {
            // Deliberately excluded: `campaign` and `telemetry`. They
            // are the service layer around the simulation — the serve
            // daemon's worker pool, tail polling and spool checkpoints
            // run OS threads against real time by design, and their
            // determinism obligation (job results are a pure function
            // of the ScenarioConfig) is enforced end-to-end by the
            // byte-parity integration tests instead of by this lint.
            // `units` and `bench` were never listed: pure arithmetic
            // and the wall-clock-profiling harness respectively.
            sim_core_crates: owned(&[
                "des",
                "netsim",
                "blam",
                "battery",
                "lora-phy",
                "energy-harvest",
                "lorawan",
            ]),
            time_allowlist: owned(&["netsim/src/runner.rs"]),
            telemetry_guard_crates: owned(&["netsim"]),
            store_hygiene_crates: owned(&["netsim"]),
            store_owner_files: owned(&["netsim/src/store.rs", "netsim/src/nodes.rs"]),
            guard_fns: owned(&["enabled", "telemetry_on"]),
            unit_safety_crates: owned(&[
                "des",
                "netsim",
                "blam",
                "battery",
                "lora-phy",
                "energy-harvest",
                "lorawan",
                "bench",
            ]),
            unit_suffixes: [
                ("_j", "Joules"),
                ("_w", "Watts"),
                ("_s", "Duration"),
                ("_ms", "Duration"),
                ("_mah", "Joules (capacity, via mAh·V)"),
                ("_dbm", "Dbm"),
                ("_db", "Db"),
                ("_hz", "Hertz"),
                ("_m", "Meters"),
                ("_c", "Celsius"),
            ]
            .iter()
            .map(|(s, n)| ((*s).to_string(), (*n).to_string()))
            .collect(),
            skip_dirs: owned(&["target", ".git", "fixtures"]),
            sort_window: 48,
            only: Vec::new(),
        }
    }
}

impl Config {
    /// True when lint `name` should run under this configuration.
    #[must_use]
    pub fn lint_enabled(&self, name: &str) -> bool {
        self.only.is_empty() || self.only.iter().any(|l| l == name)
    }

    /// True when `rel` (a `/`-separated workspace-relative path) is on
    /// the wall-clock allowlist.
    #[must_use]
    pub fn time_allowed(&self, rel: &str) -> bool {
        self.time_allowlist.iter().any(|suf| rel.ends_with(suf))
    }
}
