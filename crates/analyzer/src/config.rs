//! Lint battery configuration.
//!
//! Everything here is compiled in: the analyzer is a workspace tool,
//! and its policy *is* repo policy, reviewed like any other code. The
//! CLI can still narrow the battery with `--lint` for focused runs.

/// Names of the ten lints (plus the pragma self-check), as used on
/// the command line, in pragmas, and in reports.
pub const LINT_NAMES: &[&str] = &[
    "determinism",
    "cache-order",
    "store-hygiene",
    "panic-hygiene",
    "unit-safety",
    "telemetry-guard",
    "float-eq",
    "rng-streams",
    "lock-discipline",
    "atomic-write",
    "pragma",
];

/// One-line description per lint, for `--list-lints` and the SARIF
/// rule metadata. Kept in `LINT_NAMES` order.
pub const LINT_CATALOG: &[(&str, &str)] = &[
    (
        "determinism",
        "no thread_rng/Instant::now/SystemTime::now in sim-core crates; hash iteration must sort",
    ),
    (
        "cache-order",
        "cache/memo bindings with iterated state must use ordered or dense containers",
    ),
    (
        "store-hygiene",
        "NodeStore columns accessed only through accessors outside store.rs/nodes.rs",
    ),
    (
        "panic-hygiene",
        "unwrap()/expect(/panic! in library code, ratcheted by analyzer-baseline.toml",
    ),
    (
        "unit-safety",
        "public fns must not take unit-suffixed raw f64 params where a blam-units newtype exists",
    ),
    (
        "telemetry-guard",
        "every netsim emit( must follow an enabled()-style check in the same fn or a callee",
    ),
    ("float-eq", "no ==/!= against float literals outside tests"),
    (
        "rng-streams",
        "RngSeeder stream names must be catalog-registered literals, unique per function",
    ),
    (
        "lock-discipline",
        "no blocking I/O or un-looped Condvar::wait under a MutexGuard; nested locks follow the order catalog",
    ),
    (
        "atomic-write",
        "raw fs::write/File::create outside owner code must route through write_string_atomic/write_json_atomic",
    ),
    (
        "pragma",
        "analyzer pragmas must name a known lint and carry a reason",
    ),
];

/// Tuning for one analysis run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose library code must stay deterministic: no wall
    /// clocks, no OS-seeded RNG, no unordered hash iteration.
    pub sim_core_crates: Vec<String>,
    /// Relative-path suffixes where wall-clock time sources are
    /// allowed (profiling paths measuring real elapsed time).
    pub time_allowlist: Vec<String>,
    /// Crates whose `emit(` call sites must be guarded.
    pub telemetry_guard_crates: Vec<String>,
    /// Crates holding the SoA `NodeStore`, whose column fields may only
    /// be accessed from [`Config::store_owner_files`].
    pub store_hygiene_crates: Vec<String>,
    /// Relative-path suffixes of the files that own the `NodeStore`
    /// layout and may touch its columns directly.
    pub store_owner_files: Vec<String>,
    /// Function names that count as a telemetry guard when called
    /// before an `emit(` in the same function body. The call-graph
    /// model widens this set with functions that call one of these.
    pub guard_fns: Vec<String>,
    /// Crates whose public `fn` signatures are checked for raw `f64`
    /// parameters that a `blam-units` newtype should replace.
    pub unit_safety_crates: Vec<String>,
    /// Parameter-name suffix → `blam-units` newtype that covers it.
    pub unit_suffixes: Vec<(String, String)>,
    /// The registered RNG stream-name catalog: `name → purpose`.
    /// Every literal passed to `RngSeeder::stream`/`stream_indexed`
    /// must appear here or in the `[rng-streams]` table of
    /// `analyzer-baseline.toml` (the two are merged). See DESIGN.md §7
    /// (fault streams) and §9 (sharded mac streams) for why the
    /// partition matters: two call sites sharing a name silently
    /// correlate their ChaCha streams and break shard parity.
    pub rng_stream_catalog: Vec<(String, String)>,
    /// Relative-path suffixes of the files that own the seeding
    /// substrate and may derive streams generically.
    pub rng_stream_owner_files: Vec<String>,
    /// Crates checked by the lock-discipline lint.
    pub lock_discipline_crates: Vec<String>,
    /// Method names that block on I/O when called (sockets, files).
    pub blocking_sink_methods: Vec<String>,
    /// `qualifier::name` path calls that block on I/O.
    pub blocking_sink_paths: Vec<(String, String)>,
    /// Permitted nested-lock orders, as `(outer class, inner class)`
    /// pairs. Any other second acquisition under a held guard is a
    /// finding.
    pub lock_order: Vec<(String, String)>,
    /// Function names excluded from the call-graph summary maps
    /// (guards, sinks, lock classes). These are std-prelude and
    /// builder-pattern names — `collect`, `finish`, `new`, `drop`, … —
    /// where a same-named workspace function would otherwise classify
    /// every iterator `.collect()` or `Debug` builder `.finish()` in
    /// the repo as blocking I/O. Name-based propagation simply cannot
    /// tell these apart, so they neither *become* summaries nor carry
    /// them; direct sinks (`.flush()`, `fs::write`, …) at such sites
    /// are still caught by the per-call checks.
    pub transitive_stoplist: Vec<String>,
    /// Relative-path suffixes of files that own the atomic-write
    /// protocol and may call `fs::write`/`File::create` directly.
    pub atomic_write_owner_files: Vec<String>,
    /// Function names whose bodies implement the atomic-write
    /// protocol (their internal raw writes are the protocol).
    pub atomic_write_owner_fns: Vec<String>,
    /// Directory names skipped entirely during the workspace walk.
    pub skip_dirs: Vec<String>,
    /// How many significant tokens after a hash-container iteration
    /// to search for an ordering operation before flagging it.
    pub sort_window: usize,
    /// Lint names to run; empty means the full battery.
    pub only: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let owned = |xs: &[&str]| xs.iter().map(|s| (*s).to_string()).collect();
        let pairs = |xs: &[(&str, &str)]| {
            xs.iter()
                .map(|(a, b)| ((*a).to_string(), (*b).to_string()))
                .collect()
        };
        Config {
            // Deliberately excluded: `campaign` and `telemetry`. They
            // are the service layer around the simulation — the serve
            // daemon's worker pool, tail polling and spool checkpoints
            // run OS threads against real time by design, and their
            // determinism obligation (job results are a pure function
            // of the ScenarioConfig) is enforced end-to-end by the
            // byte-parity integration tests instead of by this lint.
            // `units` and `bench` were never listed: pure arithmetic
            // and the wall-clock-profiling harness respectively.
            sim_core_crates: owned(&[
                "des",
                "netsim",
                "blam",
                "battery",
                "lora-phy",
                "energy-harvest",
                "lorawan",
            ]),
            time_allowlist: owned(&["netsim/src/runner.rs"]),
            telemetry_guard_crates: owned(&["netsim"]),
            store_hygiene_crates: owned(&["netsim"]),
            store_owner_files: owned(&["netsim/src/store.rs", "netsim/src/nodes.rs"]),
            guard_fns: owned(&["enabled", "telemetry_on"]),
            unit_safety_crates: owned(&[
                "des",
                "netsim",
                "blam",
                "battery",
                "lora-phy",
                "energy-harvest",
                "lorawan",
                "bench",
            ]),
            unit_suffixes: [
                ("_j", "Joules"),
                ("_w", "Watts"),
                ("_s", "Duration"),
                ("_ms", "Duration"),
                ("_mah", "Joules (capacity, via mAh·V)"),
                ("_dbm", "Dbm"),
                ("_db", "Db"),
                ("_hz", "Hertz"),
                ("_m", "Meters"),
                ("_c", "Celsius"),
            ]
            .iter()
            .map(|(s, n)| ((*s).to_string(), (*n).to_string()))
            .collect(),
            // The canonical stream partition. The fault streams are
            // DESIGN.md §7's five fault layers plus the gateway-outage
            // schedule; `mac` is the per-node transmission jitter that
            // §9's sharded engine re-derives per cell via
            // `stream_indexed`. Names must stay disjoint: the seeder
            // hashes the name into the ChaCha key, so a reused name
            // is a silently correlated stream.
            rng_stream_catalog: pairs(&[
                ("topology", "node/gateway placement draws"),
                ("solar", "per-node solar harvest phase offsets"),
                ("nodes", "per-node battery capacity spread"),
                ("phases", "initial report phase offsets"),
                (
                    "mac",
                    "per-node MAC transmission jitter (indexed per node/cell)",
                ),
                ("batch-run", "per-run derivation for batch runners"),
                ("script-churn", "scripted node-churn arrival draws"),
                ("fault-ul", "uplink Gilbert-Elliott burst-loss chains"),
                ("fault-dl", "downlink Gilbert-Elliott burst-loss chains"),
                ("fault-reboot", "per-node spontaneous reboot schedules"),
                ("fault-sensor", "per-node sensor-noise injection"),
                ("fault-weight", "per-node weight-corruption injection"),
                ("fault-outage", "per-gateway outage schedules"),
            ]),
            rng_stream_owner_files: owned(&["des/src/rng.rs"]),
            lock_discipline_crates: owned(&["campaign", "telemetry", "netsim"]),
            blocking_sink_methods: owned(&[
                "write_all",
                "write_fmt",
                "flush",
                "write_chunk",
                "start_chunked",
                "end_chunked",
                "respond_json",
                "read_request",
                "read_to_string",
                "read_exact",
                "read_line",
                "connect",
                "accept",
                "sync_all",
                "sync_data",
            ]),
            blocking_sink_paths: pairs(&[
                ("fs", "write"),
                ("fs", "read"),
                ("fs", "read_to_string"),
                ("fs", "rename"),
                ("fs", "create_dir_all"),
                ("fs", "remove_file"),
                ("File", "create"),
                ("File", "open"),
                ("TcpStream", "connect"),
            ]),
            lock_order: pairs(&[
                // The daemon closes per-job tail rings while holding
                // the registry lock (cancel/shutdown must be atomic
                // with the state transition).
                ("registry.state", "shared.state"),
                // The shard barrier drains per-cell trace buffers
                // while holding the shared trace-writer lock (cell
                // order must be atomic with the write).
                ("writer", "0"),
            ]),
            transitive_stoplist: owned(&[
                "lock", "drop", "new", "default", "clone", "from", "into", "collect", "drain",
                "finish", "take", "get", "push", "insert", "extend", "next", "iter", "len",
                "clear", "write", "read",
            ]),
            atomic_write_owner_files: owned(&["campaign/src/spool.rs"]),
            atomic_write_owner_fns: owned(&["write_string_atomic", "write_json_atomic"]),
            skip_dirs: owned(&["target", ".git", "fixtures"]),
            sort_window: 48,
            only: Vec::new(),
        }
    }
}

impl Config {
    /// True when lint `name` should run under this configuration.
    #[must_use]
    pub fn lint_enabled(&self, name: &str) -> bool {
        self.only.is_empty() || self.only.iter().any(|l| l == name)
    }

    /// True when `rel` (a `/`-separated workspace-relative path) is on
    /// the wall-clock allowlist.
    #[must_use]
    pub fn time_allowed(&self, rel: &str) -> bool {
        self.time_allowlist.iter().any(|suf| rel.ends_with(suf))
    }
}
