//! The `// analyzer: allow(<lint>, reason = "…")` waiver pragma.
//!
//! A pragma waives findings of the named lint on its own line and on
//! the line immediately below it, so both trailing and preceding
//! placements work:
//!
//! ```text
//! if v == 0.0 { // analyzer: allow(float-eq, reason = "exact sentinel")
//!
//! // analyzer: allow(float-eq, reason = "exact sentinel")
//! if v == 0.0 {
//! ```
//!
//! The reason string is mandatory; a pragma without one is itself
//! reported (lint name `pragma`) so waivers always carry a
//! justification into review.

use crate::tokenizer::{Token, TokenKind};

/// Marker that introduces a pragma inside a line comment.
pub const PRAGMA_MARKER: &str = "analyzer:";

/// One parsed waiver pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma comment starts on.
    pub line: u32,
    /// Lint name being waived (e.g. `float-eq`).
    pub lint: String,
    /// The justification, when present and non-empty.
    pub reason: Option<String>,
}

impl Pragma {
    /// True when this pragma waives `lint` findings on `line`.
    #[must_use]
    pub fn waives(&self, lint: &str, line: u32) -> bool {
        self.reason.is_some() && self.lint == lint && (line == self.line || line == self.line + 1)
    }
}

/// Extracts every pragma from a token stream (pragmas live in
/// [`TokenKind::Comment`] tokens). Malformed pragmas — wrong syntax
/// after the `analyzer:` marker, or a missing/empty reason — are
/// still returned so the caller can report them; they just never
/// waive anything.
#[must_use]
pub fn collect(tokens: &[Token]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::Comment {
            continue;
        }
        let Some(rest) = pragma_body(&tok.text) else {
            continue;
        };
        out.push(parse_body(rest.trim_start(), tok.line));
    }
    out
}

/// Returns the text after the `analyzer:` marker when `comment` is a
/// pragma. Only plain comments whose content *starts* with the marker
/// qualify: doc comments (`///`, `//!`, `/** */`, `/*! */`) document
/// the syntax rather than waive anything, and prose that merely
/// mentions `analyzer:` mid-comment (or a `blam_analyzer::` path) is
/// not a waiver either.
fn pragma_body(comment: &str) -> Option<&str> {
    let content = if let Some(rest) = comment.strip_prefix("//") {
        if rest.starts_with('/') || rest.starts_with('!') {
            return None;
        }
        rest
    } else if let Some(rest) = comment.strip_prefix("/*") {
        if rest.starts_with('*') || rest.starts_with('!') {
            return None;
        }
        rest.strip_suffix("*/").unwrap_or(rest)
    } else {
        return None;
    };
    content.trim_start().strip_prefix(PRAGMA_MARKER)
}

/// Parses `allow(<lint>, reason = "…")`. Anything that does not fit
/// becomes a reason-less pragma (reported, never waiving).
fn parse_body(body: &str, line: u32) -> Pragma {
    let malformed = |lint: &str| Pragma {
        line,
        lint: lint.to_string(),
        reason: None,
    };

    let Some(args) = body
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix('('))
    else {
        return malformed("");
    };
    let Some(close) = args.rfind(')') else {
        return malformed("");
    };
    let args = &args[..close];

    let (lint, rest) = match args.split_once(',') {
        Some((l, r)) => (l.trim(), r.trim()),
        None => (args.trim(), ""),
    };
    if lint.is_empty() {
        return malformed("");
    }

    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix('='))
        .map(str::trim)
        .and_then(|s| {
            let s = s.strip_prefix('"')?;
            let s = s.strip_suffix('"')?;
            let s = s.trim();
            (!s.is_empty()).then(|| s.to_string())
        });

    Pragma {
        line,
        lint: lint.to_string(),
        reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn one(src: &str) -> Pragma {
        let pragmas = collect(&tokenize(src));
        assert_eq!(pragmas.len(), 1, "expected one pragma in {src:?}");
        pragmas.into_iter().next().expect("len checked")
    }

    #[test]
    fn well_formed_pragma() {
        let p = one("x // analyzer: allow(float-eq, reason = \"exact zero sentinel\")");
        assert_eq!(p.lint, "float-eq");
        assert_eq!(p.reason.as_deref(), Some("exact zero sentinel"));
        assert!(p.waives("float-eq", p.line));
        assert!(p.waives("float-eq", p.line + 1));
        assert!(!p.waives("float-eq", p.line + 2));
        assert!(!p.waives("determinism", p.line));
    }

    #[test]
    fn missing_reason_never_waives() {
        let p = one("// analyzer: allow(float-eq)");
        assert_eq!(p.lint, "float-eq");
        assert_eq!(p.reason, None);
        assert!(!p.waives("float-eq", p.line));
    }

    #[test]
    fn empty_reason_never_waives() {
        let p = one("// analyzer: allow(float-eq, reason = \"  \")");
        assert_eq!(p.reason, None);
    }

    #[test]
    fn garbage_body_is_reported_not_ignored() {
        let p = one("// analyzer: disable(float-eq)");
        assert_eq!(p.lint, "");
        assert_eq!(p.reason, None);
    }

    #[test]
    fn pragma_inside_string_is_not_a_pragma() {
        let src = "let s = \"// analyzer: allow(float-eq, reason = \\\"no\\\")\";";
        assert!(collect(&tokenize(src)).is_empty());
    }

    #[test]
    fn non_pragma_comments_are_ignored() {
        let src = "// just a note\n/* analyzer elsewhere */\nx";
        assert!(collect(&tokenize(src)).is_empty());
    }

    #[test]
    fn doc_comments_describing_the_syntax_are_not_pragmas() {
        let src = "//! Use `// analyzer: allow(float-eq, reason = \"…\")` to waive.\n\
                   /// after the `analyzer:` marker\n\
                   //! blam_analyzer::analyze_workspace(\n\
                   /** analyzer: allow(float-eq, reason = \"x\") */\n\
                   fn f() {}";
        assert!(collect(&tokenize(src)).is_empty());
    }

    #[test]
    fn marker_mid_comment_is_not_a_pragma() {
        let src = "// see the analyzer: it sorts findings\nfn f() {}";
        assert!(collect(&tokenize(src)).is_empty());
    }

    #[test]
    fn block_comment_pragma_works() {
        let p = one("/* analyzer: allow(unit-safety, reason = \"wire format\") */");
        assert_eq!(p.lint, "unit-safety");
        assert!(p.reason.is_some());
    }
}
