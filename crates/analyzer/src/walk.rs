//! Workspace discovery: find every `.rs` file, classify it by crate
//! and role, and pre-lex it into a [`SourceFile`] the lints consume.

use std::fs;
use std::path::{Path, PathBuf};

use crate::mask::test_mask;
use crate::pragma::{self, Pragma};
use crate::tokenizer::{tokenize, Token, TokenKind};

/// What role a file plays in its crate, which decides which lints
/// apply and at what strictness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: full battery, strictest settings.
    Lib,
    /// Binary target (`src/main.rs`, `src/bin/*`): determinism and
    /// float-eq apply; panic-hygiene does not (a CLI may die loudly).
    Bin,
    /// Integration or unit test file (`tests/` directories).
    Test,
    /// Criterion benchmark (`benches/`).
    Bench,
    /// Example (`examples/`).
    Example,
}

/// One lexed, classified source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Owning crate's directory name (`netsim`, `units`, …); the
    /// workspace root package is `lpwan-blam`.
    pub crate_name: String,
    /// Role of the file.
    pub kind: FileKind,
    /// Full source text (for snippets in reports).
    pub src: String,
    /// Significant tokens (comments stripped).
    pub tokens: Vec<Token>,
    /// Waiver pragmas found in comments.
    pub pragmas: Vec<Pragma>,
    /// Per-token flag: inside test-only code.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Builds a `SourceFile` from in-memory text.
    #[must_use]
    pub fn from_source(rel: &str, crate_name: &str, kind: FileKind, src: String) -> Self {
        let all = tokenize(&src);
        let pragmas = pragma::collect(&all);
        let tokens: Vec<Token> = all
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect();
        let in_test = test_mask(&tokens);
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            src,
            tokens,
            pragmas,
            in_test,
        }
    }

    /// The trimmed text of 1-based `line`, for report snippets.
    #[must_use]
    pub fn snippet(&self, line: u32) -> &str {
        let idx = line.saturating_sub(1) as usize;
        self.src.lines().nth(idx).map_or("", str::trim)
    }

    /// True when the token at `idx` is inside test-only code.
    #[must_use]
    pub fn is_test_code(&self, idx: usize) -> bool {
        self.kind == FileKind::Test || self.in_test.get(idx).copied().unwrap_or(false)
    }
}

/// Classifies `rel` (workspace-relative, `/`-separated) into its
/// crate name and file kind.
#[must_use]
pub fn classify(rel: &str) -> (String, FileKind) {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 2 {
        parts[1].to_string()
    } else {
        "lpwan-blam".to_string()
    };
    let kind = if parts.contains(&"tests") {
        FileKind::Test
    } else if parts.contains(&"benches") {
        FileKind::Bench
    } else if parts.contains(&"examples") {
        FileKind::Example
    } else if parts.contains(&"bin") || parts.last() == Some(&"main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    (crate_name, kind)
}

/// Finds the workspace root at or above `start`: the nearest ancestor
/// whose `Cargo.toml` contains a `[workspace]` table.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Walks the workspace and lexes every `.rs` file, in deterministic
/// (sorted-path) order. Directories named in `skip_dirs` — and hidden
/// directories — are pruned.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal or file reads,
/// annotated with the path that failed.
pub fn walk_workspace(root: &Path, skip_dirs: &[String]) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    collect_rs_files(root, root, skip_dirs, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let full = root.join(&rel);
        let src =
            fs::read_to_string(&full).map_err(|e| format!("reading {}: {e}", full.display()))?;
        let (crate_name, kind) = classify(&rel);
        files.push(SourceFile::from_source(&rel, &crate_name, kind, src));
    }
    Ok(files)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    skip_dirs: &[String],
    out: &mut Vec<String>,
) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("reading directory {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading directory {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || skip_dirs.iter().any(|s| s.as_str() == name) {
                continue;
            }
            collect_rs_files(root, &path, skip_dirs, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("relativizing {}: {e}", path.display()))?;
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        let cases = [
            ("crates/netsim/src/engine.rs", "netsim", FileKind::Lib),
            ("crates/cli/src/main.rs", "cli", FileKind::Bin),
            ("crates/bench/src/bin/fig5.rs", "bench", FileKind::Bin),
            ("crates/des/tests/determinism.rs", "des", FileKind::Test),
            ("crates/bench/benches/phy.rs", "bench", FileKind::Bench),
            ("src/lib.rs", "lpwan-blam", FileKind::Lib),
            ("tests/end_to_end.rs", "lpwan-blam", FileKind::Test),
            ("examples/quickstart.rs", "lpwan-blam", FileKind::Example),
        ];
        for (rel, crate_name, kind) in cases {
            let (c, k) = classify(rel);
            assert_eq!(c, crate_name, "{rel}");
            assert_eq!(k, kind, "{rel}");
        }
    }

    #[test]
    fn snippets_are_line_accurate() {
        let f = SourceFile::from_source(
            "x.rs",
            "c",
            FileKind::Lib,
            "line one\n  line two  \n".to_string(),
        );
        assert_eq!(f.snippet(2), "line two");
        assert_eq!(f.snippet(99), "");
    }
}
