//! `blam-analyzer`: in-repo static analysis that mechanically
//! enforces the simulator's cross-cutting invariants.
//!
//! The reproduction's scientific claims rest on properties the
//! compiler does not check: deterministic replay (seeded ChaCha
//! streams, sorted-before-use hash iteration, byte-identical runs
//! with telemetry on or off), unit-correct physics, and zero-cost
//! telemetry. One stray `thread_rng()` or unsorted `HashMap` loop
//! silently breaks golden-record parity. This crate tokenizes every
//! `.rs` file in the workspace with a hand-rolled lexer (no `syn`, no
//! registry access — it must build in offline containers), parses the
//! token streams into per-function bodies with a lightweight item /
//! expression parser ([`syntax`]), builds a crate-wide function index
//! with a call graph and fixpoint summaries ([`model`]), and runs a
//! ten-lint battery:
//!
//! | lint | checks |
//! |------|--------|
//! | `determinism`     | no `thread_rng`/wall clocks in sim-core crates; hash iteration must sort |
//! | `cache-order`     | cache/memo bindings with iterated state use ordered or dense containers |
//! | `store-hygiene`   | `NodeStore` columns touched only via accessors outside store.rs/nodes.rs |
//! | `panic-hygiene`   | `unwrap()`/`expect(`/`panic!` in library code vs. a ratcheting baseline |
//! | `unit-safety`     | public `fn`s must not take unit-suffixed raw `f64` parameters |
//! | `telemetry-guard` | every netsim `emit(` dominated by an `enabled()`-style check (or a wrapper) |
//! | `float-eq`        | no `==`/`!=` against float literals outside tests |
//! | `rng-streams`     | `RngSeeder` stream names are catalog literals, unique per function |
//! | `lock-discipline` | no blocking I/O / un-looped `Condvar::wait` under a guard; ordered nesting |
//! | `atomic-write`    | durable writes route through the spool's temp-then-rename protocol |
//!
//! Intentional violations are waived in place with
//! `// analyzer: allow(<lint>, reason = "…")` — the reason is
//! mandatory. The panic-hygiene counts ratchet monotonically downward
//! through `analyzer-baseline.toml`, which also registers the RNG
//! stream catalog.
//!
//! Run it as the `blam-analyze` binary (human or `--format json`
//! output), or in-process from a test:
//!
//! ```no_run
//! use std::path::Path;
//! let outcome = blam_analyzer::analyze_workspace(
//!     Path::new("."),
//!     &blam_analyzer::Config::default(),
//! )
//! .expect("workspace scan");
//! assert!(outcome.clean(), "{}", outcome.render_human(false));
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod lints;
pub mod mask;
pub mod model;
pub mod pragma;
pub mod report;
pub mod syntax;
pub mod tokenizer;
pub mod walk;

use std::collections::BTreeMap;
use std::path::Path;

pub use baseline::Baseline;
pub use config::Config;
pub use model::Model;
pub use report::{Finding, Outcome};
pub use walk::{FileKind, SourceFile};

/// Runs the configured lint battery over already-lexed files and
/// applies pragmas and the panic-hygiene baseline.
#[must_use]
pub fn analyze_files(files: &[SourceFile], cfg: &Config, baseline: &Baseline) -> Outcome {
    let mut raw = Vec::new();
    let mut panic_sites = Vec::new();

    // The crate-wide model the v2 lints share: parsed bodies, the
    // call graph, and guard/sink/lock fixpoint summaries.
    let model = Model::build(files, cfg);
    // The registered stream catalog: compiled-in defaults plus the
    // repo-reviewed `[rng-streams]` table in analyzer-baseline.toml.
    let mut catalog: BTreeMap<String, String> = cfg.rng_stream_catalog.iter().cloned().collect();
    catalog.extend(baseline.rng_streams.clone());

    for (fi, file) in files.iter().enumerate() {
        if cfg.lint_enabled("determinism") {
            lints::determinism::check(file, cfg, &mut raw);
        }
        if cfg.lint_enabled("cache-order") {
            lints::cache_order::check(file, cfg, &mut raw);
        }
        if cfg.lint_enabled("store-hygiene") {
            lints::store_hygiene::check(file, cfg, &mut raw);
        }
        if cfg.lint_enabled("unit-safety") {
            lints::unit_safety::check(file, cfg, &mut raw);
        }
        if cfg.lint_enabled("telemetry-guard") {
            lints::telemetry_guard::check(fi, files, &model, cfg, &mut raw);
        }
        if cfg.lint_enabled("float-eq") {
            lints::float_eq::check(file, &mut raw);
        }
        if cfg.lint_enabled("rng-streams") {
            lints::rng_streams::check(fi, files, &model, cfg, &catalog, &mut raw);
        }
        if cfg.lint_enabled("lock-discipline") {
            lints::lock_discipline::check(fi, files, &model, cfg, &mut raw);
        }
        if cfg.lint_enabled("atomic-write") {
            lints::atomic_write::check(fi, files, &model, cfg, &mut raw);
        }
        if cfg.lint_enabled("panic-hygiene") {
            lints::panic_hygiene::check(file, &mut panic_sites);
        }
        if cfg.lint_enabled("pragma") {
            check_pragmas(file, &mut raw);
        }
    }

    let waived = |f: &Finding, files: &[SourceFile]| {
        files
            .iter()
            .find(|sf| sf.rel == f.file)
            .is_some_and(|sf| sf.pragmas.iter().any(|p| p.waives(f.lint, f.line)))
    };
    raw.retain(|f| !waived(f, files));
    panic_sites.retain(|f| !waived(f, files));

    let mut outcome = Outcome {
        findings: raw,
        files_scanned: files.len(),
        panic_baseline: baseline.panic_hygiene.clone(),
        ..Outcome::default()
    };
    apply_baseline(&mut outcome, panic_sites, baseline);
    // Deterministic report order whatever the lint interleaving —
    // findings and baselined sites alike, across every output format.
    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    outcome
        .baselined
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    outcome
}

/// Splits panic-hygiene sites into failures (crates over budget) and
/// baselined sites, and records ratchet-tightening opportunities.
fn apply_baseline(outcome: &mut Outcome, sites: Vec<Finding>, baseline: &Baseline) {
    let mut by_crate: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for site in sites {
        let (crate_name, _) = walk::classify(&site.file);
        by_crate.entry(crate_name).or_default().push(site);
    }
    for (crate_name, count) in &baseline.panic_hygiene {
        if *count > 0 && !by_crate.contains_key(crate_name) {
            outcome.improvements.push(format!(
                "crate `{crate_name}` is panic-free; drop its baseline entry ({count} -> 0)"
            ));
        }
    }
    for (crate_name, sites) in by_crate {
        let count = sites.len() as u32;
        let budget = baseline.budget(&crate_name);
        outcome.panic_counts.insert(crate_name.clone(), count);
        if count > budget {
            for mut site in sites {
                site.message = format!(
                    "{} (crate `{crate_name}`: {count} sites exceed the baseline budget \
                     of {budget})",
                    site.message
                );
                outcome.findings.push(site);
            }
        } else {
            if count < budget {
                outcome.improvements.push(format!(
                    "crate `{crate_name}` improved to {count} panic-hygiene site(s) \
                     (baseline {budget}); run --update-baseline to ratchet down"
                ));
            }
            outcome.baselined.extend(sites);
        }
    }
}

/// Reports malformed pragmas: missing/empty reasons and unknown lint
/// names both defeat the point of an auditable waiver trail.
fn check_pragmas(file: &SourceFile, out: &mut Vec<Finding>) {
    for p in &file.pragmas {
        if p.lint.is_empty() {
            out.push(lints::finding(
                file,
                "pragma",
                p.line,
                "malformed analyzer pragma; expected \
                 `analyzer: allow(<lint>, reason = \"…\")`"
                    .to_string(),
            ));
        } else if !config::LINT_NAMES.contains(&p.lint.as_str()) {
            out.push(lints::finding(
                file,
                "pragma",
                p.line,
                format!("pragma waives unknown lint `{}`", p.lint),
            ));
        } else if p.reason.is_none() {
            out.push(lints::finding(
                file,
                "pragma",
                p.line,
                format!(
                    "pragma for `{}` has no reason; waivers must say why \
                     (`reason = \"…\"`)",
                    p.lint
                ),
            ));
        }
    }
}

/// Walks the workspace at `root`, loads `analyzer-baseline.toml`, and
/// runs the battery.
///
/// # Errors
///
/// Returns a human-readable description of I/O failures or an
/// unparsable baseline file.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> Result<Outcome, String> {
    let files = walk::walk_workspace(root, &cfg.skip_dirs)?;
    let baseline = Baseline::load(root)?;
    Ok(analyze_files(&files, cfg, &baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, kind: FileKind, src: &str) -> SourceFile {
        let (crate_name, _) = walk::classify(rel);
        SourceFile::from_source(rel, &crate_name, kind, src.to_string())
    }

    #[test]
    fn pragma_waives_exactly_its_lint_and_site() {
        let src = "fn f(v: f64) -> bool {\n    // analyzer: allow(float-eq, reason = \"sentinel\")\n    v == 0.0\n}\nfn g(v: f64) -> bool { v == 1.0 }";
        let files = [file("crates/units/src/energy.rs", FileKind::Lib, src)];
        let out = analyze_files(&files, &Config::default(), &Baseline::default());
        assert_eq!(out.findings.len(), 1, "{}", out.render_human(true));
        assert_eq!(out.findings[0].line, 5);
    }

    #[test]
    fn baseline_budget_gates_panic_sites() {
        let src = "pub fn f(o: Option<u8>) -> u8 { o.unwrap() }";
        let files = [file("crates/des/src/sim.rs", FileKind::Lib, src)];

        let over = analyze_files(&files, &Config::default(), &Baseline::default());
        assert_eq!(over.findings.len(), 1);
        assert!(over.findings[0].message.contains("exceed the baseline"));

        let mut baseline = Baseline::default();
        baseline.panic_hygiene.insert("des".to_string(), 1);
        let at = analyze_files(&files, &Config::default(), &baseline);
        assert!(at.clean(), "{}", at.render_human(true));
        assert_eq!(at.baselined.len(), 1);

        baseline.panic_hygiene.insert("des".to_string(), 5);
        let under = analyze_files(&files, &Config::default(), &baseline);
        assert!(under.clean());
        assert_eq!(under.improvements.len(), 1);
    }

    #[test]
    fn unknown_pragma_lint_is_reported() {
        let src = "// analyzer: allow(speling, reason = \"oops\")\nfn f() {}";
        let files = [file("crates/des/src/sim.rs", FileKind::Lib, src)];
        let out = analyze_files(&files, &Config::default(), &Baseline::default());
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "pragma");
    }

    #[test]
    fn lint_selection_narrows_the_battery() {
        let src = "fn f(v: f64) -> bool { let t = Instant::now(); v == 0.0 }";
        let files = [file("crates/des/src/sim.rs", FileKind::Lib, src)];
        let cfg = Config {
            only: vec!["float-eq".to_string()],
            ..Config::default()
        };
        let out = analyze_files(&files, &cfg, &Baseline::default());
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "float-eq");
    }
}
