//! A lightweight item/expression parser over the token stream: the
//! v2 engine's view of a file as *functions* rather than a flat token
//! window.
//!
//! This is not a Rust grammar. It recovers exactly the structure the
//! lints need — function and closure declarations with line-accurate
//! body token ranges, parameter names, `impl`/`trait` owners, and the
//! call expressions inside each body — while staying a single
//! brace-matching pass over the existing hand-rolled lexer. Anything
//! it cannot shape (macro bodies, unbraced closures, destructured
//! parameters) degrades to "part of the enclosing scope", never to a
//! parse error, so a weird file can hide a finding but can never
//! crash the battery.

use crate::tokenizer::{Token, TokenKind};

/// One function-like declaration: a `fn` item or a braced,
/// `let`-bound closure.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Function name, or the `let` binding name for a closure.
    pub name: String,
    /// `impl`/`trait` type the declaration sits in, when any.
    pub owner: Option<String>,
    /// True for `let name = |…| { … }` closures.
    pub is_closure: bool,
    /// True for plain `pub` visibility (not `pub(crate)`/private).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword (or the closure's `let`).
    pub line: u32,
    /// Token index of the `fn` keyword (or the closure's `let`).
    pub fn_tok: usize,
    /// Parameter names, in declaration order (`self` excluded).
    pub params: Vec<String>,
    /// Body token range `[start, end)`, exclusive of both braces.
    pub body: (usize, usize),
    /// Index (into the same `Vec<FnDecl>`) of the enclosing
    /// function-like declaration, for nested fns and closures.
    pub parent: Option<usize>,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Called name (`write_all`, `lock`, `build`, …).
    pub callee: String,
    /// Path qualifier immediately before the name (`fs` in
    /// `fs::write`, `LossState` in `LossState::build`).
    pub qual: Option<String>,
    /// True for `.name(` method syntax.
    pub method: bool,
    /// Identifiers of the receiver path, outermost first, with `self`
    /// stripped (`registry.state.lock()` → `["registry", "state"]`).
    pub recv: Vec<String>,
    /// Method/function names invoked earlier in a chained receiver
    /// expression (`shared.lock().unwrap_or_else(e).flush()` reaches
    /// `flush` with `chain = ["lock", "unwrap_or_else"]`).
    pub chain: Vec<String>,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// Top-level argument token ranges `[start, end)`.
    pub args: Vec<(usize, usize)>,
}

/// Parses every function and braced closure in `toks`, in source
/// order for top-level items (children follow their parent).
#[must_use]
pub fn parse(toks: &[Token]) -> Vec<FnDecl> {
    let mut decls = Vec::new();
    scan(toks, 0, toks.len(), None, None, &mut decls);
    decls
}

/// Words that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "move", "unsafe", "in",
    "as", "await", "box", "where", "impl", "dyn",
];

fn scan(
    toks: &[Token],
    start: usize,
    end: usize,
    parent: Option<usize>,
    owner: Option<&str>,
    decls: &mut Vec<FnDecl>,
) {
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if (t.is_ident("impl") || t.is_ident("trait")) && at_item_position(toks, i) {
            if let Some((name, open, close)) = impl_block(toks, i, end) {
                scan(toks, open + 1, close, parent, Some(&name), decls);
                i = close + 1;
                continue;
            }
        }
        if t.is_ident("fn") && !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            if let Some(decl) = parse_fn(toks, i, owner, parent) {
                let (bs, be) = decl.body;
                let idx = decls.len();
                decls.push(decl);
                scan(toks, bs, be, Some(idx), None, decls);
                i = be + 1;
                continue;
            }
        }
        if t.is_ident("let") && parent.is_some() {
            if let Some(decl) = parse_closure(toks, i, parent) {
                let (bs, be) = decl.body;
                let idx = decls.len();
                decls.push(decl);
                scan(toks, bs, be, Some(idx), None, decls);
                i = be + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// True when the token at `at` starts an item (vs. `-> impl Trait`,
/// `&impl Fn()`, …): it follows a statement/block boundary, an
/// attribute, or an `unsafe` qualifier.
fn at_item_position(toks: &[Token], at: usize) -> bool {
    match at.checked_sub(1).and_then(|p| toks.get(p)) {
        None => true,
        Some(prev) => {
            prev.is_punct(";")
                || prev.is_punct("{")
                || prev.is_punct("}")
                || prev.is_punct("]")
                || prev.is_ident("unsafe")
        }
    }
}

/// From an `impl`/`trait` keyword, returns the implementing type name
/// and the `{ … }` token indices of the block.
fn impl_block(toks: &[Token], kw_at: usize, end: usize) -> Option<(String, usize, usize)> {
    let mut j = kw_at + 1;
    // Generic parameters on the impl itself.
    j = skip_generics(toks, j)?;
    // First path: trait (when `for` follows) or the type.
    let (first, after_first) = read_type_path(toks, j, end)?;
    let mut name = first;
    j = after_first;
    if toks.get(j).is_some_and(|t| t.is_ident("for")) {
        let (second, after_second) = read_type_path(toks, j + 1, end)?;
        name = second;
        j = after_second;
    }
    // Skip a `where` clause (and anything else) up to the block.
    while j < end && !toks[j].is_punct("{") {
        if toks[j].is_punct(";") {
            return None;
        }
        j += 1;
    }
    if j >= end {
        return None;
    }
    let close = matching_brace(toks, j)?;
    Some((name, j, close))
}

/// Reads a type path (`foo::Bar<T>`), returning the final type
/// identifier and the index after the path (generics skipped).
fn read_type_path(toks: &[Token], mut j: usize, end: usize) -> Option<(String, usize)> {
    // Leading `&`/lifetimes/`mut` on the self type.
    while j < end
        && (toks[j].is_punct("&") || toks[j].kind == TokenKind::Lifetime || toks[j].is_ident("mut"))
    {
        j += 1;
    }
    let mut name = None;
    while j < end {
        let t = &toks[j];
        if t.kind == TokenKind::Ident {
            name = Some(t.text.clone());
            j += 1;
            if toks
                .get(j)
                .is_some_and(|n| n.is_punct("<") || n.text == "<<")
            {
                j = skip_generics(toks, j)?;
            }
            if toks.get(j).is_some_and(|n| n.is_punct("::")) {
                j += 1;
                continue;
            }
            break;
        }
        return None;
    }
    name.map(|n| (n, j))
}

/// If `toks[j]` opens a generic list, returns the index after the
/// matching close; otherwise returns `j` unchanged.
fn skip_generics(toks: &[Token], j: usize) -> Option<usize> {
    if !toks.get(j).is_some_and(|t| t.text == "<" || t.text == "<<") {
        return Some(j);
    }
    let mut depth = 0i32;
    let mut k = j;
    while let Some(t) = toks.get(k) {
        match t.text.as_str() {
            "<" if t.kind == TokenKind::Punct => depth += 1,
            "<<" => depth += 2,
            ">" if t.kind == TokenKind::Punct => depth -= 1,
            ">>" => depth -= 2,
            _ => {}
        }
        k += 1;
        if depth <= 0 {
            return Some(k);
        }
    }
    None
}

/// Index of the `)`/`}`/`]` matching the opener at `open`.
fn matching_delim(toks: &[Token], open: usize, open_s: &str, close_s: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open;
    while let Some(t) = toks.get(j) {
        if t.is_punct(open_s) {
            depth += 1;
        } else if t.is_punct(close_s) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
#[must_use]
pub fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    matching_delim(toks, open, "{", "}")
}

/// Index of the `)` matching the `(` at `open`.
#[must_use]
pub fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    matching_delim(toks, open, "(", ")")
}

/// Parses a `fn` item from its keyword. `None` for bodyless
/// declarations (trait methods, extern blocks) and unparseable
/// shapes.
fn parse_fn(
    toks: &[Token],
    fn_at: usize,
    owner: Option<&str>,
    parent: Option<usize>,
) -> Option<FnDecl> {
    let name_tok = toks.get(fn_at + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    // Locate the parameter `(`, skipping generics (same traversal the
    // v1 telemetry-guard lint used, kept for byte-identical scoping).
    let mut j = fn_at + 2;
    let mut angle = 0i32;
    loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "<" if t.kind == TokenKind::Punct => angle += 1,
            "<<" => angle += 2,
            ">" if t.kind == TokenKind::Punct => angle -= 1,
            ">>" => angle -= 2,
            "(" if angle == 0 => break,
            ";" if angle == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    let params_open = j;
    let params_close = matching_paren(toks, params_open)?;
    let params = param_names(toks, params_open, params_close);
    // Scan to the body `{` (or `;` for a declaration).
    let mut k = params_close + 1;
    loop {
        let t = toks.get(k)?;
        if t.is_punct("{") {
            break;
        }
        if t.is_punct(";") {
            return None;
        }
        k += 1;
    }
    let body_close = matching_brace(toks, k)?;
    Some(FnDecl {
        name: name_tok.text.clone(),
        owner: owner.map(str::to_string),
        is_closure: false,
        is_pub: is_plain_pub(toks, fn_at),
        line: toks[fn_at].line,
        fn_tok: fn_at,
        params,
        body: (k + 1, body_close),
        parent,
    })
}

/// Parameter names at paren depth 1: identifiers directly followed by
/// `:` (so types, generics and nested closures never contribute).
fn param_names(toks: &[Token], open: usize, close: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut depth = 0i32;
    for j in open..=close {
        let t = &toks[j];
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
        } else if depth == 1
            && t.kind == TokenKind::Ident
            && toks.get(j + 1).is_some_and(|n| n.is_punct(":"))
            && t.text != "self"
        {
            names.push(t.text.clone());
        }
    }
    names
}

/// True when the tokens before `fn_at` spell a plain-`pub` signature.
fn is_plain_pub(toks: &[Token], fn_at: usize) -> bool {
    let mut j = fn_at;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("unsafe")
            || t.is_ident("extern")
        {
            continue;
        }
        if t.kind == TokenKind::Str {
            continue; // extern "C"
        }
        return t.is_ident("pub") && !toks.get(j + 1).is_some_and(|n| n.is_punct("("));
    }
    false
}

/// Parses `let [mut] name = [move] |params| [-> T] { body }`.
/// Unbraced closures return `None` and stay part of the parent scope.
fn parse_closure(toks: &[Token], let_at: usize, parent: Option<usize>) -> Option<FnDecl> {
    let mut j = let_at + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name_tok = toks.get(j)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    if !toks.get(j + 1).is_some_and(|t| t.is_punct("=")) {
        return None;
    }
    j += 2;
    if toks.get(j).is_some_and(|t| t.is_ident("move")) {
        j += 1;
    }
    // `||` (no params) or `|…|`.
    let (params, after_pipe) = if toks.get(j).is_some_and(|t| t.is_punct("||")) {
        (Vec::new(), j + 1)
    } else if toks.get(j).is_some_and(|t| t.is_punct("|")) {
        let close = closing_pipe(toks, j)?;
        (closure_params(toks, j, close), close + 1)
    } else {
        return None;
    };
    // Optional return type, then the braced body — a `,`/`;`/`)`
    // first means an unbraced closure body.
    let mut k = after_pipe;
    loop {
        let t = toks.get(k)?;
        if t.is_punct("{") {
            break;
        }
        if t.is_punct(",") || t.is_punct(";") || t.is_punct(")") {
            return None;
        }
        k += 1;
    }
    let body_close = matching_brace(toks, k)?;
    Some(FnDecl {
        name: name_tok.text.clone(),
        owner: None,
        is_closure: true,
        is_pub: false,
        line: toks[let_at].line,
        fn_tok: let_at,
        params,
        body: (k + 1, body_close),
        parent,
    })
}

/// Index of the `|` closing the closure parameter list opened at
/// `open` (depth-0 with respect to parens/brackets/angles).
fn closing_pipe(toks: &[Token], open: usize) -> Option<usize> {
    let mut j = open + 1;
    let mut depth = 0i32;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            "(" | "[" | "<" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" | ">" if t.kind == TokenKind::Punct => depth -= 1,
            "|" if t.kind == TokenKind::Punct && depth <= 0 => return Some(j),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Closure parameter names: identifiers preceded by `|`, `,` or
/// `mut`, so type idents (`&str`) never contribute.
fn closure_params(toks: &[Token], open: usize, close: usize) -> Vec<String> {
    let mut names = Vec::new();
    for j in open + 1..close {
        let t = &toks[j];
        if t.kind != TokenKind::Ident || t.is_ident("mut") {
            continue;
        }
        let prev = &toks[j - 1];
        if prev.is_punct("|") || prev.is_punct(",") || prev.is_ident("mut") {
            names.push(t.text.clone());
        }
    }
    names
}

/// Extracts every call expression in `[start, end)`, skipping the
/// sub-ranges listed in `exclude` (child declarations' bodies).
#[must_use]
pub fn calls_in(toks: &[Token], start: usize, end: usize, exclude: &[(usize, usize)]) -> Vec<Call> {
    let mut calls = Vec::new();
    let mut k = start;
    'outer: while k < end {
        for &(es, ee) in exclude {
            if k >= es && k < ee {
                k = ee;
                continue 'outer;
            }
        }
        let t = &toks[k];
        let is_call = t.kind == TokenKind::Ident
            && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
            // `fn helper(…)` — a nested declaration's name, not a call.
            && !(k > 0 && toks[k - 1].is_ident("fn"));
        if !is_call {
            k += 1;
            continue;
        }
        let method = k > 0 && toks[k - 1].is_punct(".");
        let qual = (k >= 2 && toks[k - 1].is_punct("::") && toks[k - 2].kind == TokenKind::Ident)
            .then(|| toks[k - 2].text.clone());
        let (recv, chain) = if method {
            receiver_of(toks, k - 1)
        } else {
            (Vec::new(), Vec::new())
        };
        let close = matching_paren(toks, k + 1).unwrap_or(end);
        calls.push(Call {
            callee: t.text.clone(),
            qual,
            method,
            recv,
            chain,
            tok: k,
            line: t.line,
            args: split_args(toks, k + 1, close),
        });
        k += 1;
    }
    calls
}

/// Walks a method call's receiver backwards from its `.`: collects
/// the identifier path (self stripped) and any chained call names.
fn receiver_of(toks: &[Token], dot_at: usize) -> (Vec<String>, Vec<String>) {
    let mut path = Vec::new();
    let mut chain = Vec::new();
    let mut j = dot_at; // at a `.`
    loop {
        let Some(prev) = j.checked_sub(1) else { break };
        let t = &toks[prev];
        if t.kind == TokenKind::Ident || t.kind == TokenKind::Int {
            // `self.0.lock()` tuple fields lex as Int.
            if !t.is_ident("self") {
                path.push(t.text.clone());
            }
            j = prev;
            if j == 0 || !toks[j - 1].is_punct(".") {
                break;
            }
            j -= 1; // continue at the next `.`
        } else if t.is_punct(")") || t.is_punct("]") {
            // Chained expression receiver: jump to the matching
            // opener and record the call name behind it, if any.
            let (open_s, close_s) = if t.is_punct(")") {
                ("(", ")")
            } else {
                ("[", "]")
            };
            let Some(open) = matching_back(toks, prev, open_s, close_s) else {
                break;
            };
            j = open;
            if j > 0 && toks[j - 1].kind == TokenKind::Ident {
                chain.push(toks[j - 1].text.clone());
                j -= 1;
                if j > 0 && toks[j - 1].is_punct(".") {
                    j -= 1;
                    continue;
                }
            }
            break;
        } else if t.is_punct("?") {
            j = prev;
        } else {
            break;
        }
    }
    path.reverse();
    chain.reverse();
    (path, chain)
}

/// Index of the opener matching the closer at `close`, scanning
/// backwards.
fn matching_back(toks: &[Token], close: usize, open_s: &str, close_s: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        let t = &toks[j];
        if t.is_punct(close_s) {
            depth += 1;
        } else if t.is_punct(open_s) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j = j.checked_sub(1)?;
    }
}

/// Splits the argument tokens of a call (`open` at `(`, `close` at
/// its `)`) into top-level comma-separated ranges.
fn split_args(toks: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut arg_start = open + 1;
    for j in open..=close.min(toks.len().saturating_sub(1)) {
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokenKind::Punct => {
                depth -= 1;
                if depth == 0 && j == close {
                    if j > arg_start {
                        args.push((arg_start, j));
                    }
                    break;
                }
            }
            "," if depth == 1 => {
                args.push((arg_start, j));
                arg_start = j + 1;
            }
            "|" if t.kind == TokenKind::Punct => {
                // Closure parameter pipes may hide commas; treat the
                // whole remaining argument as opaque.
            }
            _ => {}
        }
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn strip(src: &str) -> Vec<Token> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect()
    }

    #[test]
    fn functions_params_and_owners_are_recovered() {
        let src = "impl Foo { pub fn a(x: u8, y: &str) -> u8 { x } }\n\
                   fn b<T: Into<Vec<u8>>>(z: T) { }\n\
                   impl Write for Bar { fn write(&mut self, buf: &[u8]) { } }";
        let toks = strip(src);
        let decls = parse(&toks);
        let names: Vec<(&str, Option<&str>)> = decls
            .iter()
            .map(|d| (d.name.as_str(), d.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![("a", Some("Foo")), ("b", None), ("write", Some("Bar"))]
        );
        assert_eq!(decls[0].params, vec!["x", "y"]);
        assert!(decls[0].is_pub);
        assert_eq!(decls[1].params, vec!["z"]);
        assert!(!decls[2].is_pub);
    }

    #[test]
    fn braced_closures_become_scopes_with_parents() {
        let src = "fn outer(s: &S) { let per_node = |name: &str, on: bool| -> u8 { s.go(name) }; per_node(\"x\", true); }";
        let toks = strip(src);
        let decls = parse(&toks);
        assert_eq!(decls.len(), 2);
        assert_eq!(decls[1].name, "per_node");
        assert!(decls[1].is_closure);
        assert_eq!(decls[1].params, vec!["name", "on"]);
        assert_eq!(decls[1].parent, Some(0));
    }

    #[test]
    fn unbraced_closures_stay_in_the_parent_scope() {
        let src = "fn outer(v: &[u8]) { let n = v.iter().map(|b| b + 1).count(); drop(n); }";
        let toks = strip(src);
        let decls = parse(&toks);
        assert_eq!(decls.len(), 1);
    }

    #[test]
    fn calls_capture_receiver_chain_and_args() {
        let src = "fn f(registry: &R) { registry.state.lock(); shared.lock().unwrap_or_else(e).flush(); http::respond_json(stream, 200, &body); }";
        let toks = strip(src);
        let decls = parse(&toks);
        let calls = calls_in(&toks, decls[0].body.0, decls[0].body.1, &[]);
        let lock = calls
            .iter()
            .find(|c| c.callee == "lock" && c.method && !c.recv.is_empty())
            .unwrap();
        assert_eq!(lock.recv, vec!["registry", "state"]);
        let flush = calls.iter().find(|c| c.callee == "flush").unwrap();
        assert_eq!(flush.chain, vec!["lock", "unwrap_or_else"]);
        let rj = calls.iter().find(|c| c.callee == "respond_json").unwrap();
        assert_eq!(rj.qual.as_deref(), Some("http"));
        assert_eq!(rj.args.len(), 3);
    }

    #[test]
    fn tuple_field_receivers_and_return_impl_do_not_confuse_the_scan() {
        let src = "fn g(&self) -> impl Iterator<Item = u8> { self.0.lock(); [1u8].into_iter() }";
        let toks = strip(src);
        let decls = parse(&toks);
        assert_eq!(decls.len(), 1, "`-> impl` must not open an impl block");
        let calls = calls_in(&toks, decls[0].body.0, decls[0].body.1, &[]);
        let lock = calls.iter().find(|c| c.callee == "lock").unwrap();
        assert_eq!(lock.recv, vec!["0"]);
    }

    #[test]
    fn bodyless_declarations_and_fn_pointer_types_are_skipped() {
        let src = "trait T { fn required(&self); fn given(&self) { } }\nfn takes(f: fn(u8) -> u8) { f(1); }";
        let toks = strip(src);
        let decls = parse(&toks);
        let names: Vec<&str> = decls.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["given", "takes"]);
        assert_eq!(decls[0].owner.as_deref(), Some("T"));
    }
}
