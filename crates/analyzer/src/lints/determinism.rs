//! `determinism`: sim-core crates must replay byte-identically from a
//! seed. Two families of violations:
//!
//! 1. **Ambient nondeterminism** — `thread_rng` (OS-seeded) and the
//!    wall clocks `Instant::now` / `SystemTime::now`. Simulation code
//!    draws from named ChaCha streams and reads the virtual clock;
//!    wall-clock profiling is allowed only on the configured
//!    allowlist (e.g. `netsim/src/runner.rs`).
//! 2. **Unordered hash iteration** — iterating a `HashMap`/`HashSet`
//!    yields a platform/seed-dependent order. Iteration is allowed
//!    only when an ordering (or order-insensitive reduction) appears
//!    within a short token window, matching the repo's
//!    sort-before-use idiom:
//!    `let mut v: Vec<_> = map.iter().collect(); v.sort_by_key(…);`

use crate::config::Config;
use crate::lints::finding;
use crate::report::Finding;
use crate::tokenizer::{Token, TokenKind};
use crate::walk::{FileKind, SourceFile};

/// Methods on hash containers that observe iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Identifiers that, seen shortly after an iteration, make its order
/// irrelevant: explicit sorts, ordered collections, or commutative
/// reductions.
const ORDER_OK: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "sum",
    "count",
    "len",
    "min",
    "max",
    "min_by",
    "min_by_key",
    "max_by",
    "max_by_key",
    "all",
    "any",
    "contains",
    "fold",
];

/// Runs the determinism lint over one file.
pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.sim_core_crates.contains(&file.crate_name)
        || !matches!(file.kind, FileKind::Lib | FileKind::Bin)
    {
        return;
    }
    let toks = &file.tokens;
    let check_time = !cfg.time_allowed(&file.rel);
    let tracked = tracked_hash_names(toks);

    for i in 0..toks.len() {
        if file.is_test_code(i) || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let t = &toks[i];

        if check_time {
            if t.is_ident("thread_rng") {
                out.push(finding(
                    file,
                    "determinism",
                    t.line,
                    "OS-seeded `thread_rng` in sim-core code; draw from the run's named \
                     ChaCha streams instead"
                        .to_string(),
                ));
                continue;
            }
            if (t.is_ident("Instant") || t.is_ident("SystemTime"))
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("now"))
            {
                out.push(finding(
                    file,
                    "determinism",
                    t.line,
                    format!(
                        "wall-clock `{}::now` in sim-core code; use the virtual clock \
                         (`SimTime`), or allowlist this profiling path",
                        t.text
                    ),
                ));
                continue;
            }
        }

        // `map.iter()`-style iteration on a tracked hash container.
        if tracked.iter().any(|n| n == &t.text)
            && toks.get(i + 1).is_some_and(|t| t.is_punct("."))
            && toks
                .get(i + 2)
                .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()))
            && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
        {
            if !ordered_within_window(toks, i + 3, cfg.sort_window) {
                let method = &toks[i + 2].text;
                out.push(finding(
                    file,
                    "determinism",
                    t.line,
                    format!(
                        "`{}.{method}()` iterates a hash container without a nearby sort; \
                         collect and sort before use (see blam::dissemination), or switch \
                         to a BTree collection",
                        t.text
                    ),
                ));
            }
            continue;
        }

        // `for x in &map`-style direct iteration.
        if t.is_ident("for") {
            if let Some(name_line) = for_loop_over(toks, i, &tracked) {
                out.push(finding(
                    file,
                    "determinism",
                    name_line,
                    "for-loop over a hash container iterates in nondeterministic order; \
                     collect and sort first, or switch to a BTree collection"
                        .to_string(),
                ));
            }
        }
    }
}

/// Collects the identifiers in this file that are bound to `HashMap`
/// or `HashSet` values: type ascriptions (`name: HashMap<…>` in
/// fields, params, and lets) and direct constructions
/// (`let name = HashMap::new()`).
pub(crate) fn tracked_hash_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back over a path prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokenKind::Ident {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        // Skip reference/mut sigils in ascriptions (`m: &mut HashMap`).
        let mut k = j - 1;
        while k > 0 && (toks[k].is_punct("&") || toks[k].is_ident("mut")) {
            k -= 1;
        }
        if toks[k].is_punct(":") && k > 0 && toks[k - 1].kind == TokenKind::Ident {
            names.push(toks[k - 1].text.clone());
        } else if toks[k].is_punct("=") && k > 0 && toks[k - 1].kind == TokenKind::Ident {
            names.push(toks[k - 1].text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

/// True when an order-establishing identifier appears within `window`
/// tokens after the iteration call at `start`.
fn ordered_within_window(toks: &[Token], start: usize, window: usize) -> bool {
    toks.iter()
        .skip(start)
        .take(window)
        .any(|t| t.kind == TokenKind::Ident && ORDER_OK.contains(&t.text.as_str()))
}

/// Detects `for <pat> in [&|&mut] [self.]name {` where `name` is a
/// tracked hash container, returning the line to report. Any call
/// parentheses between `in` and `{` defer to the method-call rule.
pub(crate) fn for_loop_over(toks: &[Token], for_idx: usize, tracked: &[String]) -> Option<u32> {
    // Find `in` within a short window, with no block start before it.
    let mut in_idx = None;
    for (off, t) in toks.iter().enumerate().skip(for_idx + 1).take(16) {
        if t.is_punct("{") {
            return None;
        }
        if t.is_ident("in") {
            in_idx = Some(off);
            break;
        }
    }
    let mut last_ident: Option<&Token> = None;
    for t in toks.iter().skip(in_idx? + 1).take(8) {
        if t.is_punct("{") {
            let name = last_ident?;
            return tracked.iter().any(|n| n == &name.text).then_some(name.line);
        }
        match t.kind {
            TokenKind::Ident if t.text != "mut" && t.text != "self" => last_ident = Some(t),
            TokenKind::Ident => {}
            TokenKind::Punct if t.text == "&" || t.text == "." => {}
            // Anything else (calls, ranges, literals) is not a bare
            // container expression.
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(
            "crates/netsim/src/x.rs",
            "netsim",
            FileKind::Lib,
            src.to_string(),
        );
        let mut out = Vec::new();
        check(&file, &Config::default(), &mut out);
        out
    }

    #[test]
    fn thread_rng_is_flagged() {
        let f = run("fn f() { let mut rng = rand::thread_rng(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("thread_rng"));
    }

    #[test]
    fn wall_clock_is_flagged_but_not_in_strings() {
        let f = run("fn f() { let t = Instant::now(); let s = \"Instant::now\"; }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn unsorted_iteration_is_flagged_sorted_is_not() {
        let bad = "struct S { m: HashMap<u32, u8> }\nfn f(s: &S) { for (k, v) in s.m.iter() { use_it(k, v); } }";
        assert_eq!(run(bad).len(), 1);
        let good = "struct S { m: HashMap<u32, u8> }\nfn f(s: &S) -> Vec<(u32, u8)> { let mut v: Vec<_> = s.m.iter().map(|(&k, &x)| (k, x)).collect(); v.sort_by_key(|e| e.0); v }";
        assert_eq!(run(good).len(), 0);
    }

    #[test]
    fn direct_for_loop_is_flagged() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for k in &m { go(k); } }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("for-loop"));
    }

    #[test]
    fn order_insensitive_reductions_pass() {
        let src = "fn f(m: &HashMap<u32, u8>) -> usize { m.keys().count() }";
        assert_eq!(run(src).len(), 0);
    }

    #[test]
    fn insert_get_contains_are_fine() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); let _ = m.get(&1); }";
        assert_eq!(run(src).len(), 0);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let x = Instant::now(); }\n}";
        assert_eq!(run(src).len(), 0);
    }

    #[test]
    fn non_sim_core_crates_are_out_of_scope() {
        let file = SourceFile::from_source(
            "crates/bench/src/bin/table1.rs",
            "bench",
            FileKind::Bin,
            "fn f() { let t = Instant::now(); }".to_string(),
        );
        let mut out = Vec::new();
        check(&file, &Config::default(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn allowlisted_profiling_path_may_read_the_clock() {
        let file = SourceFile::from_source(
            "crates/netsim/src/runner.rs",
            "netsim",
            FileKind::Lib,
            "fn f() { let t = Instant::now(); }".to_string(),
        );
        let mut out = Vec::new();
        check(&file, &Config::default(), &mut out);
        assert!(out.is_empty());
    }
}
