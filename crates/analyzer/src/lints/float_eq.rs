//! `float-eq`: `==` / `!=` against a float literal in non-test code.
//! Exact float comparison is almost always a latent bug in the energy
//! and degradation math; the few intentional sites (exact-zero
//! sentinels, display thresholds) carry a
//! `// analyzer: allow(float-eq, reason = …)` pragma.

use crate::lints::finding;
use crate::report::Finding;
use crate::tokenizer::TokenKind;
use crate::walk::{FileKind, SourceFile};

/// Runs the float-equality lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_punct("==") || t.is_punct("!=")) || file.is_test_code(i) {
            continue;
        }
        let prev_float = i > 0 && toks[i - 1].kind == TokenKind::Float;
        let next_float = toks.get(i + 1).is_some_and(|n| n.kind == TokenKind::Float);
        if prev_float || next_float {
            out.push(finding(
                file,
                "float-eq",
                t.line,
                format!(
                    "`{}` against a float literal; compare with a tolerance, or waive \
                     an intentional exact comparison with a pragma",
                    t.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file =
            SourceFile::from_source("crates/x/src/l.rs", "x", FileKind::Lib, src.to_string());
        let mut out = Vec::new();
        check(&file, &mut out);
        out
    }

    #[test]
    fn equality_against_float_literals_is_flagged() {
        let f = run("fn f(v: f64) -> bool { v == 0.0 }\nfn g(v: f64) -> bool { 1.5 != v }");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn variable_comparison_and_ordering_pass() {
        assert!(run("fn f(a: f64, b: f64) -> bool { a == b || a >= 1.0 }").is_empty());
    }

    #[test]
    fn integers_and_ranges_pass() {
        assert!(run("fn f(n: u32) -> bool { n == 0 && (0..10).contains(&n) }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t(v: f64) -> bool { v == 0.25 } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn float_in_string_is_not_a_literal() {
        assert!(run("fn f(s: &str) -> bool { s == \"0.0\" }").is_empty());
    }
}
