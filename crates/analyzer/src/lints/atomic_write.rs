//! `atomic-write`: durable files are written via the temp-then-rename
//! protocol (`write_string_atomic` / `write_json_atomic` in the
//! campaign spool), never with raw `fs::write` or `File::create`. A
//! raw write torn by a crash leaves a half-file that the resume path
//! then trusts; the spool's rename makes every observable state either
//! the old file or the complete new one.
//!
//! Exemptions: the owner files/functions that *implement* the
//! protocol, test code, and sites pragma'd with a reason (a streaming
//! writer that appends live, for example, cannot be renamed into
//! place).

use crate::config::Config;
use crate::lints::finding;
use crate::model::Model;
use crate::report::Finding;
use crate::walk::SourceFile;

/// Runs the atomic-write lint over one file.
pub fn check(fi: usize, files: &[SourceFile], model: &Model, cfg: &Config, out: &mut Vec<Finding>) {
    let file = &files[fi];
    if cfg
        .atomic_write_owner_files
        .iter()
        .any(|s| file.rel.ends_with(s))
    {
        return;
    }
    let toks = &file.tokens;
    for k in 2..toks.len() {
        let t = &toks[k];
        let raw = (t.is_ident("write") && toks[k - 2].is_ident("fs"))
            || (t.is_ident("create") && toks[k - 2].is_ident("File"));
        if !raw
            || !toks[k - 1].is_punct("::")
            || !toks.get(k + 1).is_some_and(|n| n.is_punct("("))
            || file.is_test_code(k)
        {
            continue;
        }
        // Inside an owner function (e.g. the analyzer's own
        // baseline-save helper), the raw write IS the protocol.
        let enclosing = model.enclosing_fn_names(fi, k);
        if enclosing
            .iter()
            .any(|n| cfg.atomic_write_owner_fns.iter().any(|o| o == n))
        {
            continue;
        }
        let what = if t.is_ident("write") {
            "fs::write"
        } else {
            "File::create"
        };
        out.push(finding(
            file,
            "atomic-write",
            t.line,
            format!(
                "raw `{what}` outside the spool; route durable writes through \
                 `blam_campaign::write_string_atomic`/`write_json_atomic` so a crash \
                 can never leave a torn file"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let (crate_name, kind) = crate::walk::classify(rel);
        let files = [SourceFile::from_source(
            rel,
            &crate_name,
            kind,
            src.to_string(),
        )];
        let cfg = Config::default();
        let model = Model::build(&files, &cfg);
        let mut out = Vec::new();
        check(0, &files, &model, &cfg, &mut out);
        out
    }

    #[test]
    fn raw_fs_write_and_file_create_are_flagged() {
        let src = "fn save(p: &Path) { std::fs::write(p, \"x\").ok(); }";
        let f = run("crates/campaign/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("fs::write"));
        let src = "fn open(p: &Path) { let f = File::create(p).unwrap_or_else(|e| die(e)); }";
        let f = run("crates/netsim/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("File::create"));
    }

    #[test]
    fn owner_file_and_owner_fn_are_exempt() {
        let src = "fn write_string_atomic(p: &Path) { std::fs::write(p, \"x\").ok(); }";
        assert!(run("crates/campaign/src/spool.rs", src).is_empty());
        // Same source in a non-owner file: the owner *function* name
        // still covers its internal raw write.
        assert!(run("crates/campaign/src/other.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { std::fs::write(p, \"x\").ok(); }\n}";
        assert!(run("crates/campaign/src/a.rs", src).is_empty());
        let src = "fn t() { std::fs::write(p, \"x\").ok(); }";
        assert!(run("crates/campaign/tests/a.rs", src).is_empty());
    }

    #[test]
    fn unrelated_write_calls_pass() {
        let src = "fn f(w: &mut W) { w.write(buf).ok(); fs_label::write(); self.fs.write; }";
        assert!(run("crates/campaign/src/a.rs", src).is_empty());
    }
}
