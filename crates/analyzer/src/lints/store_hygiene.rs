//! `store-hygiene`: the SoA `NodeStore`'s columns may only be touched
//! through its accessor surface outside the files that own the layout.
//!
//! The sharded engine re-indexes nodes: a cell engine's store holds a
//! *subset* of the deployment in dense local order while `global_id`
//! keeps the deployment-wide address, and `split`/`retain_gateway`
//! rebuild columns wholesale. Code that reaches into a hot column
//! directly (`store.period[i]`, `store.cold[i].placement`) bakes in
//! assumptions about that layout — local-vs-global indexing, column
//! co-residency, slot liveness — that the owner files maintain as one
//! audited unit. Everything else must go through the accessors
//! (`node_mut`, `global_id(i)`, `period_of(i)`, `placement_of(i)`, …),
//! which is also what keeps the hot/cold split refactorable.
//!
//! Mechanics: an identifier named `store` (or `*_store`) followed by
//! `.` and a known column name is a finding unless the next token is
//! `(` — `NodeStore` deliberately shadows column names with accessor
//! methods (`store.global_id(i)` is fine, `store.global_id[i]` is
//! not). Owner files (`store.rs`, `nodes.rs` — see
//! [`Config::store_owner_files`]) and test code are exempt.

use crate::config::Config;
use crate::lints::finding;
use crate::report::Finding;
use crate::tokenizer::TokenKind;
use crate::walk::{FileKind, SourceFile};

/// The `NodeStore` column fields, hot scalars plus the cold arena.
/// Keep in sync with the struct in `crates/netsim/src/store.rs`.
const STORE_COLUMNS: &[&str] = &[
    "global_id",
    "period",
    "windows",
    "period_start",
    "prev_period_start",
    "last_settle",
    "exchange_epoch",
    "current_phy_len",
    "current_channel",
    "pending_deadline",
    "pending_weight",
    "weight_updated_at",
    "packet",
    "discharge_sample",
    "recharge_sample",
    "cold_start",
    "wu_expired_latched",
    "cap_latched",
    "scratch_bounds",
    "forecast",
    "plan",
    "cold",
];

/// True when `name` plausibly binds a `NodeStore` (`store`, `_store`).
fn is_store_name(name: &str) -> bool {
    name == "store" || name.ends_with("_store")
}

/// Runs the store-hygiene lint over one file.
pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.store_hygiene_crates.contains(&file.crate_name)
        || !matches!(file.kind, FileKind::Lib | FileKind::Bin)
        || cfg.store_owner_files.iter().any(|s| file.rel.ends_with(s))
    {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.is_test_code(i) || toks[i].kind != TokenKind::Ident || !is_store_name(&toks[i].text)
        {
            continue;
        }
        let Some(column) = toks
            .get(i + 1)
            .filter(|t| t.is_punct("."))
            .and_then(|_| toks.get(i + 2))
            .filter(|t| t.kind == TokenKind::Ident && STORE_COLUMNS.contains(&t.text.as_str()))
        else {
            continue;
        };
        // `store.global_id(i)` is the accessor method, not the column.
        if toks.get(i + 3).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        out.push(finding(
            file,
            "store-hygiene",
            toks[i].line,
            format!(
                "direct access to NodeStore column `{}`; hot/cold columns are \
                 owned by store.rs/nodes.rs — go through the accessor surface \
                 (`node_mut`, `{}_of`/`{}(i)`, …) so local-vs-global indexing \
                 stays auditable",
                column.text, column.text, column.text
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::SourceFile;

    fn run_at(rel: &str, src: &str) -> Vec<Finding> {
        let (crate_name, kind) = crate::walk::classify(rel);
        let file = SourceFile::from_source(rel, &crate_name, kind, src.to_string());
        let mut out = Vec::new();
        check(&file, &Config::default(), &mut out);
        out
    }

    fn run(src: &str) -> Vec<Finding> {
        run_at("crates/netsim/src/x.rs", src)
    }

    #[test]
    fn direct_hot_column_read_is_flagged() {
        let f = run("fn f(store: &NodeStore, i: usize) -> Duration { store.period[i] }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`period`"), "{}", f[0].message);
    }

    #[test]
    fn cold_arena_poke_is_flagged() {
        let f = run("fn f(s: &mut Engine, i: usize) { s.store.cold[i].placement.sf = SF7; }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`cold`"));
    }

    #[test]
    fn accessor_methods_pass() {
        let src = "fn f(store: &mut NodeStore, i: usize) -> u32 {\
                   let _ = store.node_mut(i); let _ = store.period_of(i); store.global_id(i) }";
        assert_eq!(run(src).len(), 0);
    }

    #[test]
    fn owner_files_are_exempt() {
        let src = "fn f(store: &NodeStore, i: usize) -> u32 { store.global_id[i] }";
        assert_eq!(run_at("crates/netsim/src/store.rs", src).len(), 0);
        assert_eq!(run_at("crates/netsim/src/nodes.rs", src).len(), 0);
    }

    #[test]
    fn non_store_bindings_and_other_crates_are_out_of_scope() {
        // `restore` does not name a store; other crates have no NodeStore.
        let src = "fn f(restore: &Snapshot) -> u64 { restore.period }";
        assert_eq!(run(src).len(), 0);
        let src = "fn f(store: &KvStore) -> u64 { store.plan }";
        assert_eq!(run_at("crates/des/src/x.rs", src).len(), 0);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(store: &NodeStore) { \
                   let _ = store.windows.len(); }\n}";
        assert_eq!(run(src).len(), 0);
    }
}
