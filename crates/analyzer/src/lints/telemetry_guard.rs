//! `telemetry-guard`: telemetry must cost nothing when it is off.
//! Every `emit(` call site in the guarded crates (netsim) has to be
//! dominated by a cheap `enabled()` / `telemetry_on()` check in the
//! same function, so a disabled sink never even constructs the event.
//!
//! "Dominated" is approximated token-wise: a guard call must appear
//! earlier in the same function body. That matches the house idiom
//! `if self.telemetry_on() { self.emit(…) }` and stays a pure token
//! pass — no control-flow graph needed.

use crate::config::Config;
use crate::lints::finding;
use crate::report::Finding;
use crate::tokenizer::{Token, TokenKind};
use crate::walk::{FileKind, SourceFile};

/// Runs the telemetry-guard lint over one file.
pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || !cfg.telemetry_guard_crates.contains(&file.crate_name) {
        return;
    }
    let toks = &file.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") || file.is_test_code(i) {
            i += 1;
            continue;
        }
        let Some((body_start, body_end)) = fn_body(toks, i) else {
            i += 1;
            continue;
        };
        check_body(file, cfg, body_start, body_end, out);
        i = body_end + 1;
    }
}

/// From a `fn` keyword, locates the body's `{ … }` token range
/// (exclusive of the braces). Returns `None` for bodyless trait
/// method declarations.
fn fn_body(toks: &[Token], fn_at: usize) -> Option<(usize, usize)> {
    // Find the parameter list's `(`, skipping name and generics.
    let mut j = fn_at + 1;
    let mut angle = 0i32;
    loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "<" if t.kind == TokenKind::Punct => angle += 1,
            "<<" => angle += 2,
            ">" if t.kind == TokenKind::Punct => angle -= 1,
            ">>" => angle -= 2,
            "(" if angle == 0 => break,
            ";" if angle == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    // Match the parameter parens.
    let mut depth = 0i32;
    loop {
        let t = toks.get(j)?;
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    // Scan to the body `{` (or `;` for a declaration).
    loop {
        j += 1;
        let t = toks.get(j)?;
        if t.is_punct("{") {
            break;
        }
        if t.is_punct(";") {
            return None;
        }
    }
    let body_start = j + 1;
    let mut braces = 1i32;
    loop {
        j += 1;
        let t = toks.get(j)?;
        if t.is_punct("{") {
            braces += 1;
        } else if t.is_punct("}") {
            braces -= 1;
            if braces == 0 {
                return Some((body_start, j));
            }
        }
    }
}

/// Reports every `.emit(` call in `body` that has no guard call
/// earlier in the same body.
fn check_body(
    file: &SourceFile,
    cfg: &Config,
    body_start: usize,
    body_end: usize,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    for k in body_start..body_end {
        let is_emit_call = toks[k].is_ident("emit")
            && k > 0
            && (toks[k - 1].is_punct(".") || toks[k - 1].is_punct("::"))
            && toks.get(k + 1).is_some_and(|t| t.is_punct("("));
        if !is_emit_call {
            continue;
        }
        let guarded = toks[body_start..k].iter().enumerate().any(|(off, t)| {
            t.kind == TokenKind::Ident
                && cfg.guard_fns.iter().any(|g| g.as_str() == t.text)
                && toks
                    .get(body_start + off + 1)
                    .is_some_and(|n| n.is_punct("("))
        });
        if !guarded {
            out.push(finding(
                file,
                "telemetry-guard",
                toks[k].line,
                "`emit(` without a preceding `enabled()`/`telemetry_on()` check in this \
                 function; guard it so disabled telemetry stays zero-cost"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(
            "crates/netsim/src/x.rs",
            "netsim",
            FileKind::Lib,
            src.to_string(),
        );
        let mut out = Vec::new();
        check(&file, &Config::default(), &mut out);
        out
    }

    #[test]
    fn guarded_emit_passes() {
        let src = "fn f(&mut self) { if self.telemetry_on() { self.emit(now, i, kind); } }";
        assert!(run(src).is_empty());
        let src = "fn g(&mut self) { if self.sink.enabled() { self.emit(now, i, kind); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unguarded_emit_is_flagged() {
        let src = "fn f(&mut self) {\n self.emit(now, i, kind);\n}";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn guard_in_another_function_does_not_count() {
        let src = "fn a(&self) -> bool { self.telemetry_on() }\nfn b(&mut self) { self.emit(x); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn the_emit_definition_itself_is_not_a_call() {
        let src = "fn emit(&mut self, e: Event) { self.sink.record(&e); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let file = SourceFile::from_source(
            "crates/telemetry/src/recorder.rs",
            "telemetry",
            FileKind::Lib,
            "fn f(&mut self) { self.emit(&record); }".to_string(),
        );
        let mut out = Vec::new();
        check(&file, &Config::default(), &mut out);
        assert!(out.is_empty());
    }
}
