//! `telemetry-guard`: telemetry must cost nothing when it is off.
//! Every `emit(` call site in the guarded crates (netsim) has to be
//! dominated by a cheap `enabled()` / `telemetry_on()` check in the
//! same function, so a disabled sink never even constructs the event.
//!
//! "Dominated" is approximated token-wise: a guard call must appear
//! earlier in the same function body. Since v2 the guard set is
//! interprocedural: the call-graph model widens the configured names
//! with every function that transitively calls one (`tracing()` that
//! wraps `enabled()` counts), so the wrapper idiom no longer needs a
//! pragma. Function bodies come from the shared parser; as before, a
//! nested fn or closure is checked against the guards of its
//! enclosing top-level function (a guard taken outside an inline
//! closure still dominates the emit inside it).

use crate::config::Config;
use crate::lints::finding;
use crate::model::Model;
use crate::report::Finding;
use crate::tokenizer::TokenKind;
use crate::walk::{FileKind, SourceFile};

/// Runs the telemetry-guard lint over one file, using the model's
/// parsed bodies and interprocedural guard set.
pub fn check(fi: usize, files: &[SourceFile], model: &Model, cfg: &Config, out: &mut Vec<Finding>) {
    let file = &files[fi];
    if file.kind != FileKind::Lib || !cfg.telemetry_guard_crates.contains(&file.crate_name) {
        return;
    }
    for decl in &model.decls[fi] {
        // Top-level functions only: nested declarations are inside
        // the enclosing body range and checked as part of it.
        if decl.parent.is_some() || decl.is_closure || file.is_test_code(decl.fn_tok) {
            continue;
        }
        check_body(file, model, decl.body.0, decl.body.1, out);
    }
}

/// Reports every `.emit(` call in `body` that has no guard call
/// earlier in the same body.
fn check_body(
    file: &SourceFile,
    model: &Model,
    body_start: usize,
    body_end: usize,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    for k in body_start..body_end {
        let is_emit_call = toks[k].is_ident("emit")
            && k > 0
            && (toks[k - 1].is_punct(".") || toks[k - 1].is_punct("::"))
            && toks.get(k + 1).is_some_and(|t| t.is_punct("("));
        if !is_emit_call {
            continue;
        }
        let guarded = toks[body_start..k].iter().enumerate().any(|(off, t)| {
            t.kind == TokenKind::Ident
                && model.guard_fns.contains(&t.text)
                && toks
                    .get(body_start + off + 1)
                    .is_some_and(|n| n.is_punct("("))
        });
        if !guarded {
            out.push(finding(
                file,
                "telemetry-guard",
                toks[k].line,
                "`emit(` without a preceding `enabled()`/`telemetry_on()` check in this \
                 function; guard it so disabled telemetry stays zero-cost"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let files = [SourceFile::from_source(
            "crates/netsim/src/x.rs",
            "netsim",
            FileKind::Lib,
            src.to_string(),
        )];
        let cfg = Config::default();
        let model = Model::build(&files, &cfg);
        let mut out = Vec::new();
        check(0, &files, &model, &cfg, &mut out);
        out
    }

    #[test]
    fn guarded_emit_passes() {
        let src = "fn f(&mut self) { if self.telemetry_on() { self.emit(now, i, kind); } }";
        assert!(run(src).is_empty());
        let src = "fn g(&mut self) { if self.sink.enabled() { self.emit(now, i, kind); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unguarded_emit_is_flagged() {
        let src = "fn f(&mut self) {\n self.emit(now, i, kind);\n}";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn guard_in_another_function_does_not_count() {
        let src = "fn a(&self) -> bool { self.telemetry_on() }\nfn b(&mut self) { self.emit(x); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn a_guard_wrapper_one_call_away_counts() {
        let src = "fn tracing(&self) -> bool { self.opts.enabled() }\n\
                   fn f(&mut self) { if self.tracing() { self.emit(x); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn an_emit_wrapper_is_not_a_guard() {
        // `record` calls emit and emit must not launder itself into
        // the guard set through it.
        let src = "fn record(&mut self) { self.emit(x); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn the_emit_definition_itself_is_not_a_call() {
        let src = "fn emit(&mut self, e: Event) { self.sink.record(&e); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let files = [SourceFile::from_source(
            "crates/telemetry/src/recorder.rs",
            "telemetry",
            FileKind::Lib,
            "fn f(&mut self) { self.emit(&record); }".to_string(),
        )];
        let cfg = Config::default();
        let model = Model::build(&files, &cfg);
        let mut out = Vec::new();
        check(0, &files, &model, &cfg, &mut out);
        assert!(out.is_empty());
    }
}
