//! `cache-order`: memo/cache containers with iterated state must use
//! an ordered representation, or collect-and-sort at every fold.
//!
//! The hot-path caches introduced for the engine optimizations (the
//! airtime memo table, the TX-energy memo, the gateway ledger) feed
//! floating-point folds whose *result bits* depend on visit order —
//! float addition is not associative. The general `determinism` lint
//! excuses commutative-looking reductions (`sum`, `fold`, `max`, …)
//! after a hash iteration, which is fine for counting but wrong for
//! cache state that flows into energy/degradation arithmetic. This
//! lint closes that gap with a stricter rule, scoped to bindings that
//! *name themselves* caches:
//!
//! * Any `HashMap`/`HashSet` binding whose name contains `cache`,
//!   `memo` or `lookup` is tracked.
//! * Iterating a tracked binding (`.iter()`, `.values()`, `for … in`,
//!   `drain`, …) is a finding unless an explicit sort or an ordered
//!   collection (`BTreeMap`/`BTreeSet`) appears within the
//!   configured token window. Reductions do **not** excuse it.
//!
//! The repo's own caches pass by construction: the airtime table is a
//! dense `Vec` indexed by cell, the TX-energy memo is a single-entry
//! struct, and the ledger keeps `BTreeMap`s (ascending node-id order).

use crate::config::Config;
use crate::lints::determinism::{for_loop_over, tracked_hash_names};
use crate::lints::finding;
use crate::report::Finding;
use crate::tokenizer::{Token, TokenKind};
use crate::walk::{FileKind, SourceFile};

/// Name fragments that mark a binding as cache state.
const CACHE_FRAGMENTS: &[&str] = &["cache", "memo", "lookup"];

/// Methods on hash containers that observe iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// The only identifiers that excuse a cache iteration: explicit sorts
/// and ordered collections. Deliberately **no** reductions — a float
/// fold over hash order is exactly the bug this lint exists to catch.
const STRICT_ORDER_OK: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted",
    "BTreeMap",
    "BTreeSet",
];

fn is_cache_name(name: &str) -> bool {
    let lower = name.to_lowercase();
    CACHE_FRAGMENTS.iter().any(|frag| lower.contains(frag))
}

fn sorted_within_window(toks: &[Token], start: usize, window: usize) -> bool {
    toks.iter()
        .skip(start)
        .take(window)
        .any(|t| t.kind == TokenKind::Ident && STRICT_ORDER_OK.contains(&t.text.as_str()))
}

/// Runs the cache-order lint over one file.
pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.sim_core_crates.contains(&file.crate_name)
        || !matches!(file.kind, FileKind::Lib | FileKind::Bin)
    {
        return;
    }
    let toks = &file.tokens;
    let tracked: Vec<String> = tracked_hash_names(toks)
        .into_iter()
        .filter(|n| is_cache_name(n))
        .collect();
    if tracked.is_empty() {
        return;
    }

    for i in 0..toks.len() {
        if file.is_test_code(i) || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let t = &toks[i];

        // `cache.iter()`-style iteration on a tracked cache binding.
        if tracked.iter().any(|n| n == &t.text)
            && toks.get(i + 1).is_some_and(|t| t.is_punct("."))
            && toks
                .get(i + 2)
                .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()))
            && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
        {
            if !sorted_within_window(toks, i + 3, cfg.sort_window) {
                let method = &toks[i + 2].text;
                out.push(finding(
                    file,
                    "cache-order",
                    t.line,
                    format!(
                        "cache `{}` is a hash container and `.{method}()` observes its \
                         nondeterministic order; use a BTree map/set or a dense indexed \
                         table, or collect-and-sort before folding (float reductions \
                         are order-sensitive)",
                        t.text
                    ),
                ));
            }
            continue;
        }

        // `for x in &cache`-style direct iteration.
        if t.is_ident("for") {
            if let Some(line) = for_loop_over(toks, i, &tracked) {
                out.push(finding(
                    file,
                    "cache-order",
                    line,
                    "for-loop over a hash-container cache observes nondeterministic \
                     order; use a BTree map/set or a dense indexed table"
                        .to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(
            "crates/lora-phy/src/x.rs",
            "lora-phy",
            FileKind::Lib,
            src.to_string(),
        );
        let mut out = Vec::new();
        check(&file, &Config::default(), &mut out);
        out
    }

    #[test]
    fn summed_hash_cache_is_flagged_despite_the_reduction() {
        // The general determinism lint would pass this (`sum` is on its
        // ORDER_OK list); cache-order must not.
        let src = "struct S { airtime_cache: HashMap<u32, f64> }\n\
                   fn f(s: &S) -> f64 { s.airtime_cache.values().sum() }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "cache-order");
        assert!(f[0].message.contains("airtime_cache"));
    }

    #[test]
    fn for_loop_over_hash_cache_is_flagged() {
        let src = "fn f() { let mut memo_table = HashMap::new(); memo_table.insert(1, 2.0); \
                   for v in &memo_table { use_it(v); } }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("for-loop"));
    }

    #[test]
    fn collect_then_sort_passes() {
        let src = "struct S { energy_cache: HashMap<u32, f64> }\n\
                   fn f(s: &S) -> Vec<(u32, f64)> { \
                   let mut v: Vec<_> = s.energy_cache.iter().map(|(&k, &x)| (k, x)).collect(); \
                   v.sort_by_key(|e| e.0); v }";
        assert_eq!(run(src).len(), 0);
    }

    #[test]
    fn non_cache_hash_bindings_are_out_of_scope() {
        // Plain hash containers stay the determinism lint's business.
        let src = "struct S { inflight: HashMap<u32, f64> }\n\
                   fn f(s: &S) -> f64 { s.inflight.values().sum() }";
        assert_eq!(run(src).len(), 0);
    }

    #[test]
    fn ordered_and_dense_caches_pass() {
        let src = "struct S { ledger_cache: BTreeMap<u32, f64>, airtime_lookup: Vec<f64> }\n\
                   fn f(s: &S) -> f64 { s.ledger_cache.values().sum::<f64>() \
                   + s.airtime_lookup.iter().sum::<f64>() }";
        assert_eq!(run(src).len(), 0);
    }

    #[test]
    fn point_lookups_on_a_hash_cache_pass() {
        let src = "fn f() { let mut sf_cache = HashMap::new(); sf_cache.insert(7, 0.1); \
                   let _ = sf_cache.get(&7); }";
        assert_eq!(run(src).len(), 0);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let mut c_cache = HashMap::new(); \
                   c_cache.insert(1, 2.0); for v in &c_cache { go(v); } }\n}";
        assert_eq!(run(src).len(), 0);
    }

    #[test]
    fn non_sim_core_crates_are_out_of_scope() {
        let file = SourceFile::from_source(
            "crates/bench/src/bin/table1.rs",
            "bench",
            FileKind::Bin,
            "fn f(c_cache: &HashMap<u32, f64>) -> f64 { c_cache.values().sum() }".to_string(),
        );
        let mut out = Vec::new();
        check(&file, &Config::default(), &mut out);
        assert!(out.is_empty());
    }
}
