//! The lint battery. Each lint is a token-pattern pass over one
//! [`SourceFile`](crate::walk::SourceFile); all of them push
//! [`Finding`](crate::report::Finding)s into a shared vector and the
//! library layer applies pragmas and the baseline afterwards.

pub mod cache_order;
pub mod determinism;
pub mod float_eq;
pub mod panic_hygiene;
pub mod store_hygiene;
pub mod telemetry_guard;
pub mod unit_safety;

use crate::report::Finding;
use crate::walk::SourceFile;

/// Builds a finding against `file` with the snippet filled in.
pub(crate) fn finding(
    file: &SourceFile,
    lint: &'static str,
    line: u32,
    message: String,
) -> Finding {
    Finding {
        lint,
        file: file.rel.clone(),
        line,
        message,
        snippet: file.snippet(line).to_string(),
    }
}
