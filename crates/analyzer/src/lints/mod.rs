//! The lint battery. The first-generation lints are token-pattern
//! passes over one [`SourceFile`]; the v2
//! lints (rng-streams, lock-discipline, atomic-write,
//! telemetry-guard) additionally consult the crate-wide
//! [`Model`](crate::model::Model) — parsed function bodies, the call
//! graph, and its fixpoint summaries. All of them push
//! [`Finding`]s into a shared vector and the
//! library layer applies pragmas and the baseline afterwards.

pub mod atomic_write;
pub mod cache_order;
pub mod determinism;
pub mod float_eq;
pub mod lock_discipline;
pub mod panic_hygiene;
pub mod rng_streams;
pub mod store_hygiene;
pub mod telemetry_guard;
pub mod unit_safety;

use crate::report::Finding;
use crate::walk::SourceFile;

/// Builds a finding against `file` with the snippet filled in.
pub(crate) fn finding(
    file: &SourceFile,
    lint: &'static str,
    line: u32,
    message: String,
) -> Finding {
    Finding {
        lint,
        file: file.rel.clone(),
        line,
        message,
        snippet: file.snippet(line).to_string(),
    }
}
