//! `rng-streams`: every name handed to `RngSeeder::stream` /
//! `stream_indexed` must be a provable string literal, registered in
//! the stream catalog, and unique within its function.
//!
//! The seeder hashes the stream name into the ChaCha key, so the name
//! *is* the statistical identity of the stream: two call sites
//! sharing one name draw correlated randomness (silently breaking
//! shard parity and fault independence), and a dynamically built name
//! cannot be audited against the catalog at all. Resolution is
//! interprocedural: a name that arrives through a parameter is
//! resolved through every caller in the call-graph model
//! (`LossState::build(…, "fault-ul", …)` proves the parameter), up to
//! a small depth.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::lints::finding;
use crate::model::{DeclId, Model};
use crate::report::Finding;
use crate::tokenizer::TokenKind;
use crate::walk::{FileKind, SourceFile};

/// How a stream-name argument resolved.
enum Resolved {
    /// Provable literal name(s) — possibly several via callers.
    Names(Vec<String>),
    /// A computed expression; cannot be a catalog literal.
    Dynamic,
    /// A parameter with no known callers (or too deep to chase).
    Unknown,
}

/// Runs the rng-streams lint over one file. `catalog` is the merged
/// config + baseline stream registry.
pub fn check(
    fi: usize,
    files: &[SourceFile],
    model: &Model,
    cfg: &Config,
    catalog: &BTreeMap<String, String>,
    out: &mut Vec<Finding>,
) {
    let file = &files[fi];
    if file.kind == FileKind::Test
        || cfg
            .rng_stream_owner_files
            .iter()
            .any(|s| file.rel.ends_with(s))
    {
        return;
    }
    for di in 0..model.decls[fi].len() {
        // Per-function uniqueness: name → line of the first sink site
        // that draws it in this declaration's own scope.
        let mut drawn: BTreeMap<String, u32> = BTreeMap::new();
        for call in &model.calls[fi][di] {
            let is_sink =
                call.method && (call.callee == "stream" || call.callee == "stream_indexed");
            if !is_sink || file.is_test_code(call.tok) {
                continue;
            }
            let Some(&arg) = call.args.first() else {
                continue;
            };
            let mut seen = Vec::new();
            match resolve_arg(files, model, (fi, di), arg, 0, &mut seen) {
                Resolved::Names(names) => {
                    for name in names {
                        if !catalog.contains_key(&name) {
                            out.push(finding(
                                file,
                                "rng-streams",
                                call.line,
                                format!(
                                    "stream name \"{name}\" is not in the registered catalog; \
                                     add it to `[rng-streams]` in analyzer-baseline.toml with \
                                     its purpose (see `blam-analyze --list-streams`)"
                                ),
                            ));
                        }
                        if let Some(&first) = drawn.get(&name) {
                            if first != call.line {
                                out.push(finding(
                                    file,
                                    "rng-streams",
                                    call.line,
                                    format!(
                                        "stream name \"{name}\" is already drawn at line \
                                         {first} in this function; reusing a name correlates \
                                         the two ChaCha streams"
                                    ),
                                ));
                            }
                        } else {
                            drawn.insert(name, call.line);
                        }
                    }
                }
                Resolved::Dynamic => out.push(finding(
                    file,
                    "rng-streams",
                    call.line,
                    "stream name is built dynamically; pass a literal from the registered \
                     catalog so the stream partition stays auditable"
                        .to_string(),
                )),
                Resolved::Unknown => out.push(finding(
                    file,
                    "rng-streams",
                    call.line,
                    "cannot resolve this stream name to a literal through any caller; \
                     thread a catalog literal down to this call"
                        .to_string(),
                )),
            }
        }
    }
}

/// Resolves one argument token range to literal stream names, chasing
/// parameters through callers up to depth 4.
fn resolve_arg(
    files: &[SourceFile],
    model: &Model,
    at: DeclId,
    arg: (usize, usize),
    depth: usize,
    seen: &mut Vec<DeclId>,
) -> Resolved {
    let (fi, di) = at;
    let toks = &files[fi].tokens;
    // Strip leading `&` reference tokens.
    let mut start = arg.0;
    while start < arg.1 && toks[start].is_punct("&") {
        start += 1;
    }
    if arg.1 <= start {
        return Resolved::Dynamic;
    }
    if arg.1 - start == 1 && toks[start].kind == TokenKind::Str {
        return Resolved::Names(vec![unquote(&toks[start].text)]);
    }
    if arg.1 - start != 1 || toks[start].kind != TokenKind::Ident {
        return Resolved::Dynamic;
    }
    let name = &toks[start].text;
    let decl = &model.decls[fi][di];

    // A simple in-scope literal binding: `let name = "…";`.
    for k in decl.body.0..decl.body.1 {
        if toks[k].is_ident("let")
            && toks.get(k + 1).is_some_and(|t| t.is_ident(name))
            && toks.get(k + 2).is_some_and(|t| t.is_punct("="))
        {
            return if toks.get(k + 3).is_some_and(|t| t.kind == TokenKind::Str)
                && toks.get(k + 4).is_some_and(|t| t.is_punct(";"))
            {
                Resolved::Names(vec![unquote(&toks[k + 3].text)])
            } else {
                Resolved::Dynamic
            };
        }
    }

    // A parameter: resolve through every caller.
    let Some(pos) = decl.params.iter().position(|p| p == name) else {
        return Resolved::Dynamic;
    };
    if depth >= 4 || seen.contains(&at) {
        return Resolved::Unknown;
    }
    seen.push(at);
    let Some(callers) = model.callers.get(&at) else {
        return Resolved::Unknown;
    };
    let mut names = Vec::new();
    for &((cf, cd), ci) in callers {
        let call = &model.calls[cf][cd][ci];
        let Some(&caller_arg) = call.args.get(pos) else {
            return Resolved::Unknown;
        };
        match resolve_arg(files, model, (cf, cd), caller_arg, depth + 1, seen) {
            Resolved::Names(more) => names.extend(more),
            other => return other,
        }
    }
    if names.is_empty() {
        Resolved::Unknown
    } else {
        names.sort();
        names.dedup();
        Resolved::Names(names)
    }
}

/// The payload of a string-literal token (`"mac"` → `mac`, raw and
/// byte strings included).
fn unquote(text: &str) -> String {
    let first = text.find('"').map_or(0, |i| i + 1);
    let last = text.rfind('"').unwrap_or(text.len());
    if first <= last {
        text[first..last].to_string()
    } else {
        text.to_string()
    }
}
