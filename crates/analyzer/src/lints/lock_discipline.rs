//! `lock-discipline`: three rules for code that holds a `MutexGuard`
//! in the service crates (campaign, telemetry, netsim):
//!
//! 1. **No blocking sink under a guard.** Socket and file I/O while a
//!    lock is held stalls every thread contending for it — the daemon
//!    must build its response under the registry lock and respond
//!    after dropping it. The one sanctioned shape is the
//!    mutex-protects-the-writer idiom, where the sink goes *through*
//!    the guard itself (`w.write_all(…)` on the guard `w`, or a
//!    `lock().…` chain).
//! 2. **`Condvar::wait` inside a loop.** Spurious wakeups are legal;
//!    a wait whose predicate is not re-checked in a surrounding loop
//!    is a latent race.
//! 3. **Nested locks follow the order catalog.** A second `.lock()`
//!    (direct, via a `MutexGuard`-returning helper, or transitively
//!    inside a callee per the call-graph summary) under a held guard
//!    is allowed only for `(outer, inner)` class pairs registered in
//!    the config — everything else is a deadlock waiting for its
//!    second thread.
//!
//! Guard lifetimes are tracked lexically: a `let`-bound guard dies at
//! `drop(name)` or its block's end; an unbound guard expression dies
//! at the end of its statement. Closure bodies are analyzed as part
//! of the enclosing function (inline iterator closures run under the
//! guard); nested `fn` items are not.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::lints::finding;
use crate::model::{direct_sink, lock_class, Model};
use crate::report::Finding;
use crate::syntax::Call;
use crate::walk::{FileKind, SourceFile};

/// One live lock guard during the lexical walk.
struct Guard {
    /// Binding name; `None` for an unbound temporary.
    name: Option<String>,
    /// Lock class (see [`lock_class`]).
    class: String,
    /// Brace depth the binding lives at (temporaries ignore this).
    depth: i32,
}

/// Names of Condvar wait methods (all take and return the guard).
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// Runs the lock-discipline lint over one file.
pub fn check(fi: usize, files: &[SourceFile], model: &Model, cfg: &Config, out: &mut Vec<Finding>) {
    let file = &files[fi];
    if file.kind == FileKind::Test || !cfg.lock_discipline_crates.contains(&file.crate_name) {
        return;
    }
    let helper_names: BTreeSet<&str> = model
        .lock_helpers
        .keys()
        .map(|&(hf, hd)| model.decls[hf][hd].name.as_str())
        .collect();
    for (di, decl) in model.decls[fi].iter().enumerate() {
        if decl.parent.is_some() || decl.is_closure || file.is_test_code(decl.fn_tok) {
            continue;
        }
        check_fn(fi, di, files, model, cfg, &helper_names, out);
    }
}

#[allow(clippy::too_many_lines)]
fn check_fn(
    fi: usize,
    di: usize,
    files: &[SourceFile],
    model: &Model,
    cfg: &Config,
    helper_names: &BTreeSet<&str>,
    out: &mut Vec<Finding>,
) {
    let file = &files[fi];
    let toks = &file.tokens;
    let decl = &model.decls[fi][di];
    let skip = model.nested_fn_ranges(fi, di);
    let calls = model.subtree_calls(fi, di);
    let mut call_at = calls.iter().map(|c| (c.tok, *c)).collect::<Vec<_>>();
    call_at.sort_by_key(|(tok, _)| *tok);
    let mut next_call = 0usize;

    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    // Per-block flags: is this block a loop body?
    let mut blocks: Vec<bool> = Vec::new();
    let mut pending_loop = false;

    let mut k = decl.body.0;
    'walk: while k < decl.body.1 {
        for &(es, ee) in &skip {
            if k >= es && k < ee {
                k = ee;
                continue 'walk;
            }
        }
        let t = &toks[k];
        if t.is_ident("loop") || t.is_ident("while") || t.is_ident("for") {
            pending_loop = true;
        } else if t.is_punct("{") {
            guards.retain(|g| g.name.is_some());
            blocks.push(pending_loop);
            pending_loop = false;
            depth += 1;
        } else if t.is_punct("}") {
            guards.retain(|g| g.name.is_some());
            blocks.pop();
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
        } else if t.is_punct(";") {
            guards.retain(|g| g.name.is_some());
        }

        while next_call < call_at.len() && call_at[next_call].0 < k {
            next_call += 1;
        }
        if next_call < call_at.len() && call_at[next_call].0 == k {
            let call = call_at[next_call].1;
            next_call += 1;
            handle_call(
                file,
                toks,
                model,
                cfg,
                helper_names,
                call,
                fi,
                k,
                depth,
                &blocks,
                &mut guards,
                out,
            );
        }
        k += 1;
    }
}

/// Processes one call during the walk: guard drops, acquisitions
/// (with the nested-order check), Condvar waits, and blocking sinks.
#[allow(clippy::too_many_arguments)]
fn handle_call(
    file: &SourceFile,
    toks: &[crate::tokenizer::Token],
    model: &Model,
    cfg: &Config,
    helper_names: &BTreeSet<&str>,
    call: &Call,
    fi: usize,
    k: usize,
    depth: i32,
    blocks: &[bool],
    guards: &mut Vec<Guard>,
    out: &mut Vec<Finding>,
) {
    // `drop(name)` releases a named guard early.
    if !call.method && call.callee == "drop" && call.args.len() == 1 {
        let (as_, ae) = call.args[0];
        if ae - as_ == 1 {
            let dropped = &toks[as_].text;
            guards.retain(|g| g.name.as_deref() != Some(dropped.as_str()));
        }
        return;
    }

    // The guard names active right now (for receiver exemptions).
    let guard_names: Vec<&str> = guards.iter().filter_map(|g| g.name.as_deref()).collect();
    let on_guard = call
        .recv
        .first()
        .is_some_and(|r| guard_names.contains(&r.as_str()));
    let chained_on_lock = call
        .chain
        .iter()
        .any(|c| c == "lock" || helper_names.contains(c.as_str()));

    // Acquisitions: direct `.lock()` or a MutexGuard-returning helper.
    let acquired = if call.method && call.callee == "lock" {
        Some(lock_class(&call.recv))
    } else {
        model.helper_class(fi, call).map(str::to_string)
    };
    if let Some(class) = acquired {
        for held in guards.iter() {
            let allowed = cfg
                .lock_order
                .iter()
                .any(|(a, b)| *a == held.class && *b == class);
            if !allowed {
                out.push(finding(
                    file,
                    "lock-discipline",
                    call.line,
                    format!(
                        "acquiring lock `{class}` while `{}` is held is not in the \
                         lock-order catalog; nested locks need a registered fixed order \
                         to stay deadlock-free",
                        held.class
                    ),
                ));
            }
        }
        // `let g = lock(…)` binds the guard only when nothing but
        // poison adapters follow; `let spool = lock(…).jobs.iter()…`
        // consumes the guard inside the statement (a temporary).
        let name = if guard_survives_chain(toks, k) {
            binding_name(toks, k)
        } else {
            None
        };
        guards.push(Guard { name, class, depth });
        return;
    }

    // Condvar waits must sit inside a loop that re-checks the
    // predicate.
    if call.method && WAIT_METHODS.contains(&call.callee.as_str()) {
        let in_loop = blocks.iter().any(|&b| b);
        if !in_loop {
            out.push(finding(
                file,
                "lock-discipline",
                call.line,
                format!(
                    "`Condvar::{}` outside a loop; spurious wakeups are legal, so the \
                     predicate must be re-checked in a surrounding `while`/`loop`",
                    call.callee
                ),
            ));
        }
        return;
    }

    if guards.is_empty() {
        return;
    }

    // Blocking sinks under a guard — unless the sink goes through the
    // guard itself (mutex-protects-the-writer).
    let sink = direct_sink(call, cfg).or_else(|| {
        model
            .sink_fns
            .get(&call.callee)
            .map(|via| format!("`{}` ({via})", call.callee))
    });
    if let Some(desc) = sink {
        if !on_guard && !chained_on_lock {
            let held = &guards[guards.len() - 1];
            out.push(finding(
                file,
                "lock-discipline",
                call.line,
                format!(
                    "{desc} performs blocking I/O while lock `{}` is held; build the \
                     payload under the lock, drop the guard, then do the I/O",
                    held.class
                ),
            ));
        }
        return;
    }

    // Transitive lock acquisition inside a callee.
    if let Some(classes) = model.lock_summary.get(&call.callee) {
        for class in classes {
            for held in guards.iter() {
                let allowed = cfg
                    .lock_order
                    .iter()
                    .any(|(a, b)| *a == held.class && b == class);
                if !allowed {
                    out.push(finding(
                        file,
                        "lock-discipline",
                        call.line,
                        format!(
                            "`{}` acquires lock `{class}` while `{}` is held, and \
                             `({}, {class})` is not in the lock-order catalog",
                            call.callee, held.class, held.class
                        ),
                    ));
                }
            }
        }
    }
}

/// True when the expression starting at the acquisition call at token
/// `k` still *is* the guard once its method chain ends: only poison
/// adapters (`unwrap`, `expect`, `unwrap_or_else`) may follow. A
/// field access or any other chained method (`.jobs`, `.iter()`,
/// `.map(…)`) consumes the guard inside the statement, so the `let`
/// binding — if any — holds a derived value, not the lock.
fn guard_survives_chain(toks: &[crate::tokenizer::Token], k: usize) -> bool {
    let Some(open) = toks.get(k + 1).filter(|t| t.is_punct("(")).map(|_| k + 1) else {
        return true;
    };
    let Some(close) = crate::syntax::matching_paren(toks, open) else {
        return true;
    };
    let mut j = close + 1;
    loop {
        let Some(t) = toks.get(j) else { return true };
        if t.is_punct("?") {
            j += 1;
        } else if t.is_punct(".") {
            let adapter = toks.get(j + 1).is_some_and(|n| {
                n.is_ident("unwrap") || n.is_ident("expect") || n.is_ident("unwrap_or_else")
            }) && toks.get(j + 2).is_some_and(|p| p.is_punct("("));
            if !adapter {
                return false;
            }
            match crate::syntax::matching_paren(toks, j + 2) {
                Some(c) => j = c + 1,
                None => return true,
            }
        } else {
            return true;
        }
    }
}

/// When the statement containing token `k` is `let [mut] name = …`,
/// returns the binding name; `None` for unbound expressions.
fn binding_name(toks: &[crate::tokenizer::Token], k: usize) -> Option<String> {
    // Scan back to the statement/block boundary.
    let mut j = k;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            j += 1;
            break;
        }
        if j == 0 {
            break;
        }
    }
    if !toks.get(j)?.is_ident("let") {
        return None;
    }
    let mut n = j + 1;
    if toks.get(n)?.is_ident("mut") {
        n += 1;
    }
    let name = toks.get(n)?;
    if name.kind == crate::tokenizer::TokenKind::Ident && toks.get(n + 1)?.is_punct("=") {
        Some(name.text.clone())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let (crate_name, kind) = crate::walk::classify("crates/campaign/src/x.rs");
        let files = [SourceFile::from_source(
            "crates/campaign/src/x.rs",
            &crate_name,
            kind,
            src.to_string(),
        )];
        let cfg = Config::default();
        let model = Model::build(&files, &cfg);
        let mut out = Vec::new();
        check(0, &files, &model, &cfg, &mut out);
        out
    }

    #[test]
    fn sink_under_a_held_guard_is_flagged() {
        let src = "fn route(&self) {\n\
                   let g = self.registry.state.lock().unwrap_or_else(PoisonError::into_inner);\n\
                   self.conn.respond_json(&g.body);\n\
                   }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("respond_json"), "{}", f[0].message);
        assert!(f[0].message.contains("registry.state"), "{}", f[0].message);
    }

    #[test]
    fn build_then_drop_then_respond_passes() {
        let src = "fn route(&self) {\n\
                   let g = self.registry.state.lock().unwrap_or_else(PoisonError::into_inner);\n\
                   let body = g.body.clone();\n\
                   drop(g);\n\
                   self.conn.respond_json(&body);\n\
                   }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn block_scoped_guards_die_at_the_brace() {
        let src = "fn route(&self) {\n\
                   let body = { let g = self.state.lock().unwrap_or_else(f); g.body.clone() };\n\
                   self.conn.respond_json(&body);\n\
                   }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn the_sink_through_the_guard_itself_is_the_sanctioned_shape() {
        // Mutex-protects-the-writer: the guard *is* the writer.
        let src = "fn write_line(&self) {\n\
                   let mut w = self.shared.lock().unwrap_or_else(PoisonError::into_inner);\n\
                   w.write_all(b\"x\").ok();\n\
                   }";
        assert!(run(src).is_empty());
        // …and the chained form.
        let src = "fn flush(&self) { self.shared.lock().unwrap_or_else(f).flush().ok(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn a_transitive_sink_is_still_a_sink() {
        let src = "fn persist(p: &Path, s: &str) { std::fs::write(p, s).ok(); }\n\
                   fn bad(&self) {\n\
                   let g = self.state.lock().unwrap_or_else(f);\n\
                   persist(&g.path, &g.body);\n\
                   }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("persist"), "{}", f[0].message);
    }

    #[test]
    fn condvar_wait_needs_a_loop() {
        let src = "fn pause(&self) {\n\
                   let mut g = self.state.lock().unwrap_or_else(f);\n\
                   g = self.cv.wait(g).unwrap_or_else(f);\n\
                   }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("wait"), "{}", f[0].message);

        let src = "fn pause(&self) {\n\
                   let mut g = self.state.lock().unwrap_or_else(f);\n\
                   while g.busy { g = self.cv.wait(g).unwrap_or_else(f); }\n\
                   }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn nested_locks_need_a_registered_order() {
        // registry.state → shared.state is in the default catalog.
        let src = "fn close(&self) {\n\
                   let g = self.registry.state.lock().unwrap_or_else(f);\n\
                   let h = self.shared.state.lock().unwrap_or_else(f);\n\
                   }";
        assert!(run(src).is_empty());
        // The reverse order is not.
        let src = "fn close(&self) {\n\
                   let h = self.shared.state.lock().unwrap_or_else(f);\n\
                   let g = self.registry.state.lock().unwrap_or_else(f);\n\
                   }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("lock-order"), "{}", f[0].message);
    }

    #[test]
    fn a_guard_returning_helper_counts_as_an_acquisition() {
        let src = "fn lock(registry: &Registry) -> MutexGuard<'_, State> {\n\
                   registry.state.lock().unwrap_or_else(PoisonError::into_inner)\n\
                   }\n\
                   fn bad(registry: &Registry, conn: &mut Conn) {\n\
                   let g = lock(registry);\n\
                   conn.respond_json(&g.body);\n\
                   }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn a_chain_that_consumes_the_guard_is_a_statement_temporary() {
        // `let spool = lock(…).jobs.iter()…` binds the *mapped clone*;
        // the guard is a temporary that dies at the `;`, so the
        // respond on the next line runs unlocked.
        let src = "fn lock(registry: &Registry) -> MutexGuard<'_, State> {\n\
                   registry.state.lock().unwrap_or_else(PoisonError::into_inner)\n\
                   }\n\
                   fn route(registry: &Registry, conn: &mut Conn) {\n\
                   let spool = lock(registry).jobs.iter().find(|j| j.ok).map(|j| j.spool.clone());\n\
                   conn.respond_json(&spool);\n\
                   }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn a_callee_that_locks_transitively_is_checked_against_the_order() {
        let src = "fn refresh(&self) { let m = self.metrics.lock().unwrap_or_else(f); }\n\
                   fn bad(&self) {\n\
                   let g = self.state.lock().unwrap_or_else(f);\n\
                   self.refresh();\n\
                   }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("refresh"), "{}", f[0].message);
    }

    #[test]
    fn closures_run_under_the_guard_but_nested_fns_do_not() {
        // An inline closure body executes while the guard is held:
        // both the body's sink (line 3) and the call through the
        // closure (line 4, via the sink fixpoint) are reported.
        let src = "fn bad(&self) {\n\
                   let g = self.state.lock().unwrap_or_else(f);\n\
                   let report = |x: &str| { self.conn.write_all(x.as_bytes()).ok(); };\n\
                   report(&g.body);\n\
                   }";
        let f = run(src);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
        // A nested fn item does not run when the parent does.
        let src = "fn good(&self) {\n\
                   let g = self.state.lock().unwrap_or_else(f);\n\
                   fn helper(c: &Conn, x: &str) { c.write_all(x.as_bytes()).ok(); }\n\
                   }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn out_of_scope_crates_and_test_code_pass() {
        let src = "fn route(&self) {\n\
                   let g = self.state.lock().unwrap_or_else(f);\n\
                   self.conn.respond_json(&g.body);\n\
                   }";
        let (crate_name, kind) = crate::walk::classify("crates/lorawan/src/x.rs");
        let files = [SourceFile::from_source(
            "crates/lorawan/src/x.rs",
            &crate_name,
            kind,
            src.to_string(),
        )];
        let cfg = Config::default();
        let model = Model::build(&files, &cfg);
        let mut out = Vec::new();
        check(0, &files, &model, &cfg, &mut out);
        assert!(out.is_empty());

        let test_src = format!("#[cfg(test)]\nmod tests {{\n{src}\n}}");
        assert!(run(&test_src).is_empty());
    }
}
