//! `unit-safety`: public functions in unit-aware crates must not take
//! raw `f64` parameters whose names carry a unit suffix (`energy_j`,
//! `freq_hz`, …) when a `blam-units` newtype covers that unit. The
//! Eq. (1)–(7) energy/degradation math flows through these
//! signatures; a raw `f64` lets a caller pass mAh where Joules were
//! meant and nothing catches it.
//!
//! Since v2 the lint recognizes the boundary-conversion idiom: a
//! signature that immediately wraps the parameter in its covering
//! newtype (`Joules(energy_j)`, `Duration::from_secs_f64(dur_s)`) is
//! the unit-safe entry point itself, not a violation, so it no longer
//! needs a pragma.

use crate::config::Config;
use crate::lints::finding;
use crate::report::Finding;
use crate::syntax;
use crate::tokenizer::{Token, TokenKind};
use crate::walk::{FileKind, SourceFile};

/// Runs the unit-safety lint over one file.
pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || !cfg.unit_safety_crates.contains(&file.crate_name) {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.is_test_code(i) || !toks[i].is_ident("pub") {
            continue;
        }
        // Restricted visibility (`pub(crate)`, `pub(super)`) is not
        // public API; the signature can be fixed without a semver
        // thought, so hold only plain `pub fn` to the lint.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        // Qualifiers between `pub` and `fn`.
        while toks
            .get(j)
            .is_some_and(|t| t.is_ident("const") || t.is_ident("async") || t.is_ident("unsafe"))
        {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident("fn")) {
            continue;
        }
        let Some(params_at) = params_start(toks, j + 1) else {
            continue;
        };
        scan_params(file, cfg, params_at, out);
    }
}

/// The body token range of the function whose parameter list opens at
/// `open`, when it has one.
fn body_of(toks: &[Token], open: usize) -> Option<(usize, usize)> {
    let close = syntax::matching_paren(toks, open)?;
    let mut k = close + 1;
    loop {
        let t = toks.get(k)?;
        if t.is_punct("{") {
            break;
        }
        if t.is_punct(";") {
            return None;
        }
        k += 1;
    }
    Some((k + 1, syntax::matching_brace(toks, k)?))
}

/// True when `body` wraps parameter `param` in newtype `nt` — the
/// exact shapes `Nt(param)` and `Nt::path(param)`.
fn wrapped_in_newtype(toks: &[Token], body: (usize, usize), nt: &str, param: &str) -> bool {
    let (bs, be) = body;
    for k in bs..be {
        if !toks[k].is_ident(nt) {
            continue;
        }
        let mut j = k + 1;
        while j + 1 < be && toks[j].is_punct("::") && toks[j + 1].kind == TokenKind::Ident {
            j += 2;
        }
        if toks.get(j).is_some_and(|t| t.is_punct("("))
            && toks.get(j + 1).is_some_and(|t| t.is_ident(param))
            && toks.get(j + 2).is_some_and(|t| t.is_punct(")"))
        {
            return true;
        }
    }
    false
}

/// From the token after `fn`, skips the name and any generic
/// parameter list and returns the index of the opening `(`.
fn params_start(toks: &[Token], name_at: usize) -> Option<usize> {
    let mut j = name_at + 1;
    if toks.get(j)?.is_punct("<") {
        // Angle depth, counting the characters of merged shift
        // tokens (`>>` closes two levels).
        let mut depth = 0i32;
        while let Some(t) = toks.get(j) {
            // Count only pure angle tokens; `->`/`=>`/`>=` are not
            // closing brackets even though they contain `>`.
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            j += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    toks.get(j)?.is_punct("(").then_some(j)
}

/// Walks the parameter list starting at `(`, reporting every
/// `name_with_suffix: f64` parameter at paren depth 1.
fn scan_params(file: &SourceFile, cfg: &Config, open: usize, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut depth = 0i32;
    let mut j = open;
    while let Some(t) = toks.get(j) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return;
            }
        } else if depth == 1
            && t.kind == TokenKind::Ident
            && toks.get(j + 1).is_some_and(|n| n.is_punct(":"))
            && toks.get(j + 2).is_some_and(|n| n.is_ident("f64"))
        {
            let suffix = cfg
                .unit_suffixes
                .iter()
                .find(|(s, _)| t.text.ends_with(s.as_str()));
            if let Some((suffix, newtype)) = suffix {
                // A body that immediately converts into the covering
                // newtype IS the unit-safe boundary.
                let nt_head = newtype.split_whitespace().next().unwrap_or(newtype);
                if body_of(toks, open)
                    .is_some_and(|body| wrapped_in_newtype(toks, body, nt_head, &t.text))
                {
                    j += 1;
                    continue;
                }
                out.push(finding(
                    file,
                    "unit-safety",
                    t.line,
                    format!(
                        "public fn takes raw `{}: f64` (unit suffix `{suffix}`); \
                         use `blam_units::{newtype}` so the type system carries the unit",
                        t.text
                    ),
                ));
            }
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(
            "crates/battery/src/l.rs",
            "battery",
            FileKind::Lib,
            src.to_string(),
        );
        let mut out = Vec::new();
        check(&file, &Config::default(), &mut out);
        out
    }

    #[test]
    fn suffixed_f64_param_is_flagged() {
        let f = run("pub fn drain(energy_j: f64) {}");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Joules"), "{}", f[0].message);
    }

    #[test]
    fn unsuffixed_and_newtyped_params_pass() {
        assert!(run("pub fn a(j: f64, ratio: f64) {}").is_empty());
        assert!(run("pub fn b(energy: Joules, freq_hz: Hertz) {}").is_empty());
    }

    #[test]
    fn restricted_visibility_and_private_fns_pass() {
        assert!(run("pub(crate) fn a(energy_j: f64) {}").is_empty());
        assert!(run("fn b(energy_j: f64) {}").is_empty());
    }

    #[test]
    fn generics_and_later_params_are_still_scanned() {
        let f = run("pub fn mix<T: Into<Vec<u8>>>(x: T, level_dbm: f64, temp_c: f64) {}");
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("Dbm"));
        assert!(f[1].message.contains("Celsius"));
    }

    #[test]
    fn closure_params_in_bodies_are_not_params() {
        let src = "pub fn outer(good: Joules) { let f = |power_w: f64| power_w; f(1.5); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn const_fn_is_still_checked() {
        assert_eq!(run("pub const fn c(dur_s: f64) -> f64 { dur_s }").len(), 1);
    }

    #[test]
    fn immediate_newtype_wrap_is_the_unit_safe_boundary() {
        let src = "pub fn drain(energy_j: f64) { let e = Joules(energy_j); use_it(e); }";
        assert!(run(src).is_empty());
        let src = "pub fn wait(dur_s: f64) { sleep(Duration::from_secs_f64(dur_s)); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn arithmetic_on_the_raw_param_is_still_flagged() {
        let src = "pub fn drain(energy_j: f64) -> f64 { energy_j * 2.0 }";
        assert_eq!(run(src).len(), 1);
        // Wrapping a DIFFERENT param does not cover this one.
        let src = "pub fn mix(energy_j: f64, power_w: f64) { let w = Watts(power_w); }";
        assert_eq!(run(src).len(), 1);
    }
}
