//! `unit-safety`: public functions in unit-aware crates must not take
//! raw `f64` parameters whose names carry a unit suffix (`energy_j`,
//! `freq_hz`, …) when a `blam-units` newtype covers that unit. The
//! Eq. (1)–(7) energy/degradation math flows through these
//! signatures; a raw `f64` lets a caller pass mAh where Joules were
//! meant and nothing catches it.

use crate::config::Config;
use crate::lints::finding;
use crate::report::Finding;
use crate::tokenizer::{Token, TokenKind};
use crate::walk::{FileKind, SourceFile};

/// Runs the unit-safety lint over one file.
pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || !cfg.unit_safety_crates.contains(&file.crate_name) {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.is_test_code(i) || !toks[i].is_ident("pub") {
            continue;
        }
        // Restricted visibility (`pub(crate)`, `pub(super)`) is not
        // public API; the signature can be fixed without a semver
        // thought, so hold only plain `pub fn` to the lint.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        // Qualifiers between `pub` and `fn`.
        while toks
            .get(j)
            .is_some_and(|t| t.is_ident("const") || t.is_ident("async") || t.is_ident("unsafe"))
        {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident("fn")) {
            continue;
        }
        let Some(params_at) = params_start(toks, j + 1) else {
            continue;
        };
        scan_params(file, cfg, params_at, out);
    }
}

/// From the token after `fn`, skips the name and any generic
/// parameter list and returns the index of the opening `(`.
fn params_start(toks: &[Token], name_at: usize) -> Option<usize> {
    let mut j = name_at + 1;
    if toks.get(j)?.is_punct("<") {
        // Angle depth, counting the characters of merged shift
        // tokens (`>>` closes two levels).
        let mut depth = 0i32;
        while let Some(t) = toks.get(j) {
            // Count only pure angle tokens; `->`/`=>`/`>=` are not
            // closing brackets even though they contain `>`.
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            j += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    toks.get(j)?.is_punct("(").then_some(j)
}

/// Walks the parameter list starting at `(`, reporting every
/// `name_with_suffix: f64` parameter at paren depth 1.
fn scan_params(file: &SourceFile, cfg: &Config, open: usize, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut depth = 0i32;
    let mut j = open;
    while let Some(t) = toks.get(j) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return;
            }
        } else if depth == 1
            && t.kind == TokenKind::Ident
            && toks.get(j + 1).is_some_and(|n| n.is_punct(":"))
            && toks.get(j + 2).is_some_and(|n| n.is_ident("f64"))
        {
            let suffix = cfg
                .unit_suffixes
                .iter()
                .find(|(s, _)| t.text.ends_with(s.as_str()));
            if let Some((suffix, newtype)) = suffix {
                out.push(finding(
                    file,
                    "unit-safety",
                    t.line,
                    format!(
                        "public fn takes raw `{}: f64` (unit suffix `{suffix}`); \
                         use `blam_units::{newtype}` so the type system carries the unit",
                        t.text
                    ),
                ));
            }
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(
            "crates/battery/src/l.rs",
            "battery",
            FileKind::Lib,
            src.to_string(),
        );
        let mut out = Vec::new();
        check(&file, &Config::default(), &mut out);
        out
    }

    #[test]
    fn suffixed_f64_param_is_flagged() {
        let f = run("pub fn drain(energy_j: f64) {}");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Joules"), "{}", f[0].message);
    }

    #[test]
    fn unsuffixed_and_newtyped_params_pass() {
        assert!(run("pub fn a(j: f64, ratio: f64) {}").is_empty());
        assert!(run("pub fn b(energy: Joules, freq_hz: Hertz) {}").is_empty());
    }

    #[test]
    fn restricted_visibility_and_private_fns_pass() {
        assert!(run("pub(crate) fn a(energy_j: f64) {}").is_empty());
        assert!(run("fn b(energy_j: f64) {}").is_empty());
    }

    #[test]
    fn generics_and_later_params_are_still_scanned() {
        let f = run("pub fn mix<T: Into<Vec<u8>>>(x: T, level_dbm: f64, temp_c: f64) {}");
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("Dbm"));
        assert!(f[1].message.contains("Celsius"));
    }

    #[test]
    fn closure_params_in_bodies_are_not_params() {
        let src = "pub fn outer(good: Joules) { let f = |power_w: f64| power_w; f(1.5); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn const_fn_is_still_checked() {
        assert_eq!(run("pub const fn c(dur_s: f64) -> f64 { dur_s }").len(), 1);
    }
}
