//! `panic-hygiene`: `unwrap()`, `expect(` and `panic!` in non-test
//! library code, counted per crate against the ratchet baseline in
//! `analyzer-baseline.toml`. Sites are *reported* here; the library
//! layer decides which crates are over budget.

use crate::lints::finding;
use crate::report::Finding;
use crate::walk::{FileKind, SourceFile};

/// Collects every panic-hygiene site in one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.is_test_code(i) {
            continue;
        }
        let t = &toks[i];
        let method_call = |name: &str| {
            t.is_ident(name)
                && i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        };
        if method_call("unwrap") {
            out.push(finding(
                file,
                "panic-hygiene",
                t.line,
                "`unwrap()` in library code; propagate with `?` or handle the None/Err arm"
                    .to_string(),
            ));
        } else if method_call("expect") {
            out.push(finding(
                file,
                "panic-hygiene",
                t.line,
                "`expect(…)` in library code; propagate with `?` or handle the None/Err arm"
                    .to_string(),
            ));
        } else if t.is_ident("panic") && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            out.push(finding(
                file,
                "panic-hygiene",
                t.line,
                "`panic!` in library code; return an error instead".to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: FileKind, src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source("crates/x/src/l.rs", "x", kind, src.to_string());
        let mut out = Vec::new();
        check(&file, &mut out);
        out
    }

    #[test]
    fn counts_all_three_forms() {
        let src = "fn f(o: Option<u8>) -> u8 {\n let a = o.unwrap();\n let b = o.expect(\"b\");\n if a == b { panic!(\"boom\") }\n a\n}";
        let f = run(FileKind::Lib, src);
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 3);
        assert_eq!(f[2].line, 4);
    }

    #[test]
    fn lookalikes_do_not_count() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap_or(0) }\nfn g(s: &str) -> bool { s.contains(\"panic!\") }";
        assert!(run(FileKind::Lib, src).is_empty());
    }

    #[test]
    fn test_code_and_binaries_are_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        assert!(run(FileKind::Lib, src).is_empty());
        assert!(run(FileKind::Bin, "fn main() { x.unwrap(); }").is_empty());
    }
}
