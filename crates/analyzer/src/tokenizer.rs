//! A hand-rolled, lossy Rust lexer.
//!
//! The analyzer only needs a token stream that is *reliable about what
//! is code and what is not*: string literals, char literals, raw
//! strings, and (nested) block comments must never leak lint-trigger
//! text into the identifier stream, and every token must carry an
//! accurate 1-based line number. Anything fancier — full expression
//! grammar, macro expansion — is out of scope; the lints work on
//! token patterns.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, ...).
    Ident,
    /// A lifetime such as `'a` (the leading `'` is not kept).
    Lifetime,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `2e-3`, `1f64`).
    Float,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation; multi-character operators (`::`, `==`, `..=`)
    /// are single tokens.
    Punct,
    /// A line or block comment, text included (pragmas live here).
    Comment,
}

/// One lexeme with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The lexeme class.
    pub kind: TokenKind,
    /// The lexeme text. For comments this is the full comment
    /// including markers; for strings and chars the delimiters are
    /// kept; raw identifiers are stored without the `r#` prefix.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when the token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when the token is the punctuation `s`.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Multi-character operators, longest first (maximal munch).
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0);
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn take_while(&mut self, pred: impl Fn(char) -> bool, out: &mut String) {
        while let Some(c) = self.peek(0) {
            if !pred(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens. Never fails: unexpected bytes become
/// single-character [`TokenKind::Punct`] tokens, and unterminated
/// literals simply end at end of input.
#[must_use]
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();

    while let Some(c) = lx.peek(0) {
        let line = lx.line;
        if c.is_whitespace() {
            lx.bump();
            continue;
        }

        // Comments.
        if c == '/' && lx.peek(1) == Some('/') {
            let mut text = String::new();
            lx.take_while(|c| c != '\n', &mut text);
            tokens.push(Token {
                kind: TokenKind::Comment,
                text,
                line,
            });
            continue;
        }
        if c == '/' && lx.peek(1) == Some('*') {
            tokens.push(lex_block_comment(&mut lx, line));
            continue;
        }

        // String-ish prefixes: r"", r#""#, br"", b"", b'', and the
        // raw identifier form r#name.
        if (c == 'r' || c == 'b') && lex_prefixed_literal(&mut lx, &mut tokens, line) {
            continue;
        }

        if c == '"' {
            tokens.push(lex_string(&mut lx, line));
            continue;
        }
        if c == '\'' {
            tokens.push(lex_quote(&mut lx, line));
            continue;
        }
        if c.is_ascii_digit() {
            tokens.push(lex_number(&mut lx, line));
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            lx.take_while(is_ident_continue, &mut text);
            tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
            });
            continue;
        }

        // Punctuation, multi-char operators first.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let ok = op
                .chars()
                .enumerate()
                .all(|(i, want)| lx.peek(i) == Some(want));
            if ok {
                for _ in 0..op.chars().count() {
                    lx.bump();
                }
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                matched = true;
                break;
            }
        }
        if !matched {
            lx.bump();
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
            });
        }
    }
    tokens
}

/// Lexes a (possibly nested) `/* … */` block comment.
fn lex_block_comment(lx: &mut Lexer, line: u32) -> Token {
    let mut text = String::new();
    let mut depth = 0u32;
    while let Some(c) = lx.peek(0) {
        if c == '/' && lx.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            lx.bump();
            lx.bump();
        } else if c == '*' && lx.peek(1) == Some('/') {
            depth = depth.saturating_sub(1);
            text.push_str("*/");
            lx.bump();
            lx.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            lx.bump();
        }
    }
    Token {
        kind: TokenKind::Comment,
        text,
        line,
    }
}

/// Handles `r`/`b`-prefixed literals. Returns `false` when the prefix
/// turns out to start a plain identifier (e.g. `radio`, `buffer`),
/// in which case nothing was consumed.
fn lex_prefixed_literal(lx: &mut Lexer, tokens: &mut Vec<Token>, line: u32) -> bool {
    let c = lx.peek(0);
    let raw_at = match (c, lx.peek(1)) {
        // b'x' byte char.
        (Some('b'), Some('\'')) => {
            lx.bump();
            let mut t = lex_quote(lx, line);
            t.kind = TokenKind::Char;
            t.text.insert(0, 'b');
            tokens.push(t);
            return true;
        }
        // b"…" byte string.
        (Some('b'), Some('"')) => {
            lx.bump();
            let mut t = lex_string(lx, line);
            t.text.insert(0, 'b');
            tokens.push(t);
            return true;
        }
        (Some('r'), Some('"' | '#')) => 1,
        (Some('b'), Some('r')) if matches!(lx.peek(2), Some('"' | '#')) => 2,
        _ => return false,
    };
    // Count hashes after the prefix.
    let mut hashes = 0usize;
    while lx.peek(raw_at + hashes) == Some('#') {
        hashes += 1;
    }
    match lx.peek(raw_at + hashes) {
        Some('"') => {
            // Raw string: consume prefix, hashes, opening quote, then
            // scan for `"` followed by `hashes` hashes.
            let mut text = String::new();
            for _ in 0..(raw_at + hashes + 1) {
                if let Some(ch) = lx.bump() {
                    text.push(ch);
                }
            }
            loop {
                match lx.peek(0) {
                    None => break,
                    Some('"') => {
                        let closed = (0..hashes).all(|i| lx.peek(1 + i) == Some('#'));
                        text.push('"');
                        lx.bump();
                        if closed {
                            for _ in 0..hashes {
                                text.push('#');
                                lx.bump();
                            }
                            break;
                        }
                    }
                    Some(ch) => {
                        text.push(ch);
                        lx.bump();
                    }
                }
            }
            tokens.push(Token {
                kind: TokenKind::Str,
                text,
                line,
            });
            true
        }
        Some(ch) if raw_at == 1 && hashes == 1 && is_ident_start(ch) => {
            // Raw identifier r#name: store without the prefix so the
            // lints see the bare name.
            lx.bump();
            lx.bump();
            let mut text = String::new();
            lx.take_while(is_ident_continue, &mut text);
            tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
            });
            true
        }
        _ => false,
    }
}

/// Lexes a `"…"` string with backslash escapes.
fn lex_string(lx: &mut Lexer, line: u32) -> Token {
    let mut text = String::new();
    if let Some(q) = lx.bump() {
        text.push(q);
    }
    while let Some(c) = lx.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(esc) = lx.bump() {
                text.push(esc);
            }
        } else if c == '"' {
            break;
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
    }
}

/// Lexes what follows a `'`: either a char literal or a lifetime.
fn lex_quote(lx: &mut Lexer, line: u32) -> Token {
    let mut text = String::new();
    if let Some(q) = lx.bump() {
        text.push(q);
    }
    match lx.peek(0) {
        // Escaped char: '\n', '\'', '\u{…}'.
        Some('\\') => {
            while let Some(c) = lx.bump() {
                text.push(c);
                if c == '\\' {
                    if let Some(esc) = lx.bump() {
                        text.push(esc);
                    }
                } else if c == '\'' {
                    break;
                }
            }
            Token {
                kind: TokenKind::Char,
                text,
                line,
            }
        }
        Some(c) if is_ident_start(c) => {
            // 'a' is a char, 'a without a closing quote is a lifetime.
            let mut name = String::new();
            let mut ahead = 0;
            while let Some(ch) = lx.peek(ahead) {
                if !is_ident_continue(ch) {
                    break;
                }
                name.push(ch);
                ahead += 1;
            }
            if lx.peek(ahead) == Some('\'') {
                for _ in 0..=ahead {
                    lx.bump();
                }
                text.push_str(&name);
                text.push('\'');
                Token {
                    kind: TokenKind::Char,
                    text,
                    line,
                }
            } else {
                for _ in 0..ahead {
                    lx.bump();
                }
                Token {
                    kind: TokenKind::Lifetime,
                    text: name,
                    line,
                }
            }
        }
        // Oddities like '(' (a char literal of punctuation).
        _ => {
            while let Some(c) = lx.bump() {
                text.push(c);
                if c == '\'' {
                    break;
                }
            }
            Token {
                kind: TokenKind::Char,
                text,
                line,
            }
        }
    }
}

/// Lexes a numeric literal, deciding integer vs float.
fn lex_number(lx: &mut Lexer, line: u32) -> Token {
    let mut text = String::new();
    let mut float = false;

    if lx.peek(0) == Some('0') && matches!(lx.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) {
        // Radix literal: 0xFF, 0o77, 0b1010 (+ suffix).
        text.push('0');
        lx.bump();
        if let Some(r) = lx.bump() {
            text.push(r);
        }
        lx.take_while(|c| c.is_ascii_hexdigit() || c == '_', &mut text);
        lx.take_while(is_ident_continue, &mut text);
        return Token {
            kind: TokenKind::Int,
            text,
            line,
        };
    }

    lx.take_while(|c| c.is_ascii_digit() || c == '_', &mut text);
    if lx.peek(0) == Some('.') {
        match lx.peek(1) {
            // `1..2` range or `1.max(…)` method call: stop.
            Some('.') => {}
            Some(c) if is_ident_start(c) => {}
            // `1.0` or trailing `1.`.
            _ => {
                float = true;
                text.push('.');
                lx.bump();
                lx.take_while(|c| c.is_ascii_digit() || c == '_', &mut text);
            }
        }
    }
    if matches!(lx.peek(0), Some('e' | 'E')) {
        let signed = matches!(lx.peek(1), Some('+' | '-'));
        let digit_at = if signed { 2 } else { 1 };
        if matches!(lx.peek(digit_at), Some(c) if c.is_ascii_digit()) {
            float = true;
            text.push('e');
            lx.bump();
            if signed {
                if let Some(s) = lx.bump() {
                    text.push(s);
                }
            }
            lx.take_while(|c| c.is_ascii_digit() || c == '_', &mut text);
        }
    }
    // Type suffix: 1f64 is a float, 1u32 stays an integer.
    if matches!(lx.peek(0), Some(c) if is_ident_start(c)) {
        let mut suffix = String::new();
        lx.take_while(is_ident_continue, &mut suffix);
        if suffix.starts_with('f') {
            float = true;
        }
        text.push_str(&suffix);
    }

    Token {
        kind: if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        },
        text,
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("let x = a::b(c);");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[3], (TokenKind::Ident, "a".into()));
        assert_eq!(toks[4], (TokenKind::Punct, "::".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "thread_rng()";"#);
        assert!(!toks.iter().any(|(_, t)| t == "thread_rng"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"has \"quotes\" and panic!()\"#; next";
        let toks = kinds(src);
        assert!(!toks.iter().any(|(_, t)| t == "panic"));
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("next"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .collect();
        assert_eq!(idents.len(), 2);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = kinds("0.5 == x; 1..10; 2e-3; 7f64; 0xFF; 1.max(2)");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["0.5", "2e-3", "7f64"]);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Int && t == "1"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Int && t == "0xFF"));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "a\n/* two\nlines */\nr\"raw\nstring\"\nb";
        let toks = tokenize(src);
        let b = toks.iter().find(|t| t.is_ident("b"));
        assert_eq!(b.map(|t| t.line), Some(6));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds("b'x' b\"bytes\" br#\"raw bytes\"#");
        assert_eq!(toks[0].0, TokenKind::Char);
        assert_eq!(toks[1].0, TokenKind::Str);
        assert_eq!(toks[2].0, TokenKind::Str);
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "type"));
    }

    #[test]
    fn line_comment_token_carries_text() {
        let toks = tokenize("x // analyzer: allow(float-eq, reason = \"why\")\ny");
        let c = toks.iter().find(|t| t.kind == TokenKind::Comment);
        assert!(c.is_some_and(|t| t.text.contains("analyzer: allow")));
    }
}
