//! Findings and their human-readable / JSON renderings.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One lint violation at a specific site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint that fired (`determinism`, `panic-hygiene`, …).
    pub lint: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// Trimmed text of the offending line.
    pub snippet: String,
}

/// Everything one analysis run produced.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Hard failures: non-waived, non-baselined findings. Any entry
    /// here means a nonzero exit.
    pub findings: Vec<Finding>,
    /// Panic-hygiene sites covered by the ratchet baseline (reported
    /// for visibility, not failures).
    pub baselined: Vec<Finding>,
    /// Current panic-hygiene site count per crate.
    pub panic_counts: BTreeMap<String, u32>,
    /// Baseline budget per crate, as loaded.
    pub panic_baseline: BTreeMap<String, u32>,
    /// Crates whose count dropped below the baseline: ratchet can be
    /// (and should be) tightened.
    pub improvements: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// True when the run found nothing actionable.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn render_human(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "error[{}]: {}", f.lint, f.message);
            let _ = writeln!(out, "  --> {}:{}", f.file, f.line);
            if !f.snippet.is_empty() {
                let _ = writeln!(out, "   |  {}", f.snippet);
            }
        }
        if verbose {
            for f in &self.baselined {
                let _ = writeln!(
                    out,
                    "baselined[{}]: {} ({}:{})",
                    f.lint, f.message, f.file, f.line
                );
            }
        }
        for msg in &self.improvements {
            let _ = writeln!(out, "ratchet: {msg}");
        }
        let _ = writeln!(
            out,
            "blam-analyze: {} file(s), {} finding(s), {} baselined panic-hygiene site(s)",
            self.files_scanned,
            self.findings.len(),
            self.baselined.len(),
        );
        out
    }

    /// Drops findings (and baselined sites) outside `files`, for
    /// `--changed-only` runs. The analysis itself always covers the
    /// whole workspace — the interprocedural lints need every caller
    /// — only the *report* narrows. Paths match when one is a
    /// `/`-separated suffix of the other, so `git diff --name-only`
    /// output matches workspace-relative finding paths.
    pub fn retain_files(&mut self, files: &[String]) {
        let keep = |f: &Finding| files.iter().any(|p| path_matches(&f.file, p));
        self.findings.retain(keep);
        self.baselined.retain(keep);
    }

    /// Renders the machine-readable report.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"ok\": ");
        out.push_str(if self.clean() { "true" } else { "false" });
        let _ = write!(out, ",\n  \"files_scanned\": {}", self.files_scanned);
        out.push_str(",\n  \"findings\": [");
        render_findings(&mut out, &self.findings);
        out.push_str("],\n  \"baselined\": [");
        render_findings(&mut out, &self.baselined);
        out.push_str("],\n  \"panic_hygiene\": {\n    \"counts\": {");
        render_counts(&mut out, &self.panic_counts);
        out.push_str("},\n    \"baseline\": {");
        render_counts(&mut out, &self.panic_baseline);
        out.push_str("}\n  },\n  \"improvements\": [");
        for (i, msg) in self.improvements.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(msg));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders a SARIF 2.1.0 log (the static subset CI viewers need:
    /// one run, one driver, rules from the lint catalog, `error`
    /// results for findings and `note` results for baselined sites).
    #[must_use]
    pub fn render_sarif(&self) -> String {
        let mut out = String::from(
            "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
             \"driver\": {\n          \"name\": \"blam-analyze\",\n          \"rules\": [",
        );
        for (i, (id, desc)) in crate::config::LINT_CATALOG.iter().enumerate() {
            let sep = if i > 0 { "," } else { "" };
            let _ = write!(
                out,
                "{sep}\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
                json_string(id),
                json_string(desc),
            );
        }
        out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
        let mut first = true;
        for (level, f) in self
            .findings
            .iter()
            .map(|f| ("error", f))
            .chain(self.baselined.iter().map(|f| ("note", f)))
        {
            let sep = if first { "" } else { "," };
            first = false;
            let _ = write!(
                out,
                "{sep}\n        {{\"ruleId\": {}, \"level\": \"{level}\", \
                 \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": \
                 {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}, \
                 \"snippet\": {{\"text\": {}}}}}}}}}]}}",
                json_string(f.lint),
                json_string(&f.message),
                json_string(&f.file),
                f.line,
                json_string(&f.snippet),
            );
        }
        if !first {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }\n  ]\n}\n");
        out
    }
}

/// True when `a` and `b` name the same file: equal, or one is a
/// `/`-component suffix of the other.
fn path_matches(a: &str, b: &str) -> bool {
    let suffix = |long: &str, short: &str| {
        long.len() > short.len()
            && long.ends_with(short)
            && long.as_bytes()[long.len() - short.len() - 1] == b'/'
    };
    a == b || suffix(a, b) || suffix(b, a)
}

fn render_findings(out: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        let sep = if i > 0 { "," } else { "" };
        let _ = write!(
            out,
            "{sep}\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
            json_string(f.lint),
            json_string(&f.file),
            f.line,
            json_string(&f.message),
            json_string(&f.snippet),
        );
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
}

fn render_counts(out: &mut String, counts: &BTreeMap<String, u32>) {
    for (i, (name, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {n}", json_string(name));
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            lint: "float-eq",
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "comparison with \"quotes\"".to_string(),
            snippet: "if v == 0.0 {".to_string(),
        }
    }

    #[test]
    fn human_report_names_file_line_and_lint() {
        let outcome = Outcome {
            findings: vec![finding()],
            files_scanned: 1,
            ..Outcome::default()
        };
        let text = outcome.render_human(false);
        assert!(text.contains("error[float-eq]"));
        assert!(text.contains("crates/x/src/lib.rs:7"));
        assert!(text.contains("if v == 0.0 {"));
    }

    #[test]
    fn json_escapes_and_reports_ok_flag() {
        let outcome = Outcome {
            findings: vec![finding()],
            files_scanned: 1,
            ..Outcome::default()
        };
        let text = outcome.render_json();
        assert!(text.contains("\"ok\": false"));
        assert!(text.contains("\\\"quotes\\\""));

        let clean = Outcome::default();
        assert!(clean.render_json().contains("\"ok\": true"));
    }

    #[test]
    fn json_string_escapes_control_chars() {
        assert_eq!(json_string("a\tb"), "\"a\\tb\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn sarif_levels_split_findings_from_baselined_sites() {
        let mut baselined = finding();
        baselined.lint = "panic-hygiene";
        baselined.file = "crates/y/src/lib.rs".to_string();
        let outcome = Outcome {
            findings: vec![finding()],
            baselined: vec![baselined],
            files_scanned: 2,
            ..Outcome::default()
        };
        let text = outcome.render_sarif();
        assert!(text.contains("\"version\": \"2.1.0\""));
        assert!(text.contains("\"level\": \"error\""));
        assert!(text.contains("\"level\": \"note\""));
        // Every catalog lint appears as a rule.
        for (id, _) in crate::config::LINT_CATALOG {
            assert!(text.contains(&format!("\"id\": \"{id}\"")), "{id}");
        }
    }

    #[test]
    fn retain_files_matches_on_path_suffixes() {
        let mut other = finding();
        other.file = "crates/y/src/lib.rs".to_string();
        let mut outcome = Outcome {
            findings: vec![finding(), other],
            ..Outcome::default()
        };
        // A changed-file path deeper than the finding's relative path
        // still matches (and vice versa); unrelated files drop.
        outcome.retain_files(&["repo/crates/x/src/lib.rs".to_string()]);
        assert_eq!(outcome.findings.len(), 1);
        assert_eq!(outcome.findings[0].file, "crates/x/src/lib.rs");
        outcome.retain_files(&["src/lib.rs".to_string()]);
        assert_eq!(outcome.findings.len(), 1);
        outcome.retain_files(&["crates/z/src/lib.rs".to_string()]);
        assert!(outcome.findings.is_empty());
    }
}
