//! Bounded per-node ring buffers — the flight recorder.
//!
//! The recorder keeps the last N events for every node so that when an
//! anomaly fires (a brownout drop, a failed exchange, or a panic) the
//! events *leading up to it* can be dumped, even in runs where full
//! tracing would be too expensive to keep.

use std::collections::{BTreeMap, VecDeque};

use crate::event::SimEvent;

/// Per-node bounded event history.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    rings: BTreeMap<u32, VecDeque<SimEvent>>,
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` events per node.
    /// A capacity of 0 disables buffering entirely.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            rings: BTreeMap::new(),
        }
    }

    /// Maximum events retained per node.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event to its node's ring, evicting the oldest entry
    /// once the ring is full.
    pub fn push(&mut self, event: &SimEvent) {
        if self.capacity == 0 {
            return;
        }
        let ring = self.rings.entry(event.node).or_default();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event.clone());
    }

    /// The buffered events for one node, oldest first.
    #[must_use]
    pub fn snapshot(&self, node: u32) -> Vec<SimEvent> {
        self.rings
            .get(&node)
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// All nodes that currently hold buffered events, ascending.
    #[must_use]
    pub fn nodes(&self) -> Vec<u32> {
        self.rings.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(t_ms: u64, node: u32) -> SimEvent {
        SimEvent {
            t_ms,
            node,
            kind: EventKind::PacketGenerated,
        }
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let mut fr = FlightRecorder::new(3);
        for t in 0..5 {
            fr.push(&ev(t, 1));
        }
        let snap = fr.snapshot(1);
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].t_ms, 2);
        assert_eq!(snap[2].t_ms, 4);
    }

    #[test]
    fn rings_are_per_node() {
        let mut fr = FlightRecorder::new(2);
        fr.push(&ev(0, 1));
        fr.push(&ev(1, 2));
        fr.push(&ev(2, 1));
        assert_eq!(fr.snapshot(1).len(), 2);
        assert_eq!(fr.snapshot(2).len(), 1);
        assert_eq!(fr.snapshot(3), Vec::new());
        assert_eq!(fr.nodes(), vec![1, 2]);
    }

    #[test]
    fn zero_capacity_buffers_nothing() {
        let mut fr = FlightRecorder::new(0);
        fr.push(&ev(0, 1));
        assert!(fr.snapshot(1).is_empty());
        assert!(fr.nodes().is_empty());
    }
}
