//! Per-phase wall-clock profiling for the batch runner.
//!
//! Timestamps are taken by the caller (`Instant` stays on the netsim
//! side); this module only accumulates and renders millisecond
//! durations, so reports remain serializable and mergeable.

use serde::{Deserialize, Serialize};

/// Streaming statistics over one profiled phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Number of recorded intervals.
    pub count: u64,
    /// Total wall-clock time, milliseconds.
    pub total_ms: f64,
    /// Shortest interval, milliseconds.
    pub min_ms: f64,
    /// Longest interval, milliseconds.
    pub max_ms: f64,
}

impl PhaseStats {
    /// Records one interval.
    pub fn record(&mut self, ms: f64) {
        let ms = if ms.is_finite() && ms > 0.0 { ms } else { 0.0 };
        if self.count == 0 {
            self.min_ms = ms;
            self.max_ms = ms;
        } else {
            self.min_ms = self.min_ms.min(ms);
            self.max_ms = self.max_ms.max(ms);
        }
        self.count += 1;
        self.total_ms += ms;
    }

    /// Mean interval, milliseconds (0 when empty).
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms / self.count as f64
        }
    }

    /// Merges another phase's statistics into this one.
    pub fn merge(&mut self, other: &PhaseStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ms += other.total_ms;
        self.min_ms = self.min_ms.min(other.min_ms);
        self.max_ms = self.max_ms.max(other.max_ms);
    }
}

/// Wall-clock breakdown of one `BatchRunner::run_all` invocation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchProfile {
    /// Worker threads used.
    pub workers: usize,
    /// Scenarios executed.
    pub runs: usize,
    /// Time each run spent queued before a worker claimed it.
    pub queue_wait: PhaseStats,
    /// Time each run spent simulating.
    pub sim_run: PhaseStats,
    /// Time merging per-run telemetry after the join, milliseconds.
    pub merge_ms: f64,
    /// End-to-end batch wall clock, milliseconds.
    pub total_ms: f64,
}

impl BatchProfile {
    /// Renders a compact human-readable breakdown (for stderr).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} run(s) on {} worker(s), batch total {:.1} ms\n",
            self.runs, self.workers, self.total_ms
        ));
        out.push_str(&format!(
            "  queue wait  mean {:>9.2} ms  max {:>9.2} ms\n",
            self.queue_wait.mean_ms(),
            self.queue_wait.max_ms,
        ));
        out.push_str(&format!(
            "  sim run     mean {:>9.2} ms  min {:>9.2} ms  max {:>9.2} ms  total {:>9.1} ms\n",
            self.sim_run.mean_ms(),
            self.sim_run.min_ms,
            self.sim_run.max_ms,
            self.sim_run.total_ms,
        ));
        let speedup = if self.total_ms > 0.0 {
            self.sim_run.total_ms / self.total_ms
        } else {
            0.0
        };
        out.push_str(&format!(
            "  merge       {:>9.2} ms   parallel speedup {:.2}x\n",
            self.merge_ms, speedup,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_stats_track_min_max_mean() {
        let mut p = PhaseStats::default();
        p.record(10.0);
        p.record(30.0);
        p.record(20.0);
        assert_eq!(p.count, 3);
        assert_eq!(p.min_ms, 10.0);
        assert_eq!(p.max_ms, 30.0);
        assert!((p.mean_ms() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_phase_is_zero() {
        let p = PhaseStats::default();
        assert_eq!(p.mean_ms(), 0.0);
        assert_eq!(p.min_ms, 0.0);
    }

    #[test]
    fn merge_handles_empty_sides() {
        let mut a = PhaseStats::default();
        let mut b = PhaseStats::default();
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a, b);
        a.merge(&PhaseStats::default());
        assert_eq!(a, b);
        let mut c = PhaseStats::default();
        c.record(1.0);
        a.merge(&c);
        assert_eq!(a.count, 2);
        assert_eq!(a.min_ms, 1.0);
        assert_eq!(a.max_ms, 5.0);
    }

    #[test]
    fn negative_or_nan_intervals_clamp_to_zero() {
        let mut p = PhaseStats::default();
        p.record(-3.0);
        p.record(f64::NAN);
        assert_eq!(p.count, 2);
        assert_eq!(p.total_ms, 0.0);
    }

    #[test]
    fn batch_profile_renders() {
        let mut b = BatchProfile {
            workers: 4,
            runs: 8,
            ..BatchProfile::default()
        };
        b.sim_run.record(100.0);
        b.total_ms = 50.0;
        let text = b.render();
        assert!(text.contains("8 run(s) on 4 worker(s)"));
        assert!(text.contains("speedup 2.00x"));
    }
}
