//! Live-tail framing: a bounded, thread-safe byte ring that lets one
//! writer (a trace [`Recorder`](crate::Recorder)) stream NDJSON lines
//! to any number of concurrent readers following the stream at their
//! own pace.
//!
//! The buffer keeps a single monotone **byte offset** space: the first
//! byte ever written is offset 0, and a reader resumes from wherever
//! it left off by passing its last end offset to
//! [`TailBuffer::read_from`]. When the ring overflows its capacity the
//! oldest bytes are discarded **up to the next line boundary**, so a
//! late reader may miss lines but never sees a torn one.
//!
//! Readers block (with a timeout) until new bytes arrive or the
//! producer [`close`](TailBuffer::close)s the stream — the shape a
//! chunked HTTP tail endpoint needs: poll, forward, repeat, stop at
//! `closed`.

use std::io::Write;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Default ring capacity: enough for tens of thousands of trace lines.
const DEFAULT_CAPACITY: usize = 1 << 20;

struct TailState {
    /// The retained window of the stream.
    buf: Vec<u8>,
    /// Stream offset of `buf[0]`.
    start: u64,
    /// Set once by [`TailBuffer::close`]; readers drain and stop.
    closed: bool,
}

struct TailShared {
    state: Mutex<TailState>,
    cond: Condvar,
    capacity: usize,
}

/// A chunk returned by [`TailBuffer::read_from`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailChunk {
    /// Stream offset of `bytes[0]`. May be **greater** than the
    /// requested offset when the ring discarded bytes the reader was
    /// too slow for.
    pub offset: u64,
    /// The bytes available past `offset` (empty on timeout).
    pub bytes: Vec<u8>,
    /// Whether the producer closed the stream. Once `true` with empty
    /// `bytes`, the reader has seen everything it ever will.
    pub closed: bool,
}

impl TailChunk {
    /// The offset to resume the next [`TailBuffer::read_from`] at.
    #[must_use]
    pub fn end_offset(&self) -> u64 {
        self.offset + self.bytes.len() as u64
    }
}

/// The shared ring. Cheap to clone (an `Arc` handle); the engine-side
/// clone writes through [`TailBuffer::writer`] and server-side clones
/// read through [`TailBuffer::read_from`].
#[derive(Clone)]
pub struct TailBuffer {
    shared: Arc<TailShared>,
}

impl Default for TailBuffer {
    fn default() -> Self {
        TailBuffer::new(DEFAULT_CAPACITY)
    }
}

impl std::fmt::Debug for TailBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("TailBuffer")
            .field("start", &state.start)
            .field("len", &state.buf.len())
            .field("closed", &state.closed)
            .finish()
    }
}

impl TailBuffer {
    /// A ring retaining up to `capacity` bytes (clamped to ≥ 1 KiB so
    /// a whole trace line always fits).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TailBuffer {
            shared: Arc::new(TailShared {
                state: Mutex::new(TailState {
                    buf: Vec::new(),
                    start: 0,
                    closed: false,
                }),
                cond: Condvar::new(),
                capacity: capacity.max(1024),
            }),
        }
    }

    /// A `Write + Send` handle appending to the ring. Hand it to a
    /// [`TraceWriter::Owned`](crate::TraceWriter) or tee trace bytes
    /// into it alongside the real trace file.
    #[must_use]
    pub fn writer(&self) -> TailWriter {
        TailWriter {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Marks the stream complete and wakes every waiting reader.
    /// Idempotent.
    pub fn close(&self) {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.shared.cond.notify_all();
    }

    /// One past the last byte ever written (the stream length so far).
    #[must_use]
    pub fn end_offset(&self) -> u64 {
        let state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.start + state.buf.len() as u64
    }

    /// Returns everything available from stream offset `offset`,
    /// blocking up to `timeout` for new bytes when the reader is caught
    /// up. An empty, non-closed chunk means the timeout elapsed — poll
    /// again. If the ring already discarded `offset`, the chunk starts
    /// at the oldest retained line instead (its `offset` says so).
    #[must_use]
    pub fn read_from(&self, offset: u64, timeout: Duration) -> TailChunk {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            let end = state.start + state.buf.len() as u64;
            let from = offset.max(state.start);
            if from < end || state.closed {
                let skip = usize::try_from(from.saturating_sub(state.start)).unwrap_or(usize::MAX);
                let bytes = state.buf.get(skip..).unwrap_or_default().to_vec();
                return TailChunk {
                    offset: from,
                    bytes,
                    closed: state.closed,
                };
            }
            let (next, wait) = self
                .shared
                .cond
                .wait_timeout(state, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if wait.timed_out() {
                let from = offset.max(state.start);
                return TailChunk {
                    offset: from,
                    bytes: Vec::new(),
                    closed: state.closed,
                };
            }
        }
    }
}

/// The writing end of a [`TailBuffer`].
pub struct TailWriter {
    shared: Arc<TailShared>,
}

impl std::fmt::Debug for TailWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TailWriter").finish_non_exhaustive()
    }
}

impl Write for TailWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.buf.extend_from_slice(buf);
        if state.buf.len() > self.shared.capacity {
            // Trim the front to the next line boundary at or past the
            // overflow point, so the retained window always starts on
            // a whole line.
            let overflow = state.buf.len() - self.shared.capacity;
            let cut = state.buf[overflow..]
                .iter()
                .position(|&b| b == b'\n')
                .map_or(state.buf.len(), |nl| overflow + nl + 1);
            state.buf.drain(..cut);
            state.start += cut as u64;
        }
        drop(state);
        self.shared.cond.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_sees_written_bytes_at_their_offsets() {
        let tail = TailBuffer::new(4096);
        let mut w = tail.writer();
        w.write_all(b"line one\n").unwrap();
        w.write_all(b"line two\n").unwrap();
        let chunk = tail.read_from(0, Duration::from_millis(10));
        assert_eq!(chunk.offset, 0);
        assert_eq!(chunk.bytes, b"line one\nline two\n");
        assert!(!chunk.closed);
        // Resuming from the end blocks until timeout, returning empty.
        let next = tail.read_from(chunk.end_offset(), Duration::from_millis(5));
        assert!(next.bytes.is_empty());
        assert!(!next.closed);
    }

    #[test]
    fn close_wakes_and_finishes_readers() {
        let tail = TailBuffer::new(4096);
        tail.writer().write_all(b"only line\n").unwrap();
        tail.close();
        let chunk = tail.read_from(0, Duration::from_secs(5));
        assert_eq!(chunk.bytes, b"only line\n");
        assert!(chunk.closed);
        let done = tail.read_from(chunk.end_offset(), Duration::from_secs(5));
        assert!(done.bytes.is_empty());
        assert!(done.closed);
    }

    #[test]
    fn overflow_discards_whole_lines_only() {
        let tail = TailBuffer::new(1024);
        let mut w = tail.writer();
        // 64 lines of 32 bytes = 2048 bytes through a 1024-byte ring.
        for i in 0..64 {
            let line = format!("{i:031}\n");
            assert_eq!(line.len(), 32);
            w.write_all(line.as_bytes()).unwrap();
        }
        let chunk = tail.read_from(0, Duration::from_millis(10));
        // The reader asked for 0 but the ring discarded the front.
        assert!(chunk.offset > 0);
        assert_eq!(chunk.offset % 32, 0, "trim lands on a line boundary");
        assert!(chunk.bytes.len() <= 1024);
        assert!(chunk.bytes.ends_with(b"\n"));
        let text = String::from_utf8(chunk.bytes).unwrap();
        assert!(text.lines().all(|l| l.len() == 31));
        assert!(text.ends_with("0000063\n"));
    }

    #[test]
    fn blocked_reader_wakes_on_write() {
        let tail = TailBuffer::new(4096);
        let reader = tail.clone();
        let handle = std::thread::spawn(move || reader.read_from(0, Duration::from_secs(30)));
        // Give the reader a moment to block, then write.
        std::thread::sleep(Duration::from_millis(20));
        tail.writer().write_all(b"wake\n").unwrap();
        let chunk = handle.join().unwrap();
        assert_eq!(chunk.bytes, b"wake\n");
    }
}
