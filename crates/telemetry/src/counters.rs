//! Monotonic event counters aggregated into the [`crate::TelemetryReport`].

use serde::{Deserialize, Serialize};

use crate::event::{DropReason, EventKind};

/// Monotonic per-run (or merged per-batch) event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounters {
    /// `PacketGenerated` events.
    pub generated: u64,
    /// `WindowSelected` events.
    pub window_selected: u64,
    /// `TxAttempt` events.
    pub tx_attempts: u64,
    /// `AckReceived` events.
    pub acks: u64,
    /// `PacketDropped` events with reason `no_window`.
    pub drops_no_window: u64,
    /// `PacketDropped` events with reason `brownout`.
    pub drops_brownout: u64,
    /// `PacketDropped` events with reason `mac_busy`.
    pub drops_mac_busy: u64,
    /// `ExchangeFailed` events.
    pub exchange_failures: u64,
    /// `Brownout` settlement events.
    pub brownouts: u64,
    /// `SocCapped` settlement events.
    pub soc_capped: u64,
    /// `DisseminationApplied` events.
    pub dissemination_applied: u64,
    /// `FaultInjected` events (all fault kinds).
    pub faults_injected: u64,
    /// `WuExpired` events.
    pub wu_expired: u64,
    /// `FallbackWindow` events.
    pub fallback_windows: u64,
    /// `TraceRequeued` events.
    pub traces_requeued: u64,
}

impl EventCounters {
    /// Increments the counter matching one event kind.
    pub fn bump(&mut self, kind: &EventKind) {
        match kind {
            EventKind::PacketGenerated => self.generated += 1,
            EventKind::WindowSelected { .. } => self.window_selected += 1,
            EventKind::TxAttempt { .. } => self.tx_attempts += 1,
            EventKind::AckReceived { .. } => self.acks += 1,
            EventKind::PacketDropped { reason } => match reason {
                DropReason::NoWindow => self.drops_no_window += 1,
                DropReason::Brownout => self.drops_brownout += 1,
                DropReason::MacBusy => self.drops_mac_busy += 1,
            },
            EventKind::ExchangeFailed { .. } => self.exchange_failures += 1,
            EventKind::Brownout { .. } => self.brownouts += 1,
            EventKind::SocCapped { .. } => self.soc_capped += 1,
            EventKind::DisseminationApplied { .. } => self.dissemination_applied += 1,
            EventKind::FaultInjected { .. } => self.faults_injected += 1,
            EventKind::WuExpired { .. } => self.wu_expired += 1,
            EventKind::FallbackWindow => self.fallback_windows += 1,
            EventKind::TraceRequeued { .. } => self.traces_requeued += 1,
        }
    }

    /// Total events counted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.generated
            + self.window_selected
            + self.tx_attempts
            + self.acks
            + self.drops_no_window
            + self.drops_brownout
            + self.drops_mac_busy
            + self.exchange_failures
            + self.brownouts
            + self.soc_capped
            + self.dissemination_applied
            + self.faults_injected
            + self.wu_expired
            + self.fallback_windows
            + self.traces_requeued
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &EventCounters) {
        self.generated += other.generated;
        self.window_selected += other.window_selected;
        self.tx_attempts += other.tx_attempts;
        self.acks += other.acks;
        self.drops_no_window += other.drops_no_window;
        self.drops_brownout += other.drops_brownout;
        self.drops_mac_busy += other.drops_mac_busy;
        self.exchange_failures += other.exchange_failures;
        self.brownouts += other.brownouts;
        self.soc_capped += other.soc_capped;
        self.dissemination_applied += other.dissemination_applied;
        self.faults_injected += other.faults_injected;
        self.wu_expired += other.wu_expired;
        self.fallback_windows += other.fallback_windows;
        self.traces_requeued += other.traces_requeued;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_routes_every_kind() {
        let mut c = EventCounters::default();
        let kinds = [
            EventKind::PacketGenerated,
            EventKind::WindowSelected {
                window: 0,
                dif: 0.0,
                utility_loss: 0.0,
            },
            EventKind::TxAttempt {
                sf: 7,
                airtime_ms: 50,
                soc: 0.5,
            },
            EventKind::AckReceived { latency_ms: 100 },
            EventKind::PacketDropped {
                reason: DropReason::NoWindow,
            },
            EventKind::PacketDropped {
                reason: DropReason::Brownout,
            },
            EventKind::PacketDropped {
                reason: DropReason::MacBusy,
            },
            EventKind::ExchangeFailed { attempts: 4 },
            EventKind::Brownout { deficit_j: 0.1 },
            EventKind::SocCapped {
                spilled_j: 0.1,
                soc: 1.0,
            },
            EventKind::DisseminationApplied { weight: 3 },
            EventKind::FaultInjected {
                fault: crate::event::FaultKind::Reboot,
            },
            EventKind::WuExpired { age_ms: 1000 },
            EventKind::FallbackWindow,
            EventKind::TraceRequeued { queued: 2 },
        ];
        for k in &kinds {
            c.bump(k);
        }
        assert_eq!(c.total(), kinds.len() as u64);
        assert_eq!(c.generated, 1);
        assert_eq!(c.drops_no_window, 1);
        assert_eq!(c.drops_brownout, 1);
        assert_eq!(c.drops_mac_busy, 1);
        assert_eq!(c.dissemination_applied, 1);
        assert_eq!(c.faults_injected, 1);
        assert_eq!(c.wu_expired, 1);
        assert_eq!(c.fallback_windows, 1);
        assert_eq!(c.traces_requeued, 1);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = EventCounters {
            generated: 2,
            acks: 1,
            ..EventCounters::default()
        };
        let b = EventCounters {
            generated: 3,
            brownouts: 4,
            ..EventCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.generated, 5);
        assert_eq!(a.acks, 1);
        assert_eq!(a.brownouts, 4);
        assert_eq!(a.total(), 10);
    }
}
