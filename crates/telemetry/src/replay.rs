//! Trace validation: re-reads a JSONL trace and checks structural
//! invariants, then optionally reconciles event counts against the
//! simulator's own per-node metrics.

use std::collections::BTreeMap;
use std::io::BufRead;

use serde::{Deserialize, Serialize};

use crate::event::{DropReason, EventKind, Record, SCHEMA_VERSION};

/// A structural violation found while validating a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// 1-based line number the problem was found on (0 = end of file).
    pub line: u64,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "trace invalid at end of file: {}", self.message)
        } else {
            write!(f, "trace invalid at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ReplayError {}

/// Per-(run, node) event tally accumulated during validation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTally {
    /// Events attributed to the node.
    pub events: u64,
    /// `packet_generated` events.
    pub generated: u64,
    /// `window_selected` events.
    pub window_selected: u64,
    /// `tx_attempt` events.
    pub tx_attempts: u64,
    /// `ack_received` events.
    pub acks: u64,
    /// `packet_dropped` events with reason `no_window`.
    pub drops_no_window: u64,
    /// `packet_dropped` events with reason `brownout` or `mac_busy`.
    pub drops_energy_or_busy: u64,
    /// `exchange_failed` events.
    pub exchange_failures: u64,
}

/// What a validated trace contained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplaySummary {
    /// Total lines read.
    pub lines: u64,
    /// Total `Event` records.
    pub events: u64,
    /// Distinct run indices seen.
    pub runs: u64,
    /// Flight dumps encountered.
    pub flight_dumps: u64,
    /// Per-(run, node) tallies.
    pub per_node: BTreeMap<(u32, u32), NodeTally>,
}

/// The per-node counters a simulator reports, for reconciliation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpectedNodeCounts {
    /// Packets generated.
    pub generated: u64,
    /// Packets acknowledged.
    pub delivered: u64,
    /// Uplink attempts (first transmissions + retransmissions).
    pub transmissions: u64,
    /// Packets dropped before completing (no-window + brownout).
    pub dropped: u64,
}

impl ReplaySummary {
    /// Checks one run's per-node tallies against the simulator's own
    /// counters. Returns a description of the first mismatch.
    ///
    /// `expected[i]` must describe node `i` of run `run`.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a human-readable description when any node's
    /// trace tally disagrees with its reported counters.
    pub fn reconcile(&self, run: u32, expected: &[ExpectedNodeCounts]) -> Result<(), String> {
        for (i, want) in expected.iter().enumerate() {
            let node = u32::try_from(i).map_err(|_| format!("node index {i} overflows u32"))?;
            let got = self.per_node.get(&(run, node)).copied().unwrap_or_default();
            let checks = [
                ("generated", got.generated, want.generated),
                ("delivered/acks", got.acks, want.delivered),
                ("transmissions", got.tx_attempts, want.transmissions),
                (
                    "dropped",
                    got.drops_no_window + got.drops_energy_or_busy,
                    want.dropped,
                ),
            ];
            for (name, got_n, want_n) in checks {
                if got_n != want_n {
                    return Err(format!(
                        "run {run} node {node}: trace has {got_n} {name} events \
                         but metrics report {want_n}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Validation state for one run within the trace.
#[derive(Debug, Default)]
struct RunState {
    events: u64,
    summary_events: Option<u64>,
    panicked: bool,
    last_t_per_node: BTreeMap<u32, u64>,
}

/// Reads a JSONL trace and checks:
///
/// 1. every line parses as a [`Record`];
/// 2. each run starts with a `header` carrying the current
///    [`SCHEMA_VERSION`] before any of its events;
/// 3. per (run, node), event timestamps are monotonically
///    non-decreasing;
/// 4. each run's `summary.events` matches the number of `event`
///    records actually seen (a missing summary is tolerated only when
///    that run wrote a `panic` flight dump).
///
/// # Errors
///
/// Returns the first [`ReplayError`] found; the summary is only
/// produced for fully valid traces.
pub fn validate<R: BufRead>(reader: R) -> Result<ReplaySummary, ReplayError> {
    let mut summary = ReplaySummary::default();
    let mut runs: BTreeMap<u32, RunState> = BTreeMap::new();
    let mut line_no: u64 = 0;

    for line in reader.lines() {
        line_no += 1;
        let line = line.map_err(|e| ReplayError {
            line: line_no,
            message: format!("read error: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        summary.lines += 1;
        let record: Record = serde_json::from_str(&line).map_err(|e| ReplayError {
            line: line_no,
            message: format!("parse error: {e}"),
        })?;
        match record {
            Record::Header { schema, run, .. } => {
                if schema != SCHEMA_VERSION {
                    return Err(ReplayError {
                        line: line_no,
                        message: format!(
                            "schema {schema} does not match supported {SCHEMA_VERSION}"
                        ),
                    });
                }
                if runs.contains_key(&run) {
                    return Err(ReplayError {
                        line: line_no,
                        message: format!("duplicate header for run {run}"),
                    });
                }
                runs.insert(run, RunState::default());
            }
            Record::Event { run, event } => {
                let state = runs.get_mut(&run).ok_or_else(|| ReplayError {
                    line: line_no,
                    message: format!("event for run {run} before its header"),
                })?;
                if state.summary_events.is_some() {
                    return Err(ReplayError {
                        line: line_no,
                        message: format!("event for run {run} after its summary"),
                    });
                }
                if let Some(&last) = state.last_t_per_node.get(&event.node) {
                    if event.t_ms < last {
                        return Err(ReplayError {
                            line: line_no,
                            message: format!(
                                "run {run} node {} time went backwards: {} -> {}",
                                event.node, last, event.t_ms
                            ),
                        });
                    }
                }
                state.last_t_per_node.insert(event.node, event.t_ms);
                state.events += 1;
                summary.events += 1;
                let tally = summary.per_node.entry((run, event.node)).or_default();
                tally.events += 1;
                match &event.kind {
                    EventKind::PacketGenerated => tally.generated += 1,
                    EventKind::WindowSelected { .. } => tally.window_selected += 1,
                    EventKind::TxAttempt { .. } => tally.tx_attempts += 1,
                    EventKind::AckReceived { .. } => tally.acks += 1,
                    EventKind::PacketDropped { reason } => match reason {
                        DropReason::NoWindow => tally.drops_no_window += 1,
                        DropReason::Brownout | DropReason::MacBusy => {
                            tally.drops_energy_or_busy += 1;
                        }
                    },
                    EventKind::ExchangeFailed { .. } => tally.exchange_failures += 1,
                    _ => {}
                }
            }
            Record::FlightDump { run, trigger, .. } => {
                let state = runs.get_mut(&run).ok_or_else(|| ReplayError {
                    line: line_no,
                    message: format!("flight dump for run {run} before its header"),
                })?;
                if trigger == "panic" {
                    state.panicked = true;
                }
                summary.flight_dumps += 1;
            }
            Record::Summary { run, events } => {
                let state = runs.get_mut(&run).ok_or_else(|| ReplayError {
                    line: line_no,
                    message: format!("summary for run {run} before its header"),
                })?;
                if state.summary_events.is_some() {
                    return Err(ReplayError {
                        line: line_no,
                        message: format!("duplicate summary for run {run}"),
                    });
                }
                if events != state.events {
                    return Err(ReplayError {
                        line: line_no,
                        message: format!(
                            "run {run} summary claims {events} events but {} were seen",
                            state.events
                        ),
                    });
                }
                state.summary_events = Some(events);
            }
        }
    }

    for (run, state) in &runs {
        if state.summary_events.is_none() && !state.panicked {
            return Err(ReplayError {
                line: 0,
                message: format!("run {run} has no summary record and no panic dump"),
            });
        }
    }
    summary.runs = runs.len() as u64;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SimEvent;

    fn line(r: &Record) -> String {
        serde_json::to_string(r).unwrap()
    }

    fn header(run: u32) -> Record {
        Record::Header {
            schema: SCHEMA_VERSION,
            run,
            label: "t".into(),
            seed: 1,
            nodes: 2,
        }
    }

    fn event(run: u32, node: u32, t_ms: u64, kind: EventKind) -> Record {
        Record::Event {
            run,
            event: SimEvent { t_ms, node, kind },
        }
    }

    #[test]
    fn valid_trace_summarizes() {
        let trace = [
            line(&header(0)),
            line(&event(0, 0, 0, EventKind::PacketGenerated)),
            line(&event(0, 1, 0, EventKind::PacketGenerated)),
            line(&event(0, 0, 5, EventKind::AckReceived { latency_ms: 5 })),
            line(&Record::Summary { run: 0, events: 3 }),
        ]
        .join("\n");
        let s = validate(trace.as_bytes()).expect("valid trace");
        assert_eq!(s.events, 3);
        assert_eq!(s.runs, 1);
        assert_eq!(s.per_node[&(0, 0)].generated, 1);
        assert_eq!(s.per_node[&(0, 0)].acks, 1);
        assert_eq!(s.per_node[&(0, 1)].generated, 1);
    }

    #[test]
    fn event_before_header_is_rejected() {
        let trace = line(&event(0, 0, 0, EventKind::PacketGenerated));
        let err = validate(trace.as_bytes()).unwrap_err();
        assert!(err.message.contains("before its header"), "{err}");
    }

    #[test]
    fn non_monotone_time_is_rejected() {
        let trace = [
            line(&header(0)),
            line(&event(0, 0, 10, EventKind::PacketGenerated)),
            line(&event(0, 0, 5, EventKind::PacketGenerated)),
        ]
        .join("\n");
        let err = validate(trace.as_bytes()).unwrap_err();
        assert!(err.message.contains("time went backwards"), "{err}");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn wrong_summary_count_is_rejected() {
        let trace = [
            line(&header(0)),
            line(&event(0, 0, 0, EventKind::PacketGenerated)),
            line(&Record::Summary { run: 0, events: 2 }),
        ]
        .join("\n");
        let err = validate(trace.as_bytes()).unwrap_err();
        assert!(err.message.contains("claims 2 events"), "{err}");
    }

    #[test]
    fn missing_summary_is_rejected_unless_panicked() {
        let trace = [
            line(&header(0)),
            line(&event(0, 0, 0, EventKind::PacketGenerated)),
        ]
        .join("\n");
        let err = validate(trace.as_bytes()).unwrap_err();
        assert!(err.message.contains("no summary"), "{err}");

        let trace = [
            line(&header(0)),
            line(&event(0, 0, 0, EventKind::PacketGenerated)),
            line(&Record::FlightDump {
                run: 0,
                node: 0,
                t_ms: 0,
                trigger: "panic".into(),
                events: vec![],
            }),
        ]
        .join("\n");
        let s = validate(trace.as_bytes()).expect("panic excuses the summary");
        assert_eq!(s.flight_dumps, 1);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let trace = line(&Record::Header {
            schema: SCHEMA_VERSION + 1,
            run: 0,
            label: "t".into(),
            seed: 1,
            nodes: 1,
        });
        let err = validate(trace.as_bytes()).unwrap_err();
        assert!(err.message.contains("schema"), "{err}");
    }

    #[test]
    fn garbage_line_is_rejected_with_line_number() {
        let trace = format!("{}\nnot json", line(&header(0)));
        let err = validate(trace.as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("parse error"), "{err}");
    }

    #[test]
    fn interleaved_runs_validate_independently() {
        let trace = [
            line(&header(0)),
            line(&header(1)),
            line(&event(0, 0, 10, EventKind::PacketGenerated)),
            // Run 1 node 0 earlier in time than run 0's: fine, runs
            // are independent streams.
            line(&event(1, 0, 2, EventKind::PacketGenerated)),
            line(&Record::Summary { run: 0, events: 1 }),
            line(&Record::Summary { run: 1, events: 1 }),
        ]
        .join("\n");
        let s = validate(trace.as_bytes()).expect("interleaved runs are valid");
        assert_eq!(s.runs, 2);
        assert_eq!(s.events, 2);
    }

    #[test]
    fn reconcile_matches_and_mismatches() {
        let trace = [
            line(&header(0)),
            line(&event(0, 0, 0, EventKind::PacketGenerated)),
            line(&event(
                0,
                0,
                1,
                EventKind::TxAttempt {
                    sf: 7,
                    airtime_ms: 50,
                    soc: 0.9,
                },
            )),
            line(&event(0, 0, 5, EventKind::AckReceived { latency_ms: 5 })),
            line(&Record::Summary { run: 0, events: 3 }),
        ]
        .join("\n");
        let s = validate(trace.as_bytes()).unwrap();
        let ok = [ExpectedNodeCounts {
            generated: 1,
            delivered: 1,
            transmissions: 1,
            dropped: 0,
        }];
        assert_eq!(s.reconcile(0, &ok), Ok(()));
        let bad = [ExpectedNodeCounts {
            generated: 2,
            ..ok[0]
        }];
        let err = s.reconcile(0, &bad).unwrap_err();
        assert!(err.contains("generated"), "{err}");
    }
}
