//! Structured simulation events and the schema-versioned JSONL record
//! envelope they are serialized into.
//!
//! Events deliberately carry only plain numbers (`u64` milliseconds,
//! `f64` joules/fractions) instead of the `blam-units` newtypes so that
//! the telemetry crate stays dependency-light and traces remain
//! readable by any JSON tool.

use serde::{Deserialize, Serialize};

/// Version stamped into every trace header.
///
/// Bump this whenever the shape of [`SimEvent`] or [`Record`] changes
/// incompatibly; the [`crate::replay`] validator rejects mismatches.
///
/// History: v1 — initial schema; v2 — fault-injection and degradation
/// events (`fault_injected`, `wu_expired`, `fallback_window`,
/// `trace_requeued`).
pub const SCHEMA_VERSION: u32 = 2;

/// One structured event observed during a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimEvent {
    /// Simulation time of the event, in milliseconds since run start.
    pub t_ms: u64,
    /// Index of the node the event concerns.
    pub node: u32,
    /// What happened.
    #[serde(flatten)]
    pub kind: EventKind,
}

/// The event payload, tagged as `"kind"` in JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum EventKind {
    /// The application layer produced a packet.
    PacketGenerated,
    /// The MAC policy picked a transmission window for a packet.
    WindowSelected {
        /// Chosen window index within the planning horizon.
        window: u32,
        /// Degradation impact factor of the chosen window (Eq. 7).
        dif: f64,
        /// Utility lost by deferring to this window (`1 - U(window)`).
        utility_loss: f64,
    },
    /// The radio started an uplink attempt.
    TxAttempt {
        /// LoRa spreading factor used for the attempt.
        sf: u8,
        /// Time-on-air of the frame, in milliseconds.
        airtime_ms: u64,
        /// Battery state of charge (0..=1) when the attempt began.
        soc: f64,
    },
    /// A downlink acknowledgement concluded the exchange successfully.
    AckReceived {
        /// Generation-to-ack latency, in milliseconds.
        latency_ms: u64,
    },
    /// A packet was dropped before any transmission completed.
    PacketDropped {
        /// Why the packet never made it onto the air.
        reason: DropReason,
    },
    /// All retransmissions were exhausted without an acknowledgement.
    ExchangeFailed {
        /// Number of uplink attempts made for the packet.
        attempts: u32,
    },
    /// Energy settlement came up short: the node browned out.
    Brownout {
        /// Unmet energy demand, in joules.
        deficit_j: f64,
    },
    /// Harvested energy was discarded because SoC hit the cap θ.
    SocCapped {
        /// Energy spilled during the settlement, in joules.
        spilled_j: f64,
        /// State of charge (0..=1) after the settlement.
        soc: f64,
    },
    /// The server's disseminated weight reached the node and was applied.
    DisseminationApplied {
        /// The dissemination weight carried by the downlink.
        weight: u8,
    },
    /// The fault layer injected a fault.
    FaultInjected {
        /// Which fault fired.
        fault: FaultKind,
    },
    /// The node's disseminated weight aged past its TTL; the policy is
    /// decaying it toward neutral instead of trusting it. Emitted once
    /// per expiry (edge-triggered), not per packet.
    WuExpired {
        /// Age of the weight when the expiry was first observed, in
        /// milliseconds.
        age_ms: u64,
    },
    /// The policy fell back to immediate-window transmission because
    /// the forecaster was cold (e.g. right after a reboot).
    FallbackWindow,
    /// An exchange failed with compressed SoC traces still queued; the
    /// node keeps them buffered to re-piggyback on recovery.
    TraceRequeued {
        /// Traces waiting in the node's bounded queue.
        queued: u32,
    },
}

/// Which fault the fault-injection layer fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultKind {
    /// An uplink fell inside a gateway outage window.
    GatewayOutage,
    /// The Gilbert–Elliott uplink channel ate a frame.
    UplinkLost,
    /// The Gilbert–Elliott downlink channel ate an ACK.
    DownlinkLost,
    /// The node rebooted, wiping volatile protocol state.
    Reboot,
    /// A dissemination byte arrived bit-corrupted.
    WeightCorrupted,
    /// A SoC sensor reading was perturbed by noise/bias.
    SensorNoise,
}

/// Reason a packet was dropped without completing an exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DropReason {
    /// The policy found no feasible window in the horizon.
    NoWindow,
    /// The node lacked energy for even one attempt.
    Brownout,
    /// The MAC layer was still busy with a previous exchange.
    MacBusy,
}

/// One line of a JSONL trace, tagged as `"type"` in JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Record {
    /// First line of every run's stream: identifies the run and schema.
    Header {
        /// Trace schema version ([`SCHEMA_VERSION`]).
        schema: u32,
        /// Index of the run within its batch (0 for single runs).
        run: u32,
        /// Human-readable scenario label.
        label: String,
        /// Master RNG seed of the run.
        seed: u64,
        /// Number of simulated nodes.
        nodes: u32,
    },
    /// A simulation event.
    Event {
        /// Index of the run the event belongs to.
        run: u32,
        /// The event itself, flattened into the same JSON object.
        #[serde(flatten)]
        event: SimEvent,
    },
    /// A flight-recorder dump triggered by an anomaly or panic.
    FlightDump {
        /// Index of the run the dump belongs to.
        run: u32,
        /// Node whose ring buffer is being dumped.
        node: u32,
        /// Simulation time of the trigger, in milliseconds.
        t_ms: u64,
        /// What triggered the dump (e.g. `"brownout_drop"`, `"panic"`).
        trigger: String,
        /// The buffered trailing events, oldest first.
        events: Vec<SimEvent>,
    },
    /// Last line of a run's stream: total event count for validation.
    Summary {
        /// Index of the run being closed.
        run: u32,
        /// Number of `Event` records written for this run.
        events: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_kind_serializes_with_snake_case_tag() {
        let e = SimEvent {
            t_ms: 1500,
            node: 3,
            kind: EventKind::WindowSelected {
                window: 2,
                dif: 0.25,
                utility_loss: 0.1,
            },
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"kind\":\"window_selected\""), "{json}");
        assert!(json.contains("\"t_ms\":1500"), "{json}");
        let back: SimEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn drop_reason_round_trips() {
        for reason in [
            DropReason::NoWindow,
            DropReason::Brownout,
            DropReason::MacBusy,
        ] {
            let e = SimEvent {
                t_ms: 0,
                node: 0,
                kind: EventKind::PacketDropped { reason },
            };
            let json = serde_json::to_string(&e).unwrap();
            let back: SimEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn fault_events_round_trip_with_snake_case_tags() {
        let kinds = [
            EventKind::FaultInjected {
                fault: FaultKind::GatewayOutage,
            },
            EventKind::FaultInjected {
                fault: FaultKind::UplinkLost,
            },
            EventKind::FaultInjected {
                fault: FaultKind::DownlinkLost,
            },
            EventKind::FaultInjected {
                fault: FaultKind::Reboot,
            },
            EventKind::FaultInjected {
                fault: FaultKind::WeightCorrupted,
            },
            EventKind::FaultInjected {
                fault: FaultKind::SensorNoise,
            },
            EventKind::WuExpired { age_ms: 86_400_000 },
            EventKind::FallbackWindow,
            EventKind::TraceRequeued { queued: 3 },
        ];
        for kind in kinds {
            let e = SimEvent {
                t_ms: 7,
                node: 1,
                kind,
            };
            let json = serde_json::to_string(&e).unwrap();
            let back: SimEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
        }
        let e = SimEvent {
            t_ms: 7,
            node: 1,
            kind: EventKind::FaultInjected {
                fault: FaultKind::Reboot,
            },
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"kind\":\"fault_injected\""), "{json}");
        assert!(json.contains("\"fault\":\"reboot\""), "{json}");
    }

    #[test]
    fn record_envelope_round_trips() {
        let records = vec![
            Record::Header {
                schema: SCHEMA_VERSION,
                run: 0,
                label: "test".into(),
                seed: 42,
                nodes: 10,
            },
            Record::Event {
                run: 0,
                event: SimEvent {
                    t_ms: 10,
                    node: 1,
                    kind: EventKind::PacketGenerated,
                },
            },
            Record::FlightDump {
                run: 0,
                node: 1,
                t_ms: 20,
                trigger: "brownout_drop".into(),
                events: vec![SimEvent {
                    t_ms: 10,
                    node: 1,
                    kind: EventKind::PacketGenerated,
                }],
            },
            Record::Summary { run: 0, events: 1 },
        ];
        for r in records {
            let json = serde_json::to_string(&r).unwrap();
            let back: Record = serde_json::from_str(&json).unwrap();
            assert_eq!(back, r);
        }
    }
}
