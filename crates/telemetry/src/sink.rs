//! The [`TelemetrySink`] trait and its zero-overhead [`NullSink`].

use crate::event::SimEvent;
use crate::report::TelemetryReport;

/// Receiver for simulation events.
///
/// The simulation engine owns exactly one boxed sink per run (one per
/// `BatchRunner` worker slot), so implementations never need interior
/// mutability for event recording. Sinks are `Send` so a batch runner
/// can move them into worker threads; merging happens after join.
///
/// Emit sites in the engine are expected to guard event construction
/// with [`TelemetrySink::enabled`], so a disabled sink costs one
/// virtual call returning a constant `false` per site — the event
/// struct itself is never built.
pub trait TelemetrySink: Send {
    /// Whether events should be constructed and recorded at all.
    fn enabled(&self) -> bool;

    /// Records one event. Never called when [`Self::enabled`] is false
    /// by well-behaved emitters, but must be safe to call regardless.
    fn record(&mut self, event: &SimEvent);

    /// Announces the run this sink is observing. Called once, before
    /// any event.
    fn begin(&mut self, label: &str, seed: u64, nodes: u32) {
        let _ = (label, seed, nodes);
    }

    /// Finalizes the sink and hands back its report, if it kept one.
    fn finish(&mut self) -> Option<TelemetryReport> {
        None
    }
}

/// A sink that records nothing.
///
/// `enabled()` is a constant `false`, so emit sites guarded by it
/// skip event construction entirely and disabled runs stay
/// byte-identical to builds without telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _event: &SimEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn null_sink_is_disabled_and_reports_nothing() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.record(&SimEvent {
            t_ms: 0,
            node: 0,
            kind: EventKind::PacketGenerated,
        });
        sink.begin("label", 1, 2);
        assert!(sink.finish().is_none());
    }
}
