//! Progress reporting on stderr.
//!
//! Bench bins pipe their JSON results through stdout, so progress
//! chatter must never land there. Everything routed through
//! [`Progress`] goes to stderr, and a quiet handle drops it entirely.

/// A progress reporter that writes to stderr when verbose.
#[derive(Debug, Clone, Copy)]
pub struct Progress {
    verbose: bool,
}

impl Progress {
    /// Creates a reporter; `verbose = false` silences it.
    #[must_use]
    pub fn new(verbose: bool) -> Self {
        Progress { verbose }
    }

    /// Whether lines will actually be written.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.verbose
    }

    /// Writes one progress line to stderr (never stdout).
    pub fn line(&self, msg: &str) {
        if self.verbose {
            eprintln!("{msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_progress_is_disabled() {
        assert!(!Progress::new(false).enabled());
        assert!(Progress::new(true).enabled());
        // Writing through a quiet handle is a no-op (and must not panic).
        Progress::new(false).line("dropped");
    }
}
