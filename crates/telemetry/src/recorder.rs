//! The recording [`TelemetrySink`]: streaming histograms + counters,
//! optional JSONL trace writing, and the anomaly-triggered flight
//! recorder.

use std::collections::BTreeSet;
use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::event::{DropReason, EventKind, Record, SimEvent, SCHEMA_VERSION};
use crate::flight::FlightRecorder;
use crate::report::TelemetryReport;
use crate::sink::TelemetrySink;

/// Destination for JSONL trace lines.
///
/// A batch run shares one writer between per-worker recorders; each
/// line is formatted fully before a single locked write, so records
/// from concurrent runs interleave at line granularity only.
pub enum TraceWriter {
    /// Exclusive writer (single run).
    Owned(Box<dyn Write + Send>),
    /// Writer shared by the workers of one batch.
    Shared(Arc<Mutex<Box<dyn Write + Send>>>),
}

impl std::fmt::Debug for TraceWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceWriter::Owned(_) => f.write_str("TraceWriter::Owned(..)"),
            TraceWriter::Shared(_) => f.write_str("TraceWriter::Shared(..)"),
        }
    }
}

impl TraceWriter {
    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        match self {
            TraceWriter::Owned(w) => {
                w.write_all(line.as_bytes())?;
                w.write_all(b"\n")
            }
            TraceWriter::Shared(shared) => {
                // A writer that panicked mid-line leaves at worst a torn
                // record; keep tracing rather than poisoning every
                // thread that still wants to log.
                let mut w = shared
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                w.write_all(line.as_bytes())?;
                w.write_all(b"\n")
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            TraceWriter::Owned(w) => w.flush(),
            TraceWriter::Shared(shared) => shared
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .flush(),
        }
    }
}

/// Tuning knobs for a [`Recorder`].
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Events retained per node for flight dumps (0 disables).
    pub flight_capacity: usize,
    /// Whether brownout drops / failed exchanges dump the node's ring.
    pub dump_flight_on_anomaly: bool,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            flight_capacity: 64,
            dump_flight_on_anomaly: true,
        }
    }
}

/// A [`TelemetrySink`] that aggregates a [`TelemetryReport`], keeps a
/// [`FlightRecorder`], and optionally streams JSONL records.
#[derive(Debug)]
pub struct Recorder {
    run: u32,
    config: RecorderConfig,
    report: TelemetryReport,
    flight: FlightRecorder,
    /// Nodes whose anomaly dump already fired and has not re-armed
    /// yet. A fault storm (outage, burst loss) produces an anomaly per
    /// failed exchange; without this latch every one of them would
    /// dump the ring buffer, flooding the trace with near-identical
    /// snapshots. One dump per node per storm; a successful ACK
    /// re-arms the node.
    dump_disarmed: BTreeSet<u32>,
    writer: Option<TraceWriter>,
    write_failed: bool,
    finished: bool,
}

impl Recorder {
    /// Creates a recorder for run index `run` with no trace writer.
    #[must_use]
    pub fn new(run: u32, config: RecorderConfig) -> Self {
        let flight = FlightRecorder::new(config.flight_capacity);
        Recorder {
            run,
            config,
            report: TelemetryReport::new(),
            flight,
            dump_disarmed: BTreeSet::new(),
            writer: None,
            write_failed: false,
            finished: false,
        }
    }

    /// Attaches a JSONL trace destination.
    #[must_use]
    pub fn with_writer(mut self, writer: TraceWriter) -> Self {
        self.writer = Some(writer);
        self
    }

    /// Run index this recorder stamps into its records.
    #[must_use]
    pub fn run(&self) -> u32 {
        self.run
    }

    fn emit(&mut self, record: &Record) {
        if self.write_failed {
            return;
        }
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        let line = match serde_json::to_string(record) {
            Ok(line) => line,
            Err(err) => {
                eprintln!("[telemetry] trace serialization failed: {err}");
                self.write_failed = true;
                self.writer = None;
                return;
            }
        };
        if let Err(err) = writer.write_line(&line) {
            eprintln!("[telemetry] trace write failed, disabling trace: {err}");
            self.write_failed = true;
            self.writer = None;
        }
    }

    fn dump_flight(&mut self, node: u32, t_ms: u64, trigger: &str) {
        let events = self.flight.snapshot(node);
        if events.is_empty() {
            return;
        }
        self.report.flight_dumps += 1;
        let record = Record::FlightDump {
            run: self.run,
            node,
            t_ms,
            trigger: trigger.to_string(),
            events,
        };
        self.emit(&record);
    }

    fn anomaly_trigger(kind: &EventKind) -> Option<&'static str> {
        match kind {
            EventKind::PacketDropped {
                reason: DropReason::Brownout,
            } => Some("brownout_drop"),
            EventKind::ExchangeFailed { .. } => Some("failed_no_ack"),
            _ => None,
        }
    }
}

impl TelemetrySink for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: &SimEvent) {
        self.report.events += 1;
        self.report.counters.bump(&event.kind);
        match &event.kind {
            EventKind::AckReceived { latency_ms } => {
                self.report.latency_ms.record(*latency_ms as f64);
            }
            EventKind::WindowSelected { dif, .. } => {
                self.report.dif.record(*dif);
            }
            EventKind::TxAttempt {
                airtime_ms, soc, ..
            } => {
                self.report.airtime_ms.record(*airtime_ms as f64);
                self.report.soc_at_tx.record(*soc);
            }
            _ => {}
        }
        self.flight.push(event);
        self.emit(&Record::Event {
            run: self.run,
            event: event.clone(),
        });
        // Recovery re-arms the anomaly dump: the next failure after a
        // successful exchange is a fresh incident worth a snapshot.
        if matches!(event.kind, EventKind::AckReceived { .. }) {
            self.dump_disarmed.remove(&event.node);
        }
        if self.config.dump_flight_on_anomaly {
            if let Some(trigger) = Self::anomaly_trigger(&event.kind) {
                if self.dump_disarmed.insert(event.node) {
                    self.dump_flight(event.node, event.t_ms, trigger);
                }
            }
        }
    }

    fn begin(&mut self, label: &str, seed: u64, nodes: u32) {
        let record = Record::Header {
            schema: SCHEMA_VERSION,
            run: self.run,
            label: label.to_string(),
            seed,
            nodes,
        };
        self.emit(&record);
    }

    fn finish(&mut self) -> Option<TelemetryReport> {
        self.finished = true;
        // Only `Event` records count toward the summary; the replay
        // validator reconciles this against its own tally.
        let events = self.report.events;
        self.emit(&Record::Summary {
            run: self.run,
            events,
        });
        if let Some(writer) = self.writer.as_mut() {
            if let Err(err) = writer.flush() {
                eprintln!("[telemetry] trace flush failed: {err}");
            }
        }
        Some(self.report.clone())
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        // A panic mid-run is exactly what the flight recorder is for:
        // dump every node's trailing events before the trace is lost.
        if !self.finished && std::thread::panicking() {
            for node in self.flight.nodes() {
                self.dump_flight(node, 0, "panic");
            }
            if let Some(writer) = self.writer.as_mut() {
                let _ = writer.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ms: u64, node: u32, kind: EventKind) -> SimEvent {
        SimEvent { t_ms, node, kind }
    }

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn recorder_into(buf: &SharedBuf) -> Recorder {
        Recorder::new(0, RecorderConfig::default())
            .with_writer(TraceWriter::Owned(Box::new(buf.clone())))
    }

    #[test]
    fn recorder_counts_and_histograms() {
        let mut r = Recorder::new(0, RecorderConfig::default());
        r.begin("t", 1, 2);
        r.record(&ev(0, 0, EventKind::PacketGenerated));
        r.record(&ev(
            5,
            0,
            EventKind::TxAttempt {
                sf: 9,
                airtime_ms: 185,
                soc: 0.8,
            },
        ));
        r.record(&ev(400, 0, EventKind::AckReceived { latency_ms: 400 }));
        let report = r.finish().expect("recorder returns a report");
        assert_eq!(report.events, 3);
        assert_eq!(report.counters.generated, 1);
        assert_eq!(report.counters.tx_attempts, 1);
        assert_eq!(report.counters.acks, 1);
        assert_eq!(report.latency_ms.count(), 1);
        assert_eq!(report.airtime_ms.count(), 1);
        assert_eq!(report.soc_at_tx.count(), 1);
    }

    #[test]
    fn trace_stream_is_header_events_summary() {
        let buf = SharedBuf::default();
        let mut r = recorder_into(&buf);
        r.begin("lbl", 7, 1);
        r.record(&ev(1, 0, EventKind::PacketGenerated));
        r.finish();
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let records: Vec<Record> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(records.len(), 3);
        assert!(matches!(records[0], Record::Header { seed: 7, .. }));
        assert!(matches!(records[1], Record::Event { .. }));
        assert!(matches!(records[2], Record::Summary { events: 1, .. }));
    }

    #[test]
    fn anomaly_dumps_preceding_events() {
        let buf = SharedBuf::default();
        let mut r = recorder_into(&buf);
        r.begin("lbl", 1, 1);
        r.record(&ev(1, 4, EventKind::PacketGenerated));
        r.record(&ev(
            2,
            4,
            EventKind::PacketDropped {
                reason: DropReason::Brownout,
            },
        ));
        let report = r.finish().unwrap();
        assert_eq!(report.flight_dumps, 1);
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let dump = text
            .lines()
            .map(|l| serde_json::from_str::<Record>(l).unwrap())
            .find_map(|r| match r {
                Record::FlightDump {
                    node,
                    trigger,
                    events,
                    ..
                } => Some((node, trigger, events)),
                _ => None,
            })
            .expect("a flight dump is written");
        assert_eq!(dump.0, 4);
        assert_eq!(dump.1, "brownout_drop");
        // The dump includes the trigger event and what preceded it.
        assert_eq!(dump.2.len(), 2);
    }

    #[test]
    fn anomaly_storm_dumps_once_per_node_until_rearmed() {
        let buf = SharedBuf::default();
        let mut r = recorder_into(&buf);
        r.begin("lbl", 1, 2);
        let brownout = EventKind::PacketDropped {
            reason: DropReason::Brownout,
        };
        // A storm of anomalies on node 0: only the first dumps.
        r.record(&ev(1, 0, EventKind::PacketGenerated));
        r.record(&ev(2, 0, brownout.clone()));
        r.record(&ev(3, 0, brownout.clone()));
        r.record(&ev(4, 0, EventKind::ExchangeFailed { attempts: 8 }));
        // Node 1 fails too — its own first dump still fires.
        r.record(&ev(5, 1, EventKind::PacketGenerated));
        r.record(&ev(6, 1, brownout.clone()));
        // Node 0 recovers, then fails again: a fresh incident dumps.
        r.record(&ev(7, 0, EventKind::AckReceived { latency_ms: 6 }));
        r.record(&ev(8, 0, brownout.clone()));
        let report = r.finish().unwrap();
        assert_eq!(report.flight_dumps, 3, "one per node per outage");
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let dumps: Vec<(u32, u64)> = text
            .lines()
            .map(|l| serde_json::from_str::<Record>(l).unwrap())
            .filter_map(|r| match r {
                Record::FlightDump { node, t_ms, .. } => Some((node, t_ms)),
                _ => None,
            })
            .collect();
        assert_eq!(dumps, vec![(0, 2), (1, 6), (0, 8)]);
    }

    #[test]
    fn mac_busy_drop_is_not_an_anomaly() {
        let mut r = Recorder::new(0, RecorderConfig::default());
        r.record(&ev(
            1,
            0,
            EventKind::PacketDropped {
                reason: DropReason::MacBusy,
            },
        ));
        let report = r.finish().unwrap();
        assert_eq!(report.flight_dumps, 0);
    }
}
