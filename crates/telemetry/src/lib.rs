//! Zero-overhead-when-off observability for the lpwan-blam stack.
//!
//! The simulation engine emits structured [`SimEvent`]s into a
//! [`TelemetrySink`]. With the default [`NullSink`] every emit site is
//! guarded by a constant-`false` `enabled()` check, so disabled runs
//! build no events and stay byte-identical. With a [`Recorder`] the
//! same events feed:
//!
//! * monotonic [`EventCounters`] and streaming log-bucketed
//!   [`LogHistogram`]s, aggregated into a [`TelemetryReport`];
//! * an optional schema-versioned JSONL trace ([`Record`] lines)
//!   checked back by [`replay::validate`];
//! * a bounded per-node [`FlightRecorder`] whose trailing events are
//!   dumped on brownout drops, failed exchanges, or panics.
//!
//! [`BatchProfile`]/[`PhaseStats`] carry the batch runner's per-phase
//! wall-clock breakdown, and [`Progress`] keeps progress chatter on
//! stderr. [`TailBuffer`] is the live-tail seam: a bounded byte ring
//! trace writers can tee into so a daemon can stream NDJSON lines to
//! followers while the run is still going.
//!
//! # Examples
//!
//! Record a run into memory, then validate the trace:
//!
//! ```
//! use std::io::Write;
//! use std::sync::{Arc, Mutex};
//!
//! use blam_telemetry::{
//!     replay, EventKind, Recorder, RecorderConfig, SimEvent, TelemetrySink, TraceWriter,
//! };
//!
//! // A clonable in-memory trace destination.
//! #[derive(Clone, Default)]
//! struct SharedBuf(Arc<Mutex<Vec<u8>>>);
//! impl Write for SharedBuf {
//!     fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
//!         self.0.lock().unwrap().extend_from_slice(buf);
//!         Ok(buf.len())
//!     }
//!     fn flush(&mut self) -> std::io::Result<()> {
//!         Ok(())
//!     }
//! }
//!
//! let buf = SharedBuf::default();
//! let mut sink = Recorder::new(0, RecorderConfig::default())
//!     .with_writer(TraceWriter::Owned(Box::new(buf.clone())));
//!
//! sink.begin("demo", 42, 1);
//! sink.record(&SimEvent {
//!     t_ms: 0,
//!     node: 0,
//!     kind: EventKind::PacketGenerated,
//! });
//! sink.record(&SimEvent {
//!     t_ms: 1200,
//!     node: 0,
//!     kind: EventKind::AckReceived { latency_ms: 1200 },
//! });
//! let report = sink.finish().expect("recorder always reports");
//! assert_eq!(report.counters.acks, 1);
//! assert_eq!(report.latency_ms.count(), 1);
//!
//! let bytes = buf.0.lock().unwrap().clone();
//! let summary = replay::validate(&bytes[..]).expect("trace validates");
//! assert_eq!(summary.events, 2);
//! ```

// `forbid(unsafe_code)` comes from `[workspace.lints]` in the root
// manifest; only the doc requirement stays crate-local.
#![warn(missing_docs)]

pub mod counters;
pub mod event;
pub mod flight;
pub mod hist;
pub mod profile;
pub mod progress;
pub mod recorder;
pub mod replay;
pub mod report;
pub mod sink;
pub mod tail;

pub use counters::EventCounters;
pub use event::{DropReason, EventKind, FaultKind, Record, SimEvent, SCHEMA_VERSION};
pub use flight::FlightRecorder;
pub use hist::LogHistogram;
pub use profile::{BatchProfile, PhaseStats};
pub use progress::Progress;
pub use recorder::{Recorder, RecorderConfig, TraceWriter};
pub use replay::{ExpectedNodeCounts, ReplayError, ReplaySummary};
pub use report::TelemetryReport;
pub use sink::{NullSink, TelemetrySink};
pub use tail::{TailBuffer, TailChunk, TailWriter};
