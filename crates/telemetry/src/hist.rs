//! Streaming log-bucketed histograms.
//!
//! Buckets are logarithmic with 8 sub-buckets per octave, giving a
//! worst-case quantile error of about 4.5% over an unbounded range —
//! enough to read latency tails and DIF distributions without storing
//! samples. Buckets are kept sparse in a `BTreeMap` so an idle
//! histogram costs nothing.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Sub-buckets per octave (power of two) of the value range.
const SUBBUCKETS_PER_OCTAVE: f64 = 8.0;

/// A streaming histogram over non-negative `f64` samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Sparse bucket counts keyed by log-scale bucket index.
    buckets: BTreeMap<i32, u64>,
    /// Samples recorded at exactly zero (no log bucket exists for them).
    zeros: u64,
    /// Total recorded samples, including zeros.
    count: u64,
    /// Sum of all recorded samples.
    sum: f64,
    /// Smallest recorded sample.
    min: f64,
    /// Largest recorded sample.
    max: f64,
}

impl LogHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Negative or non-finite samples are clamped
    /// into the zero bucket so a stray NaN cannot poison the stream.
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        // analyzer: allow(float-eq, reason = "exact zero has no log2 bucket; counted separately")
        if v == 0.0 {
            self.zeros += 1;
        } else {
            let idx = (v.log2() * SUBBUCKETS_PER_OCTAVE).floor() as i32;
            *self.buckets.entry(idx).or_insert(0) += 1;
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean of recorded samples, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile (`q` in 0..=1) from bucket representatives.
    ///
    /// Returns 0 for an empty histogram. Accuracy is bounded by the
    /// bucket width (~9% wide, representative at the geometric center).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we are after, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = self.zeros;
        if target <= seen {
            return 0.0;
        }
        for (&idx, &n) in &self.buckets {
            seen += n;
            if target <= seen {
                // Geometric center of the bucket.
                return ((f64::from(idx) + 0.5) / SUBBUCKETS_PER_OCTAVE).exp2();
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = LogHistogram::new();
        for v in [1.0, 2.0, 3.0, 10.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 4.0).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 10.0);
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(f64::from(i));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((p50 / 500.0 - 1.0).abs() < 0.10, "p50 {p50}");
        assert!((p99 / 990.0 - 1.0).abs() < 0.10, "p99 {p99}");
    }

    #[test]
    fn zeros_and_invalid_samples_go_to_zero_bucket() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(4.0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 4.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.quantile(1.0) > 3.0);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [0.5, 1.5, 7.0] {
            a.record(v);
            all.record(v);
        }
        for v in [0.0, 2.5, 100.0] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging into an empty histogram copies the other side.
        let mut empty = LogHistogram::new();
        empty.merge(&all);
        assert_eq!(empty, all);
        // Merging an empty histogram is a no-op.
        all.merge(&LogHistogram::new());
        assert_eq!(empty, all);
    }

    #[test]
    fn histogram_serde_round_trips() {
        let mut h = LogHistogram::new();
        for v in [0.0, 0.001, 1.0, 1e9] {
            h.record(v);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
