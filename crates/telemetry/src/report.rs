//! The [`TelemetryReport`] returned by recording sinks and merged
//! across batch workers.

use serde::{Deserialize, Serialize};

use crate::counters::EventCounters;
use crate::event::SCHEMA_VERSION;
use crate::hist::LogHistogram;

/// Streaming summary of everything a recording sink observed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Trace schema version the report was produced under.
    pub schema: u32,
    /// Total events recorded.
    pub events: u64,
    /// Monotonic per-kind counters.
    pub counters: EventCounters,
    /// Generation-to-ack latency, milliseconds.
    pub latency_ms: LogHistogram,
    /// Per-packet degradation impact factor of the selected window.
    pub dif: LogHistogram,
    /// Battery state of charge (0..=1) at each TX attempt.
    pub soc_at_tx: LogHistogram,
    /// Per-attempt time-on-air, milliseconds.
    pub airtime_ms: LogHistogram,
    /// Flight-recorder dumps written (anomalies plus panics).
    pub flight_dumps: u64,
    /// Number of per-run reports merged into this one (1 for a single
    /// run, worker count×runs for a batch).
    pub merged_runs: u32,
}

impl Default for TelemetryReport {
    fn default() -> Self {
        TelemetryReport {
            schema: SCHEMA_VERSION,
            events: 0,
            counters: EventCounters::default(),
            latency_ms: LogHistogram::new(),
            dif: LogHistogram::new(),
            soc_at_tx: LogHistogram::new(),
            airtime_ms: LogHistogram::new(),
            flight_dumps: 0,
            merged_runs: 1,
        }
    }
}

impl TelemetryReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another run's report into this one. Merge order must be
    /// deterministic (input-index order) for batch results to be
    /// reproducible.
    pub fn merge(&mut self, other: &TelemetryReport) {
        self.events += other.events;
        self.counters.merge(&other.counters);
        self.latency_ms.merge(&other.latency_ms);
        self.dif.merge(&other.dif);
        self.soc_at_tx.merge(&other.soc_at_tx);
        self.airtime_ms.merge(&other.airtime_ms);
        self.flight_dumps += other.flight_dumps;
        self.merged_runs += other.merged_runs;
    }

    /// Renders a compact human-readable summary (for stderr).
    #[must_use]
    pub fn render(&self) -> String {
        let c = &self.counters;
        let mut out = String::new();
        out.push_str(&format!(
            "telemetry: {} events across {} run(s)\n",
            self.events, self.merged_runs
        ));
        out.push_str(&format!(
            "  packets   generated {:>8}  acked {:>8}  failed {:>6}  dropped {:>6} \
             (no_window {}, brownout {}, mac_busy {})\n",
            c.generated,
            c.acks,
            c.exchange_failures,
            c.drops_no_window + c.drops_brownout + c.drops_mac_busy,
            c.drops_no_window,
            c.drops_brownout,
            c.drops_mac_busy,
        ));
        out.push_str(&format!(
            "  energy    brownouts {:>8}  soc_capped {:>6}  dissemination {:>6}\n",
            c.brownouts, c.soc_capped, c.dissemination_applied,
        ));
        if c.faults_injected + c.wu_expired + c.fallback_windows + c.traces_requeued > 0 {
            out.push_str(&format!(
                "  faults    injected {:>9}  wu_expired {:>6}  fallbacks {:>6}  requeued {:>6}\n",
                c.faults_injected, c.wu_expired, c.fallback_windows, c.traces_requeued,
            ));
        }
        out.push_str(&format!(
            "  latency   p50 {:>9.0} ms  p95 {:>9.0} ms  p99 {:>9.0} ms  max {:>9.0} ms\n",
            self.latency_ms.quantile(0.50),
            self.latency_ms.quantile(0.95),
            self.latency_ms.quantile(0.99),
            self.latency_ms.max(),
        ));
        out.push_str(&format!(
            "  dif       mean {:.4}  p95 {:.4}   soc@tx mean {:.3}  min {:.3}\n",
            self.dif.mean(),
            self.dif.quantile(0.95),
            self.soc_at_tx.mean(),
            self.soc_at_tx.min(),
        ));
        out.push_str(&format!(
            "  airtime   mean {:.1} ms  total {:.1} s   flight dumps {}\n",
            self.airtime_ms.mean(),
            self.airtime_ms.sum() / 1000.0,
            self.flight_dumps,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn merge_accumulates_runs_and_events() {
        let mut a = TelemetryReport::new();
        a.events = 5;
        a.counters.bump(&EventKind::PacketGenerated);
        a.latency_ms.record(100.0);
        let mut b = TelemetryReport::new();
        b.events = 7;
        b.counters.bump(&EventKind::AckReceived { latency_ms: 50 });
        b.latency_ms.record(50.0);
        b.flight_dumps = 2;
        a.merge(&b);
        assert_eq!(a.events, 12);
        assert_eq!(a.merged_runs, 2);
        assert_eq!(a.counters.generated, 1);
        assert_eq!(a.counters.acks, 1);
        assert_eq!(a.latency_ms.count(), 2);
        assert_eq!(a.flight_dumps, 2);
    }

    #[test]
    fn render_mentions_key_lines() {
        let r = TelemetryReport::new();
        let text = r.render();
        assert!(text.contains("telemetry:"));
        assert!(text.contains("latency"));
        assert!(text.contains("flight dumps"));
    }

    #[test]
    fn report_serde_round_trips() {
        let mut r = TelemetryReport::new();
        r.events = 3;
        r.dif.record(0.2);
        let json = serde_json::to_string(&r).unwrap();
        let back: TelemetryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
