//! End-to-end trace round-trip: two interleaved recorders sharing one
//! writer (the batch-runner shape) produce a trace that validates and
//! reconciles.

use std::io::Write;
use std::sync::{Arc, Mutex};

use blam_telemetry::{
    replay, DropReason, EventKind, ExpectedNodeCounts, Recorder, RecorderConfig, SimEvent,
    TelemetrySink, TraceWriter,
};

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn ev(t_ms: u64, node: u32, kind: EventKind) -> SimEvent {
    SimEvent { t_ms, node, kind }
}

#[test]
fn interleaved_runs_round_trip_and_reconcile() {
    // One shared writer, as the batch runner hands its workers; keep a
    // second handle on the underlying buffer for reading back.
    let buf = SharedBuf::default();
    let shared: Arc<Mutex<Box<dyn Write + Send>>> = Arc::new(Mutex::new(Box::new(buf.clone())));

    let mut r0 = Recorder::new(0, RecorderConfig::default())
        .with_writer(TraceWriter::Shared(shared.clone()));
    let mut r1 =
        Recorder::new(1, RecorderConfig::default()).with_writer(TraceWriter::Shared(shared));

    r0.begin("lorawan", 11, 2);
    r1.begin("h50", 11, 1);

    // Interleave records from the two runs, as parallel workers would.
    r0.record(&ev(0, 0, EventKind::PacketGenerated));
    r1.record(&ev(0, 0, EventKind::PacketGenerated));
    r0.record(&ev(
        10,
        0,
        EventKind::TxAttempt {
            sf: 7,
            airtime_ms: 56,
            soc: 0.95,
        },
    ));
    r1.record(&ev(
        3,
        0,
        EventKind::WindowSelected {
            window: 1,
            dif: 0.12,
            utility_loss: 0.05,
        },
    ));
    r0.record(&ev(900, 0, EventKind::AckReceived { latency_ms: 900 }));
    r0.record(&ev(1000, 1, EventKind::PacketGenerated));
    r0.record(&ev(
        1001,
        1,
        EventKind::PacketDropped {
            reason: DropReason::Brownout,
        },
    ));
    r1.record(&ev(
        40,
        0,
        EventKind::TxAttempt {
            sf: 9,
            airtime_ms: 185,
            soc: 0.4,
        },
    ));
    r1.record(&ev(700, 0, EventKind::AckReceived { latency_ms: 700 }));

    let report0 = r0.finish().expect("report 0");
    let report1 = r1.finish().expect("report 1");
    assert_eq!(report0.counters.drops_brownout, 1);
    assert_eq!(report0.flight_dumps, 1, "brownout drop dumps the ring");
    assert_eq!(report1.counters.window_selected, 1);

    // Merged report accumulates both runs.
    let mut merged = report0.clone();
    merged.merge(&report1);
    assert_eq!(merged.merged_runs, 2);
    assert_eq!(merged.events, report0.events + report1.events);
    assert_eq!(merged.latency_ms.count(), 2);

    let bytes = buf.0.lock().unwrap().clone();
    let summary = replay::validate(&bytes[..]).expect("interleaved trace validates");
    assert_eq!(summary.runs, 2);
    assert_eq!(summary.flight_dumps, 1);
    assert_eq!(summary.events, merged.events);

    // Reconcile each run against what "NodeMetrics" would say.
    summary
        .reconcile(
            0,
            &[
                ExpectedNodeCounts {
                    generated: 1,
                    delivered: 1,
                    transmissions: 1,
                    dropped: 0,
                },
                ExpectedNodeCounts {
                    generated: 1,
                    delivered: 0,
                    transmissions: 0,
                    dropped: 1,
                },
            ],
        )
        .expect("run 0 reconciles");
    summary
        .reconcile(
            1,
            &[ExpectedNodeCounts {
                generated: 1,
                delivered: 1,
                transmissions: 1,
                dropped: 0,
            }],
        )
        .expect("run 1 reconciles");
}
