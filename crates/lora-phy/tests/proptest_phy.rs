//! Property-based tests for the PHY model.

use blam_lora_phy::link::{resolve_capture, sensitivity, CaptureOutcome};
use blam_lora_phy::{
    airtime, Bandwidth, CodingRate, LinkBudget, RadioPowerModel, SpreadingFactor, TxConfig,
};
use blam_units::{Db, Dbm, Meters, Watts};
use proptest::prelude::*;

fn any_sf() -> impl Strategy<Value = SpreadingFactor> {
    (7u8..=12).prop_map(|v| SpreadingFactor::try_from(v).expect("in range"))
}

fn any_cr() -> impl Strategy<Value = CodingRate> {
    prop_oneof![
        Just(CodingRate::Cr4_5),
        Just(CodingRate::Cr4_6),
        Just(CodingRate::Cr4_7),
        Just(CodingRate::Cr4_8),
    ]
}

fn any_bw() -> impl Strategy<Value = Bandwidth> {
    prop_oneof![
        Just(Bandwidth::Khz125),
        Just(Bandwidth::Khz250),
        Just(Bandwidth::Khz500),
    ]
}

proptest! {
    /// Airtime grows (weakly) with payload and strictly with SF.
    #[test]
    fn airtime_monotonicity(sf in any_sf(), cr in any_cr(), pl in 0usize..200) {
        let cfg = TxConfig::new(sf, Bandwidth::Khz125, cr);
        let t = airtime::airtime_secs(&cfg, pl);
        prop_assert!(t > 0.0);
        prop_assert!(airtime::airtime_secs(&cfg, pl + 1) >= t);
        if let Some(slower) = sf.slower() {
            let cfg_slow = TxConfig::new(slower, Bandwidth::Khz125, cr);
            prop_assert!(airtime::airtime_secs(&cfg_slow, pl) > t);
        }
    }

    /// Doubling the bandwidth exactly halves the airtime (same symbol
    /// count, half the symbol duration) when LDRO is pinned.
    #[test]
    fn airtime_scales_inversely_with_bandwidth(sf in any_sf(), pl in 0usize..100) {
        let narrow = TxConfig::new(sf, Bandwidth::Khz250, CodingRate::Cr4_5).with_ldro(false);
        let wide = TxConfig::new(sf, Bandwidth::Khz500, CodingRate::Cr4_5).with_ldro(false);
        let ratio = airtime::airtime_secs(&narrow, pl) / airtime::airtime_secs(&wide, pl);
        prop_assert!((ratio - 2.0).abs() < 1e-9);
    }

    /// Electrical transmission energy is positive, increases with
    /// payload, and exceeds the radiated (Eq. 6) energy.
    #[test]
    fn energy_properties(sf in any_sf(), pl in 1usize..100, dbm in 2.0f64..20.0) {
        let radio = RadioPowerModel::sx1276();
        let cfg = TxConfig::new(sf, Bandwidth::Khz125, CodingRate::Cr4_5).with_power(Dbm(dbm));
        let e = radio.tx_energy(&cfg, pl);
        prop_assert!(e.0 > 0.0);
        prop_assert!(radio.tx_energy(&cfg, pl + 10) >= e);
        prop_assert!(e.0 > blam_lora_phy::energy::tx_energy_eq6(&cfg, pl).0);
    }

    /// Sensitivity worsens (rises) with bandwidth and improves (drops)
    /// with SF.
    #[test]
    fn sensitivity_ordering(sf in any_sf(), bw in any_bw()) {
        if let Some(slower) = sf.slower() {
            prop_assert!(sensitivity(slower, bw).0 < sensitivity(sf, bw).0);
        }
        prop_assert!(sensitivity(sf, Bandwidth::Khz500).0 > sensitivity(sf, Bandwidth::Khz125).0);
    }

    /// Capture resolution is antisymmetric: if A captures over B, B is
    /// suppressed under A, and the both-lost band is symmetric.
    #[test]
    fn capture_antisymmetry(a in -140.0f64..-60.0, b in -140.0f64..-60.0) {
        let ab = resolve_capture(Dbm(a), Dbm(b));
        let ba = resolve_capture(Dbm(b), Dbm(a));
        match ab {
            CaptureOutcome::Captured => prop_assert_eq!(ba, CaptureOutcome::Suppressed),
            CaptureOutcome::Suppressed => prop_assert_eq!(ba, CaptureOutcome::Captured),
            CaptureOutcome::BothLost => prop_assert_eq!(ba, CaptureOutcome::BothLost),
        }
    }

    /// RSSI decreases monotonically with distance, so SF assignment by
    /// margin is well-defined.
    #[test]
    fn rssi_monotone_in_distance(km in 0.05f64..20.0) {
        let near = LinkBudget::new(Meters::from_km(km));
        let far = LinkBudget::new(Meters::from_km(km * 1.5));
        prop_assert!(far.rssi(Dbm(14.0)).0 < near.rssi(Dbm(14.0)).0);
    }

    /// dBm ↔ watts roundtrips across the whole relevant range.
    #[test]
    fn dbm_watts_roundtrip(dbm in -150.0f64..30.0) {
        let w = Dbm(dbm).as_watts();
        prop_assert!(w.0 > 0.0);
        let back = Dbm::from_watts(w);
        prop_assert!((back.0 - dbm).abs() < 1e-9);
    }

    /// TX supply current interpolation stays within the calibration
    /// table's range.
    #[test]
    fn tx_power_draw_bounded(dbm in -10.0f64..30.0) {
        let radio = RadioPowerModel::sx1276();
        let p = radio.tx_power_draw(Dbm(dbm));
        let lo = Watts::from_volts_milliamps(3.3, 20.0);
        let hi = Watts::from_volts_milliamps(3.3, 120.0);
        prop_assert!(p.0 >= lo.0 - 1e-12 && p.0 <= hi.0 + 1e-12);
    }

    /// The paper's Eq. (7) symbol count tracks the datasheet formula
    /// within two coding blocks for all parameter combinations.
    #[test]
    fn paper_eq7_tracks_datasheet(sf in any_sf(), cr in any_cr(), pl in 0usize..120) {
        let cfg = TxConfig::new(sf, Bandwidth::Khz125, cr);
        let datasheet = airtime::total_symbols(&cfg, pl);
        let paper = airtime::paper_symbols_eq7(&cfg, pl);
        let tolerance = 2.0 * f64::from(cr.redundancy_index() + 4) + 2.0;
        prop_assert!((datasheet - paper).abs() <= tolerance);
    }

    /// A link budget's margin check agrees with `closes`.
    #[test]
    fn closes_consistent_with_margin(km in 0.1f64..15.0, sf in any_sf(), shadow in -6.0f64..6.0) {
        let link = LinkBudget::new(Meters::from_km(km)).with_shadowing(Db(shadow));
        let rssi = link.rssi(Dbm(14.0));
        let margin = link.margin(rssi, sf, Bandwidth::Khz125);
        prop_assert_eq!(link.closes(Dbm(14.0), sf, Bandwidth::Khz125), margin.0 >= 0.0);
    }
}
