//! LoRa modulation parameters.

use std::fmt;

use blam_units::{Dbm, Duration, Hertz};
use serde::{Deserialize, Serialize};

/// A LoRa spreading factor (SF7–SF12).
///
/// The spreading factor controls how many chips encode one symbol
/// (`2^SF`). A higher SF lowers the data rate, lengthens the time on air
/// and raises the energy per packet, but tolerates a lower SNR — so far
/// nodes use high SFs and nearby nodes low SFs.
///
/// # Examples
///
/// ```
/// use blam_lora_phy::SpreadingFactor;
///
/// assert_eq!(SpreadingFactor::Sf10.chips(), 1024);
/// assert_eq!(SpreadingFactor::try_from(7)?, SpreadingFactor::Sf7);
/// # Ok::<(), blam_lora_phy::InvalidSpreadingFactorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpreadingFactor {
    /// SF7: fastest data rate, shortest range.
    Sf7,
    /// SF8.
    Sf8,
    /// SF9.
    Sf9,
    /// SF10: the paper's testbed setting.
    Sf10,
    /// SF11.
    Sf11,
    /// SF12: slowest data rate, longest range.
    Sf12,
}

impl SpreadingFactor {
    /// All spreading factors in increasing order.
    pub const ALL: [SpreadingFactor; 6] = [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf9,
        SpreadingFactor::Sf10,
        SpreadingFactor::Sf11,
        SpreadingFactor::Sf12,
    ];

    /// The numeric spreading factor (7–12).
    #[must_use]
    pub const fn as_u8(self) -> u8 {
        match self {
            SpreadingFactor::Sf7 => 7,
            SpreadingFactor::Sf8 => 8,
            SpreadingFactor::Sf9 => 9,
            SpreadingFactor::Sf10 => 10,
            SpreadingFactor::Sf11 => 11,
            SpreadingFactor::Sf12 => 12,
        }
    }

    /// Chips per symbol, `2^SF`.
    #[must_use]
    pub const fn chips(self) -> u32 {
        1 << self.as_u8()
    }

    /// The demodulation-floor SNR in dB for this spreading factor.
    ///
    /// These are the standard Semtech values: each SF step buys ~2.5 dB.
    #[must_use]
    pub const fn snr_floor_db(self) -> f64 {
        match self {
            SpreadingFactor::Sf7 => -7.5,
            SpreadingFactor::Sf8 => -10.0,
            SpreadingFactor::Sf9 => -12.5,
            SpreadingFactor::Sf10 => -15.0,
            SpreadingFactor::Sf11 => -17.5,
            SpreadingFactor::Sf12 => -20.0,
        }
    }

    /// The next-slower spreading factor, or `None` at SF12.
    #[must_use]
    pub const fn slower(self) -> Option<SpreadingFactor> {
        match self {
            SpreadingFactor::Sf7 => Some(SpreadingFactor::Sf8),
            SpreadingFactor::Sf8 => Some(SpreadingFactor::Sf9),
            SpreadingFactor::Sf9 => Some(SpreadingFactor::Sf10),
            SpreadingFactor::Sf10 => Some(SpreadingFactor::Sf11),
            SpreadingFactor::Sf11 => Some(SpreadingFactor::Sf12),
            SpreadingFactor::Sf12 => None,
        }
    }
}

impl fmt::Display for SpreadingFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SF{}", self.as_u8())
    }
}

/// Error returned when converting an out-of-range integer to a
/// [`SpreadingFactor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSpreadingFactorError(pub u8);

impl fmt::Display for InvalidSpreadingFactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spreading factor must be in 7..=12, got {}", self.0)
    }
}

impl std::error::Error for InvalidSpreadingFactorError {}

impl TryFrom<u8> for SpreadingFactor {
    type Error = InvalidSpreadingFactorError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        match value {
            7 => Ok(SpreadingFactor::Sf7),
            8 => Ok(SpreadingFactor::Sf8),
            9 => Ok(SpreadingFactor::Sf9),
            10 => Ok(SpreadingFactor::Sf10),
            11 => Ok(SpreadingFactor::Sf11),
            12 => Ok(SpreadingFactor::Sf12),
            other => Err(InvalidSpreadingFactorError(other)),
        }
    }
}

impl From<SpreadingFactor> for u8 {
    fn from(sf: SpreadingFactor) -> u8 {
        sf.as_u8()
    }
}

/// A LoRa channel bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Bandwidth {
    /// 125 kHz — the standard US915 uplink bandwidth.
    Khz125,
    /// 250 kHz.
    Khz250,
    /// 500 kHz — US915 downlink and wide-uplink bandwidth.
    Khz500,
}

impl Bandwidth {
    /// The bandwidth as a frequency.
    #[must_use]
    pub const fn as_hertz(self) -> Hertz {
        match self {
            Bandwidth::Khz125 => Hertz::from_khz(125),
            Bandwidth::Khz250 => Hertz::from_khz(250),
            Bandwidth::Khz500 => Hertz::from_khz(500),
        }
    }

    /// The bandwidth in Hz as a float, for rate computations.
    #[must_use]
    pub fn as_hz_f64(self) -> f64 {
        self.as_hertz().as_hz() as f64
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_hertz())
    }
}

/// A LoRa forward-error-correction coding rate, 4/5 through 4/8.
///
/// # Examples
///
/// ```
/// use blam_lora_phy::CodingRate;
///
/// assert!((CodingRate::Cr4_5.rate() - 0.8).abs() < 1e-12);
/// assert_eq!(CodingRate::Cr4_8.redundancy_index(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CodingRate {
    /// 4/5 — least redundancy, shortest packets (LoRaWAN default).
    Cr4_5,
    /// 4/6.
    Cr4_6,
    /// 4/7.
    Cr4_7,
    /// 4/8 — most redundancy.
    Cr4_8,
}

impl CodingRate {
    /// The code rate as a fraction in (0, 1]: information bits per coded bit.
    #[must_use]
    pub const fn rate(self) -> f64 {
        4.0 / self.denominator() as f64
    }

    /// The denominator of the `4/x` rate.
    #[must_use]
    pub const fn denominator(self) -> u8 {
        match self {
            CodingRate::Cr4_5 => 5,
            CodingRate::Cr4_6 => 6,
            CodingRate::Cr4_7 => 7,
            CodingRate::Cr4_8 => 8,
        }
    }

    /// The Semtech `CR` register value (1–4), used by the airtime formula
    /// as the `CR + 4` multiplier.
    #[must_use]
    pub const fn redundancy_index(self) -> u8 {
        self.denominator() - 4
    }
}

impl fmt::Display for CodingRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "4/{}", self.denominator())
    }
}

/// A complete LoRa transmission configuration.
///
/// Aggregates everything needed to compute airtime and energy for one
/// packet. Construct with [`TxConfig::new`] and adjust with the builder
/// methods.
///
/// # Examples
///
/// ```
/// use blam_lora_phy::{Bandwidth, CodingRate, SpreadingFactor, TxConfig};
/// use blam_units::Dbm;
///
/// let cfg = TxConfig::new(SpreadingFactor::Sf10, Bandwidth::Khz125, CodingRate::Cr4_5)
///     .with_power(Dbm(20.0))
///     .with_preamble_symbols(8);
/// assert_eq!(cfg.sf, SpreadingFactor::Sf10);
/// // SF10@125 kHz symbols last 8.192 ms < 16.384 ms, so LDRO stays off:
/// assert!(!cfg.low_data_rate_optimize());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxConfig {
    /// Spreading factor.
    pub sf: SpreadingFactor,
    /// Channel bandwidth.
    pub bw: Bandwidth,
    /// Forward-error-correction rate.
    pub cr: CodingRate,
    /// RF transmit power.
    pub power: Dbm,
    /// Number of preamble symbols (LoRaWAN uses 8).
    pub preamble_symbols: u16,
    /// Whether the explicit PHY header is sent (LoRaWAN uplinks: yes).
    pub explicit_header: bool,
    /// Whether the payload CRC is appended (LoRaWAN uplinks: yes).
    pub crc: bool,
    /// Low-data-rate optimization override; `None` selects the LoRaWAN
    /// rule (enabled when the symbol time reaches 16.384 ms, i.e. SF11
    /// and SF12 at 125 kHz).
    pub ldro_override: Option<bool>,
}

impl TxConfig {
    /// Creates a configuration with LoRaWAN defaults: 14 dBm, 8 preamble
    /// symbols, explicit header, CRC on, automatic LDRO.
    #[must_use]
    pub fn new(sf: SpreadingFactor, bw: Bandwidth, cr: CodingRate) -> Self {
        TxConfig {
            sf,
            bw,
            cr,
            power: Dbm(14.0),
            preamble_symbols: 8,
            explicit_header: true,
            crc: true,
            ldro_override: None,
        }
    }

    /// Sets the RF transmit power.
    #[must_use]
    pub fn with_power(mut self, power: Dbm) -> Self {
        self.power = power;
        self
    }

    /// Sets the preamble length in symbols.
    #[must_use]
    pub fn with_preamble_symbols(mut self, n: u16) -> Self {
        self.preamble_symbols = n;
        self
    }

    /// Overrides the low-data-rate-optimization rule.
    #[must_use]
    pub fn with_ldro(mut self, enabled: bool) -> Self {
        self.ldro_override = Some(enabled);
        self
    }

    /// Sets the spreading factor, keeping everything else.
    #[must_use]
    pub fn with_sf(mut self, sf: SpreadingFactor) -> Self {
        self.sf = sf;
        self
    }

    /// Whether low-data-rate optimization is in effect.
    ///
    /// LoRaWAN enables LDRO whenever the symbol duration reaches
    /// 16.384 ms — SF11 and SF12 at 125 kHz, and SF12 at 250 kHz.
    #[must_use]
    pub fn low_data_rate_optimize(&self) -> bool {
        self.ldro_override.unwrap_or_else(|| {
            crate::airtime::symbol_duration_secs(self.sf, self.bw) >= 0.016384 - 1e-12
        })
    }

    /// Time on air for a `payload_len`-byte packet.
    ///
    /// Delegates to [`crate::airtime::airtime`]; rounded to the
    /// millisecond resolution of [`Duration`]. Canonical
    /// configurations are served from the airtime memo table.
    #[must_use]
    pub fn airtime(&self, payload_len: usize) -> Duration {
        crate::airtime::airtime(self, payload_len)
    }

    /// Time on air in seconds as a float (no rounding). Canonical
    /// configurations are served from the airtime memo table.
    #[must_use]
    pub fn airtime_secs(&self, payload_len: usize) -> f64 {
        crate::airtime::airtime_secs(self, payload_len)
    }

    /// True when this configuration is covered by the airtime memo
    /// table: LoRaWAN default framing (8-symbol preamble, explicit
    /// header, CRC on) with the automatic LDRO rule, so airtime is
    /// fully determined by `(SF, BW, CR, payload_len)`. Transmit power
    /// does not enter the airtime formula and is ignored here.
    #[must_use]
    pub fn cache_canonical(&self) -> bool {
        self.preamble_symbols == 8
            && self.explicit_header
            && self.crc
            && self.ldro_override.is_none()
    }
}

impl Default for TxConfig {
    /// The paper's testbed configuration: SF10, 125 kHz, CR 4/5, 14 dBm.
    fn default() -> Self {
        TxConfig::new(SpreadingFactor::Sf10, Bandwidth::Khz125, CodingRate::Cr4_5)
    }
}

impl fmt::Display for TxConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} CR{} @ {}", self.sf, self.bw, self.cr, self.power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_chips_are_powers_of_two() {
        assert_eq!(SpreadingFactor::Sf7.chips(), 128);
        assert_eq!(SpreadingFactor::Sf12.chips(), 4096);
    }

    #[test]
    fn sf_try_from_covers_range() {
        for v in 7..=12u8 {
            let sf = SpreadingFactor::try_from(v).unwrap();
            assert_eq!(sf.as_u8(), v);
            assert_eq!(u8::from(sf), v);
        }
        assert!(SpreadingFactor::try_from(6).is_err());
        assert!(SpreadingFactor::try_from(13).is_err());
    }

    #[test]
    fn sf_error_displays_offending_value() {
        let err = SpreadingFactor::try_from(42).unwrap_err();
        assert!(err.to_string().contains("42"));
    }

    #[test]
    fn sf_ordering_matches_numeric_ordering() {
        let mut sorted = SpreadingFactor::ALL;
        sorted.sort();
        assert_eq!(sorted, SpreadingFactor::ALL);
    }

    #[test]
    fn snr_floor_decreases_with_sf() {
        for pair in SpreadingFactor::ALL.windows(2) {
            assert!(pair[0].snr_floor_db() > pair[1].snr_floor_db());
        }
    }

    #[test]
    fn slower_walks_up_and_stops() {
        assert_eq!(SpreadingFactor::Sf7.slower(), Some(SpreadingFactor::Sf8));
        assert_eq!(SpreadingFactor::Sf12.slower(), None);
    }

    #[test]
    fn bandwidth_hertz_values() {
        assert_eq!(Bandwidth::Khz125.as_hertz().as_hz(), 125_000);
        assert_eq!(Bandwidth::Khz500.as_hz_f64(), 500_000.0);
    }

    #[test]
    fn coding_rates() {
        assert_eq!(CodingRate::Cr4_5.redundancy_index(), 1);
        assert_eq!(CodingRate::Cr4_8.redundancy_index(), 4);
        assert!((CodingRate::Cr4_6.rate() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ldro_auto_rule() {
        // SF11/SF12 at 125 kHz have 16.384/32.768 ms symbols: LDRO on.
        let c = |sf| TxConfig::new(sf, Bandwidth::Khz125, CodingRate::Cr4_5);
        assert!(!c(SpreadingFactor::Sf10).low_data_rate_optimize());
        assert!(c(SpreadingFactor::Sf11).low_data_rate_optimize());
        assert!(c(SpreadingFactor::Sf12).low_data_rate_optimize());
        // SF12 at 500 kHz is 8.192 ms: off.
        let fast = TxConfig::new(SpreadingFactor::Sf12, Bandwidth::Khz500, CodingRate::Cr4_5);
        assert!(!fast.low_data_rate_optimize());
        // Override wins.
        assert!(fast.with_ldro(true).low_data_rate_optimize());
    }

    #[test]
    fn display_formats() {
        assert_eq!(SpreadingFactor::Sf9.to_string(), "SF9");
        assert_eq!(CodingRate::Cr4_7.to_string(), "4/7");
        let cfg = TxConfig::default();
        assert!(cfg.to_string().contains("SF10"));
        assert!(cfg.to_string().contains("125.0 kHz"));
    }
}
