//! Transmission energy models.
//!
//! Two models are provided:
//!
//! * [`tx_energy_eq6`] — the paper's Eq. (6): RF output power × airtime.
//!   This is the quantity the paper's *TX energy* metric (Fig. 5b)
//!   accumulates.
//! * [`RadioPowerModel`] — a datasheet-driven electrical model of the
//!   SX1276 transceiver (supply voltage × supply current × time), which
//!   is what actually drains the node's battery. The supply current
//!   depends on the PA output level, so this is strictly larger than
//!   Eq. (6) — the PA is far from 100% efficient.

use blam_units::{Dbm, Duration, Joules, Watts};
use serde::{Deserialize, Serialize};

use crate::params::{Bandwidth, CodingRate, SpreadingFactor, TxConfig};

/// The paper's Eq. (6): transmission energy as RF power × time on air,
///
/// ```text
/// E_tx = P_tx · L_symbols · 2^SF / BW
/// ```
///
/// # Examples
///
/// ```
/// use blam_lora_phy::{energy::tx_energy_eq6, Bandwidth, CodingRate, SpreadingFactor, TxConfig};
///
/// let cfg = TxConfig::new(SpreadingFactor::Sf10, Bandwidth::Khz125, CodingRate::Cr4_5);
/// let e = tx_energy_eq6(&cfg, 10);
/// // ~25 mW RF for ~264 ms ≈ 6.6 mJ
/// assert!(e.as_millijoules() > 5.0 && e.as_millijoules() < 9.0);
/// ```
#[must_use]
pub fn tx_energy_eq6(config: &TxConfig, payload_len: usize) -> Joules {
    config.power.as_watts() * Duration::from_secs_f64(config.airtime_secs(payload_len))
}

/// Electrical power model of a LoRa transceiver.
///
/// Supply currents come from the Semtech SX1276 datasheet (the radio the
/// paper's testbed uses, on the Dragino LoRa HAT). Between table entries
/// the TX current is interpolated linearly in dBm.
///
/// # Examples
///
/// ```
/// use blam_lora_phy::RadioPowerModel;
/// use blam_units::{Dbm, Duration};
///
/// let radio = RadioPowerModel::sx1276();
/// let p14 = radio.tx_power_draw(Dbm(14.0));
/// let p20 = radio.tx_power_draw(Dbm(20.0));
/// assert!(p20.0 > p14.0);
/// let sleep = radio.sleep_energy(Duration::from_hours(1));
/// assert!(sleep.0 < 0.01); // microwatt-level sleep draw
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioPowerModel {
    /// Supply voltage in volts.
    pub supply_volts: f64,
    /// (output dBm, supply mA) calibration points, sorted by dBm.
    pub tx_current_ma: Vec<(f64, f64)>,
    /// Receive-mode supply current in mA.
    pub rx_current_ma: f64,
    /// Standby supply current in mA.
    pub standby_current_ma: f64,
    /// Sleep supply current in mA.
    pub sleep_current_ma: f64,
}

impl RadioPowerModel {
    /// The Semtech SX1276 at 3.3 V.
    ///
    /// TX currents: RFO pin up to 14 dBm, PA_BOOST above (datasheet
    /// table 10). RX is the LnaBoost 125 kHz figure.
    #[must_use]
    pub fn sx1276() -> Self {
        RadioPowerModel {
            supply_volts: 3.3,
            tx_current_ma: vec![
                (7.0, 20.0),
                (13.0, 29.0),
                (14.0, 44.0),
                (17.0, 87.0),
                (20.0, 120.0),
            ],
            rx_current_ma: 11.5,
            standby_current_ma: 1.6,
            sleep_current_ma: 0.0002,
        }
    }

    /// Electrical power drawn while transmitting at `power` dBm.
    ///
    /// Clamps to the calibration range, interpolating linearly between
    /// table entries.
    #[must_use]
    pub fn tx_power_draw(&self, power: Dbm) -> Watts {
        let pts = &self.tx_current_ma;
        debug_assert!(!pts.is_empty(), "power model needs calibration points");
        let dbm = power.0;
        let ma = if dbm <= pts[0].0 {
            pts[0].1
        } else if dbm >= pts[pts.len() - 1].0 {
            pts[pts.len() - 1].1
        } else {
            let mut ma = pts[pts.len() - 1].1;
            for w in pts.windows(2) {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                if dbm <= x1 {
                    let t = (dbm - x0) / (x1 - x0);
                    ma = y0 + t * (y1 - y0);
                    break;
                }
            }
            ma
        };
        Watts::from_volts_milliamps(self.supply_volts, ma)
    }

    /// Power drawn while receiving.
    #[must_use]
    pub fn rx_power_draw(&self) -> Watts {
        Watts::from_volts_milliamps(self.supply_volts, self.rx_current_ma)
    }

    /// Power drawn while asleep.
    #[must_use]
    pub fn sleep_power_draw(&self) -> Watts {
        Watts::from_volts_milliamps(self.supply_volts, self.sleep_current_ma)
    }

    /// Energy to transmit one `payload_len`-byte packet with `config`.
    ///
    /// Uses the airtime memo table for canonical configurations; see
    /// [`tx_energy_direct`](RadioPowerModel::tx_energy_direct) for the
    /// uncached reference path (bit-identical, used by differential
    /// tests and `reference_impl` runs).
    #[must_use]
    pub fn tx_energy(&self, config: &TxConfig, payload_len: usize) -> Joules {
        self.tx_power_draw(config.power) * Duration::from_secs_f64(config.airtime_secs(payload_len))
    }

    /// Energy to transmit one packet, with the airtime evaluated from
    /// the Semtech formula every call — the reference oracle for
    /// [`tx_energy`](RadioPowerModel::tx_energy).
    #[must_use]
    pub fn tx_energy_direct(&self, config: &TxConfig, payload_len: usize) -> Joules {
        self.tx_power_draw(config.power)
            * Duration::from_secs_f64(crate::airtime::airtime_secs_direct(config, payload_len))
    }

    /// Energy to listen for `window`.
    #[must_use]
    pub fn rx_energy(&self, window: Duration) -> Joules {
        self.rx_power_draw() * window
    }

    /// Energy drawn asleep for `span`.
    #[must_use]
    pub fn sleep_energy(&self, span: Duration) -> Joules {
        self.sleep_power_draw() * span
    }
}

impl Default for RadioPowerModel {
    fn default() -> Self {
        RadioPowerModel::sx1276()
    }
}

/// A one-entry TX-energy memo for the hot per-node path.
///
/// Between ADR updates a node's `(TxConfig, payload_len)` pair is
/// constant, yet the engine evaluates its transmission energy on every
/// brownout check, attempt, and settlement. This memo collapses those
/// repeats to a struct compare. It assumes the radio model itself is
/// constant for the cache's lifetime (true per scenario); the entry is
/// keyed on the full `TxConfig`, so SF/power changes from ADR refresh
/// it automatically.
///
/// # Examples
///
/// ```
/// use blam_lora_phy::{RadioPowerModel, TxConfig, TxEnergyCache};
///
/// let radio = RadioPowerModel::sx1276();
/// let mut memo = TxEnergyCache::default();
/// let cfg = TxConfig::default();
/// let a = memo.energy(&radio, &cfg, 23);
/// let b = memo.energy(&radio, &cfg, 23); // served from the memo
/// assert_eq!(a.0.to_bits(), b.0.to_bits());
/// assert_eq!(a.0.to_bits(), radio.tx_energy(&cfg, 23).0.to_bits());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TxEnergyCache {
    entry: Option<(TxConfig, usize, Joules)>,
}

impl TxEnergyCache {
    /// The transmission energy for `(config, payload_len)`, served
    /// from the memo when the pair matches the last call. Bit-identical
    /// to [`RadioPowerModel::tx_energy`] by construction.
    #[must_use]
    pub fn energy(
        &mut self,
        radio: &RadioPowerModel,
        config: &TxConfig,
        payload_len: usize,
    ) -> Joules {
        if let Some((c, l, e)) = &self.entry {
            if c == config && *l == payload_len {
                return *e;
            }
        }
        let e = radio.tx_energy(config, payload_len);
        self.entry = Some((*config, payload_len, e));
        e
    }
}

/// The worst-case transmission energy `E_max_tx`: highest SF, most
/// redundant coding rate, maximum power, for the given payload size.
///
/// This is the normalizing denominator of the paper's Degradation Impact
/// Factor, Eq. (15).
#[must_use]
pub fn max_tx_energy(radio: &RadioPowerModel, payload_len: usize) -> Joules {
    let cfg = TxConfig::new(SpreadingFactor::Sf12, Bandwidth::Khz125, CodingRate::Cr4_8)
        .with_power(Dbm(20.0));
    radio.tx_energy(&cfg, payload_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq6_scales_with_airtime_and_power() {
        let slow = TxConfig::new(SpreadingFactor::Sf12, Bandwidth::Khz125, CodingRate::Cr4_5);
        let fast = TxConfig::new(SpreadingFactor::Sf7, Bandwidth::Khz125, CodingRate::Cr4_5);
        assert!(tx_energy_eq6(&slow, 10).0 > 10.0 * tx_energy_eq6(&fast, 10).0);

        let loud = fast.with_power(Dbm(20.0));
        assert!(tx_energy_eq6(&loud, 10).0 > tx_energy_eq6(&fast, 10).0);
    }

    #[test]
    fn tx_current_interpolates_and_clamps() {
        let r = RadioPowerModel::sx1276();
        // Below the table: clamp to 20 mA.
        let p = r.tx_power_draw(Dbm(0.0));
        assert!((p.as_milliwatts() - 3.3 * 20.0).abs() < 1e-9);
        // Above: clamp to 120 mA.
        let p = r.tx_power_draw(Dbm(25.0));
        assert!((p.as_milliwatts() - 3.3 * 120.0).abs() < 1e-9);
        // Midpoint between 14 (44 mA) and 17 (87 mA): 65.5 mA.
        let p = r.tx_power_draw(Dbm(15.5));
        assert!((p.as_milliwatts() - 3.3 * 65.5).abs() < 1e-6);
    }

    #[test]
    fn electrical_energy_exceeds_rf_energy() {
        // The PA is not 100% efficient: the battery pays more than the
        // antenna radiates.
        let r = RadioPowerModel::sx1276();
        for sf in SpreadingFactor::ALL {
            let cfg = TxConfig::new(sf, Bandwidth::Khz125, CodingRate::Cr4_5);
            assert!(r.tx_energy(&cfg, 10).0 > tx_energy_eq6(&cfg, 10).0);
        }
    }

    #[test]
    fn sf10_packet_energy_magnitude() {
        // ~145 mW for ~264 ms ≈ 38 mJ: the scale all sizing in the
        // workspace is built around.
        let r = RadioPowerModel::sx1276();
        let e = r.tx_energy(&TxConfig::default(), 10);
        assert!(
            e.as_millijoules() > 20.0 && e.as_millijoules() < 60.0,
            "got {e}"
        );
    }

    #[test]
    fn max_tx_energy_dominates_all_configs() {
        let r = RadioPowerModel::sx1276();
        let e_max = max_tx_energy(&r, 14);
        for sf in SpreadingFactor::ALL {
            let cfg = TxConfig::new(sf, Bandwidth::Khz125, CodingRate::Cr4_5);
            assert!(r.tx_energy(&cfg, 14) <= e_max, "{sf}");
        }
    }

    #[test]
    fn sleep_draw_is_microwatts() {
        let r = RadioPowerModel::sx1276();
        let p = r.sleep_power_draw();
        assert!(p.as_milliwatts() < 0.01);
        let daily = r.sleep_energy(Duration::from_days(1));
        assert!(
            daily.0 < 0.1,
            "radio sleep should cost <0.1 J/day, got {daily}"
        );
    }

    #[test]
    fn rx_window_energy() {
        let r = RadioPowerModel::sx1276();
        let e = r.rx_energy(Duration::from_secs(1));
        assert!((e.as_millijoules() - 3.3 * 11.5).abs() < 1e-6);
    }

    #[test]
    fn cached_and_direct_tx_energy_are_bit_identical() {
        let r = RadioPowerModel::sx1276();
        for sf in SpreadingFactor::ALL {
            for pl in [0usize, 10, 23, 51, 255] {
                let cfg = TxConfig::new(sf, Bandwidth::Khz125, CodingRate::Cr4_5);
                let cached = r.tx_energy(&cfg, pl);
                let direct = r.tx_energy_direct(&cfg, pl);
                assert_eq!(cached.0.to_bits(), direct.0.to_bits(), "{sf} pl={pl}");
            }
        }
    }

    #[test]
    fn tx_energy_memo_refreshes_on_config_or_payload_change() {
        let r = RadioPowerModel::sx1276();
        let mut memo = TxEnergyCache::default();
        let sf10 = TxConfig::default();
        let sf7 = TxConfig::default().with_sf(SpreadingFactor::Sf7);
        let a = memo.energy(&r, &sf10, 23);
        assert_eq!(a.0.to_bits(), r.tx_energy(&sf10, 23).0.to_bits());
        // A config change (the ADR path) must not serve the stale value.
        let b = memo.energy(&r, &sf7, 23);
        assert_eq!(b.0.to_bits(), r.tx_energy(&sf7, 23).0.to_bits());
        assert_ne!(a.0.to_bits(), b.0.to_bits());
        // A payload change must refresh too.
        let c = memo.energy(&r, &sf7, 27);
        assert_eq!(c.0.to_bits(), r.tx_energy(&sf7, 27).0.to_bits());
        // And a repeat serves the memo (same bits as a fresh compute).
        let d = memo.energy(&r, &sf7, 27);
        assert_eq!(c.0.to_bits(), d.0.to_bits());
    }
}
