//! Regional channel plans and Class-A receive-window parameters.
//!
//! The paper operates in the US 902–928 MHz ISM band: 64 uplink channels
//! of 125 kHz, 8 uplink channels of 500 kHz, and 8 downlink channels of
//! 500 kHz. Private deployments (and the paper's testbed) typically use a
//! single sub-band of 8 contiguous 125 kHz channels.

use blam_units::{Duration, Hertz};
use serde::{Deserialize, Serialize};

use crate::params::{Bandwidth, SpreadingFactor};

/// One radio channel: an index within its plan, a center frequency and a
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Channel {
    /// Index within the channel plan.
    pub index: u8,
    /// Center frequency.
    pub frequency: Hertz,
    /// Channel bandwidth.
    pub bandwidth: Bandwidth,
}

/// Constants and helpers for the US915 band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Us915;

impl Us915 {
    /// First 125 kHz uplink channel center, 902.3 MHz.
    pub const UPLINK_BASE_KHZ: u64 = 902_300;
    /// Spacing between 125 kHz uplink channels, 200 kHz.
    pub const UPLINK_STEP_KHZ: u64 = 200;
    /// First 500 kHz uplink channel center, 903.0 MHz.
    pub const UPLINK_WIDE_BASE_KHZ: u64 = 903_000;
    /// Spacing between 500 kHz uplink channels, 1.6 MHz.
    pub const UPLINK_WIDE_STEP_KHZ: u64 = 1_600;
    /// First 500 kHz downlink channel center, 923.3 MHz.
    pub const DOWNLINK_BASE_KHZ: u64 = 923_300;
    /// Spacing between downlink channels, 600 kHz.
    pub const DOWNLINK_STEP_KHZ: u64 = 600;

    /// The `i`-th 125 kHz uplink channel (0–63).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[must_use]
    pub fn uplink_125(i: u8) -> Channel {
        assert!(i < 64, "US915 has 64 × 125 kHz uplink channels, got {i}");
        Channel {
            index: i,
            frequency: Hertz::from_khz(
                Self::UPLINK_BASE_KHZ + u64::from(i) * Self::UPLINK_STEP_KHZ,
            ),
            bandwidth: Bandwidth::Khz125,
        }
    }

    /// The `i`-th 500 kHz uplink channel (0–7), plan indices 64–71.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[must_use]
    pub fn uplink_500(i: u8) -> Channel {
        assert!(i < 8, "US915 has 8 × 500 kHz uplink channels, got {i}");
        Channel {
            index: 64 + i,
            frequency: Hertz::from_khz(
                Self::UPLINK_WIDE_BASE_KHZ + u64::from(i) * Self::UPLINK_WIDE_STEP_KHZ,
            ),
            bandwidth: Bandwidth::Khz500,
        }
    }

    /// The `i`-th 500 kHz downlink channel (0–7).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[must_use]
    pub fn downlink_500(i: u8) -> Channel {
        assert!(i < 8, "US915 has 8 × 500 kHz downlink channels, got {i}");
        Channel {
            index: i,
            frequency: Hertz::from_khz(
                Self::DOWNLINK_BASE_KHZ + u64::from(i) * Self::DOWNLINK_STEP_KHZ,
            ),
            bandwidth: Bandwidth::Khz500,
        }
    }
}

/// A deployed channel plan: the uplink channels a network actually hops
/// over, the downlink channels, and the Class-A receive-window timing.
///
/// # Examples
///
/// ```
/// use blam_lora_phy::ChannelPlan;
///
/// // The common private-network setup: sub-band 2 (channels 8–15).
/// let plan = ChannelPlan::us915_sub_band(2);
/// assert_eq!(plan.uplink.len(), 8);
/// assert_eq!(plan.rx1_delay.as_secs(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelPlan {
    /// Uplink channels available for hopping.
    pub uplink: Vec<Channel>,
    /// Downlink channels (RX1 lands on `uplink_index % downlink.len()`).
    pub downlink: Vec<Channel>,
    /// Delay from end of uplink to the RX1 window opening.
    pub rx1_delay: Duration,
    /// Delay from end of uplink to the RX2 window opening.
    pub rx2_delay: Duration,
    /// The fixed RX2 channel.
    pub rx2_channel: Channel,
    /// The fixed RX2 spreading factor (US915: SF12 on 500 kHz).
    pub rx2_sf: SpreadingFactor,
}

impl ChannelPlan {
    /// The full US915 plan: all 64 + 8 uplink channels.
    #[must_use]
    pub fn us915_full() -> Self {
        let mut uplink: Vec<Channel> = (0..64).map(Us915::uplink_125).collect();
        uplink.extend((0..8).map(Us915::uplink_500));
        Self::us915_with_uplinks(uplink)
    }

    /// A US915 sub-band: 8 contiguous 125 kHz channels
    /// (`sub_band` 0–7 selects channels `8·sub_band …  8·sub_band+7`).
    ///
    /// # Panics
    ///
    /// Panics if `sub_band >= 8`.
    #[must_use]
    pub fn us915_sub_band(sub_band: u8) -> Self {
        assert!(sub_band < 8, "US915 has 8 sub-bands, got {sub_band}");
        let uplink = (8 * sub_band..8 * sub_band + 8)
            .map(Us915::uplink_125)
            .collect();
        Self::us915_with_uplinks(uplink)
    }

    /// A single-channel plan — the paper's testbed setup (one 125 kHz
    /// channel, SF10).
    #[must_use]
    pub fn us915_single_channel() -> Self {
        Self::us915_with_uplinks(vec![Us915::uplink_125(8)])
    }

    /// The EU868 default plan of the NS-3 `lorawan` module the paper's
    /// simulations build on: three 125 kHz channels (868.1/868.3/868.5
    /// MHz), RX1 on the uplink channel at the uplink SF, RX2 at
    /// 869.525 MHz SF12.
    #[must_use]
    pub fn eu868() -> Self {
        let uplink: Vec<Channel> = [868_100u64, 868_300, 868_500]
            .iter()
            .enumerate()
            .map(|(i, &khz)| Channel {
                index: i as u8,
                frequency: Hertz::from_khz(khz),
                bandwidth: Bandwidth::Khz125,
            })
            .collect();
        ChannelPlan {
            downlink: uplink.clone(),
            uplink,
            rx1_delay: Duration::from_secs(1),
            rx2_delay: Duration::from_secs(2),
            rx2_channel: Channel {
                index: 3,
                frequency: Hertz::from_khz(869_525),
                bandwidth: Bandwidth::Khz125,
            },
            rx2_sf: SpreadingFactor::Sf12,
        }
    }

    fn us915_with_uplinks(uplink: Vec<Channel>) -> Self {
        ChannelPlan {
            uplink,
            downlink: (0..8).map(Us915::downlink_500).collect(),
            rx1_delay: Duration::from_secs(1),
            rx2_delay: Duration::from_secs(2),
            rx2_channel: Us915::downlink_500(0),
            rx2_sf: SpreadingFactor::Sf12,
        }
    }

    /// Number of uplink channels.
    #[must_use]
    pub fn uplink_count(&self) -> usize {
        self.uplink.len()
    }

    /// The downlink channel RX1 uses after an uplink on `uplink_channel`.
    ///
    /// US915 maps uplink channel `i` to downlink channel `i mod 8`.
    #[must_use]
    pub fn rx1_channel(&self, uplink_channel: &Channel) -> Channel {
        self.downlink[usize::from(uplink_channel.index) % self.downlink.len()]
    }

    /// The RX1 downlink spreading factor for an uplink sent at `sf`.
    ///
    /// US915 with RX1DROffset 0 maps uplink DR0–DR3 (SF10–SF7/125 kHz)
    /// to downlink DR10–DR13 — numerically the same SF on the 500 kHz
    /// downlink.
    #[must_use]
    pub fn rx1_sf(&self, uplink_sf: SpreadingFactor) -> SpreadingFactor {
        uplink_sf
    }
}

impl Default for ChannelPlan {
    /// Sub-band 2, the de-facto default of US915 deployments (TTN/Helium).
    fn default() -> Self {
        ChannelPlan::us915_sub_band(2)
    }
}

/// Maximum application payload (bytes) for an uplink at the given SF in
/// US915 (LoRaWAN regional parameters, dwell-time off).
///
/// # Examples
///
/// ```
/// use blam_lora_phy::{region::max_payload, SpreadingFactor};
///
/// assert_eq!(max_payload(SpreadingFactor::Sf10), 11);
/// assert_eq!(max_payload(SpreadingFactor::Sf7), 242);
/// ```
#[must_use]
pub fn max_payload(sf: SpreadingFactor) -> usize {
    match sf {
        SpreadingFactor::Sf7 => 242,
        SpreadingFactor::Sf8 => 125,
        SpreadingFactor::Sf9 => 53,
        SpreadingFactor::Sf10 => 11,
        // SF11/SF12 are not valid US915 uplink rates on 125 kHz; the
        // regional cap for the closest downlink rates applies.
        SpreadingFactor::Sf11 => 11,
        SpreadingFactor::Sf12 => 11,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplink_125_frequencies() {
        assert_eq!(Us915::uplink_125(0).frequency, Hertz::from_mhz(902.3));
        assert_eq!(Us915::uplink_125(63).frequency, Hertz::from_mhz(914.9));
    }

    #[test]
    fn uplink_500_frequencies() {
        assert_eq!(Us915::uplink_500(0).frequency, Hertz::from_mhz(903.0));
        assert_eq!(Us915::uplink_500(7).frequency, Hertz::from_mhz(914.2));
        assert_eq!(Us915::uplink_500(0).index, 64);
    }

    #[test]
    fn downlink_frequencies() {
        assert_eq!(Us915::downlink_500(0).frequency, Hertz::from_mhz(923.3));
        assert_eq!(Us915::downlink_500(7).frequency, Hertz::from_mhz(927.5));
    }

    #[test]
    #[should_panic(expected = "64")]
    fn uplink_125_bounds_checked() {
        let _ = Us915::uplink_125(64);
    }

    #[test]
    fn full_plan_has_72_uplinks() {
        let plan = ChannelPlan::us915_full();
        assert_eq!(plan.uplink_count(), 72);
        assert_eq!(plan.downlink.len(), 8);
    }

    #[test]
    fn sub_band_two_is_channels_16_to_23() {
        let plan = ChannelPlan::us915_sub_band(2);
        assert_eq!(plan.uplink[0].index, 16);
        assert_eq!(plan.uplink[7].index, 23);
        assert_eq!(plan.uplink[0].frequency, Hertz::from_mhz(905.5));
    }

    #[test]
    fn all_uplink_channels_unique() {
        let plan = ChannelPlan::us915_full();
        let mut freqs: Vec<_> = plan.uplink.iter().map(|c| c.frequency).collect();
        freqs.sort();
        freqs.dedup();
        assert_eq!(freqs.len(), 72);
    }

    #[test]
    fn rx1_maps_modulo_eight() {
        let plan = ChannelPlan::us915_full();
        let up = Us915::uplink_125(17);
        assert_eq!(plan.rx1_channel(&up).index, 1);
        let up64 = Us915::uplink_500(0);
        assert_eq!(plan.rx1_channel(&up64).index, 0);
    }

    #[test]
    fn class_a_delays() {
        let plan = ChannelPlan::default();
        assert_eq!(plan.rx1_delay, Duration::from_secs(1));
        assert_eq!(plan.rx2_delay, Duration::from_secs(2));
        assert_eq!(plan.rx2_sf, SpreadingFactor::Sf12);
    }

    #[test]
    fn single_channel_testbed_plan() {
        let plan = ChannelPlan::us915_single_channel();
        assert_eq!(plan.uplink_count(), 1);
        assert_eq!(plan.uplink[0].bandwidth, Bandwidth::Khz125);
    }

    #[test]
    fn eu868_plan() {
        let plan = ChannelPlan::eu868();
        assert_eq!(plan.uplink_count(), 3);
        assert_eq!(plan.uplink[0].frequency, Hertz::from_mhz(868.1));
        // RX1 lands on the uplink channel itself.
        assert_eq!(plan.rx1_channel(&plan.uplink[2]), plan.uplink[2]);
        assert_eq!(plan.rx2_channel.frequency, Hertz::from_mhz(869.525));
    }

    #[test]
    fn max_payload_matches_regional_params() {
        assert_eq!(max_payload(SpreadingFactor::Sf9), 53);
        assert_eq!(max_payload(SpreadingFactor::Sf8), 125);
    }
}
