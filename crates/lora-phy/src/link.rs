//! Link budget: path loss, sensitivity, SNR, capture, SF selection.

use blam_units::{Db, Dbm, Meters};
use serde::{Deserialize, Serialize};

use crate::params::{Bandwidth, SpreadingFactor};

/// Co-channel, co-SF capture threshold in dB: a LoRa demodulator locks
/// onto the stronger of two colliding transmissions if it is at least
/// this much louder.
pub const CAPTURE_THRESHOLD_DB: Db = Db(6.0);

/// Receiver noise figure assumed for sensitivity computation, in dB.
pub const NOISE_FIGURE_DB: f64 = 6.0;

/// Thermal noise density at 290 K, dBm per Hz.
pub const THERMAL_NOISE_DBM_HZ: f64 = -174.0;

/// A planar node position in meters.
///
/// # Examples
///
/// ```
/// use blam_lora_phy::Position;
///
/// let gw = Position::ORIGIN;
/// let node = Position::new(3_000.0, 4_000.0);
/// assert!((node.distance_to(gw).0 - 5_000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// East coordinate in meters.
    pub x: f64,
    /// North coordinate in meters.
    pub y: f64,
}

impl Position {
    /// The origin, where experiments place the gateway.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Creates a position from coordinates in meters.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    #[must_use]
    pub fn distance_to(self, other: Position) -> Meters {
        Meters(((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt())
    }
}

/// A propagation model mapping distance to attenuation.
///
/// # Examples
///
/// ```
/// use blam_lora_phy::PathLoss;
/// use blam_units::Meters;
///
/// let pl = PathLoss::lora_suburban();
/// let near = pl.loss(Meters(100.0));
/// let far = pl.loss(Meters::from_km(5.0));
/// assert!(far.0 > near.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathLoss {
    /// Log-distance model:
    /// `PL(d) = reference_loss + 10·exponent·log10(d / reference_distance)`.
    LogDistance {
        /// Path-loss exponent (3.76 in the NS-3 lorawan module's
        /// smart-city calibration the paper builds on).
        exponent: f64,
        /// Loss at the reference distance, dB.
        reference_loss_db: f64,
        /// Reference distance in meters.
        reference_distance: Meters,
    },
    /// Free-space (Friis) loss at a given frequency in MHz.
    FreeSpace {
        /// Carrier frequency in MHz.
        frequency_mhz: f64,
    },
}

impl PathLoss {
    /// The NS-3 `lorawan` module calibration used by the paper's
    /// simulations (Magrin et al., smart-city scenario): log-distance
    /// with exponent 3.76 and 7.7 dB loss at 1 m.
    #[must_use]
    pub fn lora_suburban() -> Self {
        PathLoss::LogDistance {
            exponent: 3.76,
            reference_loss_db: 7.7,
            reference_distance: Meters(1.0),
        }
    }

    /// Attenuation at `distance`.
    ///
    /// Distances below the reference distance (or below 1 m for free
    /// space) are clamped to it — the model is not meaningful in the
    /// reactive near field.
    #[must_use]
    pub fn loss(self, distance: Meters) -> Db {
        match self {
            PathLoss::LogDistance {
                exponent,
                reference_loss_db,
                reference_distance,
            } => {
                let d = distance.0.max(reference_distance.0);
                Db(reference_loss_db + 10.0 * exponent * (d / reference_distance.0).log10())
            }
            PathLoss::FreeSpace { frequency_mhz } => {
                let d_km = (distance.0.max(1.0)) / 1_000.0;
                Db(20.0 * d_km.log10() + 20.0 * frequency_mhz.log10() + 32.44)
            }
        }
    }
}

impl Default for PathLoss {
    fn default() -> Self {
        PathLoss::lora_suburban()
    }
}

/// Receiver sensitivity for a spreading factor and bandwidth:
/// `−174 + 10·log10(BW) + NF + SNR_floor(SF)` dBm.
///
/// # Examples
///
/// ```
/// use blam_lora_phy::{link::sensitivity, Bandwidth, SpreadingFactor};
///
/// let s7 = sensitivity(SpreadingFactor::Sf7, Bandwidth::Khz125);
/// let s12 = sensitivity(SpreadingFactor::Sf12, Bandwidth::Khz125);
/// assert!(s12.0 < s7.0); // SF12 hears deeper into the noise
/// ```
#[must_use]
pub fn sensitivity(sf: SpreadingFactor, bw: Bandwidth) -> Dbm {
    let noise_floor = THERMAL_NOISE_DBM_HZ + 10.0 * bw.as_hz_f64().log10() + NOISE_FIGURE_DB;
    Dbm(noise_floor + sf.snr_floor_db())
}

/// A static point-to-point link budget between a node and a gateway.
///
/// Bundles the path-loss model with antenna gains and a per-link
/// shadowing term (sampled once at deployment, as in the NS-3 runs: the
/// nodes do not move).
///
/// # Examples
///
/// ```
/// use blam_lora_phy::{Bandwidth, LinkBudget, SpreadingFactor};
/// use blam_units::{Db, Dbm, Meters};
///
/// let link = LinkBudget::new(Meters::from_km(2.0));
/// let rssi = link.rssi(Dbm(14.0));
/// assert!(link.margin(rssi, SpreadingFactor::Sf10, Bandwidth::Khz125).0 > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Distance between the endpoints.
    pub distance: Meters,
    /// Propagation model.
    pub path_loss: PathLoss,
    /// Sum of TX and RX antenna gains, dB.
    pub antenna_gain: Db,
    /// Static shadowing/fading term, dB (positive worsens the link).
    pub shadowing: Db,
}

impl LinkBudget {
    /// A link over `distance` with the default suburban model, no
    /// antenna gain and no shadowing.
    #[must_use]
    pub fn new(distance: Meters) -> Self {
        LinkBudget {
            distance,
            path_loss: PathLoss::default(),
            antenna_gain: Db(0.0),
            shadowing: Db(0.0),
        }
    }

    /// Sets the propagation model.
    #[must_use]
    pub fn with_path_loss(mut self, path_loss: PathLoss) -> Self {
        self.path_loss = path_loss;
        self
    }

    /// Sets the static shadowing term.
    #[must_use]
    pub fn with_shadowing(mut self, shadowing: Db) -> Self {
        self.shadowing = shadowing;
        self
    }

    /// Sets the combined antenna gain.
    #[must_use]
    pub fn with_antenna_gain(mut self, gain: Db) -> Self {
        self.antenna_gain = gain;
        self
    }

    /// Received signal strength for a given transmit power.
    #[must_use]
    pub fn rssi(&self, tx_power: Dbm) -> Dbm {
        tx_power + self.antenna_gain - self.path_loss.loss(self.distance) - self.shadowing
    }

    /// Margin above the receiver sensitivity; the packet is decodable
    /// (absent collisions) when this is non-negative.
    #[must_use]
    pub fn margin(&self, rssi: Dbm, sf: SpreadingFactor, bw: Bandwidth) -> Db {
        rssi - sensitivity(sf, bw)
    }

    /// True when a packet at `tx_power` with `sf`/`bw` closes the link.
    #[must_use]
    pub fn closes(&self, tx_power: Dbm, sf: SpreadingFactor, bw: Bandwidth) -> bool {
        self.margin(self.rssi(tx_power), sf, bw).0 >= 0.0
    }
}

/// Selects the fastest (lowest) spreading factor that closes the link
/// with at least `margin` dB to spare — the Adaptive-Data-Rate-style
/// assignment the NS-3 lorawan module performs at network setup.
///
/// Returns `None` if even SF12 cannot close the link.
///
/// # Examples
///
/// ```
/// use blam_lora_phy::{link::sf_for_link, Bandwidth, LinkBudget, SpreadingFactor};
/// use blam_units::{Db, Dbm, Meters};
///
/// let near = LinkBudget::new(Meters(200.0));
/// assert_eq!(
///     sf_for_link(&near, Dbm(14.0), Bandwidth::Khz125, Db(0.0)),
///     Some(SpreadingFactor::Sf7)
/// );
/// ```
#[must_use]
pub fn sf_for_link(
    link: &LinkBudget,
    tx_power: Dbm,
    bw: Bandwidth,
    margin: Db,
) -> Option<SpreadingFactor> {
    let rssi = link.rssi(tx_power);
    SpreadingFactor::ALL
        .into_iter()
        .find(|&sf| link.margin(rssi, sf, bw).0 >= margin.0)
}

/// How concurrent transmissions on one channel interfere across
/// spreading factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterferenceModel {
    /// Different SFs never interfere (the NS-3 `lorawan` idealization
    /// the paper's simulations use).
    Orthogonal,
    /// Imperfect orthogonality: an interferer on another SF can still
    /// destroy a reception unless the wanted signal clears the
    /// per-SF-pair rejection threshold (Croce et al., *Impact of LoRa
    /// Imperfect Orthogonality*, IEEE Comm. Letters 2018).
    NonOrthogonal,
}

impl Default for InterferenceModel {
    fn default() -> Self {
        InterferenceModel::Orthogonal
    }
}

/// The capture/rejection threshold in dB for a wanted transmission at
/// `wanted` SF against an interferer at `interferer` SF on the same
/// channel: the wanted signal survives the pair if
/// `RSSI_wanted − RSSI_interferer ≥ threshold`.
///
/// The diagonal is the classic co-SF capture threshold
/// ([`CAPTURE_THRESHOLD_DB`]); off-diagonal values are the (negative)
/// inter-SF rejection thresholds measured by Croce et al. — higher SFs
/// tolerate more interference power.
///
/// # Examples
///
/// ```
/// use blam_lora_phy::link::inter_sf_threshold;
/// use blam_lora_phy::SpreadingFactor;
///
/// // Co-SF: need +6 dB to capture.
/// assert_eq!(inter_sf_threshold(SpreadingFactor::Sf9, SpreadingFactor::Sf9).0, 6.0);
/// // SF12 survives an SF7 interferer even 25 dB louder.
/// assert_eq!(inter_sf_threshold(SpreadingFactor::Sf12, SpreadingFactor::Sf7).0, -25.0);
/// ```
#[must_use]
pub fn inter_sf_threshold(wanted: SpreadingFactor, interferer: SpreadingFactor) -> Db {
    // Rows: wanted SF7..SF12; columns: interferer SF7..SF12.
    const T: [[f64; 6]; 6] = [
        [6.0, -8.0, -9.0, -9.0, -9.0, -9.0],
        [-11.0, 6.0, -11.0, -12.0, -13.0, -13.0],
        [-15.0, -13.0, 6.0, -13.0, -14.0, -15.0],
        [-19.0, -18.0, -17.0, 6.0, -17.0, -18.0],
        [-22.0, -22.0, -21.0, -20.0, 6.0, -20.0],
        [-25.0, -25.0, -25.0, -24.0, -23.0, 6.0],
    ];
    Db(T[usize::from(wanted.as_u8() - 7)][usize::from(interferer.as_u8() - 7)])
}

/// Outcome of comparing a wanted transmission against one interferer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureOutcome {
    /// The wanted signal survives: it is at least
    /// [`CAPTURE_THRESHOLD_DB`] louder.
    Captured,
    /// Both packets are lost: neither dominates.
    BothLost,
    /// The wanted signal is lost; the interferer dominates.
    Suppressed,
}

/// Resolves a co-channel, co-SF collision between a wanted signal and
/// the strongest interferer using the 6 dB capture rule.
#[must_use]
pub fn resolve_capture(wanted: Dbm, interferer: Dbm) -> CaptureOutcome {
    let delta = wanted - interferer;
    if delta.0 >= CAPTURE_THRESHOLD_DB.0 {
        CaptureOutcome::Captured
    } else if delta.0 <= -CAPTURE_THRESHOLD_DB.0 {
        CaptureOutcome::Suppressed
    } else {
        CaptureOutcome::BothLost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_distance() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(300.0, 400.0);
        assert!((a.distance_to(b).0 - 500.0).abs() < 1e-9);
        assert_eq!(a.distance_to(a), Meters(0.0));
    }

    #[test]
    fn log_distance_is_monotone() {
        let pl = PathLoss::lora_suburban();
        let mut last = Db(-1.0);
        for km in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let l = pl.loss(Meters::from_km(km));
            assert!(l.0 > last.0, "loss not monotone at {km} km");
            last = l;
        }
    }

    #[test]
    fn log_distance_reference_values() {
        // PL(1 km) = 7.7 + 37.6·log10(1000) = 7.7 + 112.8 = 120.5 dB.
        let pl = PathLoss::lora_suburban();
        assert!((pl.loss(Meters::from_km(1.0)).0 - 120.5).abs() < 1e-9);
    }

    #[test]
    fn near_field_clamps_to_reference() {
        let pl = PathLoss::lora_suburban();
        assert_eq!(pl.loss(Meters(0.0)), pl.loss(Meters(1.0)));
    }

    #[test]
    fn free_space_friis_value() {
        // FSPL(1 km, 915 MHz) ≈ 91.7 dB.
        let pl = PathLoss::FreeSpace {
            frequency_mhz: 915.0,
        };
        assert!((pl.loss(Meters::from_km(1.0)).0 - 91.66).abs() < 0.1);
    }

    #[test]
    fn sensitivity_reference_values() {
        // Classic SX1276 sensitivities at 125 kHz, NF 6 dB:
        // SF7 ≈ −124.5, SF12 ≈ −137 dBm.
        let s7 = sensitivity(SpreadingFactor::Sf7, Bandwidth::Khz125);
        let s12 = sensitivity(SpreadingFactor::Sf12, Bandwidth::Khz125);
        assert!((s7.0 - -124.5).abs() < 0.2, "SF7 {s7}");
        assert!((s12.0 - -137.0).abs() < 0.2, "SF12 {s12}");
        // 500 kHz costs 10·log10(4) ≈ 6 dB.
        let s7w = sensitivity(SpreadingFactor::Sf7, Bandwidth::Khz500);
        assert!((s7w.0 - s7.0 - 6.02).abs() < 0.1);
    }

    #[test]
    fn five_km_needs_high_sf_at_14dbm() {
        // At the paper's 5 km maximum deployment radius the link is near
        // the SF10–SF12 regime.
        let link = LinkBudget::new(Meters::from_km(5.0));
        let sf = sf_for_link(&link, Dbm(14.0), Bandwidth::Khz125, Db(0.0));
        assert!(
            matches!(
                sf,
                Some(
                    SpreadingFactor::Sf9
                        | SpreadingFactor::Sf10
                        | SpreadingFactor::Sf11
                        | SpreadingFactor::Sf12
                )
            ),
            "got {sf:?}"
        );
    }

    #[test]
    fn sf_assignment_is_monotone_in_distance() {
        let mut last = 7u8;
        for km in [0.1, 0.5, 1.0, 2.0, 3.5, 5.0] {
            let link = LinkBudget::new(Meters::from_km(km));
            let sf = sf_for_link(&link, Dbm(14.0), Bandwidth::Khz125, Db(0.0))
                .expect("5 km must close at some SF");
            assert!(sf.as_u8() >= last, "SF regressed at {km} km");
            last = sf.as_u8();
        }
    }

    #[test]
    fn impossible_link_yields_none() {
        let link = LinkBudget::new(Meters::from_km(50.0));
        assert_eq!(
            sf_for_link(&link, Dbm(14.0), Bandwidth::Khz125, Db(0.0)),
            None
        );
    }

    #[test]
    fn shadowing_and_gain_shift_rssi() {
        let base = LinkBudget::new(Meters::from_km(1.0));
        let shadowed = base.with_shadowing(Db(10.0));
        let amplified = base.with_antenna_gain(Db(3.0));
        let p = Dbm(14.0);
        assert!((base.rssi(p) - shadowed.rssi(p)).0 - 10.0 < 1e-9);
        assert!((amplified.rssi(p) - base.rssi(p)).0 - 3.0 < 1e-9);
    }

    #[test]
    fn inter_sf_matrix_properties() {
        for w in SpreadingFactor::ALL {
            for i in SpreadingFactor::ALL {
                let t = inter_sf_threshold(w, i);
                if w == i {
                    assert_eq!(t.0, CAPTURE_THRESHOLD_DB.0);
                } else {
                    // Cross-SF rejection always tolerates a louder
                    // interferer than co-SF capture does.
                    assert!(t.0 < 0.0, "{w} vs {i}: {t}");
                }
            }
        }
        // Higher wanted SF ⇒ more processing gain ⇒ more tolerance.
        for i in SpreadingFactor::ALL {
            let mut last = f64::INFINITY;
            for w in SpreadingFactor::ALL {
                if w == i {
                    continue;
                }
                let t = inter_sf_threshold(w, i).0;
                assert!(t <= last + 1e-9, "tolerance not monotone at {w} vs {i}");
                last = t;
            }
        }
    }

    #[test]
    fn capture_rule() {
        assert_eq!(
            resolve_capture(Dbm(-100.0), Dbm(-110.0)),
            CaptureOutcome::Captured
        );
        assert_eq!(
            resolve_capture(Dbm(-110.0), Dbm(-100.0)),
            CaptureOutcome::Suppressed
        );
        assert_eq!(
            resolve_capture(Dbm(-100.0), Dbm(-103.0)),
            CaptureOutcome::BothLost
        );
        // Exactly at the threshold counts as captured.
        assert_eq!(
            resolve_capture(Dbm(-100.0), Dbm(-106.0)),
            CaptureOutcome::Captured
        );
    }

    #[test]
    fn closes_matches_margin_sign() {
        let link = LinkBudget::new(Meters::from_km(3.0));
        for sf in SpreadingFactor::ALL {
            let closes = link.closes(Dbm(14.0), sf, Bandwidth::Khz125);
            let margin = link.margin(link.rssi(Dbm(14.0)), sf, Bandwidth::Khz125);
            assert_eq!(closes, margin.0 >= 0.0, "{sf}");
        }
    }
}
