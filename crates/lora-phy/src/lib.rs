//! LoRa physical-layer model.
//!
//! This crate is the radio substrate of the `lpwan-blam` workspace. It
//! models everything the MAC layers above need to know about a LoRa
//! transmission, without simulating waveforms:
//!
//! * [`params`] — modulation parameters: [`SpreadingFactor`],
//!   [`Bandwidth`], [`CodingRate`] and the aggregate [`TxConfig`].
//! * [`airtime`] — time-on-air from the Semtech symbol formula, together
//!   with the paper's Eq. (7) variant.
//! * [`energy`] — transmission energy, both the paper's idealized Eq. (6)
//!   (RF power × airtime) and a datasheet-driven [`RadioPowerModel`] for
//!   the SX1276 transceiver.
//! * [`link`] — log-distance path loss, per-SF receiver sensitivity,
//!   SNR floors, capture thresholds, and SF selection by distance.
//! * [`region`] — the US 902–928 MHz channel plan used by the paper
//!   (64 + 8 uplink channels, 8 downlink channels, Class-A receive
//!   windows).
//!
//! # Examples
//!
//! Airtime and energy of the paper's 10-byte packet at SF10:
//!
//! ```
//! use blam_lora_phy::{Bandwidth, CodingRate, RadioPowerModel, SpreadingFactor, TxConfig};
//!
//! let cfg = TxConfig::new(SpreadingFactor::Sf10, Bandwidth::Khz125, CodingRate::Cr4_5);
//! let toa = cfg.airtime(10);
//! assert!(toa.as_millis() > 200 && toa.as_millis() < 500);
//!
//! let radio = RadioPowerModel::sx1276();
//! let energy = radio.tx_energy(&cfg, 10);
//! assert!(energy.0 > 0.0);
//! ```

// `forbid(unsafe_code)` comes from `[workspace.lints]` in the root
// manifest; only the doc requirement stays crate-local.
#![warn(missing_docs)]

pub mod airtime;
pub mod energy;
pub mod link;
pub mod params;
pub mod region;

pub use airtime::{
    airtime_secs_direct, payload_symbols, symbol_duration_secs, total_symbols, CACHE_CELLS,
    CACHE_PAYLOAD_MAX,
};
pub use energy::{RadioPowerModel, TxEnergyCache};
pub use link::{InterferenceModel, LinkBudget, PathLoss, Position, CAPTURE_THRESHOLD_DB};
pub use params::{Bandwidth, CodingRate, InvalidSpreadingFactorError, SpreadingFactor, TxConfig};
pub use region::{Channel, ChannelPlan, Us915};
