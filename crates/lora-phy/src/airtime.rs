//! Time-on-air computation.
//!
//! Implements the Semtech SX1276 time-on-air formula (datasheet §4.1.1.7)
//! and, for fidelity with the paper, its Eq. (7) variant of the symbol
//! count. The two agree on LoRaWAN-style packets (explicit header + CRC
//! folded into the constant): the paper's `+24` constant equals the
//! datasheet's `+28 + 16·CRC − 20·IH` with CRC = 1 and IH = 0 rearranged
//! for its slightly simplified denominator.
//!
//! # Memoization
//!
//! The formula's domain in this simulator is tiny and dense —
//! `(SF7–SF12) × (125/250/500 kHz) × (CR4/5–4/8) × payload 0..=255`,
//! 18 432 cells — while the hot paths (per-attempt TX energy, ACK
//! scheduling, per-window retransmission estimates) re-evaluate it
//! millions of times per simulated year. [`airtime_secs`] therefore
//! serves canonical LoRaWAN configurations (8-symbol preamble,
//! explicit header, CRC on, automatic LDRO) from a lazily built
//! process-wide table whose cells are produced by the *same*
//! [`airtime_secs_direct`] formula, so cached and direct results are
//! bit-identical by construction — and proven so cell-by-cell in the
//! exhaustive conformance test below. Non-canonical configurations
//! fall through to the direct computation.

use std::sync::OnceLock;

use blam_units::Duration;

use crate::params::{Bandwidth, CodingRate, SpreadingFactor, TxConfig};

/// Duration of one LoRa symbol in seconds: `2^SF / BW`.
///
/// # Examples
///
/// ```
/// use blam_lora_phy::{symbol_duration_secs, Bandwidth, SpreadingFactor};
///
/// let t = symbol_duration_secs(SpreadingFactor::Sf10, Bandwidth::Khz125);
/// assert!((t - 0.008192).abs() < 1e-12);
/// ```
#[must_use]
pub fn symbol_duration_secs(sf: SpreadingFactor, bw: Bandwidth) -> f64 {
    f64::from(sf.chips()) / bw.as_hz_f64()
}

/// Number of payload symbols for a `payload_len`-byte packet, per the
/// Semtech SX1276 datasheet formula:
///
/// ```text
/// n = 8 + max(ceil((8·PL − 4·SF + 28 + 16·CRC − 20·IH) / (4·(SF − 2·DE))) · (CR + 4), 0)
/// ```
///
/// where `PL` is the payload length in bytes, `CRC` is 1 when the payload
/// CRC is on, `IH` is 1 when the header is implicit, `DE` is 1 when
/// low-data-rate optimization is enabled and `CR` is the redundancy index
/// (1–4).
#[must_use]
pub fn payload_symbols(config: &TxConfig, payload_len: usize) -> u32 {
    let pl = payload_len as i64;
    let sf = i64::from(config.sf.as_u8());
    let crc = i64::from(config.crc);
    let ih = i64::from(!config.explicit_header);
    let de = i64::from(config.low_data_rate_optimize());
    let cr = i64::from(config.cr.redundancy_index());

    let numerator = 8 * pl - 4 * sf + 28 + 16 * crc - 20 * ih;
    let denominator = 4 * (sf - 2 * de);
    let blocks = div_ceil(numerator, denominator).max(0);
    (8 + blocks * (cr + 4)).max(8) as u32
}

/// Payload symbol count per the paper's Eq. (7):
///
/// ```text
/// L = preamble + 4.25 + 8 + max(ceil((8·payload − 4·SF + 24) / (SF − 2·DE)) · 1/CR, 0)
/// ```
///
/// Returned as a fractional symbol count including the preamble and the
/// 4.25 synchronization symbols. `1/CR` is the reciprocal of the coding
/// *rate* (e.g. 5/4 for CR 4/5).
///
/// This is kept alongside the datasheet formula so tests can demonstrate
/// the two agree to within one coding block on LoRaWAN packets.
#[must_use]
pub fn paper_symbols_eq7(config: &TxConfig, payload_len: usize) -> f64 {
    let pl = payload_len as f64;
    let sf = f64::from(config.sf.as_u8());
    let de = f64::from(u8::from(config.low_data_rate_optimize()));
    let numerator = 8.0 * pl - 4.0 * sf + 24.0;
    let blocks = (numerator / (sf - 2.0 * de)).ceil().max(0.0);
    f64::from(config.preamble_symbols) + 4.25 + 8.0 + blocks / config.cr.rate()
}

/// Total symbols in the packet (preamble + 4.25 sync + payload symbols),
/// as a fractional count.
#[must_use]
pub fn total_symbols(config: &TxConfig, payload_len: usize) -> f64 {
    f64::from(config.preamble_symbols) + 4.25 + f64::from(payload_symbols(config, payload_len))
}

/// Time on air in seconds for a `payload_len`-byte packet.
///
/// Canonical LoRaWAN configurations (see [`TxConfig::cache_canonical`])
/// with payloads up to 255 bytes are served from the memo table;
/// everything else computes directly. Both paths are bit-identical.
#[must_use]
pub fn airtime_secs(config: &TxConfig, payload_len: usize) -> f64 {
    if payload_len <= CACHE_PAYLOAD_MAX && config.cache_canonical() {
        airtime_table()[cache_index(config.sf, config.bw, config.cr, payload_len)]
    } else {
        airtime_secs_direct(config, payload_len)
    }
}

/// Time on air in seconds, always evaluated from the Semtech formula —
/// the uncached reference path the memo table is checked against.
#[must_use]
pub fn airtime_secs_direct(config: &TxConfig, payload_len: usize) -> f64 {
    total_symbols(config, payload_len) * symbol_duration_secs(config.sf, config.bw)
}

/// Time on air rounded to the millisecond resolution of [`Duration`].
#[must_use]
pub fn airtime(config: &TxConfig, payload_len: usize) -> Duration {
    Duration::from_secs_f64(airtime_secs(config, payload_len))
}

/// Largest payload length covered by the memo table.
pub const CACHE_PAYLOAD_MAX: usize = 255;

/// Total cells in the memo table:
/// 6 SFs × 3 bandwidths × 4 coding rates × 256 payload lengths.
pub const CACHE_CELLS: usize = 6 * 3 * 4 * (CACHE_PAYLOAD_MAX + 1);

const BANDWIDTHS: [Bandwidth; 3] = [Bandwidth::Khz125, Bandwidth::Khz250, Bandwidth::Khz500];
const CODING_RATES: [CodingRate; 4] = [
    CodingRate::Cr4_5,
    CodingRate::Cr4_6,
    CodingRate::Cr4_7,
    CodingRate::Cr4_8,
];

/// Dense row-major index into the memo table. The domain is a plain
/// `Vec` indexed arithmetically — no hash container, so lookups carry
/// no iteration-order hazard.
fn cache_index(sf: SpreadingFactor, bw: Bandwidth, cr: CodingRate, payload_len: usize) -> usize {
    let sf_i = usize::from(sf.as_u8() - 7);
    let bw_i = match bw {
        Bandwidth::Khz125 => 0,
        Bandwidth::Khz250 => 1,
        Bandwidth::Khz500 => 2,
    };
    let cr_i = usize::from(cr.redundancy_index() - 1);
    ((sf_i * 3 + bw_i) * 4 + cr_i) * (CACHE_PAYLOAD_MAX + 1) + payload_len
}

/// The process-wide airtime memo, built on first use by running the
/// direct formula over every cell (in index order, so the build is
/// deterministic and the contents equal the reference path bit for
/// bit).
fn airtime_table() -> &'static [f64] {
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = vec![0.0; CACHE_CELLS];
        for sf in SpreadingFactor::ALL {
            for bw in BANDWIDTHS {
                for cr in CODING_RATES {
                    let cfg = TxConfig::new(sf, bw, cr);
                    debug_assert!(cfg.cache_canonical());
                    for pl in 0..=CACHE_PAYLOAD_MAX {
                        table[cache_index(sf, bw, cr, pl)] = airtime_secs_direct(&cfg, pl);
                    }
                }
            }
        }
        table
    })
}

fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "airtime denominator must be positive");
    if a <= 0 {
        // Negative numerators floor to zero blocks after the max(…, 0).
        a / b
    } else {
        (a + b - 1) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CodingRate;

    fn cfg(sf: SpreadingFactor) -> TxConfig {
        TxConfig::new(sf, Bandwidth::Khz125, CodingRate::Cr4_5)
    }

    #[test]
    fn symbol_durations() {
        assert!(
            (symbol_duration_secs(SpreadingFactor::Sf7, Bandwidth::Khz125) - 0.001024).abs()
                < 1e-12
        );
        assert!(
            (symbol_duration_secs(SpreadingFactor::Sf12, Bandwidth::Khz125) - 0.032768).abs()
                < 1e-12
        );
        assert!(
            (symbol_duration_secs(SpreadingFactor::Sf12, Bandwidth::Khz500) - 0.008192).abs()
                < 1e-12
        );
    }

    /// Reference values computed with the Semtech LoRa airtime calculator
    /// for a 10-byte payload, explicit header, CRC on, preamble 8, CR 4/5.
    #[test]
    fn airtime_matches_semtech_calculator_10_bytes() {
        // SF7: 40.25 symbols × 1.024 ms = 41.2 ms… no: 28 payload symbols
        // → (8 + 4.25 + 28) × 1.024 ms = 41.2… = 40.25 × 1.024 = 41.2 ms.
        let t7 = airtime_secs(&cfg(SpreadingFactor::Sf7), 10);
        assert!((t7 - 0.041_216).abs() < 5e-4, "SF7 got {t7}");
        // SF10: (8 + 4.25 + 23) × 8.192 ms = 288.8 ms.
        let t10 = airtime_secs(&cfg(SpreadingFactor::Sf10), 10);
        assert!((t10 - 0.288_8).abs() < 5e-3, "SF10 got {t10}");
        let t12 = airtime_secs(&cfg(SpreadingFactor::Sf12), 10);
        // SF12 with LDRO: just under 1 s bare; with the 13-byte LoRaWAN
        // header it approaches the paper's "around 1.2 seconds".
        assert!((0.9..1.1).contains(&t12), "SF12 bare got {t12}");
        let t12_framed = airtime_secs(&cfg(SpreadingFactor::Sf12), 10 + 13);
        assert!(
            (1.1..1.6).contains(&t12_framed),
            "SF12 framed got {t12_framed}"
        );
    }

    /// The paper quantifies its uplink piggyback overhead: 4 extra bytes
    /// cost 41 ms at SF10/125 kHz. That holds for a LoRaWAN frame
    /// carrying the 10-byte application payload plus the 13-byte MAC
    /// header (23 → 27 PHY bytes crosses exactly one coding block of
    /// 5 symbols = 40.96 ms).
    #[test]
    fn four_extra_bytes_cost_41ms_at_sf10() {
        let base = airtime_secs(&cfg(SpreadingFactor::Sf10), 23);
        let bigger = airtime_secs(&cfg(SpreadingFactor::Sf10), 27);
        let delta_ms = (bigger - base) * 1_000.0;
        assert!((delta_ms - 40.96).abs() < 0.1, "got {delta_ms} ms");
    }

    #[test]
    fn payload_symbols_monotone_in_payload() {
        for sf in SpreadingFactor::ALL {
            let c = cfg(sf);
            let mut last = 0;
            for pl in 0..=64 {
                let n = payload_symbols(&c, pl);
                assert!(n >= last, "{sf} payload {pl}");
                last = n;
            }
        }
    }

    #[test]
    fn payload_symbols_floor_is_eight() {
        // Tiny payloads at high SF hit the max(…, 0) branch.
        let c = cfg(SpreadingFactor::Sf12);
        assert_eq!(payload_symbols(&c, 0), 8);
    }

    #[test]
    fn higher_cr_never_shortens_packet() {
        for pl in [0usize, 10, 51, 222] {
            let mut prev = 0;
            for cr in [
                CodingRate::Cr4_5,
                CodingRate::Cr4_6,
                CodingRate::Cr4_7,
                CodingRate::Cr4_8,
            ] {
                let c = TxConfig::new(SpreadingFactor::Sf9, Bandwidth::Khz125, cr);
                let n = payload_symbols(&c, pl);
                assert!(n >= prev);
                prev = n;
            }
        }
    }

    #[test]
    fn ldro_lengthens_packets_at_sf11_plus() {
        let on = cfg(SpreadingFactor::Sf11); // auto-LDRO on
        let off = cfg(SpreadingFactor::Sf11).with_ldro(false);
        assert!(payload_symbols(&on, 20) >= payload_symbols(&off, 20));
    }

    #[test]
    fn paper_eq7_close_to_datasheet() {
        // On LoRaWAN-style packets the paper's Eq. (7) should agree with
        // the datasheet symbol count to within one coding block
        // (CR+4 symbols).
        for sf in SpreadingFactor::ALL {
            for pl in [10usize, 23, 51] {
                let c = cfg(sf);
                let datasheet = total_symbols(&c, pl);
                let paper = paper_symbols_eq7(&c, pl);
                // The paper's simplified constant (+24 instead of
                // +28+16·CRC) and its coarser ceil can differ by up to
                // two coding blocks.
                let tolerance = 2.0 * f64::from(c.cr.redundancy_index() + 4) + 2.0;
                assert!(
                    (datasheet - paper).abs() <= tolerance,
                    "{sf} pl={pl}: datasheet {datasheet} vs paper {paper}"
                );
            }
        }
    }

    #[test]
    fn duration_and_secs_agree() {
        let c = cfg(SpreadingFactor::Sf10);
        let ms = airtime(&c, 10).as_millis() as f64;
        let s = airtime_secs(&c, 10) * 1_000.0;
        assert!((ms - s).abs() <= 0.5);
    }

    #[test]
    fn implicit_header_shortens_packet() {
        let explicit = cfg(SpreadingFactor::Sf9);
        let mut implicit = explicit;
        implicit.explicit_header = false;
        assert!(payload_symbols(&implicit, 10) < payload_symbols(&explicit, 10));
    }

    #[test]
    fn crc_off_shortens_packet() {
        let with_crc = cfg(SpreadingFactor::Sf9);
        let mut no_crc = with_crc;
        no_crc.crc = false;
        assert!(payload_symbols(&no_crc, 10) <= payload_symbols(&with_crc, 10));
    }

    /// The memo table must match the uncached Semtech formula bit for
    /// bit on every one of its 18 432 cells — any index permutation or
    /// stale-cell bug shows up here.
    #[test]
    fn cache_matches_direct_formula_bit_for_bit_exhaustively() {
        let mut checked = 0usize;
        for sf in SpreadingFactor::ALL {
            for bw in [Bandwidth::Khz125, Bandwidth::Khz250, Bandwidth::Khz500] {
                for cr in [
                    CodingRate::Cr4_5,
                    CodingRate::Cr4_6,
                    CodingRate::Cr4_7,
                    CodingRate::Cr4_8,
                ] {
                    let c = TxConfig::new(sf, bw, cr);
                    for pl in 0..=CACHE_PAYLOAD_MAX {
                        let cached = airtime_secs(&c, pl);
                        let direct = airtime_secs_direct(&c, pl);
                        assert_eq!(
                            cached.to_bits(),
                            direct.to_bits(),
                            "{sf} {bw} {cr} payload {pl}: cached {cached} vs direct {direct}"
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert_eq!(checked, CACHE_CELLS, "the sweep must cover every cell");
    }

    /// Non-canonical configurations and oversized payloads must bypass
    /// the table and still agree with the direct formula.
    #[test]
    fn non_canonical_configs_bypass_the_cache_correctly() {
        let longer_preamble = cfg(SpreadingFactor::Sf9).with_preamble_symbols(12);
        assert!(!longer_preamble.cache_canonical());
        let forced_ldro = cfg(SpreadingFactor::Sf9).with_ldro(true);
        assert!(!forced_ldro.cache_canonical());
        let mut implicit = cfg(SpreadingFactor::Sf9);
        implicit.explicit_header = false;
        assert!(!implicit.cache_canonical());
        for c in [longer_preamble, forced_ldro, implicit] {
            let a = airtime_secs(&c, 10);
            let b = airtime_secs_direct(&c, 10);
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Payloads beyond the table's 255-byte ceiling fall through.
        let big = airtime_secs(&cfg(SpreadingFactor::Sf7), 300);
        assert_eq!(
            big.to_bits(),
            airtime_secs_direct(&cfg(SpreadingFactor::Sf7), 300).to_bits()
        );
    }

    /// Power does not enter the airtime formula, so a power override
    /// keeps the configuration cache-canonical (the ACK path uses
    /// 27 dBm downlinks with otherwise default framing).
    #[test]
    fn power_override_stays_cache_canonical() {
        use blam_units::Dbm;
        let c = cfg(SpreadingFactor::Sf9).with_power(Dbm(27.0));
        assert!(c.cache_canonical());
        assert_eq!(
            airtime_secs(&c, 10).to_bits(),
            airtime_secs_direct(&c, 10).to_bits()
        );
    }

    /// Second Semtech-calculator pin: SF7 at 250 kHz, CR 4/5,
    /// 10-byte payload, preamble 8, explicit header, CRC on.
    /// The calculator reports 20.61 ms (40.25 symbols × 0.512 ms).
    #[test]
    fn airtime_matches_semtech_calculator_sf7_250khz() {
        let c = TxConfig::new(SpreadingFactor::Sf7, Bandwidth::Khz250, CodingRate::Cr4_5);
        let t = airtime_secs(&c, 10);
        assert!((t - 0.020_608).abs() < 5e-5, "got {t}");
    }

    /// Third Semtech-calculator pin: SF9 at 125 kHz, CR 4/5, 20-byte
    /// payload. The calculator reports 185.34 ms (45.25 symbols ×
    /// 4.096 ms).
    #[test]
    fn airtime_matches_semtech_calculator_sf9_20_bytes() {
        let c = TxConfig::new(SpreadingFactor::Sf9, Bandwidth::Khz125, CodingRate::Cr4_5);
        let t = airtime_secs(&c, 20);
        assert!((t - 0.185_344).abs() < 5e-5, "got {t}");
    }

    /// Fourth Semtech-calculator pin: SF12 at 125 kHz, CR 4/5, 51-byte
    /// payload (the LoRaWAN SF12 maximum), LDRO on by the automatic
    /// rule. The calculator reports 2 465.79 ms (75.25 symbols ×
    /// 32.768 ms).
    #[test]
    fn airtime_matches_semtech_calculator_sf12_max_payload() {
        let c = TxConfig::new(SpreadingFactor::Sf12, Bandwidth::Khz125, CodingRate::Cr4_5);
        assert!(c.low_data_rate_optimize(), "auto-LDRO applies at SF12");
        let t = airtime_secs(&c, 51);
        assert!((t - 2.465_792).abs() < 5e-4, "got {t}");
    }
}
