//! The on-disk checkpoint layout a campaign resumes from.
//!
//! ```text
//! <spool>/
//!   campaign.json              # the submitted CampaignSpec, verbatim
//!   manifest.json              # Manifest: job list + status (checksummed in-file)
//!   results/<job_id>.json      # one RunResult per completed job (raw bytes)
//!   results/<job_id>.json.fnv  # integrity sidecar: "<fnv1a64-hex> <attempts>"
//!   snapshots/<job_id>.ckpt    # mid-run engine snapshot (crash-safe resume)
//! ```
//!
//! Every file is written **atomically**: to a unique temp name in the
//! same directory, then `rename`d into place. A daemon killed at any
//! instant therefore leaves either the old file or the new one, never
//! a torn half-write — which is what makes resume exact: on restart
//! the runner trusts any `results/<id>.json` it finds and re-runs
//! everything else.
//!
//! **Integrity.** Atomic writes protect against *our own* kills, not
//! against disks and operators. Every spool artifact is therefore
//! checksummed with FNV-1a 64 (the same content hash used for job
//! ids): the manifest carries its checksum in-file (`fnv` field,
//! schema 2), results get a sidecar (the result bytes themselves stay
//! raw so they remain byte-identical to `blam-sim run --out`), and
//! engine snapshots embed a checksummed header. A file that fails
//! verification is **quarantined** — renamed to `<name>.corrupt`, kept
//! for forensics — and treated as absent, so the damaged job simply
//! re-runs. FNV is an integrity tripwire, not a security boundary.
//!
//! The [`Manifest`] deliberately carries **no wall-clock data** (no
//! timestamps, durations or hostnames): a campaign resumed after a
//! kill must converge to a manifest byte-identical to an uninterrupted
//! run's. That is also why the per-job `attempts` counter lives in the
//! result sidecar and is written **before** the result: done-ness is
//! keyed on the result file alone, so by the time a job counts as
//! done, its attempt count is already on disk and every later manifest
//! rebuild reports the same number.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::spec::{fnv1a64, CampaignSpec, Job};

/// Bumped when the manifest layout changes shape. History: 1 = no
/// checksum, no attempts; 2 = in-file `fnv` checksum + per-job
/// `attempts` (schema-1 manifests still parse — both fields default).
pub const MANIFEST_SCHEMA: u32 = 2;

/// Distinguishes concurrent temp files within one process; combined
/// with the pid for cross-process uniqueness.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `text` to `path` atomically: temp file in the same
/// directory, then rename. On any platform rename within a directory
/// is atomic, so readers (and a post-kill resume) see the old content
/// or the new, never a prefix.
///
/// # Errors
///
/// Returns the underlying I/O error; the temp file is cleaned up on
/// a failed rename.
pub fn write_string_atomic(path: &Path, text: &str) -> io::Result<()> {
    let file_name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("atomic write needs a file name, got {path:?}"),
        )
    })?;
    let nonce = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_file_name(format!(
        ".{file_name}.tmp.{pid}.{nonce}",
        pid = std::process::id()
    ));
    fs::write(&tmp, text)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Serializes `value` as pretty JSON (the same shape `blam-sim run
/// --out` writes) and writes it atomically via
/// [`write_string_atomic`].
///
/// # Errors
///
/// Returns serialization failures as `InvalidData` and I/O errors
/// verbatim.
pub fn write_json_atomic<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    let text = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    write_string_atomic(path, &text)
}

/// Completion state of one campaign job, as checkpointed on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum JobStatus {
    /// Not yet (re)run; no result file.
    Pending,
    /// Result file written; skipped on resume.
    Done,
}

/// One job's row in the [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobEntry {
    /// Content-hash job id (the result file stem).
    pub id: String,
    /// Human-readable sweep label.
    pub label: String,
    /// The job's seed.
    pub seed: u64,
    /// Done or pending.
    pub status: JobStatus,
    /// How many execution attempts the completing invocation needed
    /// (1 = first try; capped by the runner's retry bound). 0 while
    /// pending. Failures are deterministic, so this converges across
    /// kills and resumes like every other manifest field.
    #[serde(default)]
    pub attempts: u32,
}

/// The campaign's checkpointed job table. Deterministic by
/// construction: job order is expansion order and no field depends on
/// when or where the campaign ran.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Layout version ([`MANIFEST_SCHEMA`]).
    pub schema: u32,
    /// In-file FNV-1a 64 checksum (hex) of the manifest body —
    /// see [`Manifest::body_fnv`]. Filled in by
    /// [`Spool::write_manifest`]; empty in freshly-built in-memory
    /// manifests and in pre-schema-2 files (verification then skips).
    #[serde(default)]
    pub fnv: String,
    /// Campaign name.
    pub name: String,
    /// One entry per expanded job, in execution order.
    pub jobs: Vec<JobEntry>,
}

impl Manifest {
    /// Builds the manifest for `jobs`: a job whose spooled result
    /// already exists (`done` returns its recorded attempt count) is
    /// marked done, the rest pending.
    #[must_use]
    pub fn for_jobs(name: &str, jobs: &[Job], done: impl Fn(&Job) -> Option<u32>) -> Manifest {
        Manifest {
            schema: MANIFEST_SCHEMA,
            fnv: String::new(),
            name: name.to_string(),
            jobs: jobs
                .iter()
                .map(|job| {
                    let attempts = done(job);
                    JobEntry {
                        id: job.id.clone(),
                        label: job.label.clone(),
                        seed: job.seed,
                        status: if attempts.is_some() {
                            JobStatus::Done
                        } else {
                            JobStatus::Pending
                        },
                        attempts: attempts.unwrap_or(0),
                    }
                })
                .collect(),
        }
    }

    /// Whether every job is done.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.jobs.iter().all(|j| j.status == JobStatus::Done)
    }

    /// The checksum the in-file `fnv` field must equal: FNV-1a 64
    /// (hex) over the canonical serialization of everything *except*
    /// the checksum itself.
    #[must_use]
    pub fn body_fnv(&self) -> String {
        let body =
            serde_json::to_string(&(self.schema, &self.name, &self.jobs)).unwrap_or_default();
        format!("{:016x}", fnv1a64(body.as_bytes()))
    }

    /// Whether the in-file checksum (when present) matches the body.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.fnv.is_empty() || self.fnv == self.body_fnv()
    }
}

/// A campaign's spool directory.
#[derive(Debug, Clone)]
pub struct Spool {
    dir: PathBuf,
}

impl Spool {
    /// Opens (creating if needed) the spool at `dir`, including its
    /// `results/` subdirectory.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directories cannot be
    /// created.
    pub fn create(dir: &Path) -> io::Result<Spool> {
        fs::create_dir_all(dir.join("results"))?;
        Ok(Spool {
            dir: dir.to_path_buf(),
        })
    }

    /// The spool directory itself.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpointed campaign spec.
    #[must_use]
    pub fn spec_path(&self) -> PathBuf {
        self.dir.join("campaign.json")
    }

    /// Path of the manifest.
    #[must_use]
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// Path of job `id`'s result file.
    #[must_use]
    pub fn result_path(&self, id: &str) -> PathBuf {
        self.dir.join("results").join(format!("{id}.json"))
    }

    /// Path of job `id`'s integrity sidecar (`<result>.fnv`, holding
    /// `"<fnv1a64-hex> <attempts>"`).
    #[must_use]
    pub fn result_fnv_path(&self, id: &str) -> PathBuf {
        self.dir.join("results").join(format!("{id}.json.fnv"))
    }

    /// Path of job `id`'s mid-run engine snapshot. The engine writes
    /// it at dissemination-epoch barriers and deletes it when the job
    /// completes, so its presence means "killed mid-run — resumable".
    #[must_use]
    pub fn snapshot_path(&self, id: &str) -> PathBuf {
        self.dir.join("snapshots").join(format!("{id}.ckpt"))
    }

    /// Whether a result file exists for job `id` — a cheap existence
    /// probe for status payloads (callable under the daemon's registry
    /// lock). The resume skip test uses [`Spool::result_attempts`]
    /// instead, which verifies the bytes and quarantines on mismatch.
    #[must_use]
    pub fn has_result(&self, id: &str) -> bool {
        self.result_path(id).is_file()
    }

    /// Verifies job `id`'s result against its sidecar and returns the
    /// recorded attempt count — `None` when the result is absent or
    /// fails verification (in which case result and sidecar are
    /// quarantined to `*.corrupt`). A result without a sidecar (a
    /// pre-integrity spool) is accepted with `attempts` defaulting
    /// to 1.
    #[must_use]
    pub fn result_attempts(&self, id: &str) -> Option<u32> {
        let path = self.result_path(id);
        let bytes = fs::read(&path).ok()?;
        let sidecar = self.result_fnv_path(id);
        let Ok(text) = fs::read_to_string(&sidecar) else {
            return Some(1);
        };
        let mut fields = text.split_whitespace();
        let recorded = fields.next().unwrap_or_default();
        let attempts: Option<u32> = fields.next().and_then(|n| n.parse().ok());
        let actual = format!("{:016x}", fnv1a64(&bytes));
        match attempts {
            Some(attempts) if recorded == actual => Some(attempts),
            _ => {
                let _ = quarantine(&path);
                let _ = quarantine(&sidecar);
                None
            }
        }
    }

    /// Atomically checkpoints the campaign spec.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors.
    pub fn write_spec(&self, spec: &CampaignSpec) -> io::Result<()> {
        write_json_atomic(&self.spec_path(), spec)
    }

    /// Reads the checkpointed campaign spec back, `Ok(None)` when the
    /// spool has none.
    ///
    /// # Errors
    ///
    /// Returns read errors verbatim and parse failures as
    /// `InvalidData`.
    pub fn read_spec(&self) -> io::Result<Option<CampaignSpec>> {
        let path = self.spec_path();
        if !path.is_file() {
            return Ok(None);
        }
        let text = fs::read_to_string(&path)?;
        CampaignSpec::from_json(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Atomically checkpoints the manifest, filling in the in-file
    /// checksum ([`Manifest::body_fnv`]).
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors.
    pub fn write_manifest(&self, manifest: &Manifest) -> io::Result<()> {
        let mut sealed = manifest.clone();
        sealed.fnv = sealed.body_fnv();
        write_json_atomic(&self.manifest_path(), &sealed)
    }

    /// Reads the manifest back, `Ok(None)` when the spool has none. A
    /// manifest that does not parse, or whose in-file checksum does not
    /// match its body, is quarantined to `manifest.json.corrupt` and
    /// reported absent — the campaign then rebuilds it from the spec
    /// and the (individually verified) result files.
    ///
    /// # Errors
    ///
    /// Returns read errors verbatim.
    pub fn read_manifest(&self) -> io::Result<Option<Manifest>> {
        let path = self.manifest_path();
        if !path.is_file() {
            return Ok(None);
        }
        let text = fs::read_to_string(&path)?;
        match serde_json::from_str::<Manifest>(&text) {
            Ok(manifest) if manifest.verified() => Ok(Some(manifest)),
            Ok(_) | Err(_) => {
                quarantine(&path)?;
                Ok(None)
            }
        }
    }

    /// Atomically writes job `id`'s result (already-serialized JSON
    /// text, so the bytes match the in-memory serialization exactly)
    /// and its integrity sidecar. The sidecar goes first: done-ness is
    /// keyed on the result file, so by the time the result is visible
    /// its checksum and attempt count are already on disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_result(&self, id: &str, json_text: &str, attempts: u32) -> io::Result<()> {
        let fnv = fnv1a64(json_text.as_bytes());
        write_string_atomic(
            &self.result_fnv_path(id),
            &format!("{fnv:016x} {attempts}\n"),
        )?;
        write_string_atomic(&self.result_path(id), json_text)
    }

    /// Reads job `id`'s result text back, `Ok(None)` when absent or
    /// quarantined by verification (see [`Spool::result_attempts`]).
    ///
    /// # Errors
    ///
    /// Returns read errors verbatim.
    pub fn read_result(&self, id: &str) -> io::Result<Option<String>> {
        if self.result_attempts(id).is_none() {
            return Ok(None);
        }
        let path = self.result_path(id);
        if !path.is_file() {
            return Ok(None);
        }
        fs::read_to_string(&path).map(Some)
    }
}

/// Renames `path` to `<path>.corrupt`, preserving the damaged bytes
/// for forensics while making the artifact invisible to resume.
fn quarantine(path: &Path) -> io::Result<()> {
    let corrupt = PathBuf::from(format!("{}.corrupt", path.display()));
    fs::rename(path, &corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "blam-spool-test-{tag}-{pid}",
            pid = std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_content_and_leaves_no_temp_files() {
        let dir = temp_dir("atomic");
        let path = dir.join("out.json");
        write_string_atomic(&path, "{\"v\":1}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        // Overwrite: readers see old-or-new, and nothing else lingers.
        write_string_atomic(&path, "{\"v\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["out.json".to_string()], "no temp litter");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_json_atomic_is_pretty_like_run_out() {
        let dir = temp_dir("pretty");
        let path = dir.join("value.json");
        let value = serde_json::json!({"a": 1, "b": [1, 2]});
        write_json_atomic(&path, &value).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, serde_json::to_string_pretty(&value).unwrap());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_to_a_directory_path_errors_cleanly() {
        let dir = temp_dir("badpath");
        let err = write_string_atomic(&dir.join(".."), "x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spool_round_trips_manifest_and_results() {
        let dir = temp_dir("spool");
        let spool = Spool::create(&dir.join("campaign")).unwrap();
        assert!(spool.read_manifest().unwrap().is_none());
        let manifest = Manifest {
            schema: MANIFEST_SCHEMA,
            fnv: String::new(),
            name: "m".to_string(),
            jobs: vec![JobEntry {
                id: "abc".to_string(),
                label: "base".to_string(),
                seed: 7,
                status: JobStatus::Pending,
                attempts: 0,
            }],
        };
        spool.write_manifest(&manifest).unwrap();
        let read_back = spool.read_manifest().unwrap().unwrap();
        assert_eq!(
            read_back.fnv,
            manifest.body_fnv(),
            "checksum sealed in-file"
        );
        assert!(read_back.verified());
        assert_eq!(
            Manifest {
                fnv: String::new(),
                ..read_back
            },
            manifest
        );
        assert!(!manifest.complete());
        assert!(!spool.has_result("abc"));
        spool.write_result("abc", "{\"ok\":true}", 2).unwrap();
        assert!(spool.has_result("abc"));
        assert_eq!(spool.result_attempts("abc"), Some(2));
        assert_eq!(spool.read_result("abc").unwrap().unwrap(), "{\"ok\":true}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_result_is_quarantined_and_reported_absent() {
        let dir = temp_dir("corrupt-result");
        let spool = Spool::create(&dir.join("campaign")).unwrap();
        spool.write_result("abc", "{\"ok\":true}", 1).unwrap();
        // A flipped byte after the fact: the sidecar checksum no
        // longer matches.
        fs::write(spool.result_path("abc"), "{\"ok\":talse}").unwrap();
        assert!(
            spool.result_attempts("abc").is_none(),
            "corrupt result must not count as done"
        );
        assert!(spool.read_result("abc").unwrap().is_none());
        let corrupt = PathBuf::from(format!("{}.corrupt", spool.result_path("abc").display()));
        assert!(corrupt.exists(), "damaged bytes kept for forensics");
        assert!(
            !spool.result_path("abc").is_file(),
            "quarantine must clear the result slot so the job re-runs"
        );
        // A fresh (re-run) result takes the slot back over.
        spool.write_result("abc", "{\"ok\":true}", 1).unwrap();
        assert_eq!(spool.result_attempts("abc"), Some(1));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn result_without_sidecar_is_accepted_as_one_attempt() {
        let dir = temp_dir("legacy-result");
        let spool = Spool::create(&dir.join("campaign")).unwrap();
        fs::write(spool.result_path("abc"), "{\"ok\":true}").unwrap();
        assert_eq!(
            spool.result_attempts("abc"),
            Some(1),
            "pre-integrity spools must keep resuming"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_manifest_is_quarantined_and_reported_absent() {
        let dir = temp_dir("corrupt-manifest");
        let spool = Spool::create(&dir.join("campaign")).unwrap();
        let manifest = Manifest::for_jobs("m", &[], |_| None);
        spool.write_manifest(&manifest).unwrap();
        // Flip the campaign name without re-sealing the checksum.
        let text = fs::read_to_string(spool.manifest_path()).unwrap();
        fs::write(spool.manifest_path(), text.replace("\"m\"", "\"x\"")).unwrap();
        assert!(spool.read_manifest().unwrap().is_none());
        assert!(dir.join("campaign").join("manifest.json.corrupt").exists());
        // A torn (truncated) manifest quarantines the same way.
        spool.write_manifest(&manifest).unwrap();
        let text = fs::read_to_string(spool.manifest_path()).unwrap();
        fs::write(spool.manifest_path(), &text[..text.len() / 2]).unwrap();
        assert!(spool.read_manifest().unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_one_manifest_without_checksum_still_parses() {
        let dir = temp_dir("legacy-manifest");
        let spool = Spool::create(&dir.join("campaign")).unwrap();
        fs::write(
            spool.manifest_path(),
            "{\"schema\":1,\"name\":\"old\",\"jobs\":[]}",
        )
        .unwrap();
        let manifest = spool.read_manifest().unwrap().unwrap();
        assert_eq!(manifest.name, "old");
        assert!(manifest.verified(), "no checksum means nothing to verify");
        fs::remove_dir_all(&dir).ok();
    }
}
