//! The on-disk checkpoint layout a campaign resumes from.
//!
//! ```text
//! <spool>/
//!   campaign.json          # the submitted CampaignSpec, verbatim
//!   manifest.json          # Manifest: job list + done/pending status
//!   results/<job_id>.json  # one RunResult per completed job
//! ```
//!
//! Every file is written **atomically**: to a unique temp name in the
//! same directory, then `rename`d into place. A daemon killed at any
//! instant therefore leaves either the old file or the new one, never
//! a torn half-write — which is what makes resume exact: on restart
//! the runner trusts any `results/<id>.json` it finds and re-runs
//! everything else.
//!
//! The [`Manifest`] deliberately carries **no wall-clock data** (no
//! timestamps, durations or hostnames): a campaign resumed after a
//! kill must converge to a manifest byte-identical to an uninterrupted
//! run's.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::spec::{CampaignSpec, Job};

/// Bumped when the manifest layout changes shape.
pub const MANIFEST_SCHEMA: u32 = 1;

/// Distinguishes concurrent temp files within one process; combined
/// with the pid for cross-process uniqueness.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `text` to `path` atomically: temp file in the same
/// directory, then rename. On any platform rename within a directory
/// is atomic, so readers (and a post-kill resume) see the old content
/// or the new, never a prefix.
///
/// # Errors
///
/// Returns the underlying I/O error; the temp file is cleaned up on
/// a failed rename.
pub fn write_string_atomic(path: &Path, text: &str) -> io::Result<()> {
    let file_name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("atomic write needs a file name, got {path:?}"),
        )
    })?;
    let nonce = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_file_name(format!(
        ".{file_name}.tmp.{pid}.{nonce}",
        pid = std::process::id()
    ));
    fs::write(&tmp, text)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Serializes `value` as pretty JSON (the same shape `blam-sim run
/// --out` writes) and writes it atomically via
/// [`write_string_atomic`].
///
/// # Errors
///
/// Returns serialization failures as `InvalidData` and I/O errors
/// verbatim.
pub fn write_json_atomic<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    let text = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    write_string_atomic(path, &text)
}

/// Completion state of one campaign job, as checkpointed on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum JobStatus {
    /// Not yet (re)run; no result file.
    Pending,
    /// Result file written; skipped on resume.
    Done,
}

/// One job's row in the [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobEntry {
    /// Content-hash job id (the result file stem).
    pub id: String,
    /// Human-readable sweep label.
    pub label: String,
    /// The job's seed.
    pub seed: u64,
    /// Done or pending.
    pub status: JobStatus,
}

/// The campaign's checkpointed job table. Deterministic by
/// construction: job order is expansion order and no field depends on
/// when or where the campaign ran.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Layout version ([`MANIFEST_SCHEMA`]).
    pub schema: u32,
    /// Campaign name.
    pub name: String,
    /// One entry per expanded job, in execution order.
    pub jobs: Vec<JobEntry>,
}

impl Manifest {
    /// Builds the manifest for `jobs`, marking each done iff `done`
    /// says its result already exists.
    #[must_use]
    pub fn for_jobs(name: &str, jobs: &[Job], done: impl Fn(&Job) -> bool) -> Manifest {
        Manifest {
            schema: MANIFEST_SCHEMA,
            name: name.to_string(),
            jobs: jobs
                .iter()
                .map(|job| JobEntry {
                    id: job.id.clone(),
                    label: job.label.clone(),
                    seed: job.seed,
                    status: if done(job) {
                        JobStatus::Done
                    } else {
                        JobStatus::Pending
                    },
                })
                .collect(),
        }
    }

    /// Whether every job is done.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.jobs.iter().all(|j| j.status == JobStatus::Done)
    }
}

/// A campaign's spool directory.
#[derive(Debug, Clone)]
pub struct Spool {
    dir: PathBuf,
}

impl Spool {
    /// Opens (creating if needed) the spool at `dir`, including its
    /// `results/` subdirectory.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directories cannot be
    /// created.
    pub fn create(dir: &Path) -> io::Result<Spool> {
        fs::create_dir_all(dir.join("results"))?;
        Ok(Spool {
            dir: dir.to_path_buf(),
        })
    }

    /// The spool directory itself.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpointed campaign spec.
    #[must_use]
    pub fn spec_path(&self) -> PathBuf {
        self.dir.join("campaign.json")
    }

    /// Path of the manifest.
    #[must_use]
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// Path of job `id`'s result file.
    #[must_use]
    pub fn result_path(&self, id: &str) -> PathBuf {
        self.dir.join("results").join(format!("{id}.json"))
    }

    /// Whether job `id` already has a checkpointed result (the resume
    /// skip test).
    #[must_use]
    pub fn has_result(&self, id: &str) -> bool {
        self.result_path(id).is_file()
    }

    /// Atomically checkpoints the campaign spec.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors.
    pub fn write_spec(&self, spec: &CampaignSpec) -> io::Result<()> {
        write_json_atomic(&self.spec_path(), spec)
    }

    /// Reads the checkpointed campaign spec back, `Ok(None)` when the
    /// spool has none.
    ///
    /// # Errors
    ///
    /// Returns read errors verbatim and parse failures as
    /// `InvalidData`.
    pub fn read_spec(&self) -> io::Result<Option<CampaignSpec>> {
        let path = self.spec_path();
        if !path.is_file() {
            return Ok(None);
        }
        let text = fs::read_to_string(&path)?;
        CampaignSpec::from_json(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Atomically checkpoints the manifest.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors.
    pub fn write_manifest(&self, manifest: &Manifest) -> io::Result<()> {
        write_json_atomic(&self.manifest_path(), manifest)
    }

    /// Reads the manifest back, `Ok(None)` when the spool has none.
    ///
    /// # Errors
    ///
    /// Returns read errors verbatim and parse failures as
    /// `InvalidData`.
    pub fn read_manifest(&self) -> io::Result<Option<Manifest>> {
        let path = self.manifest_path();
        if !path.is_file() {
            return Ok(None);
        }
        let text = fs::read_to_string(&path)?;
        serde_json::from_str(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Atomically writes job `id`'s result (already-serialized JSON
    /// text, so the bytes match the in-memory serialization exactly).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_result(&self, id: &str, json_text: &str) -> io::Result<()> {
        write_string_atomic(&self.result_path(id), json_text)
    }

    /// Reads job `id`'s result text back, `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// Returns read errors verbatim.
    pub fn read_result(&self, id: &str) -> io::Result<Option<String>> {
        let path = self.result_path(id);
        if !path.is_file() {
            return Ok(None);
        }
        fs::read_to_string(&path).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "blam-spool-test-{tag}-{pid}",
            pid = std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_content_and_leaves_no_temp_files() {
        let dir = temp_dir("atomic");
        let path = dir.join("out.json");
        write_string_atomic(&path, "{\"v\":1}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        // Overwrite: readers see old-or-new, and nothing else lingers.
        write_string_atomic(&path, "{\"v\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["out.json".to_string()], "no temp litter");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_json_atomic_is_pretty_like_run_out() {
        let dir = temp_dir("pretty");
        let path = dir.join("value.json");
        let value = serde_json::json!({"a": 1, "b": [1, 2]});
        write_json_atomic(&path, &value).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, serde_json::to_string_pretty(&value).unwrap());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_to_a_directory_path_errors_cleanly() {
        let dir = temp_dir("badpath");
        let err = write_string_atomic(&dir.join(".."), "x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spool_round_trips_manifest_and_results() {
        let dir = temp_dir("spool");
        let spool = Spool::create(&dir.join("campaign")).unwrap();
        assert!(spool.read_manifest().unwrap().is_none());
        let manifest = Manifest {
            schema: MANIFEST_SCHEMA,
            name: "m".to_string(),
            jobs: vec![JobEntry {
                id: "abc".to_string(),
                label: "base".to_string(),
                seed: 7,
                status: JobStatus::Pending,
            }],
        };
        spool.write_manifest(&manifest).unwrap();
        assert_eq!(spool.read_manifest().unwrap().unwrap(), manifest);
        assert!(!manifest.complete());
        assert!(!spool.has_result("abc"));
        spool.write_result("abc", "{\"ok\":true}").unwrap();
        assert!(spool.has_result("abc"));
        assert_eq!(spool.read_result("abc").unwrap().unwrap(), "{\"ok\":true}");
        fs::remove_dir_all(&dir).ok();
    }
}
