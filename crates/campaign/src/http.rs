//! A deliberately tiny HTTP/1.1 layer over `std::net`.
//!
//! The daemon speaks exactly the subset a job API needs: one request
//! per connection (`Connection: close` semantics), JSON bodies sized
//! by `Content-Length`, plain responses, and chunked transfer encoding
//! for the live NDJSON tail. No keep-alive, no TLS, no compression —
//! the container has no package-registry access, so there is no hyper
//! to reach for, and the protocol surface is small enough that
//! hand-rolling it is the honest option.

use std::io::{self, Read, Write};

/// Largest accepted header block (request line + headers).
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Largest accepted request body (campaign specs are small; a 100k-row
/// sweep spec is still well under this).
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// Returns `InvalidData` for malformed requests and size-limit
/// violations, and underlying errors verbatim.
pub fn read_request<S: Read>(stream: &mut S) -> io::Result<Request> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let header_end = loop {
        if let Some(pos) = find_double_crlf(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(invalid("request header block too large"));
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..header_end].to_vec())
        .map_err(|_| invalid("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| invalid("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| invalid("request line has no target"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| invalid("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(invalid("request body too large"));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

/// Writes a complete response with the given body.
///
/// # Errors
///
/// Propagates write errors.
pub fn respond<S: Write>(
    stream: &mut S,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {len}\r\nConnection: close\r\n\r\n",
        len = body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON response.
///
/// # Errors
///
/// Propagates write errors.
pub fn respond_json<S: Write>(stream: &mut S, status: u16, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        _ => "Error",
    };
    respond(stream, status, reason, "application/json", body.as_bytes())
}

/// Starts a chunked `200 OK` response (the tail endpoint's framing).
///
/// # Errors
///
/// Propagates write errors.
pub fn start_chunked<S: Write>(stream: &mut S, content_type: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// Writes one chunk. Empty input writes nothing (an empty chunk would
/// terminate the stream).
///
/// # Errors
///
/// Propagates write errors.
pub fn write_chunk<S: Write>(stream: &mut S, bytes: &[u8]) -> io::Result<()> {
    if bytes.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n", bytes.len())?;
    stream.write_all(bytes)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response.
///
/// # Errors
///
/// Propagates write errors.
pub fn end_chunked<S: Write>(stream: &mut S) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Byte offset of the `\r\n\r\n` header terminator, if present.
pub(crate) fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 9\r\n\r\n{\"a\":true}";
        let mut cursor = io::Cursor::new(raw.to_vec());
        let req = read_request(&mut cursor).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, b"{\"a\":true");
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let mut cursor = io::Cursor::new(raw.to_vec());
        let req = read_request(&mut cursor).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn truncated_request_is_an_eof_error() {
        let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        let mut cursor = io::Cursor::new(raw.to_vec());
        let err = read_request(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn respond_and_chunked_write_the_wire_format() {
        let mut out = Vec::new();
        respond_json(&mut out, 200, "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        start_chunked(&mut out, "application/x-ndjson").unwrap();
        write_chunk(&mut out, b"{\"l\":1}\n").unwrap();
        write_chunk(&mut out, b"").unwrap();
        end_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.ends_with("8\r\n{\"l\":1}\n\r\n0\r\n\r\n"));
    }
}
