//! The `blam-sim serve` core: a long-lived job daemon over plain
//! `std::net`.
//!
//! One `TcpListener` accept loop, one connection-handler thread per
//! request, and a fixed pool of worker threads draining a job
//! registry. The API surface:
//!
//! | Route                  | Effect                                        |
//! |------------------------|-----------------------------------------------|
//! | `GET /healthz`         | liveness + job counts                         |
//! | `POST /jobs`           | submit `{"scenario": …}` or `{"campaign": …}` |
//! | `GET /jobs`            | list jobs                                     |
//! | `GET /jobs/:id`        | one job's status                              |
//! | `GET /jobs/:id/result` | the checkpointed result JSON                  |
//! | `GET /jobs/:id/tail`   | live NDJSON telemetry (chunked)               |
//! | `POST /jobs/:id/cancel`| stop a queued/running job                     |
//! | `POST /shutdown`       | graceful stop (in-flight jobs finish)         |
//!
//! Every job lands in a spool ([`Spool`]): campaigns under
//! `<spool>/campaigns/<name>/`, ad hoc scenarios under
//! `<spool>/adhoc/`. On startup the daemon rescans
//! `<spool>/campaigns/*/campaign.json` and re-enqueues whatever lacks
//! a result file — that, plus atomic checkpoint writes and per-epoch
//! engine snapshots, is the whole resume story: kill the daemon at any
//! instant, restart it on the same spool, completed jobs are skipped
//! by content hash, and a job killed mid-run resumes byte-identically
//! from its last dissemination-epoch snapshot instead of recomputing
//! from scratch.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use serde::Deserialize;
use serde_json::{json, Value};

use blam_netsim::{CheckpointConfig, ScenarioConfig};
use blam_telemetry::TailBuffer;

use crate::http::{self, Request};
use crate::runner::execute_with_retry;
use crate::spec::{job_from_config, CampaignSpec, Job};
use crate::spool::{write_string_atomic, JobStatus, Manifest, Spool};

/// How long a tail handler waits per poll before re-checking the ring.
const TAIL_POLL: Duration = Duration::from_millis(250);

/// Read deadline per accepted socket: a client that connects and then
/// never sends a complete request cannot pin a handler thread forever.
const SOCKET_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Write deadline per socket write: a stalled client (full TCP window,
/// dead peer) errors the handler out instead of wedging it. Applies
/// per `write`, so long-lived tail streams are unaffected as long as
/// the client keeps draining.
const SOCKET_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Daemon settings.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Spool root (checkpoints, results, `daemon.addr`).
    pub spool: PathBuf,
    /// Concurrent jobs.
    pub workers: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

struct JobRecord {
    id: String,
    label: String,
    seed: u64,
    config: ScenarioConfig,
    shards: usize,
    shard_jobs: usize,
    state: JobState,
    error: Option<String>,
    /// Index into `RegistryState::campaigns`, for manifest updates.
    campaign: Option<usize>,
    /// This job's row in its campaign's manifest.
    manifest_index: usize,
    tail: TailBuffer,
    cancel: Arc<AtomicBool>,
    spool: Spool,
}

struct CampaignEntry {
    name: String,
    spec: CampaignSpec,
    spool: Spool,
    manifest: Manifest,
}

#[derive(Default)]
struct RegistryState {
    jobs: Vec<JobRecord>,
    campaigns: Vec<CampaignEntry>,
    shutdown: bool,
}

struct Registry {
    state: Mutex<RegistryState>,
    cond: Condvar,
}

fn lock(registry: &Registry) -> MutexGuard<'_, RegistryState> {
    registry
        .state
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// What `POST /jobs` accepts.
#[derive(Deserialize)]
struct SubmitBody {
    scenario: Option<Value>,
    campaign: Option<CampaignSpec>,
    #[serde(default)]
    shards: usize,
    #[serde(default)]
    shard_jobs: usize,
}

/// The serve daemon. [`bind`](Daemon::bind) it, then [`run`](Daemon::run)
/// it until a `POST /shutdown`.
pub struct Daemon {
    cfg: DaemonConfig,
    listener: TcpListener,
    addr: SocketAddr,
    registry: Registry,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("addr", &self.addr)
            .field("spool", &self.cfg.spool)
            .field("workers", &self.cfg.workers)
            .finish()
    }
}

impl Daemon {
    /// Binds the daemon on `addr` (use port 0 for an ephemeral port),
    /// prepares the spool, writes the actual address to
    /// `<spool>/daemon.addr`, and re-enqueues every unfinished
    /// campaign found in the spool.
    ///
    /// # Errors
    ///
    /// Returns bind and spool-I/O errors.
    pub fn bind(cfg: DaemonConfig, addr: &str) -> std::io::Result<Daemon> {
        std::fs::create_dir_all(cfg.spool.join("campaigns"))?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        write_string_atomic(&cfg.spool.join("daemon.addr"), &format!("{addr}\n"))?;
        let daemon = Daemon {
            cfg,
            listener,
            addr,
            registry: Registry {
                state: Mutex::new(RegistryState::default()),
                cond: Condvar::new(),
            },
        };
        daemon.resume_spooled_campaigns();
        Ok(daemon)
    }

    /// The bound address (the ephemeral port lives here).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until a `POST /shutdown`, then lets in-flight jobs
    /// finish and returns. Queued jobs stay queued — their checkpoints
    /// make them resumable by the next daemon on the same spool.
    ///
    /// # Errors
    ///
    /// Returns accept-loop errors; per-connection and per-job errors
    /// are reported to the offending client instead.
    pub fn run(&self) -> std::io::Result<()> {
        std::thread::scope(|scope| {
            let registry = &self.registry;
            for _ in 0..self.cfg.workers.max(1) {
                scope.spawn(move || worker_loop(registry));
            }
            for stream in self.listener.incoming() {
                if lock(registry).shutdown {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        scope.spawn(move || handle_connection(stream, self));
                    }
                    Err(e) => eprintln!("[serve] accept error: {e}"),
                }
            }
            // Wake idle workers so they observe the shutdown flag.
            registry.cond.notify_all();
        });
        Ok(())
    }

    fn adhoc_spool(&self) -> std::io::Result<Spool> {
        Spool::create(&self.cfg.spool.join("adhoc"))
    }

    /// Startup resume: re-submit every campaign checkpointed in the
    /// spool. Jobs with result files come back `done`; the rest queue.
    fn resume_spooled_campaigns(&self) {
        let dir = self.cfg.spool.join("campaigns");
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("[serve] cannot scan {dir:?}: {e}");
                return;
            }
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if !path.is_dir() {
                continue;
            }
            let spool = match Spool::create(&path) {
                Ok(spool) => spool,
                Err(e) => {
                    eprintln!("[serve] skipping spool {path:?}: {e}");
                    continue;
                }
            };
            match spool.read_spec() {
                Ok(Some(spec)) => match self.submit_campaign(&spec) {
                    Ok(_) => {}
                    Err((_, msg)) => eprintln!("[serve] cannot resume {path:?}: {msg}"),
                },
                Ok(None) => {}
                Err(e) => eprintln!("[serve] unreadable spec in {path:?}: {e}"),
            }
        }
    }

    /// Registers (or re-registers, idempotently) a campaign: expands
    /// it, checkpoints spec + manifest, and queues every job that has
    /// no result yet. Returns the response payload.
    fn submit_campaign(&self, spec: &CampaignSpec) -> Result<Value, (u16, String)> {
        let jobs = spec.expand().map_err(|e| (400, e))?;
        {
            let state = lock(&self.registry);
            if let Some(existing) = state.campaigns.iter().find(|c| c.name == spec.name) {
                if existing.spec == *spec {
                    // Idempotent resubmit: report current status.
                    return Ok(campaign_status(existing, &state));
                }
                return Err((
                    409,
                    format!(
                        "campaign `{}` is already registered with a different spec",
                        spec.name
                    ),
                ));
            }
        }
        let spool = Spool::create(&self.cfg.spool.join("campaigns").join(&spec.name))
            .map_err(|e| (500, format!("creating campaign spool: {e}")))?;
        spool
            .write_spec(spec)
            .map_err(|e| (500, format!("checkpointing spec: {e}")))?;
        let manifest = Manifest::for_jobs(&spec.name, &jobs, |j| spool.result_attempts(&j.id));
        spool
            .write_manifest(&manifest)
            .map_err(|e| (500, format!("checkpointing manifest: {e}")))?;
        let mut state = lock(&self.registry);
        let campaign_index = state.campaigns.len();
        state.campaigns.push(CampaignEntry {
            name: spec.name.clone(),
            spec: spec.clone(),
            spool: spool.clone(),
            manifest,
        });
        for (manifest_index, job) in jobs.into_iter().enumerate() {
            enqueue(
                &mut state,
                job,
                1,
                1,
                Some(campaign_index),
                manifest_index,
                spool.clone(),
            );
        }
        let payload = campaign_status(&state.campaigns[campaign_index], &state);
        drop(state);
        self.registry.cond.notify_all();
        Ok(payload)
    }

    /// Registers an ad hoc scenario job. Returns the response payload.
    fn submit_scenario(
        &self,
        scenario: Value,
        shards: usize,
        shard_jobs: usize,
    ) -> Result<Value, (u16, String)> {
        let config: ScenarioConfig =
            serde_json::from_value(scenario).map_err(|e| (400, format!("not a scenario: {e}")))?;
        let job = job_from_config(config, "adhoc").map_err(|e| (400, e))?;
        let spool = self
            .adhoc_spool()
            .map_err(|e| (500, format!("creating adhoc spool: {e}")))?;
        let mut state = lock(&self.registry);
        let index = enqueue(&mut state, job, shards, shard_jobs, None, 0, spool);
        let payload = job_summary(&state.jobs[index]);
        drop(state);
        self.registry.cond.notify_all();
        Ok(payload)
    }
}

/// Adds a job record unless an identical one (same id, same spool)
/// already exists; pre-completed jobs register as `done` with a
/// closed tail. Returns the record's index.
fn enqueue(
    state: &mut RegistryState,
    job: Job,
    shards: usize,
    shard_jobs: usize,
    campaign: Option<usize>,
    manifest_index: usize,
    spool: Spool,
) -> usize {
    if let Some(existing) = state
        .jobs
        .iter()
        .position(|j| j.id == job.id && j.spool.dir() == spool.dir())
    {
        return existing;
    }
    let done = spool.has_result(&job.id);
    let tail = TailBuffer::default();
    if done {
        tail.close();
    }
    state.jobs.push(JobRecord {
        id: job.id,
        label: job.label,
        seed: job.seed,
        config: job.config,
        shards,
        shard_jobs,
        state: if done {
            JobState::Done
        } else {
            JobState::Queued
        },
        error: None,
        campaign,
        manifest_index,
        tail,
        cancel: Arc::new(AtomicBool::new(false)),
        spool,
    });
    state.jobs.len() - 1
}

fn job_summary(job: &JobRecord) -> Value {
    let mut summary = json!({
        "id": job.id,
        "label": job.label,
        "seed": job.seed,
        "state": job.state.as_str(),
        "result": job.spool.has_result(&job.id),
    });
    if let (Some(error), Some(obj)) = (&job.error, summary.as_object_mut()) {
        obj.insert("error".to_string(), Value::from(error.clone()));
    }
    summary
}

fn campaign_status(campaign: &CampaignEntry, state: &RegistryState) -> Value {
    let jobs: Vec<Value> = campaign
        .manifest
        .jobs
        .iter()
        .map(|entry| {
            let live = state
                .jobs
                .iter()
                .find(|j| j.id == entry.id && j.spool.dir() == campaign.spool.dir());
            json!({
                "id": entry.id,
                "label": entry.label,
                "seed": entry.seed,
                "status": match entry.status {
                    JobStatus::Done => "done",
                    JobStatus::Pending => live.map_or("pending", |j| j.state.as_str()),
                },
                "attempts": entry.attempts,
            })
        })
        .collect();
    json!({
        "campaign": campaign.name,
        "complete": campaign.manifest.complete(),
        "jobs": jobs,
    })
}

/// One worker: claim the oldest queued job, run it, checkpoint it,
/// repeat. Exits when the daemon is shutting down and no job is
/// claimable (in-flight work always finishes first).
fn worker_loop(registry: &Registry) {
    loop {
        let claim = {
            let mut state = lock(registry);
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(index) = state.jobs.iter().position(|j| j.state == JobState::Queued) {
                    state.jobs[index].state = JobState::Running;
                    let job = &state.jobs[index];
                    break (
                        index,
                        job.config.clone(),
                        job.shards,
                        job.shard_jobs,
                        job.tail.clone(),
                        Arc::clone(&job.cancel),
                        job.spool.clone(),
                        job.id.clone(),
                    );
                }
                state = registry
                    .cond
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let (index, config, shards, shard_jobs, tail, cancel, spool, id) = claim;
        let keep_going = || !cancel.load(Ordering::Relaxed);
        // Snapshot adoption: every daemon job runs checkpointed, so a
        // daemon killed mid-run resumes the job from its last epoch
        // barrier (byte-identically) instead of from scratch. The
        // engine deletes the snapshot when the job completes.
        let ckpt = CheckpointConfig::every_epoch(spool.snapshot_path(&id));
        let (attempts, outcome) = execute_with_retry(
            &config,
            shards,
            shard_jobs,
            Some(tail),
            Some(&ckpt),
            &keep_going,
        );
        // Persist the result spool file *before* re-taking the
        // registry lock: the atomic write is file I/O, and holding the
        // lock across it would stall every poller and submitter.
        let outcome = match outcome {
            Ok(Some(json_text)) => match spool.write_result(&id, &json_text, attempts) {
                Ok(()) => Ok(true),
                Err(e) => Err(format!("writing result: {e}")),
            },
            Ok(None) => Ok(false),
            Err(message) => Err(message),
        };
        let mut state = lock(registry);
        match outcome {
            Ok(true) => {
                state.jobs[index].state = JobState::Done;
                if let Some(campaign_index) = state.jobs[index].campaign {
                    let manifest_index = state.jobs[index].manifest_index;
                    let campaign = &mut state.campaigns[campaign_index];
                    if let Some(entry) = campaign.manifest.jobs.get_mut(manifest_index) {
                        entry.status = JobStatus::Done;
                        entry.attempts = attempts;
                    }
                    // analyzer: allow(lock-discipline, reason = "manifest checkpoints must serialize under the registry lock so an earlier slow write can never clobber a later completion")
                    if let Err(e) = campaign.spool.write_manifest(&campaign.manifest) {
                        eprintln!("[serve] manifest checkpoint failed: {e}");
                    }
                }
            }
            Ok(false) => {
                state.jobs[index].state = JobState::Cancelled;
            }
            Err(message) => {
                state.jobs[index].state = JobState::Failed;
                state.jobs[index].error = Some(message);
            }
        }
        drop(state);
        registry.cond.notify_all();
    }
}

fn handle_connection(mut stream: TcpStream, daemon: &Daemon) {
    // Deadlines before the first byte: set failures (an already-dead
    // socket) surface as read/write errors right after, so they need
    // no separate handling.
    let _ = stream.set_read_timeout(Some(SOCKET_READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_WRITE_TIMEOUT));
    let request = match http::read_request(&mut stream) {
        Ok(request) => request,
        Err(e) => {
            let _ = http::respond_json(
                &mut stream,
                400,
                &json!({"error": e.to_string()}).to_string(),
            );
            return;
        }
    };
    if let Err(e) = route(&mut stream, daemon, &request) {
        // The client likely disconnected; nothing useful left to do.
        let _ = e;
    }
}

fn route(stream: &mut TcpStream, daemon: &Daemon, request: &Request) -> std::io::Result<()> {
    let registry = &daemon.registry;
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            // Snapshot under the lock, respond after dropping it: the
            // socket write must never stall the worker pool.
            let body = {
                let state = lock(registry);
                let queued = count(&state, JobState::Queued);
                let running = count(&state, JobState::Running);
                json!({
                    "ok": true,
                    "jobs": state.jobs.len(),
                    "queued": queued,
                    "running": running,
                })
                .to_string()
            };
            http::respond_json(stream, 200, &body)
        }
        ("GET", ["jobs"]) => {
            let body = {
                let state = lock(registry);
                let jobs: Vec<Value> = state.jobs.iter().map(job_summary).collect();
                json!({"jobs": jobs}).to_string()
            };
            http::respond_json(stream, 200, &body)
        }
        ("POST", ["jobs"]) => submit(stream, daemon, request),
        ("GET", ["jobs", id]) => {
            let body = {
                let state = lock(registry);
                state
                    .jobs
                    .iter()
                    .find(|j| j.id == *id)
                    .map(|job| job_summary(job).to_string())
            };
            match body {
                Some(body) => http::respond_json(stream, 200, &body),
                None => not_found(stream, id),
            }
        }
        ("GET", ["jobs", id, "result"]) => {
            let spool = lock(registry)
                .jobs
                .iter()
                .find(|j| j.id == *id)
                .map(|j| j.spool.clone());
            match spool {
                Some(spool) => match spool.read_result(id) {
                    Ok(Some(text)) => http::respond_json(stream, 200, &text),
                    Ok(None) => not_found(stream, id),
                    Err(e) => http::respond_json(
                        stream,
                        500,
                        &json!({"error": e.to_string()}).to_string(),
                    ),
                },
                None => not_found(stream, id),
            }
        }
        ("GET", ["jobs", id, "tail"]) => {
            let tail = lock(registry)
                .jobs
                .iter()
                .find(|j| j.id == *id)
                .map(|j| j.tail.clone());
            match tail {
                Some(tail) => stream_tail(stream, &tail),
                None => not_found(stream, id),
            }
        }
        ("POST", ["jobs", id, "cancel"]) => {
            let mut state = lock(registry);
            match state.jobs.iter().position(|j| j.id == *id) {
                Some(index) => {
                    let job = &mut state.jobs[index];
                    match job.state {
                        JobState::Queued => {
                            job.state = JobState::Cancelled;
                            job.tail.close();
                        }
                        JobState::Running => {
                            // The worker observes the flag at the next
                            // dissemination checkpoint.
                            job.cancel.store(true, Ordering::Relaxed);
                        }
                        JobState::Done | JobState::Failed | JobState::Cancelled => {}
                    }
                    let body = job_summary(job).to_string();
                    drop(state);
                    registry.cond.notify_all();
                    http::respond_json(stream, 202, &body)
                }
                None => not_found(stream, id),
            }
        }
        ("POST", ["shutdown"]) => {
            {
                let mut state = lock(registry);
                state.shutdown = true;
                // Queued jobs will not run in this daemon's lifetime:
                // end their tails so followers stop cleanly. Their
                // spool checkpoints make them resumable.
                for job in &state.jobs {
                    if job.state == JobState::Queued {
                        job.tail.close();
                    }
                }
            }
            registry.cond.notify_all();
            http::respond_json(stream, 200, &json!({"ok": true}).to_string())?;
            // Wake the accept loop so it observes the flag.
            drop(TcpStream::connect(daemon.addr));
            Ok(())
        }
        _ => http::respond_json(
            stream,
            404,
            &json!({"error": format!("no route for {} {}", request.method, request.path)})
                .to_string(),
        ),
    }
}

fn submit(stream: &mut TcpStream, daemon: &Daemon, request: &Request) -> std::io::Result<()> {
    let body: SubmitBody = match serde_json::from_slice(&request.body) {
        Ok(body) => body,
        Err(e) => {
            return http::respond_json(
                stream,
                400,
                &json!({"error": format!("bad submit body: {e}")}).to_string(),
            )
        }
    };
    let outcome = match (body.scenario, body.campaign) {
        (Some(scenario), None) => daemon.submit_scenario(scenario, body.shards, body.shard_jobs),
        (None, Some(spec)) => daemon.submit_campaign(&spec),
        _ => Err((
            400,
            "submit exactly one of `scenario` or `campaign`".to_string(),
        )),
    };
    match outcome {
        Ok(payload) => http::respond_json(stream, 202, &payload.to_string()),
        Err((status, message)) => {
            http::respond_json(stream, status, &json!({"error": message}).to_string())
        }
    }
}

fn count(state: &RegistryState, which: JobState) -> usize {
    state.jobs.iter().filter(|j| j.state == which).count()
}

fn not_found(stream: &mut TcpStream, id: &str) -> std::io::Result<()> {
    http::respond_json(
        stream,
        404,
        &json!({"error": format!("no job {id}")}).to_string(),
    )
}

/// Streams a job's tail ring as chunked NDJSON: forward complete
/// lines as they arrive, hold partial lines back, stop when the ring
/// closes.
fn stream_tail(stream: &mut TcpStream, tail: &TailBuffer) -> std::io::Result<()> {
    http::start_chunked(stream, "application/x-ndjson")?;
    let mut offset = 0u64;
    let mut pending: Vec<u8> = Vec::new();
    loop {
        let chunk = tail.read_from(offset, TAIL_POLL);
        offset = chunk.end_offset();
        let finished = chunk.closed && chunk.bytes.is_empty();
        pending.extend_from_slice(&chunk.bytes);
        if let Some(newline) = pending.iter().rposition(|&b| b == b'\n') {
            let complete: Vec<u8> = pending.drain(..=newline).collect();
            http::write_chunk(stream, &complete)?;
        }
        if finished {
            if !pending.is_empty() {
                http::write_chunk(stream, &pending)?;
            }
            break;
        }
    }
    http::end_chunked(stream)
}
