//! The campaign spec format and its deterministic expansion.
//!
//! A [`CampaignSpec`] is a base scenario (raw JSON, so specs survive
//! config-schema growth), a list of sweep [`Axis`]es — each a dotted
//! path into the scenario JSON plus the values to sweep — and a seed
//! list. [`CampaignSpec::expand`] takes the row-major cartesian
//! product of the axes (first axis outermost, seeds innermost) and
//! yields one [`Job`] per combination, in a fixed order.
//!
//! Job ids are FNV-1a 64 content hashes of the *canonical* scenario
//! JSON (the config re-serialized after parsing, so formatting and key
//! order cannot matter). Identical configs always hash identically,
//! which is what lets a resumed campaign — or a resubmitted one —
//! skip completed jobs by checking the spool for their result files.

use serde::{Deserialize, Serialize};
use serde_json::Value;

use blam_netsim::ScenarioConfig;

/// One sweep dimension: a dotted path into the scenario JSON and the
/// values to substitute there.
///
/// Paths address nested objects (`"fault.gateway_outage_rate"`) and
/// externally-tagged enum payloads (`"protocol.Blam.theta"`). Every
/// key on the path must already exist in the base scenario — this is
/// the typo guard, since scenario JSON tolerates unknown keys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    /// Dotted path into the scenario JSON, e.g. `"protocol.Blam.theta"`.
    pub path: String,
    /// The values swept along this axis, in sweep order.
    pub values: Vec<Value>,
}

/// A parameter-sweep campaign: base scenario × axes × seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name; becomes the spool directory name, so it is
    /// restricted to `[A-Za-z0-9._-]`.
    pub name: String,
    /// The base scenario as raw JSON (the same shape `blam-sim run`
    /// accepts).
    pub base: Value,
    /// Sweep axes; empty means "just the base scenario".
    #[serde(default)]
    pub axes: Vec<Axis>,
    /// Seeds applied to every axis combination (innermost loop). Empty
    /// means "keep the base scenario's seed".
    #[serde(default)]
    pub seeds: Vec<u64>,
}

/// One expanded job of a campaign: a fully-resolved, validated
/// scenario plus its content-hash identity.
#[derive(Debug, Clone)]
pub struct Job {
    /// FNV-1a 64 hash (hex) of the canonical scenario JSON.
    pub id: String,
    /// Human-readable label: the `path=value` pairs plus the seed.
    pub label: String,
    /// The job's seed (from the resolved scenario).
    pub seed: u64,
    /// The fully-resolved scenario.
    pub config: ScenarioConfig,
}

impl CampaignSpec {
    /// Parses a campaign spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the serde error message when the text is not a spec.
    pub fn from_json(text: &str) -> Result<CampaignSpec, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid campaign spec: {e}"))
    }

    /// Expands the spec into its job list: row-major cartesian product
    /// of the axes with seeds innermost, each combination parsed and
    /// validated as a full scenario.
    ///
    /// The returned order is the execution order and is deterministic;
    /// re-expanding the same spec always yields the same jobs with the
    /// same ids.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending axis, path or job when
    /// the name is unusable as a directory, an axis is empty, a path
    /// does not exist in the base scenario, a combination fails to
    /// parse as a scenario, scenario validation rejects it, or two
    /// combinations collapse to the same config (duplicate id).
    pub fn expand(&self) -> Result<Vec<Job>, String> {
        validate_name(&self.name)?;
        for axis in &self.axes {
            if axis.values.is_empty() {
                return Err(format!("axis `{}` has no values", axis.path));
            }
        }
        // Row-major cartesian product: first axis outermost.
        let mut combos: Vec<Vec<&Value>> = vec![Vec::new()];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(combos.len() * axis.values.len());
            for combo in &combos {
                for value in &axis.values {
                    let mut extended = combo.clone();
                    extended.push(value);
                    next.push(extended);
                }
            }
            combos = next;
        }
        let seeds: Vec<Option<u64>> = if self.seeds.is_empty() {
            vec![None]
        } else {
            self.seeds.iter().copied().map(Some).collect()
        };
        let mut jobs = Vec::with_capacity(combos.len() * seeds.len());
        for combo in &combos {
            let mut swept = self.base.clone();
            let mut parts = Vec::with_capacity(self.axes.len() + 1);
            for (axis, value) in self.axes.iter().zip(combo) {
                set_path(&mut swept, &axis.path, (*value).clone())?;
                parts.push(format!("{}={}", leaf(&axis.path), render(value)));
            }
            for seed in &seeds {
                let mut resolved = swept.clone();
                if let Some(seed) = seed {
                    set_path(&mut resolved, "seed", Value::from(*seed))?;
                }
                let label = {
                    let mut parts = parts.clone();
                    if let Some(seed) = seed {
                        parts.push(format!("seed={seed}"));
                    }
                    if parts.is_empty() {
                        "base".to_string()
                    } else {
                        parts.join(" ")
                    }
                };
                let config: ScenarioConfig = serde_json::from_value(resolved)
                    .map_err(|e| format!("job `{label}`: not a scenario: {e}"))?;
                check_config(&config)
                    .map_err(|panic| format!("job `{label}`: invalid scenario: {panic}"))?;
                let id = job_id(&config)?;
                jobs.push(Job {
                    id,
                    label,
                    seed: config.seed,
                    config,
                });
            }
        }
        for (i, job) in jobs.iter().enumerate() {
            if let Some(dup) = jobs[..i].iter().find(|j| j.id == job.id) {
                return Err(format!(
                    "jobs `{}` and `{}` expand to the same scenario (id {})",
                    dup.label, job.label, job.id
                ));
            }
        }
        Ok(jobs)
    }
}

/// The content-hash id of a resolved scenario: FNV-1a 64 over its
/// canonical (re-serialized) JSON, in hex.
///
/// # Errors
///
/// Returns the serde error message if the config cannot serialize
/// (it always can in practice).
pub fn job_id(config: &ScenarioConfig) -> Result<String, String> {
    let canonical =
        serde_json::to_string(config).map_err(|e| format!("serializing scenario: {e}"))?;
    Ok(format!("{:016x}", fnv1a64(canonical.as_bytes())))
}

/// Builds a standalone (no-sweep) [`Job`] from an already-parsed
/// scenario — the daemon's `POST /jobs {"scenario": …}` path, so ad
/// hoc submissions get the same validation and content-hash identity
/// campaign jobs do.
///
/// # Errors
///
/// Returns the scenario-validation panic message when the config is
/// invalid.
pub fn job_from_config(config: ScenarioConfig, label: &str) -> Result<Job, String> {
    check_config(&config).map_err(|panic| format!("invalid scenario: {panic}"))?;
    let id = job_id(&config)?;
    Ok(Job {
        id,
        label: label.to_string(),
        seed: config.seed,
        config,
    })
}

/// Runs `ScenarioConfig::validate` (which reports problems by
/// panicking, like the rest of the config layer) and converts a panic
/// into an `Err` so a daemon can turn it into an HTTP 400 instead of
/// dying.
fn check_config(config: &ScenarioConfig) -> Result<(), String> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| config.validate()));
    result.map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "scenario validation panicked".to_string())
    })
}

/// Replaces the value at dotted `path` inside `root`, requiring every
/// key on the path to already exist.
///
/// # Errors
///
/// Returns a message naming the missing key or non-object step.
pub fn set_path(root: &mut Value, path: &str, new: Value) -> Result<(), String> {
    let keys: Vec<&str> = path.split('.').collect();
    if keys.iter().any(|k| k.is_empty()) {
        return Err(format!("axis path `{path}` has an empty segment"));
    }
    let mut cursor = root;
    for (i, key) in keys.iter().enumerate() {
        let walked = keys[..i].join(".");
        let object = cursor.as_object_mut().ok_or_else(|| {
            format!("axis path `{path}`: `{walked}` is not a JSON object in the base scenario")
        })?;
        cursor = object.get_mut(*key).ok_or_else(|| {
            format!("axis path `{path}`: key `{key}` not present in the base scenario")
        })?;
    }
    *cursor = new;
    Ok(())
}

fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("campaign name must not be empty".to_string());
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        return Err(format!(
            "campaign name `{name}` must match [A-Za-z0-9._-] (it becomes a directory name)"
        ));
    }
    if name.starts_with('.') {
        return Err(format!("campaign name `{name}` must not start with `.`"));
    }
    Ok(())
}

/// The last segment of a dotted path — the human-relevant knob name
/// for labels.
fn leaf(path: &str) -> &str {
    path.rsplit('.').next().unwrap_or(path)
}

/// Renders an axis value for a label: strings unquoted, everything
/// else as compact JSON.
fn render(value: &Value) -> String {
    match value {
        Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms —
/// exactly what a content-addressed job id needs (this is an identity,
/// not a security boundary).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use blam_netsim::config::Protocol;
    use blam_netsim::ScenarioConfig;

    fn base_json() -> Value {
        let cfg = ScenarioConfig::large_scale(4, Protocol::h(0.5), 7);
        serde_json::to_value(cfg).unwrap()
    }

    fn spec(axes: Vec<Axis>, seeds: Vec<u64>) -> CampaignSpec {
        CampaignSpec {
            name: "test-sweep".to_string(),
            base: base_json(),
            axes,
            seeds,
        }
    }

    #[test]
    fn expansion_is_row_major_with_seeds_innermost() {
        let spec = spec(
            vec![Axis {
                path: "protocol.Blam.theta".to_string(),
                values: vec![Value::from(0.3), Value::from(0.7)],
            }],
            vec![1, 2],
        );
        let jobs = spec.expand().unwrap();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].label, "theta=0.3 seed=1");
        assert_eq!(jobs[1].label, "theta=0.3 seed=2");
        assert_eq!(jobs[2].label, "theta=0.7 seed=1");
        assert_eq!(jobs[3].label, "theta=0.7 seed=2");
        assert_eq!(jobs[1].seed, 2);
    }

    /// The sweep machinery reaches the new zoo policies' knobs through
    /// the same externally-tagged enum paths BLAM uses.
    #[test]
    fn batteryless_knobs_are_sweepable_by_dotted_path() {
        let cfg = ScenarioConfig::large_scale(4, Protocol::batteryless(), 7);
        let spec = CampaignSpec {
            name: "zoo-sweep".to_string(),
            base: serde_json::to_value(cfg).unwrap(),
            axes: vec![Axis {
                path: "protocol.Batteryless.off_soc".to_string(),
                values: vec![Value::from(0.2), Value::from(0.35)],
            }],
            seeds: vec![],
        };
        let jobs = spec.expand().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].label, "off_soc=0.2");
        for (job, expected) in jobs.iter().zip([0.2, 0.35]) {
            match &job.config.protocol {
                Protocol::Batteryless(bc) => assert_eq!(bc.off_soc, expected),
                other => panic!("sweep changed the protocol variant: {other:?}"),
            }
        }
    }

    #[test]
    fn expansion_is_deterministic_and_content_addressed() {
        let s = spec(
            vec![Axis {
                path: "nodes".to_string(),
                values: vec![Value::from(4), Value::from(8)],
            }],
            vec![9],
        );
        let a = s.expand().unwrap();
        let b = s.expand().unwrap();
        let ids_a: Vec<&str> = a.iter().map(|j| j.id.as_str()).collect();
        let ids_b: Vec<&str> = b.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids_a, ids_b);
        // Content hash: same config through a *different* spec shape
        // (seed via base instead of the seed list) hashes identically.
        let mut base = base_json();
        set_path(&mut base, "seed", Value::from(9)).unwrap();
        set_path(&mut base, "nodes", Value::from(4)).unwrap();
        let direct = CampaignSpec {
            name: "other-name".to_string(),
            base,
            axes: vec![],
            seeds: vec![],
        };
        let d = direct.expand().unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].id, a[0].id);
    }

    #[test]
    fn empty_axes_and_seeds_yield_the_base_job() {
        let jobs = spec(vec![], vec![]).expand().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].label, "base");
        assert_eq!(jobs[0].seed, 7);
    }

    #[test]
    fn unknown_axis_path_is_rejected() {
        let err = spec(
            vec![Axis {
                path: "protocol.Blam.thetta".to_string(),
                values: vec![Value::from(0.5)],
            }],
            vec![],
        )
        .expand()
        .unwrap_err();
        assert!(err.contains("thetta"), "{err}");
        assert!(err.contains("not present"), "{err}");
    }

    #[test]
    fn invalid_scenario_value_is_an_error_not_a_panic() {
        let err = spec(
            vec![Axis {
                path: "protocol.Blam.theta".to_string(),
                values: vec![Value::from(1.5)],
            }],
            vec![],
        )
        .expand()
        .unwrap_err();
        assert!(err.contains("invalid scenario"), "{err}");
    }

    #[test]
    fn duplicate_jobs_are_rejected() {
        let err = spec(
            vec![Axis {
                path: "seed".to_string(),
                values: vec![Value::from(7), Value::from(7)],
            }],
            vec![],
        )
        .expand()
        .unwrap_err();
        assert!(err.contains("same scenario"), "{err}");
    }

    #[test]
    fn bad_campaign_names_are_rejected() {
        for name in ["", "has space", "a/b", ".hidden"] {
            let mut s = spec(vec![], vec![]);
            s.name = name.to_string();
            assert!(s.expand().is_err(), "name `{name}` should be rejected");
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = spec(
            vec![Axis {
                path: "nodes".to_string(),
                values: vec![Value::from(4)],
            }],
            vec![1, 2, 3],
        );
        let text = serde_json::to_string(&s).unwrap();
        let back = CampaignSpec::from_json(&text).unwrap();
        assert_eq!(back, s);
    }
}
