//! Simulation-as-a-service for the lpwan-blam stack.
//!
//! Everything the `blam-sim serve` daemon needs to run scenario
//! *campaigns* — parameter sweeps expanded deterministically into a
//! set of jobs — as a long-lived service with resumable checkpointing
//! and live telemetry tailing, using nothing but `std`:
//!
//! * [`spec`] — the campaign spec format: a base
//!   [`ScenarioConfig`](blam_netsim::ScenarioConfig) as raw JSON plus
//!   sweep axes (dotted config paths × value lists) and a seed list,
//!   expanded row-major into [`spec::Job`]s whose ids are content
//!   hashes of the canonical scenario JSON.
//! * [`spool`] — the on-disk checkpoint layout (atomically-written
//!   campaign spec, manifest and per-job result files) that lets a
//!   killed daemon resume exactly, skipping completed jobs by id.
//! * [`runner`] — in-process campaign execution: a worker pool driving
//!   [`Engine::run_interruptible`](blam_netsim::engine::Engine::run_interruptible)
//!   job by job, checkpointing the spool after each one.
//! * [`http`] — a minimal hand-rolled HTTP/1.1 layer (request parsing,
//!   plain and chunked responses) shared by daemon and client; the
//!   container has no registry access, so no hyper/axum.
//! * [`daemon`] — the `blam-sim serve` core: a `TcpListener` accept
//!   loop, a job registry with a worker pool, and the job API
//!   (`POST /jobs`, `GET /jobs/:id`, `GET /jobs/:id/tail` as chunked
//!   NDJSON, `POST /jobs/:id/cancel`, `POST /shutdown`).
//! * [`client`] — a `std::net::TcpStream` client for the same wire
//!   format, including a chunked-transfer NDJSON tail follower.

// `forbid(unsafe_code)` comes from `[workspace.lints]` in the root
// manifest; only the doc requirement stays crate-local.
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod http;
pub mod runner;
pub mod spec;
pub mod spool;

pub use client::{request, tail_ndjson};
pub use daemon::{Daemon, DaemonConfig};
pub use runner::{run_campaign, CampaignOutcome, MAX_ATTEMPTS};
pub use spec::{Axis, CampaignSpec, Job};
pub use spool::{write_json_atomic, write_string_atomic, JobEntry, JobStatus, Manifest, Spool};
