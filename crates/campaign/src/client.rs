//! A `std::net::TcpStream` client for the daemon's wire format —
//! what the `blam-sim submit`/`status`/`tail` subcommands and the
//! check.sh smoke test use, and the integration tests drive the
//! daemon end-to-end with.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::http::find_double_crlf;

/// Sends one request and returns `(status, body)`. The connection is
/// one-shot (`Connection: close`), matching the server.
///
/// # Errors
///
/// Connection and I/O errors verbatim; malformed responses as
/// `InvalidData`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    send_request(&mut stream, method, path, body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let (status, leftover) = parse_head(&raw)?;
    Ok((status, String::from_utf8_lossy(&leftover).into_owned()))
}

/// Follows a chunked NDJSON stream (the `/jobs/:id/tail` endpoint),
/// invoking `on_line` once per complete line (terminator stripped)
/// until the server ends the stream. Returns the HTTP status; on a
/// non-200 status nothing is streamed and the error body is discarded.
///
/// # Errors
///
/// Connection and I/O errors verbatim; malformed chunked framing as
/// `InvalidData`.
pub fn tail_ndjson(addr: &str, path: &str, on_line: &mut dyn FnMut(&str)) -> io::Result<u16> {
    let mut stream = TcpStream::connect(addr)?;
    send_request(&mut stream, "GET", path, None)?;
    // Read up to the end of the response head.
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let header_end = loop {
        if let Some(pos) = find_double_crlf(&buf) {
            break pos;
        }
        if !read_some(&mut stream, &mut buf)? {
            return Err(invalid("connection closed before response head"));
        }
    };
    let (status, _) = parse_head(&buf[..header_end + 4])?;
    if status != 200 {
        return Ok(status);
    }
    let mut buf = buf.split_off(header_end + 4);
    let mut linebuf: Vec<u8> = Vec::new();
    loop {
        // A chunk: "<hex size>\r\n<payload>\r\n"; size 0 terminates.
        let Some(size_end) = buf.windows(2).position(|w| w == b"\r\n") else {
            if !read_some(&mut stream, &mut buf)? {
                break; // server closed without the final chunk; emit what we have
            }
            continue;
        };
        let size_text = String::from_utf8_lossy(&buf[..size_end]);
        let size =
            usize::from_str_radix(size_text.trim(), 16).map_err(|_| invalid("bad chunk size"))?;
        if size == 0 {
            break;
        }
        let frame = size_end + 2 + size + 2;
        while buf.len() < frame {
            if !read_some(&mut stream, &mut buf)? {
                return Err(invalid("connection closed mid-chunk"));
            }
        }
        linebuf.extend_from_slice(&buf[size_end + 2..size_end + 2 + size]);
        buf.drain(..frame);
        emit_lines(&mut linebuf, on_line);
    }
    emit_lines(&mut linebuf, on_line);
    if !linebuf.is_empty() {
        on_line(&String::from_utf8_lossy(&linebuf));
    }
    Ok(200)
}

fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<()> {
    let body = body.unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: blam-sim\r\nContent-Length: {len}\r\nConnection: close\r\n\r\n",
        len = body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Parses `"HTTP/1.1 <status> ..."` plus headers; returns the status
/// and everything past the header terminator.
fn parse_head(raw: &[u8]) -> io::Result<(u16, Vec<u8>)> {
    let header_end = find_double_crlf(raw).ok_or_else(|| invalid("no response head"))?;
    let head = String::from_utf8_lossy(&raw[..header_end]);
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status line"))?;
    Ok((status, raw[header_end + 4..].to_vec()))
}

fn emit_lines(linebuf: &mut Vec<u8>, on_line: &mut dyn FnMut(&str)) {
    while let Some(nl) = linebuf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = linebuf.drain(..=nl).collect();
        let text = String::from_utf8_lossy(&line[..line.len() - 1]);
        on_line(text.trim_end_matches('\r'));
    }
}

fn read_some(stream: &mut TcpStream, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut chunk = [0u8; 4096];
    let n = stream.read(&mut chunk)?;
    buf.extend_from_slice(&chunk[..n]);
    Ok(n > 0)
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}
