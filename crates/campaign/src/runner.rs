//! In-process campaign execution: a worker pool draining the expanded
//! job list, checkpointing the spool after every job.
//!
//! Used two ways: `blam-sim campaign` runs a spec start-to-finish (or
//! resumes one) without a daemon, and the [`daemon`](crate::daemon)
//! reuses [`execute_job`] from its own pool so HTTP-submitted jobs run
//! the exact same code path.
//!
//! Determinism: job results depend only on each job's
//! [`ScenarioConfig`] — the engine draws everything from named seeded
//! streams — so worker count, scheduling order, kills and resumes
//! cannot change a single result byte. The spooled result is the
//! `RunResult` with telemetry stripped, pretty-printed exactly like
//! `blam-sim run --out`, so a campaign job's file is byte-identical to
//! a one-shot run of the same scenario.

use std::any::Any;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use blam_netsim::engine::Engine;
use blam_netsim::shard::{run_sharded, run_sharded_checkpointed};
use blam_netsim::{CheckpointConfig, ScenarioConfig, TelemetryOptions};
use blam_telemetry::TailBuffer;

use crate::spec::CampaignSpec;
use crate::spool::{JobStatus, Manifest, Spool};

/// Retry bound per job: a job whose attempts all fail is reported
/// failed, never spun forever. Failures are deterministic (engine
/// panics, scenario validation), so the attempt count a job needs is
/// itself deterministic — which is what lets the manifest record it.
pub const MAX_ATTEMPTS: u32 = 3;

/// What [`run_campaign`] accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// The final checkpointed manifest.
    pub manifest: Manifest,
    /// Jobs executed this invocation.
    pub ran: usize,
    /// Jobs skipped because the spool already held their results.
    pub skipped: usize,
    /// Whether `keep_going` stopped the campaign before completion.
    pub stopped_early: bool,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn panic_text(payload: Box<dyn Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "job panicked".to_string())
}

/// Runs (or resumes) `spec` against the spool at `spool_dir` with up
/// to `workers` concurrent jobs, until done or `keep_going` returns
/// false.
///
/// Jobs whose result files already exist are skipped — that is the
/// whole resume protocol. The manifest is rewritten atomically after
/// every completed job, so a kill at any instant loses at most the
/// in-flight jobs' compute, never checkpointed state.
///
/// # Errors
///
/// Returns expansion errors, spool I/O errors, and job failures
/// (engine panics become messages, not crashes).
pub fn run_campaign(
    spec: &CampaignSpec,
    spool_dir: &Path,
    workers: usize,
    keep_going: &(dyn Fn() -> bool + Sync),
) -> Result<CampaignOutcome, String> {
    let jobs = spec.expand()?;
    let spool =
        Spool::create(spool_dir).map_err(|e| format!("creating spool {spool_dir:?}: {e}"))?;
    spool
        .write_spec(spec)
        .map_err(|e| format!("checkpointing spec: {e}"))?;
    let manifest = Manifest::for_jobs(&spec.name, &jobs, |j| spool.result_attempts(&j.id));
    let skipped = manifest
        .jobs
        .iter()
        .filter(|j| j.status == JobStatus::Done)
        .count();
    spool
        .write_manifest(&manifest)
        .map_err(|e| format!("checkpointing manifest: {e}"))?;
    let pending: Vec<usize> = manifest
        .jobs
        .iter()
        .enumerate()
        .filter(|(_, j)| j.status == JobStatus::Pending)
        .map(|(i, _)| i)
        .collect();
    let manifest = Mutex::new(manifest);
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let ran = AtomicUsize::new(0);
    let stopped = AtomicBool::new(false);
    let cursor = AtomicUsize::new(0);
    let threads = workers.clamp(1, pending.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if !keep_going() {
                    stopped.store(true, Ordering::Relaxed);
                    break;
                }
                let claimed = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&slot) = pending.get(claimed) else {
                    break;
                };
                let job = &jobs[slot];
                let ckpt = CheckpointConfig::every_epoch(spool.snapshot_path(&job.id));
                let (attempts, outcome) =
                    execute_with_retry(&job.config, 1, 1, None, Some(&ckpt), keep_going);
                match outcome {
                    Ok(Some(json)) => {
                        let checkpoint =
                            spool.write_result(&job.id, &json, attempts).and_then(|()| {
                                let mut m = lock(&manifest);
                                m.jobs[slot].status = JobStatus::Done;
                                m.jobs[slot].attempts = attempts;
                                // analyzer: allow(lock-discipline, reason = "manifest checkpoints must serialize under the manifest lock so an earlier slow write can never clobber a later completion")
                                spool.write_manifest(&m)
                            });
                        match checkpoint {
                            Ok(()) => {
                                ran.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                lock(&errors).push(format!("job {}: checkpoint: {e}", job.id));
                                break;
                            }
                        }
                    }
                    Ok(None) => {
                        stopped.store(true, Ordering::Relaxed);
                        break;
                    }
                    Err(e) => {
                        lock(&errors).push(format!("job {} ({}): {e}", job.id, job.label));
                        break;
                    }
                }
            });
        }
    });
    let errors = errors.into_inner().unwrap_or_else(PoisonError::into_inner);
    if !errors.is_empty() {
        return Err(errors.join("; "));
    }
    Ok(CampaignOutcome {
        manifest: manifest
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner),
        ran: ran.into_inner(),
        skipped,
        stopped_early: stopped.into_inner(),
    })
}

/// Runs [`execute_job`] with bounded retry: up to [`MAX_ATTEMPTS`]
/// tries, with a deterministic backoff between them (the delay depends
/// only on the attempt number — no wall clock, no randomness).
/// Returns the attempt count alongside the final outcome. Only errors
/// retry; a completed or cancelled job returns immediately. When a
/// snapshot is configured, a failed attempt's checkpoint survives, so
/// the retry resumes from the last epoch barrier rather than from
/// scratch.
pub(crate) fn execute_with_retry(
    config: &ScenarioConfig,
    shards: usize,
    shard_jobs: usize,
    tail: Option<TailBuffer>,
    ckpt: Option<&CheckpointConfig>,
    keep_going: &(dyn Fn() -> bool + Sync),
) -> (u32, Result<Option<String>, String>) {
    let mut attempt = 0;
    loop {
        attempt += 1;
        match execute_job(config, shards, shard_jobs, tail.clone(), ckpt, keep_going) {
            Err(e) if attempt < MAX_ATTEMPTS => {
                eprintln!("[campaign] attempt {attempt}/{MAX_ATTEMPTS} failed: {e}; retrying");
                std::thread::sleep(std::time::Duration::from_millis(25 << attempt));
            }
            outcome => return (attempt, outcome),
        }
    }
}

/// Runs one scenario to completion and serializes its result.
///
/// * `shards <= 1` runs the single-engine path via
///   [`Engine::run_interruptible`], polling `keep_going` at every
///   dissemination epoch — `Ok(None)` means it said stop (the job ran
///   partially and produced nothing).
/// * `shards > 1` runs [`run_sharded`] with `shard_jobs` workers
///   (checked only between jobs: the sharded coordinator owns its
///   epoch loop).
///
/// `ckpt`, when given, makes the run crash-safe: engine state is
/// snapshotted to `ckpt.path` at epoch barriers
/// ([`Engine::run_checkpointed`] / [`run_sharded_checkpointed`]), a
/// valid snapshot found at startup resumes the run byte-identically,
/// and the snapshot is deleted on completion.
///
/// `tail`, when given, receives the run's NDJSON trace lines live and
/// is closed when the job ends — however it ends. (A resumed run
/// re-emits only the lines after its snapshot epoch: telemetry is
/// observational and outside the resume contract.) The returned JSON
/// has telemetry stripped, matching a telemetry-less one-shot run
/// byte for byte.
///
/// # Errors
///
/// Engine panics (including scenario-validation panics) come back as
/// messages, as do snapshot I/O failures.
pub fn execute_job(
    config: &ScenarioConfig,
    shards: usize,
    shard_jobs: usize,
    tail: Option<TailBuffer>,
    ckpt: Option<&CheckpointConfig>,
    keep_going: &(dyn Fn() -> bool + Sync),
) -> Result<Option<String>, String> {
    let opts = match &tail {
        Some(t) => TelemetryOptions::with_tail(t.clone()),
        None => TelemetryOptions::off(),
    };
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<_, String> {
            if shards > 1 {
                match ckpt {
                    Some(ckpt) => run_sharded_checkpointed(
                        config,
                        shards,
                        shard_jobs.max(1),
                        &opts,
                        ckpt,
                        || keep_going(),
                    )
                    .map_err(|e| format!("snapshot: {e}")),
                    None => Ok(Some(run_sharded(config, shards, shard_jobs.max(1), &opts))),
                }
            } else {
                let writer = opts
                    .open_writer()
                    .map_err(|e| format!("opening telemetry writer: {e}"))?;
                let mut engine = Engine::build(config.clone());
                if let Some(sink) = opts.sink_for_run(0, writer) {
                    engine = engine.with_sink(sink);
                }
                match ckpt {
                    Some(ckpt) => engine
                        .run_checkpointed(ckpt, || keep_going())
                        .map_err(|e| format!("snapshot: {e}")),
                    None => Ok(
                        engine.run_interruptible(config.dissemination_interval, || keep_going())
                    ),
                }
            }
        }));
    if let Some(t) = &tail {
        t.close();
    }
    let result = match outcome {
        Ok(r) => r?,
        Err(payload) => return Err(panic_text(payload)),
    };
    match result {
        None => Ok(None),
        Some(mut run) => {
            // Strip the in-memory telemetry report: the tail sink is an
            // observer, and the spooled result must stay byte-identical
            // to `blam-sim run --out` without telemetry.
            run.telemetry = None;
            serde_json::to_string_pretty(&run)
                .map(Some)
                .map_err(|e| format!("serializing result: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Axis;
    use blam_netsim::config::Protocol;
    use blam_units::Duration;

    fn tiny_spec(name: &str) -> CampaignSpec {
        let mut cfg = ScenarioConfig::large_scale(3, Protocol::h(0.5), 1);
        cfg.duration = Duration::from_days(1);
        CampaignSpec {
            name: name.to_string(),
            base: serde_json::to_value(cfg).unwrap(),
            axes: vec![],
            seeds: vec![11, 12],
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "blam-runner-test-{tag}-{pid}",
            pid = std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn campaign_runs_checkpoints_and_skips_on_rerun() {
        let spec = tiny_spec("runner-skip");
        let dir = temp_dir("skip");
        let first = run_campaign(&spec, &dir, 2, &|| true).unwrap();
        assert_eq!(first.ran, 2);
        assert_eq!(first.skipped, 0);
        assert!(!first.stopped_early);
        assert!(first.manifest.complete());
        let manifest_bytes = std::fs::read(dir.join("manifest.json")).unwrap();
        // Re-running the same spec against the same spool runs nothing.
        let second = run_campaign(&spec, &dir, 2, &|| true).unwrap();
        assert_eq!(second.ran, 0);
        assert_eq!(second.skipped, 2);
        assert_eq!(second.manifest, first.manifest);
        assert_eq!(
            std::fs::read(dir.join("manifest.json")).unwrap(),
            manifest_bytes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stopped_campaign_reports_early_exit_and_completes_nothing_torn() {
        let spec = tiny_spec("runner-stop");
        let dir = temp_dir("stop");
        let outcome = run_campaign(&spec, &dir, 1, &|| false).unwrap();
        assert!(outcome.stopped_early);
        assert_eq!(outcome.ran, 0);
        // The spool is valid for resume: spec + all-pending manifest.
        let spool = Spool::create(&dir).unwrap();
        assert_eq!(spool.read_spec().unwrap().unwrap(), spec);
        let manifest = spool.read_manifest().unwrap().unwrap();
        assert!(manifest.jobs.iter().all(|j| j.status == JobStatus::Pending));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn execute_job_failure_is_an_error_message_not_a_panic() {
        let mut cfg = ScenarioConfig::large_scale(3, Protocol::h(0.5), 1);
        cfg.duration = Duration::from_days(1);
        cfg.gateways = 0; // topology construction requires a gateway.
        let err = execute_job(&cfg, 1, 1, None, None, &|| true).unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn retry_is_bounded_and_counts_attempts() {
        let mut cfg = ScenarioConfig::large_scale(3, Protocol::h(0.5), 1);
        cfg.duration = Duration::from_days(1);
        cfg.gateways = 0; // deterministic failure on every attempt.
        let (attempts, outcome) = execute_with_retry(&cfg, 1, 1, None, None, &|| true);
        assert_eq!(attempts, MAX_ATTEMPTS, "a hopeless job stops at the cap");
        assert!(outcome.is_err());
        // A healthy job succeeds first try.
        cfg.gateways = 1;
        let (attempts, outcome) = execute_with_retry(&cfg, 1, 1, None, None, &|| true);
        assert_eq!(attempts, 1);
        assert!(matches!(outcome, Ok(Some(_))));
    }

    #[test]
    fn manifest_records_attempts_for_completed_jobs() {
        let spec = tiny_spec("runner-attempts");
        let dir = temp_dir("attempts");
        let outcome = run_campaign(&spec, &dir, 1, &|| true).unwrap();
        assert!(
            outcome.manifest.jobs.iter().all(|j| j.attempts == 1),
            "healthy jobs complete on attempt 1"
        );
        // The attempt counts survive a resume rebuild byte-for-byte.
        let manifest_bytes = std::fs::read(dir.join("manifest.json")).unwrap();
        let again = run_campaign(&spec, &dir, 1, &|| true).unwrap();
        assert_eq!(again.manifest, outcome.manifest);
        assert_eq!(
            std::fs::read(dir.join("manifest.json")).unwrap(),
            manifest_bytes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_axis_changes_results_but_not_the_protocol_of_expansion() {
        let mut spec = tiny_spec("runner-axis");
        spec.seeds = vec![11];
        spec.axes = vec![Axis {
            path: "protocol.Blam.theta".to_string(),
            values: vec![serde_json::Value::from(0.3), serde_json::Value::from(0.7)],
        }];
        let dir = temp_dir("axis");
        let outcome = run_campaign(&spec, &dir, 2, &|| true).unwrap();
        assert_eq!(outcome.ran, 2);
        let spool = Spool::create(&dir).unwrap();
        let a = spool
            .read_result(&outcome.manifest.jobs[0].id)
            .unwrap()
            .unwrap();
        let b = spool
            .read_result(&outcome.manifest.jobs[1].id)
            .unwrap()
            .unwrap();
        assert_ne!(a, b, "different theta must produce different results");
        std::fs::remove_dir_all(&dir).ok();
    }
}
