//! End-to-end tests for the campaign subsystem: byte-parity of
//! campaign jobs against one-shot runs, kill-and-resume of a spool,
//! and a full daemon round trip over real HTTP (submit, live NDJSON
//! tail, result fetch, shutdown, restart-resume).

use std::path::PathBuf;

use blam_campaign::{
    request, run_campaign, tail_ndjson, CampaignSpec, Daemon, DaemonConfig, Spool,
};
use blam_netsim::runner::BatchRunner;
use blam_netsim::{config::Protocol, ScenarioConfig, TelemetryOptions};
use blam_units::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blam-campaign-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A 3-node, 1-day scenario: seconds to run, non-trivial metrics.
fn tiny_cfg(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::large_scale(3, Protocol::h(0.5), seed);
    cfg.duration = Duration::from_days(1);
    cfg
}

/// A two-job campaign sweeping the seed axis.
fn tiny_spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        base: serde_json::to_value(tiny_cfg(1)).expect("base serializes"),
        axes: Vec::new(),
        seeds: vec![11, 12],
    }
}

/// What `blam-sim run --out` writes for this config: a single-engine
/// batch run, no telemetry, pretty-printed.
fn one_shot_bytes(cfg: &ScenarioConfig) -> String {
    let outcome = BatchRunner::new(1).run_all_with(vec![cfg.clone()], &TelemetryOptions::off());
    let result = outcome.results.into_iter().next().expect("one result");
    serde_json::to_string_pretty(&result).expect("RunResult serializes")
}

/// The ISSUE's parity claim: every campaign job's spooled RunResult is
/// byte-identical to a one-shot `blam-sim run` of the same config —
/// the live tail sink must leave no trace in the persisted result.
#[test]
fn campaign_results_are_byte_identical_to_one_shot_runs() {
    let dir = scratch("parity");
    let spec = tiny_spec("parity");
    let outcome = run_campaign(&spec, &dir, 2, &|| true).expect("campaign runs");
    assert_eq!(outcome.ran, 2);
    assert!(outcome.manifest.complete());

    let spool = Spool::create(&dir).expect("spool reopens");
    for job in spec.expand().expect("spec expands") {
        let spooled = spool
            .read_result(&job.id)
            .expect("result readable")
            .expect("result present");
        assert_eq!(
            spooled,
            one_shot_bytes(&job.config),
            "job {} ({}) diverged from its one-shot run",
            job.id,
            job.label
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill-and-resume: a campaign stopped after its first job, restarted
/// on the same spool, must skip the finished job and end with a spool
/// (manifest and results) byte-identical to an uninterrupted run.
#[test]
fn interrupted_campaign_resumes_to_an_identical_spool() {
    let uninterrupted = scratch("resume-a");
    let interrupted = scratch("resume-b");
    let spec = tiny_spec("resume");
    let jobs = spec.expand().expect("spec expands");
    let first_id = jobs[0].id.clone();

    run_campaign(&spec, &uninterrupted, 1, &|| true).expect("reference campaign");

    // "Kill" the first campaign the moment job 0's result hits the
    // spool: the stop signal arrives mid-campaign, exactly like a
    // daemon death between checkpoints.
    let probe = Spool::create(&interrupted).expect("spool created");
    let stop_after_first = || !probe.has_result(&first_id);
    let partial =
        run_campaign(&spec, &interrupted, 1, &stop_after_first).expect("partial campaign");
    assert!(partial.stopped_early, "the stop signal must be observed");
    assert_eq!(partial.ran, 1, "exactly the first job completes");

    // Restart on the same spool: the finished job is skipped by
    // content hash, the rest run to completion.
    let resumed = run_campaign(&spec, &interrupted, 1, &|| true).expect("resumed campaign");
    assert_eq!(resumed.skipped, 1, "the checkpointed job is not re-run");
    assert_eq!(resumed.ran, jobs.len() - 1);
    assert!(resumed.manifest.complete());

    let read = |dir: &PathBuf, name: &str| {
        std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("{name}: {e}"))
    };
    assert_eq!(
        read(&uninterrupted, "manifest.json"),
        read(&interrupted, "manifest.json"),
        "resumed manifest must be byte-identical to the uninterrupted one"
    );
    for job in &jobs {
        let rel = format!("results/{}.json", job.id);
        assert_eq!(
            read(&uninterrupted, &rel),
            read(&interrupted, &rel),
            "job {} bytes diverged across the resume",
            job.label
        );
    }
    let _ = std::fs::remove_dir_all(&uninterrupted);
    let _ = std::fs::remove_dir_all(&interrupted);
}

/// Mid-run crash: the stop signal lands while the only job is *inside*
/// the engine, past its first dissemination-epoch barrier. The spool
/// must then hold an engine snapshot, and the resumed campaign must
/// finish the job from that snapshot — with the result, the manifest
/// and the one-shot bytes all identical to an uninterrupted campaign.
#[test]
fn job_killed_mid_run_resumes_from_its_snapshot() {
    let uninterrupted = scratch("midrun-ref");
    let interrupted = scratch("midrun");
    let mut cfg = tiny_cfg(3);
    // Four 6-hour epochs inside the 1-day horizon: room to die mid-run.
    cfg.dissemination_interval = Duration::from_hours(6);
    let spec = CampaignSpec {
        name: "midrun".to_string(),
        base: serde_json::to_value(&cfg).expect("base serializes"),
        axes: Vec::new(),
        seeds: vec![21],
    };
    let job_id = spec.expand().expect("spec expands")[0].id.clone();
    run_campaign(&spec, &uninterrupted, 1, &|| true).expect("reference campaign");

    // Poll budget 2: one poll in the worker loop (claim), one at the
    // engine's loop head (runs epoch 1, snapshots), then the third
    // poll kills the run mid-flight with three epochs still to go.
    use std::sync::atomic::{AtomicU64, Ordering};
    let polls = AtomicU64::new(0);
    let die_mid_run = || polls.fetch_add(1, Ordering::Relaxed) < 2;
    let partial = run_campaign(&spec, &interrupted, 1, &die_mid_run).expect("partial campaign");
    assert!(partial.stopped_early);
    assert_eq!(partial.ran, 0, "the killed job produced no result");
    let spool = Spool::create(&interrupted).expect("spool reopens");
    assert!(
        spool.snapshot_path(&job_id).exists(),
        "a mid-run kill must leave an epoch snapshot behind"
    );

    let resumed = run_campaign(&spec, &interrupted, 1, &|| true).expect("resumed campaign");
    assert_eq!(resumed.ran, 1);
    assert!(resumed.manifest.complete());
    assert!(
        !spool.snapshot_path(&job_id).exists(),
        "the snapshot is deleted once the job completes"
    );
    let spooled = spool
        .read_result(&job_id)
        .expect("result readable")
        .expect("result present");
    assert_eq!(
        spooled,
        one_shot_bytes(&cfg),
        "snapshot-resumed result diverged from the uninterrupted run"
    );
    let read =
        |dir: &PathBuf| std::fs::read_to_string(dir.join("manifest.json")).expect("manifest");
    assert_eq!(read(&uninterrupted), read(&interrupted));
    let _ = std::fs::remove_dir_all(&uninterrupted);
    let _ = std::fs::remove_dir_all(&interrupted);
}

/// Spool integrity end to end: a result damaged on disk after the
/// campaign finished is quarantined to `*.corrupt` and transparently
/// re-run on the next invocation, converging back to the same bytes.
#[test]
fn corrupt_spooled_result_is_quarantined_and_rerun() {
    let dir = scratch("quarantine");
    let spec = tiny_spec("quarantine");
    run_campaign(&spec, &dir, 2, &|| true).expect("campaign runs");
    let spool = Spool::create(&dir).expect("spool reopens");
    let job = &spec.expand().expect("spec expands")[0];
    let clean = spool
        .read_result(&job.id)
        .expect("result readable")
        .expect("result present");

    // Bit rot after the fact: the sidecar checksum no longer matches.
    std::fs::write(spool.result_path(&job.id), "garbage").expect("corrupt the result");
    let outcome = run_campaign(&spec, &dir, 2, &|| true).expect("campaign re-runs");
    assert_eq!(outcome.ran, 1, "exactly the damaged job re-runs");
    assert_eq!(outcome.skipped, 1, "the intact job is still skipped");
    assert!(outcome.manifest.complete());
    assert_eq!(
        spool
            .read_result(&job.id)
            .expect("result readable")
            .expect("result present"),
        clean,
        "the re-run must converge to the original bytes"
    );
    let corrupt = PathBuf::from(format!("{}.corrupt", spool.result_path(&job.id).display()));
    assert!(corrupt.exists(), "the damaged bytes are kept for forensics");
    let _ = std::fs::remove_dir_all(&dir);
}

fn get_json(addr: &str, path: &str) -> serde_json::Value {
    let (status, body) = request(addr, "GET", path, None).expect("GET succeeds");
    assert_eq!(status, 200, "GET {path}: {body}");
    serde_json::from_str(&body).unwrap_or_else(|e| panic!("GET {path}: bad JSON ({e}): {body}"))
}

fn wait_until_done(addr: &str, id: &str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let summary = get_json(addr, &format!("/jobs/{id}"));
        match summary["state"].as_str() {
            Some("done") => return,
            Some("failed") => panic!("job {id} failed: {summary}"),
            _ => {}
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job {id} not done after 60 s: {summary}"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

/// The full serve round trip on one ephemeral-port daemon: health
/// check, campaign submit over HTTP, live NDJSON tail of a running
/// job, per-job results byte-identical to one-shot runs, conflicting
/// resubmit rejected, clean shutdown — then a second daemon on the
/// same spool resumes with every job already done.
#[test]
fn daemon_serves_a_campaign_end_to_end_and_resumes_after_restart() {
    let spool_root = scratch("serve");
    let spec = tiny_spec("served");
    let jobs = spec.expand().expect("spec expands");

    let daemon = Daemon::bind(
        DaemonConfig {
            spool: spool_root.clone(),
            workers: 2,
        },
        "127.0.0.1:0",
    )
    .expect("daemon binds");
    let addr = daemon.local_addr().to_string();

    std::thread::scope(|scope| {
        let server = scope.spawn(|| daemon.run());

        let health = get_json(&addr, "/healthz");
        assert_eq!(health["ok"], serde_json::Value::Bool(true));

        // Submit the campaign over the wire.
        let body = format!(
            "{{\"campaign\":{}}}",
            serde_json::to_string(&spec).expect("spec serializes")
        );
        let (status, reply) =
            request(&addr, "POST", "/jobs", Some(&body)).expect("submit succeeds");
        assert_eq!(status, 202, "submit: {reply}");
        let reply: serde_json::Value = serde_json::from_str(&reply).expect("submit reply JSON");
        assert_eq!(reply["campaign"].as_str(), Some("served"));
        assert_eq!(reply["jobs"].as_array().map(Vec::len), Some(jobs.len()));

        // Live-tail the first job: the stream is NDJSON (every line
        // parses) and terminates when the job finishes.
        let mut lines: Vec<String> = Vec::new();
        let status = tail_ndjson(&addr, &format!("/jobs/{}/tail", jobs[0].id), &mut |line| {
            lines.push(line.to_string())
        })
        .expect("tail succeeds");
        assert_eq!(status, 200);
        assert!(!lines.is_empty(), "the tail must carry telemetry records");
        for line in &lines {
            assert!(
                serde_json::from_str::<serde_json::Value>(line).is_ok(),
                "tail line is not JSON: {line}"
            );
        }

        for job in &jobs {
            wait_until_done(&addr, &job.id);
            let (status, body) = request(&addr, "GET", &format!("/jobs/{}/result", job.id), None)
                .expect("result fetch succeeds");
            assert_eq!(status, 200);
            assert_eq!(
                body,
                one_shot_bytes(&job.config),
                "served job {} diverged from its one-shot run",
                job.label
            );
        }

        // Same name, different spec: a conflict, not a silent overwrite.
        let mut conflicting = spec.clone();
        conflicting.seeds = vec![99];
        let body = format!(
            "{{\"campaign\":{}}}",
            serde_json::to_string(&conflicting).expect("spec serializes")
        );
        let (status, reply) =
            request(&addr, "POST", "/jobs", Some(&body)).expect("conflict request succeeds");
        assert_eq!(status, 409, "conflicting resubmit must be refused: {reply}");

        // Unknown job: a clean 404.
        let (status, _) =
            request(&addr, "GET", "/jobs/deadbeef", None).expect("404 request succeeds");
        assert_eq!(status, 404);

        let (status, _) = request(&addr, "POST", "/shutdown", None).expect("shutdown succeeds");
        assert_eq!(status, 200);
        server
            .join()
            .expect("server thread joins")
            .expect("serve exits cleanly");
    });

    // A new daemon on the same spool resumes the checkpointed
    // campaign: every job comes back `done` without re-running.
    let daemon = Daemon::bind(
        DaemonConfig {
            spool: spool_root.clone(),
            workers: 1,
        },
        "127.0.0.1:0",
    )
    .expect("second daemon binds");
    let addr = daemon.local_addr().to_string();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| daemon.run());
        for job in &jobs {
            let summary = get_json(&addr, &format!("/jobs/{}", job.id));
            assert_eq!(
                summary["state"].as_str(),
                Some("done"),
                "restarted daemon must resume job {} as done: {summary}",
                job.label
            );
        }
        let (status, _) = request(&addr, "POST", "/shutdown", None).expect("shutdown succeeds");
        assert_eq!(status, 200);
        server
            .join()
            .expect("server thread joins")
            .expect("serve exits cleanly");
    });
    let _ = std::fs::remove_dir_all(&spool_root);
}

/// An ad hoc scenario submit (the `{"scenario": …}` body shape) runs
/// and lands in the daemon's adhoc spool; malformed submits get 400s.
#[test]
fn daemon_accepts_adhoc_scenarios_and_rejects_malformed_submits() {
    let spool_root = scratch("adhoc");
    let daemon = Daemon::bind(
        DaemonConfig {
            spool: spool_root.clone(),
            workers: 1,
        },
        "127.0.0.1:0",
    )
    .expect("daemon binds");
    let addr = daemon.local_addr().to_string();

    std::thread::scope(|scope| {
        let server = scope.spawn(|| daemon.run());

        let cfg = tiny_cfg(5);
        let body = format!(
            "{{\"scenario\":{}}}",
            serde_json::to_string(&cfg).expect("config serializes")
        );
        let (status, reply) =
            request(&addr, "POST", "/jobs", Some(&body)).expect("submit succeeds");
        assert_eq!(status, 202, "adhoc submit: {reply}");
        let reply: serde_json::Value = serde_json::from_str(&reply).expect("reply JSON");
        let id = reply["id"].as_str().expect("job id").to_string();
        wait_until_done(&addr, &id);
        let (status, body) = request(&addr, "GET", &format!("/jobs/{id}/result"), None)
            .expect("result fetch succeeds");
        assert_eq!(status, 200);
        assert_eq!(body, one_shot_bytes(&cfg));

        // Neither a scenario nor a campaign: 400.
        let (status, _) = request(&addr, "POST", "/jobs", Some("{}")).expect("request succeeds");
        assert_eq!(status, 400);
        // Unparseable JSON: 400.
        let (status, _) =
            request(&addr, "POST", "/jobs", Some("not json")).expect("request succeeds");
        assert_eq!(status, 400);
        // An invalid scenario (missing fields / failed validation): 400.
        let (status, reply) = request(&addr, "POST", "/jobs", Some("{\"scenario\":{\"nodes\":0}}"))
            .expect("request succeeds");
        assert_eq!(status, 400, "invalid scenario must 400: {reply}");

        let (status, _) = request(&addr, "POST", "/shutdown", None).expect("shutdown succeeds");
        assert_eq!(status, 200);
        server
            .join()
            .expect("server thread joins")
            .expect("serve exits cleanly");
    });
    let _ = std::fs::remove_dir_all(&spool_root);
}
