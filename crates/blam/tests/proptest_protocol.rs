//! Property-based tests for the protocol core: Algorithm 1, the DIF,
//! utility curves and the estimators.

use blam::select::{objectives, select_window, SelectInput, SelectOutcome};
use blam::utility::Utility;
use blam::{degradation_impact_factor, RetxEstimator, TxEnergyEstimator};
use blam_units::Joules;
use proptest::prelude::*;

fn energy_vec(len: core::ops::Range<usize>) -> impl Strategy<Value = Vec<Joules>> {
    prop::collection::vec((0.0f64..0.2).prop_map(Joules), len)
}

fn any_utility() -> impl Strategy<Value = Utility> {
    prop_oneof![
        Just(Utility::Linear),
        (0.1f64..5.0).prop_map(|rate| Utility::Exponential { rate }),
        (0usize..8).prop_map(|p| Utility::Plateau { plateau_windows: p }),
    ]
}

proptest! {
    /// DIF is always in [0, 1], zero when green covers the estimate,
    /// and monotone in both arguments.
    #[test]
    fn dif_bounds_and_monotonicity(e_tx in 0.0f64..1.0, green in 0.0f64..1.0) {
        let e_max = Joules(0.5);
        let d = degradation_impact_factor(Joules(e_tx), Joules(green), e_max);
        prop_assert!((0.0..=1.0).contains(&d));
        if green >= e_tx {
            prop_assert_eq!(d, 0.0);
        }
        let d_more_green = degradation_impact_factor(Joules(e_tx), Joules(green + 0.1), e_max);
        prop_assert!(d_more_green <= d);
        let d_more_tx = degradation_impact_factor(Joules(e_tx + 0.1), Joules(green), e_max);
        prop_assert!(d_more_tx >= d);
    }

    /// Every utility curve starts at 1, stays within [0, 1] and never
    /// increases along the period.
    #[test]
    fn utility_curves_well_formed(u in any_utility(), total in 1usize..64) {
        let vals = u.over_period(total);
        prop_assert!((vals[0] - 1.0).abs() < 1e-12);
        for w in vals.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
        prop_assert!(vals.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    /// Algorithm 1 invariants: a selected window is energy-feasible and
    /// carries the minimal objective among all feasible windows; FAIL
    /// occurs exactly when no window is feasible.
    #[test]
    fn algorithm1_optimality(
        green in energy_vec(1..24),
        battery in 0.0f64..0.5,
        w_u in 0.0f64..=1.0,
        w_b in 0.0f64..=1.0,
        u in any_utility(),
    ) {
        let tx = vec![Joules(0.054); green.len()];
        let input = SelectInput {
            battery_energy: Joules(battery),
            normalized_degradation: w_u,
            degradation_weight: w_b,
            green_energy: &green,
            tx_energy: &tx,
            max_tx_energy: Joules(0.15),
            utility: &u,
        };
        let gammas = objectives(&input);
        // Cumulative energy through each window.
        let mut cumulative = Vec::new();
        let mut acc = battery;
        for g in &green {
            acc += g.0;
            cumulative.push(acc);
        }
        let feasible: Vec<usize> = (0..green.len())
            .filter(|&t| cumulative[t] - tx[t].0 >= 0.0)
            .collect();

        match select_window(&input) {
            SelectOutcome::Selected { window, objective } => {
                prop_assert!(feasible.contains(&window), "selected infeasible window");
                prop_assert!((objective - gammas[window]).abs() < 1e-12);
                for &t in &feasible {
                    prop_assert!(
                        gammas[window] <= gammas[t] + 1e-12,
                        "window {window} (γ {}) beaten by {t} (γ {})",
                        gammas[window],
                        gammas[t]
                    );
                }
            }
            SelectOutcome::Fail => prop_assert!(feasible.is_empty()),
        }
    }

    /// More green energy can never flip a Selected outcome to Fail.
    #[test]
    fn more_green_never_hurts_feasibility(
        green in energy_vec(1..16),
        battery in 0.0f64..0.2,
    ) {
        let tx = vec![Joules(0.054); green.len()];
        let make = |g: &[Joules]| select_window(&SelectInput {
            battery_energy: Joules(battery),
            normalized_degradation: 0.5,
            degradation_weight: 1.0,
            green_energy: g,
            tx_energy: &tx,
            max_tx_energy: Joules(0.15),
            utility: &Utility::Linear,
        });
        let before = make(&green);
        let boosted: Vec<Joules> = green.iter().map(|g| *g + Joules(0.1)).collect();
        let after = make(&boosted);
        if before.window().is_some() {
            prop_assert!(after.window().is_some());
        }
    }

    /// The Eq. (14) CDF is monotone in r and reaches 1 at the cap, for
    /// any observation pattern.
    #[test]
    fn retx_cdf_monotone(observations in prop::collection::vec((0usize..4, 0usize..10), 0..64)) {
        let mut est = RetxEstimator::new(4, 8);
        for &(t, r) in &observations {
            est.record(t, r);
        }
        for t in 0..4 {
            let mut last = 0.0;
            for r in 0..=8 {
                let p = est.cumulative_probability(r, t);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
                prop_assert!(p >= last - 1e-12);
                last = p;
            }
            prop_assert!((est.cumulative_probability(8, t) - 1.0).abs() < 1e-12);
            prop_assert!(est.expected_attempts(t) >= 1.0);
            prop_assert!(est.expected_attempts(t) <= 9.0);
        }
    }

    /// The EWMA energy estimate stays within the envelope of its initial
    /// value and all observations.
    #[test]
    fn tx_estimator_envelope(
        initial in 0.001f64..0.2,
        beta in 0.0f64..=1.0,
        obs in prop::collection::vec(0.0f64..0.5, 1..50),
    ) {
        let mut est = TxEnergyEstimator::new(beta, Joules(initial));
        let mut lo = initial;
        let mut hi = initial;
        for &o in &obs {
            est.observe(Joules(o));
            lo = lo.min(o);
            hi = hi.max(o);
            prop_assert!(est.estimate().0 >= lo - 1e-12);
            prop_assert!(est.estimate().0 <= hi + 1e-12);
        }
    }
}
