//! The node-side protocol state machine.
//!
//! [`BlamNode`] owns everything a node keeps between sampling periods —
//! the transmission-energy EWMA, the per-window retransmission
//! statistics, and the last normalized degradation received from the
//! gateway — and exposes the per-period planning step the simulator (or
//! a real MAC layer) invokes when a packet is generated.

use blam_units::Joules;
use serde::{Deserialize, Serialize};

use crate::config::BlamConfig;
use crate::dif::degradation_impact_factor;
use crate::dissemination::dequantize_weight;
use crate::estimator::{RetxEstimator, TxEnergyEstimator};
use crate::select::{select_window, SelectInput, SelectOutcome};

/// The decision for the current sampling period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedTransmission {
    /// The forecast window to transmit in.
    pub window: usize,
    /// The objective value γ of the chosen window.
    pub objective: f64,
    /// Utility lost by deferring to this window, `1 − U(window)`
    /// (0 when transmitting immediately or with selection disabled).
    pub utility_loss: f64,
    /// Degradation impact factor of the chosen window (Eq. 15).
    pub dif: f64,
}

/// Per-node BLAM protocol state.
///
/// # Examples
///
/// ```
/// use blam::{BlamConfig, BlamNode};
/// use blam_units::Joules;
///
/// let mut node = BlamNode::new(BlamConfig::h(0.5), Joules(0.04), Joules(0.08), 10);
/// // New battery, plenty of charge, dark period: transmit immediately
/// // (w_u = 0 means utility dominates).
/// let plan = node.plan(Joules(1.0), &[Joules(0.0); 10]).unwrap();
/// assert_eq!(plan.window, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlamNode {
    config: BlamConfig,
    tx_estimator: TxEnergyEstimator,
    retx_estimator: RetxEstimator,
    /// Last disseminated normalized degradation `w_u`.
    normalized_degradation: f64,
    /// Trust in the stored `w_u`, in `[0, 1]`. 1 while the weight is
    /// fresh; the policy layer decays it once the weight outlives its
    /// TTL, pulling planning back toward the neutral (new-battery)
    /// weight instead of trusting a stale fleet view forever.
    #[serde(default = "full_trust")]
    weight_trust: f64,
    /// Worst-case single-transmission energy (DIF denominator).
    max_tx_energy: Joules,
}

fn full_trust() -> f64 {
    1.0
}

impl BlamNode {
    /// Creates the protocol state for a node whose nominal
    /// single-transmission energy is `nominal_tx_energy` and whose
    /// sampling period spans `windows` forecast windows.
    ///
    /// A node joining with an unused battery starts at `w_u = 0` and
    /// needs no gateway communication before its first period (§III-B,
    /// "Network dynamics").
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero or energies are non-positive.
    #[must_use]
    pub fn new(
        config: BlamConfig,
        nominal_tx_energy: Joules,
        max_tx_energy: Joules,
        windows: usize,
    ) -> Self {
        assert!(windows > 0, "need at least one forecast window");
        assert!(
            nominal_tx_energy.0 > 0.0,
            "nominal TX energy must be positive"
        );
        assert!(max_tx_energy.0 > 0.0, "max TX energy must be positive");
        let beta = config.ewma_beta;
        BlamNode {
            config,
            tx_estimator: TxEnergyEstimator::new(beta, nominal_tx_energy),
            retx_estimator: RetxEstimator::new(windows, 7),
            normalized_degradation: 0.0,
            weight_trust: 1.0,
            max_tx_energy,
        }
    }

    /// The protocol configuration.
    #[must_use]
    pub fn config(&self) -> &BlamConfig {
        &self.config
    }

    /// The current normalized degradation `w_u`.
    #[must_use]
    pub fn normalized_degradation(&self) -> f64 {
        self.normalized_degradation
    }

    /// The `w_u` actually used for planning: the stored weight scaled
    /// by the current trust. Equal to `normalized_degradation` while
    /// the weight is fresh.
    #[must_use]
    pub fn effective_degradation(&self) -> f64 {
        self.normalized_degradation * self.weight_trust
    }

    /// Current trust in the stored `w_u`.
    #[must_use]
    pub fn weight_trust(&self) -> f64 {
        self.weight_trust
    }

    /// Sets the trust in the stored `w_u` (clamped to `[0, 1]`). The
    /// policy layer drives this from the weight's age and TTL.
    pub fn set_weight_trust(&mut self, trust: f64) {
        self.weight_trust = trust.clamp(0.0, 1.0);
    }

    /// Forgets the disseminated weight entirely (e.g. after a reboot
    /// wipes volatile state): `w_u` returns to the new-battery neutral
    /// 0 and trust resets to full.
    pub fn clear_weight(&mut self) {
        self.normalized_degradation = 0.0;
        self.weight_trust = 1.0;
    }

    /// The current per-single-transmission energy estimate.
    #[must_use]
    pub fn tx_energy_estimate(&self) -> Joules {
        self.tx_estimator.estimate()
    }

    /// Read access to the retransmission estimator.
    #[must_use]
    pub fn retx_estimator(&self) -> &RetxEstimator {
        &self.retx_estimator
    }

    /// The per-window exchange-energy estimates `ê_tx[t]`: the EWMA
    /// single-transmission estimate scaled by the expected attempts in
    /// each window (Eq. 13 × Eq. 14).
    #[must_use]
    pub fn per_window_energy(&mut self, windows: usize) -> Vec<Joules> {
        let mut out = Vec::new();
        self.per_window_energy_into(windows, &mut out);
        out
    }

    /// Allocation-free variant of
    /// [`per_window_energy`](Self::per_window_energy): fills `out`
    /// (cleared first) so a caller planning every sampling period can
    /// reuse one scratch buffer instead of allocating |T| entries per
    /// plan. Produces the same values in the same order.
    pub fn per_window_energy_into(&mut self, windows: usize, out: &mut Vec<Joules>) {
        out.clear();
        out.resize(windows, Joules(0.0));
        self.per_window_energy_into_slice(out);
    }

    /// Slice variant of
    /// [`per_window_energy_into`](Self::per_window_energy_into): fills
    /// `out` in place, with `out.len()` defining |T|. Lets callers that
    /// keep one flat scratch matrix for many nodes (the simulator's
    /// struct-of-arrays node store) plan without any `Vec` per node.
    /// Produces the same values in the same order as the `Vec` variant.
    pub fn per_window_energy_into_slice(&mut self, out: &mut [Joules]) {
        self.retx_estimator.ensure_windows(out.len());
        let single = self.tx_estimator.estimate();
        for (t, slot) in out.iter_mut().enumerate() {
            let attempts = if self.config.use_retx_estimator {
                self.retx_estimator.expected_attempts(t)
            } else {
                1.0
            };
            *slot = single * attempts;
        }
    }

    /// Plans this period's transmission: runs Algorithm 1 over the
    /// green-energy forecast (whose length defines |T|). Returns `None`
    /// when no window can sustain the transmission (the packet is
    /// dropped) — Algorithm 1's FAIL branch.
    ///
    /// With window selection disabled (H-50C), always returns window 0:
    /// the node behaves like LoRaWAN in time while keeping the θ cap.
    #[must_use]
    pub fn plan(
        &mut self,
        battery_energy: Joules,
        green_forecast: &[Joules],
    ) -> Option<PlannedTransmission> {
        let mut scratch = Vec::new();
        self.plan_with_scratch(battery_energy, green_forecast, &mut scratch)
    }

    /// [`plan`](Self::plan) with a caller-owned scratch buffer for the
    /// per-window energy estimates. The simulator calls this once per
    /// node per sampling period; reusing `scratch` keeps Eq. (14) off
    /// the allocator in the hot path. Identical decisions to `plan`.
    #[must_use]
    pub fn plan_with_scratch(
        &mut self,
        battery_energy: Joules,
        green_forecast: &[Joules],
        scratch: &mut Vec<Joules>,
    ) -> Option<PlannedTransmission> {
        scratch.clear();
        scratch.resize(green_forecast.len(), Joules(0.0));
        self.plan_into(battery_energy, green_forecast, scratch)
    }

    /// [`plan_with_scratch`](Self::plan_with_scratch) over a
    /// caller-sized scratch slice (`scratch.len()` must equal
    /// `green_forecast.len()`). This is the entry point for callers
    /// whose scratch lives in a flat per-network matrix rather than a
    /// per-node `Vec`. Identical decisions to `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `scratch.len() != green_forecast.len()` and window
    /// selection is enabled.
    #[must_use]
    pub fn plan_into(
        &mut self,
        battery_energy: Joules,
        green_forecast: &[Joules],
        scratch: &mut [Joules],
    ) -> Option<PlannedTransmission> {
        if !self.config.use_window_selection {
            // Diagnostics only — per_window_energy would mutate the
            // retransmission estimator, so use the raw EWMA estimate.
            let dif = degradation_impact_factor(
                self.tx_estimator.estimate(),
                green_forecast.first().copied().unwrap_or(Joules(0.0)),
                self.max_tx_energy,
            );
            return Some(PlannedTransmission {
                window: 0,
                objective: 0.0,
                utility_loss: 0.0,
                dif,
            });
        }
        assert_eq!(
            scratch.len(),
            green_forecast.len(),
            "scratch must cover every forecast window"
        );
        self.per_window_energy_into_slice(scratch);
        let input = SelectInput {
            battery_energy,
            normalized_degradation: self.normalized_degradation * self.weight_trust,
            degradation_weight: self.config.degradation_weight,
            green_energy: green_forecast,
            tx_energy: scratch,
            max_tx_energy: self.max_tx_energy,
            utility: &self.config.utility,
        };
        match select_window(&input) {
            SelectOutcome::Selected { window, objective } => Some(PlannedTransmission {
                window,
                objective,
                utility_loss: 1.0 - self.config.utility.at(window, green_forecast.len()),
                dif: degradation_impact_factor(
                    scratch[window],
                    green_forecast[window],
                    self.max_tx_energy,
                ),
            }),
            SelectOutcome::Fail => None,
        }
    }

    /// Feeds back the outcome of the period's exchange: the window it
    /// ran in, the transmissions used (≥ 1), and the total radio energy
    /// spent. Updates both estimators.
    ///
    /// # Panics
    ///
    /// Panics if `transmissions` is zero.
    pub fn on_exchange_complete(&mut self, window: usize, transmissions: u8, energy_spent: Joules) {
        assert!(
            transmissions >= 1,
            "an exchange uses at least one transmission"
        );
        self.retx_estimator.ensure_windows(window + 1);
        self.retx_estimator
            .record(window, usize::from(transmissions - 1));
        // Eq. (13) tracks per-transmission energy; retransmission count
        // is modeled separately by Eq. (14), so normalize here.
        self.tx_estimator
            .observe(energy_spent / f64::from(transmissions));
    }

    /// Applies a normalized-degradation byte received in an ACK. A
    /// fresh weight is fully trusted again.
    pub fn on_weight_update(&mut self, byte: u8) {
        self.normalized_degradation = dequantize_weight(byte);
        self.weight_trust = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(theta: f64) -> BlamNode {
        BlamNode::new(BlamConfig::h(theta), Joules(0.04), Joules(0.08), 10)
    }

    #[test]
    fn fresh_node_transmits_immediately() {
        let mut n = node(0.5);
        let plan = n.plan(Joules(1.0), &[Joules(0.0); 10]).unwrap();
        assert_eq!(plan.window, 0);
    }

    #[test]
    fn degraded_node_chases_green_energy() {
        let mut n = node(0.5);
        n.on_weight_update(255);
        assert!((n.normalized_degradation() - 1.0).abs() < 1e-12);
        let mut green = [Joules(0.0); 10];
        green[3] = Joules(0.06);
        let plan = n.plan(Joules(1.0), &green).unwrap();
        // Waiting 3 windows costs 0.3 utility, less than the DIF saving
        // of 0.5 — so the degraded node defers to the sun. (Sun much
        // later than window 5 would NOT be worth the utility loss.)
        assert_eq!(plan.window, 3);
    }

    #[test]
    fn plan_reports_dif_and_utility_loss() {
        let mut n = node(0.5);
        n.on_weight_update(255);
        let mut green = [Joules(0.0); 10];
        green[3] = Joules(0.06);
        let plan = n.plan(Joules(1.0), &green).unwrap();
        assert_eq!(plan.window, 3);
        // Linear utility: deferring 3 of 10 windows loses 0.3.
        assert!(
            (plan.utility_loss - 0.3).abs() < 1e-9,
            "utility_loss {}",
            plan.utility_loss
        );
        // Immediate transmission loses no utility; in the dark it
        // carries a higher DIF than the sunlit deferral.
        let mut fresh = node(0.5);
        let p = fresh.plan(Joules(1.0), &[Joules(0.0); 10]).unwrap();
        assert_eq!(p.window, 0);
        assert_eq!(p.utility_loss, 0.0);
        assert!(
            p.dif > plan.dif,
            "dark immediate window degrades more: {} vs {}",
            p.dif,
            plan.dif
        );
    }

    #[test]
    fn decayed_trust_pulls_planning_back_to_neutral() {
        // Fully degraded fleet view, but the weight has gone stale:
        // with zero trust the node plans exactly like a fresh one.
        let mut stale = node(0.5);
        stale.on_weight_update(255);
        stale.set_weight_trust(0.0);
        assert_eq!(stale.effective_degradation(), 0.0);
        let mut green = [Joules(0.0); 10];
        green[3] = Joules(0.06);
        let plan = stale.plan(Joules(1.0), &green).unwrap();
        assert_eq!(plan.window, 0, "neutral weight transmits immediately");
        // Partial trust still defers — the decay is gradual, not a
        // cliff: γ(0) = 0.7·DIF(0) = 0.35 beats γ(3) = 0.3.
        let mut half = node(0.5);
        half.on_weight_update(255);
        half.set_weight_trust(0.7);
        assert_eq!(half.plan(Joules(1.0), &green).unwrap().window, 3);
    }

    #[test]
    fn fresh_weight_restores_full_trust() {
        let mut n = node(0.5);
        n.on_weight_update(255);
        n.set_weight_trust(0.2);
        n.on_weight_update(128);
        assert_eq!(n.weight_trust(), 1.0);
        assert!((n.effective_degradation() - 128.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn clear_weight_resets_to_new_battery_state() {
        let mut n = node(0.5);
        n.on_weight_update(255);
        n.set_weight_trust(0.4);
        n.clear_weight();
        assert_eq!(n.normalized_degradation(), 0.0);
        assert_eq!(n.weight_trust(), 1.0);
        let fresh = node(0.5);
        assert_eq!(n.effective_degradation(), fresh.effective_degradation());
    }

    #[test]
    fn empty_battery_dark_period_drops() {
        let mut n = node(0.5);
        assert!(n.plan(Joules(0.0), &[Joules(0.0); 10]).is_none());
    }

    #[test]
    fn h50c_always_window_zero() {
        let mut n = BlamNode::new(BlamConfig::h50c(), Joules(0.04), Joules(0.08), 10);
        n.on_weight_update(255);
        let mut green = [Joules(0.0); 10];
        green[6] = Joules(0.06);
        let plan = n.plan(Joules(0.0), &green).unwrap();
        assert_eq!(plan.window, 0);
    }

    #[test]
    fn crowded_window_estimate_rises_and_steers_away() {
        let mut n = node(0.5);
        n.on_weight_update(255);
        // Window 0 historically needs many retransmissions.
        for _ in 0..5 {
            n.on_exchange_complete(0, 8, Joules(0.32));
        }
        let e = n.per_window_energy(10);
        assert!(e[0].0 > 3.0 * e[1].0, "window 0 {:?} vs 1 {:?}", e[0], e[1]);
        // Both windows sunny enough for a single transmission but not
        // for eight: the node avoids the crowded one.
        let mut green = [Joules(0.0); 10];
        green[0] = Joules(0.05);
        green[1] = Joules(0.05);
        let plan = n.plan(Joules(1.0), &green).unwrap();
        assert_eq!(plan.window, 1);
    }

    #[test]
    fn exchange_feedback_updates_energy_estimate() {
        let mut n = node(0.5);
        let before = n.tx_energy_estimate();
        // One transmission costing 0.08: estimate moves up.
        n.on_exchange_complete(0, 1, Joules(0.08));
        assert!(n.tx_energy_estimate() > before);
        // Per-transmission normalization: 4 transmissions of 0.02 each.
        let mut m = node(0.5);
        m.on_exchange_complete(0, 4, Joules(0.08));
        assert!((m.tx_energy_estimate().0 - (0.5 * 0.04 + 0.5 * 0.02)).abs() < 1e-12);
    }

    #[test]
    fn retx_ablation_disables_scaling() {
        let mut cfg = BlamConfig::h(0.5);
        cfg.use_retx_estimator = false;
        let mut n = BlamNode::new(cfg, Joules(0.04), Joules(0.08), 10);
        for _ in 0..5 {
            n.on_exchange_complete(0, 8, Joules(0.32));
        }
        let e = n.per_window_energy(10);
        // Energy estimate changed, but identically across windows.
        assert!((e[0] - e[9]).0.abs() < 1e-15);
    }

    #[test]
    fn plan_grows_estimator_for_longer_periods() {
        let mut n = node(0.5);
        // A 60-window period (the paper's longest) after starting at 10.
        let plan = n.plan(Joules(1.0), &[Joules(0.0); 60]);
        assert!(plan.is_some());
        n.on_exchange_complete(59, 1, Joules(0.04));
        assert!(n.retx_estimator().windows() >= 60);
    }

    #[test]
    #[should_panic(expected = "at least one transmission")]
    fn zero_transmissions_rejected() {
        let mut n = node(0.5);
        n.on_exchange_complete(0, 0, Joules(0.0));
    }

    #[test]
    fn plan_with_scratch_matches_plan_exactly() {
        // The allocation-free path must make bit-identical decisions,
        // including across estimator-state evolution and the FAIL
        // branch, while reusing one buffer.
        let mut a = node(0.5);
        let mut b = node(0.5);
        a.on_weight_update(200);
        b.on_weight_update(200);
        let mut scratch = Vec::new();
        let mut sunny = [Joules(0.0); 10];
        sunny[4] = Joules(0.07);
        let dark = [Joules(0.0); 10];
        let long = [Joules(0.01); 60];
        let forecasts: [&[Joules]; 4] = [&dark, &sunny, &long, &dark];
        for (i, green) in forecasts.iter().enumerate() {
            let battery = if i == 3 { Joules(0.0) } else { Joules(1.0) };
            let via_plan = a.plan(battery, green);
            let via_scratch = b.plan_with_scratch(battery, green, &mut scratch);
            assert_eq!(via_plan, via_scratch, "forecast {i}");
            if let Some(p) = via_plan {
                a.on_exchange_complete(p.window, 2, Joules(0.09));
                b.on_exchange_complete(p.window, 2, Joules(0.09));
            }
            assert_eq!(a, b, "estimator state diverged after forecast {i}");
        }
    }

    #[test]
    fn per_window_energy_into_reuses_capacity() {
        let mut n = node(0.5);
        let mut buf = Vec::new();
        n.per_window_energy_into(60, &mut buf);
        assert_eq!(buf.len(), 60);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        n.per_window_energy_into(10, &mut buf);
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.capacity(), cap, "refill must not reallocate");
        assert_eq!(buf.as_ptr(), ptr);
        assert_eq!(buf, n.per_window_energy(10));
    }
}
