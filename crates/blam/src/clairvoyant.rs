//! The centralized clairvoyant formulation of §III-A.
//!
//! The paper first formulates battery-lifespan maximization as a
//! bi-objective mixed-integer program over a TDMA schedule, solved by a
//! clairvoyant network manager that knows every node's green-energy
//! future — then discards it as impractical (synchronization cost,
//! computational weight, information collection) in favour of the
//! on-sensor heuristic. The formulation still matters as the reference
//! optimum: this module implements it for small instances via weighted
//! -sum scalarization with
//!
//! * [`ClairvoyantProblem::solve_exhaustive`] — exact enumeration of
//!   all slot assignments (tiny instances), and
//! * [`ClairvoyantProblem::solve_hill_climb`] — random-restart local
//!   search for instances beyond enumeration.
//!
//! The `clairvoyant_gap` experiment compares Algorithm 1 against these
//! solutions.

use blam_battery::degradation::DegradationTracker;
use blam_units::{Celsius, Duration, Joules, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One node of the clairvoyant problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClairvoyantNode {
    /// Sampling period in slots (τ_u); one packet per period.
    pub period_slots: usize,
    /// Energy of one packet transmission (`E_tx`).
    pub tx_energy: Joules,
    /// Energy consumed per slot while sleeping (`E_sleep`).
    pub sleep_energy: Joules,
    /// Clairvoyant per-slot green-energy generation (`E_g[t]`),
    /// length ≥ the horizon.
    pub green: Vec<Joules>,
    /// Battery capacity.
    pub battery_capacity: Joules,
    /// Initial state of charge.
    pub initial_soc: f64,
    /// Maximum SoC the schedule may charge to (θ; 1.0 reproduces the
    /// unconstrained `y` upper bound).
    pub theta: f64,
}

/// The clairvoyant TDMA problem over a horizon of ρ slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClairvoyantProblem {
    /// Horizon ρ in slots.
    pub slots: usize,
    /// Wall-clock length of one slot.
    pub slot_length: Duration,
    /// Maximum simultaneous receptions at the gateway (ω).
    pub omega: usize,
    /// The nodes.
    pub nodes: Vec<ClairvoyantNode>,
    /// Battery temperature.
    pub temperature: Celsius,
}

/// A complete schedule: for each node, the chosen transmission offset
/// (slot within the period) for each of its periods.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment(pub Vec<Vec<usize>>);

/// Objective values of one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Objective (8): the maximum battery degradation across nodes.
    pub max_degradation: f64,
    /// The minimum (over nodes) average packet utility — objective (9)
    /// is `max_u (1 − μ_u)`, i.e. `1 − min_utility`.
    pub min_utility: f64,
    /// All constraints hold: one transmission per period (structural),
    /// ≤ ω transmissions per slot (11), battery within bounds and able
    /// to fund every scheduled transmission (12)/(20).
    pub feasible: bool,
}

impl Evaluation {
    /// Weighted-sum scalarization: `λ·(max_deg / deg_scale) +
    /// (1−λ)·(1 − min_utility)`. `deg_scale` normalizes degradation
    /// into a unit comparable with utility.
    #[must_use]
    pub fn scalarized(&self, lambda: f64, deg_scale: f64) -> f64 {
        if !self.feasible {
            return f64::INFINITY;
        }
        lambda * (self.max_degradation / deg_scale.max(1e-300))
            + (1.0 - lambda) * (1.0 - self.min_utility)
    }
}

impl ClairvoyantProblem {
    /// Number of whole periods node `u` fits in the horizon.
    #[must_use]
    pub fn periods_of(&self, u: usize) -> usize {
        self.slots / self.nodes[u].period_slots
    }

    /// The all-zero (LoRaWAN-like, transmit-immediately) assignment.
    #[must_use]
    pub fn immediate_assignment(&self) -> Assignment {
        Assignment(
            (0..self.nodes.len())
                .map(|u| vec![0; self.periods_of(u)])
                .collect(),
        )
    }

    /// Evaluates a schedule against objectives (8)–(9) and constraints
    /// (10)–(12).
    ///
    /// # Panics
    ///
    /// Panics if the assignment shape does not match the problem.
    #[must_use]
    pub fn evaluate(&self, assignment: &Assignment) -> Evaluation {
        assert_eq!(assignment.0.len(), self.nodes.len(), "assignment shape");
        let mut feasible = true;

        // Constraint (11): ≤ ω transmissions per slot.
        let mut per_slot = vec![0usize; self.slots];
        for (u, offsets) in assignment.0.iter().enumerate() {
            let tau = self.nodes[u].period_slots;
            assert_eq!(offsets.len(), self.periods_of(u), "assignment shape");
            for (p, &off) in offsets.iter().enumerate() {
                assert!(off < tau, "offset {off} outside period of {tau}");
                per_slot[p * tau + off] += 1;
            }
        }
        if per_slot.iter().any(|&n| n > self.omega) {
            feasible = false;
        }

        let mut max_degradation: f64 = 0.0;
        let mut min_utility: f64 = 1.0;
        for (u, node) in self.nodes.iter().enumerate() {
            let offsets = &assignment.0[u];
            let tau = node.period_slots;
            let mut tracker = DegradationTracker::new(self.temperature);
            let mut stored = node.battery_capacity * node.initial_soc;
            tracker.record(SimTime::ZERO, node.initial_soc);
            let cap = node.battery_capacity * node.theta;

            let mut utility_sum = 0.0;
            for t in 0..self.slots {
                let period = t / tau;
                let offset = t % tau;
                let transmit = offsets.get(period).is_some_and(|&o| o == offset);
                let demand = if transmit {
                    node.tx_energy
                } else {
                    node.sleep_energy
                };
                let green = node.green.get(t).copied().unwrap_or(Joules::ZERO);
                // Eq. (20): the slot's budget must fund the demand.
                if (stored + green).0 + 1e-15 < demand.0 {
                    feasible = false;
                }
                // Eq. (5) with the θ cap of Eq. (21).
                stored = (stored + green - demand).clamp(Joules::ZERO, cap);
                let at = SimTime::ZERO + self.slot_length * (t as u64 + 1);
                tracker.record(at, stored / node.battery_capacity);
                if transmit {
                    utility_sum += (tau - offset) as f64 / tau as f64;
                }
            }
            let horizon = SimTime::ZERO + self.slot_length * self.slots as u64;
            max_degradation = max_degradation.max(tracker.degradation(horizon));
            let packets = offsets.len().max(1);
            min_utility = min_utility.min(utility_sum / packets as f64);
        }

        Evaluation {
            max_degradation,
            min_utility,
            feasible,
        }
    }

    /// Total number of candidate schedules.
    #[must_use]
    pub fn search_space(&self) -> u128 {
        let mut total: u128 = 1;
        for (u, node) in self.nodes.iter().enumerate() {
            for _ in 0..self.periods_of(u) {
                total = total.saturating_mul(node.period_slots as u128);
            }
        }
        total
    }

    /// Exhaustively enumerates all schedules and returns the feasible
    /// one minimizing the λ-scalarized objective (degradation
    /// normalized by the worst degradation observed across candidates).
    ///
    /// Returns `None` if no feasible schedule exists.
    ///
    /// # Panics
    ///
    /// Panics if the search space exceeds `limit` (guard against
    /// accidentally enumerating forever).
    #[must_use]
    pub fn solve_exhaustive(&self, lambda: f64, limit: u128) -> Option<(Assignment, Evaluation)> {
        let space = self.search_space();
        assert!(
            space <= limit,
            "search space {space} exceeds limit {limit}; use solve_hill_climb"
        );
        let mut candidates: Vec<(Assignment, Evaluation)> = Vec::new();
        let mut current = self.immediate_assignment();
        loop {
            let eval = self.evaluate(&current);
            if eval.feasible {
                candidates.push((current.clone(), eval));
            }
            if !self.advance(&mut current) {
                break;
            }
        }
        let deg_scale = candidates
            .iter()
            .map(|(_, e)| e.max_degradation)
            .fold(0.0f64, f64::max);
        candidates.into_iter().min_by(|(_, a), (_, b)| {
            a.scalarized(lambda, deg_scale)
                .total_cmp(&b.scalarized(lambda, deg_scale))
        })
    }

    /// Enumerates all feasible schedules and returns the Pareto front of
    /// the bi-objective problem (minimize max degradation, maximize
    /// minimum utility), sorted by increasing degradation. The
    /// weighted-sum optima of [`solve_exhaustive`] for every λ lie on
    /// this front; the front itself exposes the whole trade-off the
    /// paper's objectives (8)–(9) span.
    ///
    /// # Panics
    ///
    /// Panics if the search space exceeds `limit`.
    ///
    /// [`solve_exhaustive`]: ClairvoyantProblem::solve_exhaustive
    #[must_use]
    pub fn pareto_front(&self, limit: u128) -> Vec<(Assignment, Evaluation)> {
        let space = self.search_space();
        assert!(space <= limit, "search space {space} exceeds limit {limit}");
        let mut front: Vec<(Assignment, Evaluation)> = Vec::new();
        let mut current = self.immediate_assignment();
        loop {
            let eval = self.evaluate(&current);
            if eval.feasible {
                let dominated = front.iter().any(|(_, e)| {
                    e.max_degradation <= eval.max_degradation + 1e-18
                        && e.min_utility >= eval.min_utility - 1e-12
                        && (e.max_degradation < eval.max_degradation - 1e-18
                            || e.min_utility > eval.min_utility + 1e-12)
                });
                if !dominated {
                    front.retain(|(_, e)| {
                        !(eval.max_degradation <= e.max_degradation + 1e-18
                            && eval.min_utility >= e.min_utility - 1e-12
                            && (eval.max_degradation < e.max_degradation - 1e-18
                                || eval.min_utility > e.min_utility + 1e-12))
                    });
                    // Avoid duplicate objective points.
                    if !front.iter().any(|(_, e)| {
                        (e.max_degradation - eval.max_degradation).abs() < 1e-18
                            && (e.min_utility - eval.min_utility).abs() < 1e-12
                    }) {
                        front.push((current.clone(), eval));
                    }
                }
            }
            if !self.advance(&mut current) {
                break;
            }
        }
        front.sort_by(|(_, a), (_, b)| a.max_degradation.total_cmp(&b.max_degradation));
        front
    }

    /// Odometer increment over the assignment space; false when wrapped.
    fn advance(&self, a: &mut Assignment) -> bool {
        for (u, offsets) in a.0.iter_mut().enumerate() {
            let tau = self.nodes[u].period_slots;
            for slot in offsets.iter_mut() {
                *slot += 1;
                if *slot < tau {
                    return true;
                }
                *slot = 0;
            }
        }
        false
    }

    /// Random-restart hill climbing: mutates one period's offset at a
    /// time, accepting improvements of the scalarized objective.
    /// `deg_scale` should be a representative degradation magnitude
    /// (e.g. the immediate assignment's).
    #[must_use]
    pub fn solve_hill_climb(
        &self,
        lambda: f64,
        restarts: usize,
        steps: usize,
        rng: &mut impl Rng,
    ) -> Option<(Assignment, Evaluation)> {
        let deg_scale = self
            .evaluate(&self.immediate_assignment())
            .max_degradation
            .max(1e-12);
        let mut best: Option<(Assignment, Evaluation)> = None;
        for restart in 0..restarts.max(1) {
            let mut current = if restart == 0 {
                self.immediate_assignment()
            } else {
                self.random_assignment(rng)
            };
            let mut current_eval = self.evaluate(&current);
            for _ in 0..steps {
                let u = rng.gen_range(0..self.nodes.len());
                if self.periods_of(u) == 0 {
                    continue;
                }
                let p = rng.gen_range(0..self.periods_of(u));
                let tau = self.nodes[u].period_slots;
                let old = current.0[u][p];
                let candidate = rng.gen_range(0..tau);
                if candidate == old {
                    continue;
                }
                current.0[u][p] = candidate;
                let eval = self.evaluate(&current);
                if eval.scalarized(lambda, deg_scale) <= current_eval.scalarized(lambda, deg_scale)
                {
                    current_eval = eval;
                } else {
                    current.0[u][p] = old;
                }
            }
            if current_eval.feasible {
                let better = match &best {
                    None => true,
                    Some((_, b)) => {
                        current_eval.scalarized(lambda, deg_scale) < b.scalarized(lambda, deg_scale)
                    }
                };
                if better {
                    best = Some((current.clone(), current_eval));
                }
            }
        }
        best
    }

    fn random_assignment(&self, rng: &mut impl Rng) -> Assignment {
        Assignment(
            (0..self.nodes.len())
                .map(|u| {
                    let tau = self.nodes[u].period_slots;
                    (0..self.periods_of(u))
                        .map(|_| rng.gen_range(0..tau))
                        .collect()
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Two periods of four slots; sun only in slot 2 of each period.
    fn sunny_slot_two(nodes: usize) -> ClairvoyantProblem {
        let mut green = vec![Joules(0.0); 8];
        green[2] = Joules(0.1);
        green[6] = Joules(0.1);
        ClairvoyantProblem {
            slots: 8,
            slot_length: Duration::from_mins(1),
            omega: 1,
            nodes: (0..nodes)
                .map(|_| ClairvoyantNode {
                    period_slots: 4,
                    tx_energy: Joules(0.05),
                    sleep_energy: Joules(0.0001),
                    green: green.clone(),
                    battery_capacity: Joules(1.0),
                    initial_soc: 0.5,
                    theta: 1.0,
                })
                .collect(),
            temperature: Celsius(25.0),
        }
    }

    #[test]
    fn utility_only_picks_immediate_transmission() {
        let p = sunny_slot_two(1);
        let (a, e) = p.solve_exhaustive(0.0, 1 << 20).unwrap();
        assert_eq!(a.0[0], vec![0, 0]);
        assert!((e.min_utility - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degradation_only_prefers_the_sunny_slot() {
        let p = sunny_slot_two(1);
        let (a, _) = p.solve_exhaustive(1.0, 1 << 20).unwrap();
        // Transmitting in slot 2 uses solar energy, keeping the battery
        // (and its average SoC stress trajectory) lower than charging it
        // up and draining it elsewhere.
        assert_eq!(a.0[0], vec![2, 2]);
    }

    #[test]
    fn omega_forces_nodes_apart() {
        let p = sunny_slot_two(2); // ω = 1: both want slot 2, only one fits
        let (a, e) = p.solve_exhaustive(1.0, 1 << 20).unwrap();
        assert!(e.feasible);
        for period in 0..2 {
            assert_ne!(
                a.0[0][period], a.0[1][period],
                "collision in period {period}"
            );
        }
    }

    #[test]
    fn infeasible_when_battery_cannot_fund_any_slot() {
        let mut p = sunny_slot_two(1);
        p.nodes[0].initial_soc = 0.0;
        p.nodes[0].green = vec![Joules(0.0); 8];
        assert!(p.solve_exhaustive(0.5, 1 << 20).is_none());
    }

    #[test]
    fn evaluate_flags_per_slot_overload() {
        let p = sunny_slot_two(2);
        let both_same = Assignment(vec![vec![0, 0], vec![0, 0]]);
        assert!(!p.evaluate(&both_same).feasible);
        let apart = Assignment(vec![vec![0, 0], vec![1, 1]]);
        assert!(p.evaluate(&apart).feasible);
    }

    #[test]
    fn utility_matches_offset_formula() {
        let p = sunny_slot_two(1);
        let a = Assignment(vec![vec![1, 3]]);
        let e = p.evaluate(&a);
        // μ = mean((4−1)/4, (4−3)/4) = mean(0.75, 0.25) = 0.5.
        assert!((e.min_utility - 0.5).abs() < 1e-12);
    }

    #[test]
    fn search_space_counts() {
        assert_eq!(sunny_slot_two(1).search_space(), 16);
        assert_eq!(sunny_slot_two(2).search_space(), 256);
    }

    #[test]
    fn hill_climb_matches_exhaustive_on_small_instance() {
        let p = sunny_slot_two(2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (_, exact) = p.solve_exhaustive(1.0, 1 << 20).unwrap();
        let (_, approx) = p.solve_hill_climb(1.0, 8, 400, &mut rng).unwrap();
        assert!(approx.feasible);
        assert!(
            approx.max_degradation <= exact.max_degradation * 1.05 + 1e-15,
            "hill climb {} vs exact {}",
            approx.max_degradation,
            exact.max_degradation
        );
    }

    #[test]
    fn theta_cap_reduces_degradation() {
        let mut capped = sunny_slot_two(1);
        capped.nodes[0].theta = 0.5;
        capped.nodes[0].green = vec![Joules(0.2); 8]; // abundant sun
        let mut uncapped = capped.clone();
        uncapped.nodes[0].theta = 1.0;
        let a = Assignment(vec![vec![0, 0]]);
        let e_capped = capped.evaluate(&a);
        let e_uncapped = uncapped.evaluate(&a);
        assert!(e_capped.feasible && e_uncapped.feasible);
        assert!(e_capped.max_degradation < e_uncapped.max_degradation);
    }

    #[test]
    fn pareto_front_is_nondominated_and_ordered() {
        let p = sunny_slot_two(2);
        let front = p.pareto_front(1 << 20);
        assert!(front.len() >= 2, "expect a real trade-off");
        for pair in front.windows(2) {
            let (a, b) = (&pair[0].1, &pair[1].1);
            // Increasing degradation must buy increasing utility.
            assert!(b.max_degradation > a.max_degradation);
            assert!(b.min_utility > a.min_utility, "dominated point on front");
        }
        // The λ-extremes lie on the front.
        let (_, util_opt) = p.solve_exhaustive(0.0, 1 << 20).unwrap();
        let (_, deg_opt) = p.solve_exhaustive(1.0, 1 << 20).unwrap();
        assert!((front.last().unwrap().1.min_utility - util_opt.min_utility).abs() < 1e-12);
        assert!(
            (front[0].1.max_degradation - deg_opt.max_degradation).abs() < 1e-18,
            "degradation extreme missing"
        );
    }

    #[test]
    fn pareto_front_single_point_when_no_tradeoff() {
        // Sun everywhere: transmitting immediately is optimal in both
        // objectives simultaneously.
        let mut p = sunny_slot_two(1);
        p.nodes[0].green = vec![Joules(0.2); 8];
        let front = p.pareto_front(1 << 20);
        assert_eq!(
            front.len(),
            1,
            "front: {:?}",
            front.iter().map(|(_, e)| e).collect::<Vec<_>>()
        );
        assert!((front[0].1.min_utility - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds limit")]
    fn exhaustive_guard_trips() {
        let p = sunny_slot_two(2);
        let _ = p.solve_exhaustive(0.5, 10);
    }
}
