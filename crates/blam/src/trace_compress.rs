//! Compressed SoC traces — the uplink piggyback.
//!
//! Battery degradation is computed at the gateway (the rainflow
//! algorithm is too heavy for the nodes), so nodes must ship their SoC
//! trace upstream. The paper observes that the SoC at charge/discharge
//! *transitions* suffices to reconstruct the trace, and that per
//! sampling period only two transitions matter: the discharge for the
//! packet transmission and the last recharge. Each uplink therefore
//! carries two `(forecast window, SoC)` samples, 4 bytes total —
//! costing 41 ms of extra airtime at SF10 (verified in
//! `blam_lora_phy::airtime`).

use serde::{Deserialize, Serialize};

/// One `(window, SoC)` sample of the compressed trace.
///
/// The window index is the forecast window within the sampling period
/// (≤ 60 for the paper's parameters, so a byte suffices); the SoC is
/// quantized to 1/255.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocSample {
    /// Forecast-window index within the period.
    pub window: u8,
    /// State of charge in `[0, 1]`.
    pub soc: f64,
}

impl SocSample {
    /// Creates a sample, clamping SoC into `[0, 1]`.
    #[must_use]
    pub fn new(window: u8, soc: f64) -> Self {
        SocSample {
            window,
            soc: soc.clamp(0.0, 1.0),
        }
    }

    fn encode(self) -> [u8; 2] {
        [self.window, (self.soc * 255.0).round() as u8]
    }

    fn decode(bytes: [u8; 2]) -> Self {
        SocSample {
            window: bytes[0],
            soc: f64::from(bytes[1]) / 255.0,
        }
    }
}

/// The per-period compressed SoC trace: the discharge transition (the
/// transmission) and the last recharge transition.
///
/// # Examples
///
/// ```
/// use blam::{CompressedSocTrace, SocSample};
///
/// let trace = CompressedSocTrace {
///     discharge: SocSample::new(2, 0.42),
///     recharge: SocSample::new(7, 0.50),
/// };
/// let bytes = trace.encode();
/// assert_eq!(bytes.len(), CompressedSocTrace::ENCODED_LEN);
/// let back = CompressedSocTrace::decode(bytes);
/// assert_eq!(back.discharge.window, 2);
/// assert!((back.recharge.soc - 0.50).abs() < 1.0 / 255.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressedSocTrace {
    /// SoC right after the period's packet transmission discharged the
    /// battery.
    pub discharge: SocSample,
    /// SoC at the last recharge transition of the period.
    pub recharge: SocSample,
}

impl CompressedSocTrace {
    /// Encoded size in bytes — the paper's 4-byte uplink overhead.
    pub const ENCODED_LEN: usize = 4;

    /// Serializes to the 4-byte wire form.
    #[must_use]
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let d = self.discharge.encode();
        let r = self.recharge.encode();
        [d[0], d[1], r[0], r[1]]
    }

    /// Deserializes from the 4-byte wire form.
    #[must_use]
    pub fn decode(bytes: [u8; Self::ENCODED_LEN]) -> Self {
        CompressedSocTrace {
            discharge: SocSample::decode([bytes[0], bytes[1]]),
            recharge: SocSample::decode([bytes[2], bytes[3]]),
        }
    }

    /// The SoC extrema this period contributes to the gateway-side
    /// trace, in window order.
    #[must_use]
    pub fn samples_in_order(&self) -> [SocSample; 2] {
        if self.discharge.window <= self.recharge.window {
            [self.discharge, self.recharge]
        } else {
            [self.recharge, self.discharge]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_quantization() {
        for (w, soc) in [(0u8, 0.0), (5, 0.333), (59, 1.0), (255, 0.777)] {
            let t = CompressedSocTrace {
                discharge: SocSample::new(w, soc),
                recharge: SocSample::new(w.saturating_add(1), 1.0 - soc),
            };
            let back = CompressedSocTrace::decode(t.encode());
            assert_eq!(back.discharge.window, w);
            assert!((back.discharge.soc - soc).abs() <= 0.5 / 255.0 + 1e-9);
            assert!((back.recharge.soc - (1.0 - soc)).abs() <= 0.5 / 255.0 + 1e-9);
        }
    }

    #[test]
    fn encoded_len_is_four_bytes() {
        let t = CompressedSocTrace {
            discharge: SocSample::new(1, 0.5),
            recharge: SocSample::new(2, 0.6),
        };
        assert_eq!(t.encode().len(), 4);
    }

    #[test]
    fn soc_is_clamped() {
        assert_eq!(SocSample::new(0, 1.7).soc, 1.0);
        assert_eq!(SocSample::new(0, -0.3).soc, 0.0);
    }

    #[test]
    fn samples_sorted_by_window() {
        let t = CompressedSocTrace {
            discharge: SocSample::new(9, 0.2),
            recharge: SocSample::new(3, 0.8),
        };
        let [a, b] = t.samples_in_order();
        assert_eq!((a.window, b.window), (3, 9));
    }

    #[test]
    fn quantization_extremes_are_exact() {
        assert_eq!(SocSample::decode(SocSample::new(0, 0.0).encode()).soc, 0.0);
        assert_eq!(SocSample::decode(SocSample::new(0, 1.0).encode()).soc, 1.0);
    }
}
